"""Fixed-point EMAC — the paper's Fig. 3 datapath.

Inputs are ``n``-bit two's-complement patterns with ``q`` fraction bits.
Products are kept at full ``2n``-bit precision (``2q`` fraction bits) and
accumulated in a ``wa``-bit register (eq. (3)); the final sum is shifted
right by ``q`` (floor) and clipped to the ``n``-bit output range.

The bias is preloaded into the accumulator aligned to the product grid
(shifted left by ``q``), exactly as resetting the accumulator flip-flop to
the bias representation does in hardware.
"""

from __future__ import annotations

from fractions import Fraction

from ..fixedpoint.format import FixedFormat
from .accumulator import ExactAccumulator
from .emac_base import Emac

__all__ = ["FixedEmac"]


class FixedEmac(Emac):
    """Exact MAC over :class:`~repro.fixedpoint.format.FixedFormat` patterns."""

    pipeline_depth = 2  # multiply register + accumulate register

    def __init__(self, fmt: FixedFormat):
        self.fmt = fmt
        # Product grid: 2q fraction bits.
        self._acc = ExactAccumulator(lsb_exponent=-2 * fmt.q)
        self.reset()

    @property
    def width(self) -> int:
        """Input width ``n``."""
        return self.fmt.n

    @property
    def name(self) -> str:
        """Format identifier."""
        return "fixed"

    # ------------------------------------------------------------------
    def reset(self, bias_bits: int | None = None) -> None:
        """Clear the accumulator; optionally preload a bias pattern."""
        if bias_bits is None:
            self._acc.reset(0)
            return
        if not self.fmt.valid_pattern(bias_bits):
            raise ValueError(f"bias pattern {bias_bits:#x} out of range")
        bias_raw = self.fmt.to_signed(bias_bits)
        # Bias has q fraction bits; align to the 2q-bit product grid.
        self._acc.reset(bias_raw << self.fmt.q)

    def step(self, weight_bits: int, activation_bits: int) -> None:
        """Accumulate one full-precision product."""
        if not self.fmt.valid_pattern(weight_bits):
            raise ValueError(f"weight pattern {weight_bits:#x} out of range")
        if not self.fmt.valid_pattern(activation_bits):
            raise ValueError(f"activation pattern {activation_bits:#x} out of range")
        w = self.fmt.to_signed(weight_bits)
        a = self.fmt.to_signed(activation_bits)
        self._acc.add_term(w * a, -2 * self.fmt.q)

    def result(self) -> int:
        """Shift right by ``q`` (floor), clip, return the ``n``-bit pattern."""
        raw = self._acc.raw >> self.fmt.q  # arithmetic shift == floor
        raw = max(self.fmt.int_min, min(self.fmt.int_max, raw))
        return raw & self.fmt.mask

    def accumulator_value(self) -> Fraction:
        """Exact value held in the wide register."""
        return self._acc.to_fraction()

    def accumulator_bits_used(self) -> int:
        """Two's-complement width of the current contents (vs eq. (3))."""
        return self._acc.bits_used()
