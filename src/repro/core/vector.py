"""Vectorized exact EMAC engines.

Running Table II's experiments needs millions of exact MACs, far too many
for the scalar reference cores.  These engines compute *bit-identical*
results with numpy:

* every pattern's signed aligned significand and non-negative shift
  (``scale - min_scale``) come from the format's decode tables;
* each product term ``(+-sig_w * +-sig_a) << ((shift_w + shift_a) % L)`` fits
  comfortably in an int64 limb; the limb index is ``shift // L``;
* per-(sample, neuron) limb sums are formed with one ``np.bincount`` over a
  flattened composite index (partial sums stay below 2**53, so staging
  through float64 is exact);
* limbs are combined into exact Python integers and rounded once via the
  same ``encode_exact`` the scalar cores use.

The fixed-point engine is simpler: an int64 matmul is already exact at the
paper's widths.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from ..fixedpoint import codec as fx
from ..fixedpoint.format import FixedFormat
from ..floatp import tables as ft
from ..floatp.codec import encode_exact as float_encode_exact
from ..floatp.format import FloatFormat
from ..posit import tables as pt
from ..posit.encode import encode_exact as posit_encode_exact
from ..posit.format import PositFormat
from .accumulator import LIMB_BITS, combine_limbs

__all__ = [
    "VectorEngine",
    "FixedVectorEngine",
    "FloatVectorEngine",
    "PositVectorEngine",
    "engine_for",
]

#: Soft cap on the size of the (chunk, out, in) intermediate term tensors.
_CHUNK_ELEMENTS = 4_000_000


class VectorEngine(ABC):
    """Format-generic vectorized EMAC layer engine.

    All tensors of patterns are uint32 numpy arrays.  ``dot`` computes, for
    every (sample, output neuron) pair, the exact dot product of an input row
    with a weight row plus bias, rounded once — the same contract as running
    one scalar EMAC per output neuron.
    """

    @property
    @abstractmethod
    def width(self) -> int:
        """Input pattern width in bits."""

    @abstractmethod
    def dot(
        self,
        weights: np.ndarray,
        activations: np.ndarray,
        bias: np.ndarray | None = None,
    ) -> np.ndarray:
        """(out, in) weights x (batch, in) activations -> (batch, out)."""

    @abstractmethod
    def relu(self, patterns: np.ndarray) -> np.ndarray:
        """Elementwise ReLU on patterns (negatives -> zero pattern)."""

    @abstractmethod
    def decode_values(self, patterns: np.ndarray) -> np.ndarray:
        """Patterns -> float64 values (diagnostics / readout)."""

    @abstractmethod
    def quantize(self, values: np.ndarray) -> np.ndarray:
        """float array -> nearest patterns (uint32)."""


def _validate_shapes(weights: np.ndarray, activations: np.ndarray, bias) -> None:
    if weights.ndim != 2:
        raise ValueError(f"weights must be 2-D (out, in); got shape {weights.shape}")
    if activations.ndim != 2:
        raise ValueError(
            f"activations must be 2-D (batch, in); got shape {activations.shape}"
        )
    if weights.shape[1] != activations.shape[1]:
        raise ValueError(
            f"fan-in mismatch: weights {weights.shape} vs activations "
            f"{activations.shape}"
        )
    if bias is not None and bias.shape != (weights.shape[0],):
        raise ValueError(f"bias must have shape ({weights.shape[0]},)")


class FixedVectorEngine(VectorEngine):
    """Exact fixed-point dot products via int64 matmul (Fig. 3 semantics)."""

    def __init__(self, fmt: FixedFormat):
        if fmt.n > 16:
            raise ValueError("vector engine supports n <= 16")
        self.fmt = fmt

    @property
    def width(self) -> int:
        """Input width ``n``."""
        return self.fmt.n

    def dot(self, weights, activations, bias=None):
        """Accumulate exactly in int64, then shift-truncate-clip."""
        weights = np.asarray(weights, dtype=np.uint32)
        activations = np.asarray(activations, dtype=np.uint32)
        _validate_shapes(weights, activations, bias)
        w = fx.signed_array(self.fmt, weights)  # (out, in)
        a = fx.signed_array(self.fmt, activations)  # (batch, in)
        acc = a @ w.T  # (batch, out); exact: |terms| < 2**(2n-2), k < 2**20
        if bias is not None:
            b = fx.signed_array(self.fmt, np.asarray(bias, dtype=np.uint32))
            acc = acc + (b << self.fmt.q)[None, :]
        out = acc >> self.fmt.q  # arithmetic shift = floor, as in the paper
        out = np.clip(out, self.fmt.int_min, self.fmt.int_max)
        return (out & self.fmt.mask).astype(np.uint32)

    def relu(self, patterns):
        """Negative patterns -> 0."""
        return fx.relu_patterns(self.fmt, patterns)

    def decode_values(self, patterns):
        """Patterns -> float64."""
        return fx.dequantize_array(self.fmt, patterns)

    def quantize(self, values):
        """float64 -> patterns (RNE, saturating)."""
        return fx.quantize_array(self.fmt, values)


class _LimbEngine(VectorEngine):
    """Shared limb-accumulation machinery for posit and float engines."""

    #: Per-pattern arrays, filled by subclasses.
    _signed_sig: np.ndarray  # int64: (-1)**sign * aligned significand
    _shift: np.ndarray  # int64: scale - min_scale (>= 0)
    _relu: np.ndarray
    _float_value: np.ndarray
    _invalid: np.ndarray  # bool: patterns the datapath must never see

    #: Quire/accumulator LSB exponent and shift of a *term* with
    #: shift_w == shift_a == 0 (i.e. exponent of sig_w*sig_a at min scales).
    _lsb_exponent: int

    def __init__(self, max_shift: int, sig_bits: int):
        max_term_bits = 2 * sig_bits + LIMB_BITS
        if max_term_bits > 62:
            raise ValueError("significand products too wide for int64 limbs")
        self._num_limbs = (max_shift + max_term_bits) // LIMB_BITS + 2

    # -- subclass hooks -------------------------------------------------
    @abstractmethod
    def _encode(self, sign: int, magnitude: int) -> int:
        """Round |quire| * 2**lsb_exponent to an output pattern."""

    # -- shared ---------------------------------------------------------
    def _check_patterns(self, patterns: np.ndarray, what: str) -> np.ndarray:
        p = np.asarray(patterns, dtype=np.int64)
        if p.size and (p.min() < 0 or p.max() >= self._signed_sig.shape[0]):
            raise ValueError(f"{what} pattern out of range")
        if np.any(self._invalid[p]):
            raise ValueError(f"{what} contains NaR/reserved patterns")
        return p

    def dot(self, weights, activations, bias=None):
        """Exact limb-accumulated dot products, rounded once per output."""
        weights = np.asarray(weights, dtype=np.uint32)
        activations = np.asarray(activations, dtype=np.uint32)
        _validate_shapes(weights, activations, bias)
        wp = self._check_patterns(weights, "weights")
        ap = self._check_patterns(activations, "activations")

        out_dim, in_dim = wp.shape
        batch = ap.shape[0]
        L = self._num_limbs

        sig_w = self._signed_sig[wp]  # (out, in)
        sh_w = self._shift[wp]
        sig_a = self._signed_sig[ap]  # (batch, in)
        sh_a = self._shift[ap]

        bias_quire = self._bias_quires(bias, out_dim)

        chunk = max(1, _CHUNK_ELEMENTS // max(1, out_dim * in_dim))
        out = np.empty((batch, out_dim), dtype=np.uint32)
        for start in range(0, batch, chunk):
            stop = min(batch, start + chunk)
            nb = stop - start
            # (nb, out, in) term tensors.
            term = sig_a[start:stop, None, :] * sig_w[None, :, :]
            shift = sh_a[start:stop, None, :] + sh_w[None, :, :]
            limb = shift // LIMB_BITS
            rem = shift - limb * LIMB_BITS
            term <<= rem
            # Composite index (sample, neuron, limb) -> flat bincount.
            base = np.arange(nb * out_dim, dtype=np.int64).reshape(nb, out_dim)
            flat = (base[:, :, None] * L + limb).ravel()
            sums = np.bincount(
                flat, weights=term.ravel().astype(np.float64), minlength=nb * out_dim * L
            )
            limbs = sums.astype(np.int64).reshape(nb, out_dim, L)
            for i in range(nb):
                for o in range(out_dim):
                    quire = combine_limbs(limbs[i, o]) + bias_quire[o]
                    if quire == 0:
                        out[start + i, o] = self._zero_pattern
                    elif quire < 0:
                        out[start + i, o] = self._encode(1, -quire)
                    else:
                        out[start + i, o] = self._encode(0, quire)
        return out

    def _bias_quires(self, bias, out_dim: int) -> list[int]:
        """Exact quire-aligned integer for each bias pattern."""
        if bias is None:
            return [0] * out_dim
        bp = self._check_patterns(np.asarray(bias, dtype=np.uint32), "bias")
        quires = []
        for pattern in bp:
            sig = int(self._signed_sig[pattern])
            shift = int(self._shift[pattern]) + self._bias_extra_shift
            quires.append(sig << shift)
        return quires

    #: Extra left shift aligning a single *input* (not product) to the quire:
    #: inputs sit one min_scale and one significand-width above the quire LSB.
    _bias_extra_shift: int
    _zero_pattern: int

    def relu(self, patterns):
        """Table-driven ReLU."""
        return self._relu[np.asarray(patterns, dtype=np.int64)].astype(np.uint32)

    def decode_values(self, patterns):
        """Table-driven decode to float64."""
        return self._float_value[np.asarray(patterns, dtype=np.int64)]


class PositVectorEngine(_LimbEngine):
    """Exact posit dot products (Fig. 5 / Algorithm 2 semantics)."""

    def __init__(self, fmt: PositFormat):
        self.fmt = fmt
        t = pt.tables_for(fmt)
        sig_bits = fmt.significand_bits
        max_shift = 4 * fmt.max_scale  # (scale-min)*2 at both maxima
        super().__init__(max_shift=max_shift, sig_bits=sig_bits)
        sign = t.sign.astype(np.int64)
        self._signed_sig = np.where(sign == 1, -t.significand, t.significand)
        self._shift = (t.scale.astype(np.int64) - fmt.min_scale) * ~(
            t.is_zero | t.is_nar
        )
        self._relu = t.relu.astype(np.int64)
        self._float_value = t.float_value
        self._invalid = t.is_nar
        # Quire LSB: product of two minimum-scale aligned significands.
        self._lsb_exponent = 2 * (fmt.min_scale - fmt.max_fraction_bits)
        # An input value sig * 2**(scale - max_frac): shift over quire LSB is
        # (scale - min_scale) + (min_scale - max_frac) - lsb
        #   = shift + (max_frac - 2*min_scale + 2*min_scale ... ) simplified:
        self._bias_extra_shift = fmt.max_fraction_bits - fmt.min_scale
        self._zero_pattern = fmt.zero_pattern

    @property
    def width(self) -> int:
        """Input width ``n``."""
        return self.fmt.n

    def _encode(self, sign: int, magnitude: int) -> int:
        return posit_encode_exact(self.fmt, sign, magnitude, self._lsb_exponent)

    def quantize(self, values):
        """float64 -> nearest posit patterns."""
        return pt.quantize_array(self.fmt, values)


class FloatVectorEngine(_LimbEngine):
    """Exact small-float dot products (Fig. 4 semantics)."""

    def __init__(self, fmt: FloatFormat):
        self.fmt = fmt
        t = ft.tables_for(fmt)
        sig_bits = fmt.wf + 1
        # shift = scale - (1 - bias) per operand; max 2*(max_scale - min normal scale)
        max_shift = 2 * (fmt.max_scale - (1 - fmt.bias))
        super().__init__(max_shift=max_shift, sig_bits=sig_bits)
        sign = t.sign.astype(np.int64)
        self._signed_sig = np.where(sign == 1, -t.significand, t.significand)
        self._shift = (t.scale.astype(np.int64) - (1 - fmt.bias)).clip(min=0)
        self._relu = t.relu.astype(np.int64)
        self._float_value = t.float_value
        self._invalid = t.is_reserved
        # Quire LSB: product of two subnormal LSBs = 2**(2 * min_scale).
        self._lsb_exponent = 2 * fmt.min_scale
        # Input value = sig * 2**(scale - wf); over the quire LSB:
        # (scale - (1-bias)) + ((1-bias) - wf - 2*min_scale) = shift + extra.
        self._bias_extra_shift = (1 - fmt.bias) - fmt.wf - 2 * fmt.min_scale
        self._zero_pattern = 0

    @property
    def width(self) -> int:
        """Input width ``n = 1 + we + wf``."""
        return self.fmt.n

    def _encode(self, sign: int, magnitude: int) -> int:
        return float_encode_exact(self.fmt, sign, magnitude, self._lsb_exponent)

    def quantize(self, values):
        """float64 -> nearest float patterns."""
        return ft.quantize_array(self.fmt, values)


def engine_for(fmt) -> VectorEngine:
    """Engine factory dispatching on the format type."""
    if isinstance(fmt, PositFormat):
        return PositVectorEngine(fmt)
    if isinstance(fmt, FloatFormat):
        return FloatVectorEngine(fmt)
    if isinstance(fmt, FixedFormat):
        return FixedVectorEngine(fmt)
    raise TypeError(f"no vector engine for {type(fmt).__name__}")
