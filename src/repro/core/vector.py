"""Vectorized exact EMAC engines.

Running Table II's experiments needs millions of exact MACs, far too many
for the scalar reference cores.  These engines compute *bit-identical*
results with numpy:

* every pattern's exact aligned value ``(-1)**sign * sig << shift`` (from
  the format backend's decode tables) is decomposed once, per pattern, into
  a handful of signed base-``2**LIMB_BITS`` digits;
* ``dot`` compiles ``(weights, bias)`` into a one-shot layer kernel
  (:mod:`repro.formats.kernels`): the digit-plane convolution runs as a
  single stacked float64 BLAS GEMM per batch chunk, with single-word and
  plane-major fast paths when the weights allow them;
* ``dot_reference`` retains the pre-compiled path — one float64 matmul per
  (l, m) digit-plane pair, ``limbs[b, o, k] = sum_{l+m=k} (A_m @ W_l.T)`` —
  as the in-tree baseline for bit-identity tests and the throughput
  regression guard;
* the limb tensor is rounded once, whole batches at a time, by the
  backend's :meth:`~repro.formats.NumericFormat.encode_from_quire_batch` —
  no per-sample Python loop anywhere on the hot path.

The fixed-point engine is simpler: an int64 matmul is already exact at the
paper's widths.

Engines are obtained from the format registry (``engine_for``); the engine
layer itself is format-agnostic and knows nothing about concrete number
systems.  Registry-memoized engines are shared process-wide and safe to
use from multiple threads (scratch buffers are per-thread, see
:mod:`repro.formats.kernels`).  The compile-then-run pipeline is described
end to end in ``docs/architecture.md``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from .. import formats
from ..fixedpoint import codec as fx
from ..fixedpoint.format import FixedFormat
from .accumulator import LIMB_BITS

__all__ = [
    "VectorEngine",
    "FixedVectorEngine",
    "FloatVectorEngine",
    "PositVectorEngine",
    "TableVectorEngine",
    "engine_for",
]

#: Soft cap on the size of per-chunk intermediate tensors.  Seeded from the
#: kernels module's canonical value; ``dot`` passes this module's (possibly
#: monkeypatched) copy through at call time.
_CHUNK_ELEMENTS = formats.kernels._CHUNK_ELEMENTS


class VectorEngine(ABC):
    """Format-generic vectorized EMAC layer engine.

    All tensors of patterns are uint32 numpy arrays.  ``dot`` computes, for
    every (sample, output neuron) pair, the exact dot product of an input row
    with a weight row plus bias, rounded once — the same contract as running
    one scalar EMAC per output neuron.
    """

    @property
    @abstractmethod
    def width(self) -> int:
        """Input pattern width in bits."""

    @abstractmethod
    def dot(
        self,
        weights: np.ndarray,
        activations: np.ndarray,
        bias: np.ndarray | None = None,
        *,
        rounding_mode: str = "rne",
    ) -> np.ndarray:
        """(out, in) weights x (batch, in) activations -> (batch, out).

        ``rounding_mode`` selects the round-once output stage: ``"rne"``
        (default) or ``"rtz"`` (round toward zero, the truncated-EMAC
        ablation).
        """

    def dot_reference(
        self,
        weights: np.ndarray,
        activations: np.ndarray,
        bias: np.ndarray | None = None,
        *,
        rounding_mode: str = "rne",
    ) -> np.ndarray:
        """Reference (pre-compiled-kernel) dot path; defaults to ``dot``.

        Table engines override this with the retained PR 1 digit-plane
        nest so bit-identity tests and the throughput benchmark keep an
        in-tree baseline to compare the compiled kernels against.
        """
        return self.dot(weights, activations, bias, rounding_mode=rounding_mode)

    @abstractmethod
    def relu(self, patterns: np.ndarray) -> np.ndarray:
        """Elementwise ReLU on patterns (negatives -> zero pattern)."""

    @abstractmethod
    def decode_values(self, patterns: np.ndarray) -> np.ndarray:
        """Patterns -> float64 values (diagnostics / readout)."""

    @abstractmethod
    def quantize(self, values: np.ndarray) -> np.ndarray:
        """float array -> nearest patterns (uint32)."""


def _validate_shapes(weights: np.ndarray, activations: np.ndarray, bias) -> None:
    if weights.ndim != 2:
        raise ValueError(f"weights must be 2-D (out, in); got shape {weights.shape}")
    if activations.ndim != 2:
        raise ValueError(
            f"activations must be 2-D (batch, in); got shape {activations.shape}"
        )
    if weights.shape[1] != activations.shape[1]:
        raise ValueError(
            f"fan-in mismatch: weights {weights.shape} vs activations "
            f"{activations.shape}"
        )
    if bias is not None and bias.shape != (weights.shape[0],):
        raise ValueError(f"bias must have shape ({weights.shape[0]},)")


class FixedVectorEngine(VectorEngine):
    """Exact fixed-point dot products via int64 matmul (Fig. 3 semantics)."""

    def __init__(self, fmt: FixedFormat):
        if fmt.n > 16:
            raise ValueError("vector engine supports n <= 16")
        self.fmt = fmt

    @property
    def width(self) -> int:
        """Input width ``n``."""
        return self.fmt.n

    def dot(self, weights, activations, bias=None, *, rounding_mode="rne"):
        """Accumulate exactly in int64, then shift-truncate-clip."""
        weights = np.asarray(weights, dtype=np.uint32)
        activations = np.asarray(activations, dtype=np.uint32)
        _validate_shapes(weights, activations, bias)
        w = fx.signed_array(self.fmt, weights)  # (out, in)
        a = fx.signed_array(self.fmt, activations)  # (batch, in)
        acc = a @ w.T  # (batch, out); exact: |terms| < 2**(2n-2), k < 2**20
        if bias is not None:
            b = fx.signed_array(self.fmt, np.asarray(bias, dtype=np.uint32))
            acc = acc + (b << self.fmt.q)[None, :]
        # floor for "rne" (the paper's Fig. 3 stage), magnitude-floor for
        # "rtz" — one shared definition across backend/engine/kernel.
        out = formats.arithmetic_shift_round(acc, self.fmt.q, rounding_mode)
        out = np.clip(out, self.fmt.int_min, self.fmt.int_max)
        return (out & self.fmt.mask).astype(np.uint32)

    def relu(self, patterns):
        """Negative patterns -> 0."""
        return fx.relu_patterns(self.fmt, patterns)

    def decode_values(self, patterns):
        """Patterns -> float64."""
        return fx.dequantize_array(self.fmt, patterns)

    def quantize(self, values):
        """float64 -> patterns (RNE, saturating)."""
        return fx.quantize_array(self.fmt, values)


class TableVectorEngine(VectorEngine):
    """Limb-accumulating engine over any table-driven format backend.

    The backend supplies the decode tables and the batched round-once
    output stage; this class only runs the exact accumulation.
    """

    def __init__(self, backend: formats.NumericFormat):
        tables = backend.limb_tables()
        if tables is None:
            raise TypeError(f"{backend.name} has no limb decode tables")
        self.backend = backend
        self.fmt = backend.fmt
        max_term_bits = 2 * tables.sig_bits + LIMB_BITS
        if max_term_bits > 62:
            raise ValueError("significand products too wide for int64 limbs")
        self._num_limbs = (tables.max_shift + max_term_bits) // LIMB_BITS + 2
        self._tables = tables
        # Shared per-backend signed digit table (see formats.kernels).
        self._digits = formats.digit_planes(backend)

    @property
    def width(self) -> int:
        """Input width ``n``."""
        return self.fmt.n

    @property
    def num_limbs(self) -> int:
        """Limbs per quire in this engine's accumulation tensors."""
        return self._num_limbs

    # -- shared ---------------------------------------------------------
    def _check_patterns(self, patterns: np.ndarray, what: str) -> np.ndarray:
        # One validator serves the engines, the layer kernels, and the
        # fused network plans (which validate network inputs exactly once).
        return formats.check_patterns(self._tables, patterns, what)

    def dot(self, weights, activations, bias=None, *, rounding_mode="rne"):
        """Exact round-once dot products via a one-shot compiled kernel.

        Compiles ``(weights, bias)`` into a stacked digit-plane GEMM kernel
        (:mod:`repro.formats.kernels`) and applies it — one BLAS call per
        batch chunk, bit-identical to :meth:`dot_reference`.  Callers that
        reuse the same weights (layers, sweeps) should compile once via
        ``backend.compile_layer`` instead.
        """
        kernel = self.backend.compile_layer(
            weights,
            bias,
            chunk_elements=_CHUNK_ELEMENTS,
            rounding_mode=rounding_mode,
        )
        return kernel(np.asarray(activations, dtype=np.uint32))

    def dot_reference(self, weights, activations, bias=None, *, rounding_mode="rne"):
        """The PR 1 digit-plane-nest path, retained as the in-tree baseline
        for kernel bit-identity tests and the throughput benchmark."""
        formats.check_rounding_mode(rounding_mode)
        weights = np.asarray(weights, dtype=np.uint32)
        activations = np.asarray(activations, dtype=np.uint32)
        _validate_shapes(weights, activations, bias)
        wp = self._check_patterns(weights, "weights")
        ap = self._check_patterns(activations, "activations")

        out_dim, in_dim = wp.shape
        batch = ap.shape[0]
        L = self._num_limbs
        planes = self._digits.shape[1]
        if in_dim > 1 << 20:
            raise ValueError(f"fan-in {in_dim} overflows int64 limb sums")
        # Digit products are < 2**(2*LIMB_BITS); each float64 matmul must
        # reduce few enough of them to stay exact, so huge fan-ins are fed
        # through in chunks and accumulated in int64.
        in_chunk = max(1, (1 << (53 - 2 * LIMB_BITS)) // max(1, planes))

        dig_w = self._digits[wp]  # (out, in, planes)
        dig_a = self._digits[ap]  # (batch, in, planes)
        w_live = [dig_w[:, :, l] for l in range(planes)]
        w_used = [w.any() for w in w_live]

        bias_limbs = self._bias_limbs(bias, out_dim)

        chunk = max(1, _CHUNK_ELEMENTS // max(1, out_dim * L))
        out = np.empty((batch, out_dim), dtype=np.uint32)
        for start in range(0, batch, chunk):
            stop = min(batch, start + chunk)
            limbs = np.zeros((stop - start, out_dim, L), dtype=np.int64)
            for istart in range(0, in_dim, in_chunk):
                istop = min(in_dim, istart + in_chunk)
                limbs_f = np.zeros((stop - start, out_dim, L), dtype=np.float64)
                for m in range(planes):
                    a_plane = dig_a[start:stop, istart:istop, m]
                    if not a_plane.any():
                        continue
                    for l in range(planes):
                        if w_used[l]:
                            limbs_f[:, :, l + m] += a_plane @ w_live[l][:, istart:istop].T
                limbs += limbs_f.astype(np.int64)
            if bias_limbs is not None:
                limbs += bias_limbs[None, :, :]
            out[start:stop] = self.backend.encode_from_quire_batch(
                limbs, mode=rounding_mode
            )
        return out

    def _bias_limbs(self, bias, out_dim: int) -> np.ndarray | None:
        """Each bias pattern as quire-aligned limbs, shape (out, L)."""
        if bias is None:
            return None
        t = self._tables
        bp = self._check_patterns(np.asarray(bias, dtype=np.uint32), "bias")
        sig = t.signed_sig[bp]
        total_shift = t.shift[bp] + t.bias_extra_shift
        idx = total_shift // LIMB_BITS
        rem = total_shift - idx * LIMB_BITS
        limbs = np.zeros((out_dim, self._num_limbs), dtype=np.int64)
        limbs[np.arange(out_dim), idx] = sig << rem
        return limbs

    def relu(self, patterns):
        """Table-driven ReLU (backend-delegated)."""
        return self.backend.relu_batch(patterns)

    def decode_values(self, patterns):
        """Table-driven decode to float64 (backend-delegated)."""
        return self.backend.decode_batch(patterns)

    def quantize(self, values):
        """float64 -> nearest patterns (backend-vectorized, bit-exact)."""
        return self.backend.quantize_batch(values)


class PositVectorEngine(TableVectorEngine):
    """Exact posit dot products (Fig. 5 / Algorithm 2 semantics)."""

    def __init__(self, fmt):
        backend = formats.backend_for(fmt)
        if not isinstance(backend, formats.PositBackend):
            raise TypeError(f"PositVectorEngine needs a posit format, got {fmt}")
        super().__init__(backend)


class FloatVectorEngine(TableVectorEngine):
    """Exact small-float dot products (Fig. 4 semantics)."""

    def __init__(self, fmt):
        backend = formats.backend_for(fmt)
        if not isinstance(backend, formats.FloatBackend):
            raise TypeError(f"FloatVectorEngine needs a float format, got {fmt}")
        super().__init__(backend)


def engine_for(fmt) -> VectorEngine:
    """The format's registered engine, memoized per format key.

    Engines are read-only once built, so one shared instance per backend
    serves every consumer — sweeps, layers, and pool workers stop
    rebuilding decode/digit tables per config.
    """
    return formats.backend_for(fmt).engine()
