"""Streaming dataflow timing model for Deep Positron.

The paper's main control unit triggers each layer's compute cycle when the
preceding layer has finished its input, performing inference "in a parallel
streaming fashion" (Section III-E).  With one EMAC per neuron, a layer of
fan-in ``k`` occupies its EMACs for ``k`` MAC cycles plus the pipeline
fill/drain of the unit.

The model reports:

* per-layer busy cycles,
* single-sample latency — the sum over layers (layer ``l+1`` starts only
  after layer ``l`` has produced its activations),
* steady-state initiation interval — the slowest layer bounds streaming
  throughput.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["InferenceTiming", "layer_cycles", "network_timing"]


def layer_cycles(fan_in: int, pipeline_depth: int) -> int:
    """Busy cycles of one layer: ``k`` MACs + EMAC pipeline fill/drain."""
    if fan_in < 1:
        raise ValueError("fan_in must be >= 1")
    if pipeline_depth < 0:
        raise ValueError("pipeline_depth must be >= 0")
    return fan_in + pipeline_depth


@dataclass(frozen=True)
class InferenceTiming:
    """Cycle-level timing of a streaming inference pipeline.

    Attributes
    ----------
    per_layer_cycles:
        Busy cycles of each layer for one input.
    latency_cycles:
        End-to-end cycles for a single sample.
    initiation_interval:
        Steady-state cycles between successive outputs when streaming a
        batch (bounded by the slowest layer).
    """

    per_layer_cycles: tuple[int, ...]
    latency_cycles: int
    initiation_interval: int

    def batch_cycles(self, batch: int) -> int:
        """Total cycles to stream ``batch`` samples through the pipeline."""
        if batch < 1:
            raise ValueError("batch must be >= 1")
        return self.latency_cycles + (batch - 1) * self.initiation_interval

    def latency_seconds(self, frequency_hz: float) -> float:
        """Single-sample latency at a given clock."""
        if frequency_hz <= 0:
            raise ValueError("frequency must be positive")
        return self.latency_cycles / frequency_hz

    def batch_seconds(self, batch: int, frequency_hz: float) -> float:
        """Streaming time for a batch at a given clock."""
        if frequency_hz <= 0:
            raise ValueError("frequency must be positive")
        return self.batch_cycles(batch) / frequency_hz


def network_timing(fan_ins: list[int], pipeline_depth: int) -> InferenceTiming:
    """Timing of a multi-layer network given each layer's fan-in."""
    if not fan_ins:
        raise ValueError("need at least one layer")
    cycles = tuple(layer_cycles(k, pipeline_depth) for k in fan_ins)
    return InferenceTiming(
        per_layer_cycles=cycles,
        latency_cycles=sum(cycles),
        initiation_interval=max(cycles),
    )
