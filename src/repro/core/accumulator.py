"""Wide exact accumulators and limb arithmetic.

The EMACs accumulate products in registers far wider than a machine word
(the paper's eq. (3) accumulator and eq. (4) quire).  Two representations
are used:

* scalar: :class:`ExactAccumulator`, a Python big integer with a fixed
  binary point — arbitrarily wide, used by the reference EMAC models;
* vector: base-``2**LIMB_BITS`` limbs held in numpy int64 arrays, used by
  the vectorized engine (:mod:`repro.core.vector`).  Terms are bounded so
  that per-limb partial sums stay exactly representable, and
  :func:`combine_limbs` reconstitutes the exact Python integer.
"""

from __future__ import annotations

from fractions import Fraction

import numpy as np

from ..formats.quire import LIMB_BITS

__all__ = [
    "LIMB_BITS",
    "ExactAccumulator",
    "combine_limbs",
    "combine_limb_matrix",
    "limbs_needed",
]


class ExactAccumulator:
    """A fixed-point accumulator of unbounded width.

    The value is ``acc * 2**lsb_exponent`` where ``acc`` is a Python int.
    ``add_product`` accepts terms expressed at any binary position at or
    above the LSB.
    """

    __slots__ = ("lsb_exponent", "_acc", "_count")

    def __init__(self, lsb_exponent: int):
        self.lsb_exponent = lsb_exponent
        self._acc = 0
        self._count = 0

    @property
    def raw(self) -> int:
        """Integer contents (value = raw * 2**lsb_exponent)."""
        return self._acc

    @property
    def count(self) -> int:
        """Number of accumulated terms since the last reset."""
        return self._count

    def reset(self, raw: int = 0) -> None:
        """Clear (or preload, for a bias) the register."""
        self._acc = raw
        self._count = 0

    def add_term(self, signed_mantissa: int, exponent: int) -> None:
        """Accumulate ``signed_mantissa * 2**exponent`` exactly."""
        shift = exponent - self.lsb_exponent
        if shift < 0:
            raise ValueError(
                f"term exponent {exponent} below accumulator LSB {self.lsb_exponent}"
            )
        self._acc += signed_mantissa << shift
        self._count += 1

    def to_fraction(self) -> Fraction:
        """Exact rational value of the register."""
        if self.lsb_exponent >= 0:
            return Fraction(self._acc * (1 << self.lsb_exponent))
        return Fraction(self._acc, 1 << -self.lsb_exponent)

    def sign_and_magnitude(self) -> tuple[int, int]:
        """(sign, |raw|) of the register contents."""
        return (1, -self._acc) if self._acc < 0 else (0, self._acc)

    def bits_used(self) -> int:
        """Two's-complement width needed to hold the current contents."""
        mag = abs(self._acc)
        return mag.bit_length() + 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ExactAccumulator(lsb=2**{self.lsb_exponent}, raw={self._acc})"


def limbs_needed(max_shift: int, term_bits: int) -> int:
    """Number of limbs covering terms of ``term_bits`` bits shifted by up to
    ``max_shift`` positions (plus one limb of carry headroom)."""
    if max_shift < 0:
        raise ValueError("max_shift must be >= 0")
    top_bit = max_shift + term_bits
    return top_bit // LIMB_BITS + 2


def combine_limbs(limbs: np.ndarray) -> int:
    """Exactly reconstruct the Python integer from int64 limbs.

    ``limbs[i]`` carries weight ``2**(i * LIMB_BITS)``; limbs may be negative
    or exceed the limb radix (they are *unnormalized* partial sums).
    """
    total = 0
    for i in range(len(limbs) - 1, -1, -1):
        total = (total << LIMB_BITS) + int(limbs[i])
    return total


def combine_limb_matrix(limbs: np.ndarray) -> list[int]:
    """Combine the trailing axis of an ``(..., L)`` limb array.

    Returns a flat list of Python ints in C order of the leading axes.
    """
    flat = limbs.reshape(-1, limbs.shape[-1])
    return [combine_limbs(row) for row in flat]
