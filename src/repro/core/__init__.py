"""Deep Positron core: exact MAC units and the DNN inference architecture.

The paper's primary contribution: three precision-adaptable EMAC soft cores
(fixed, float, posit), the exact wide accumulators behind them, a vectorized
bit-identical engine for dataset-scale runs, and the Deep Positron network
(per-neuron EMACs, local parameter memories, streaming control FSM timing).
"""

from .accumulator import ExactAccumulator, LIMB_BITS, combine_limbs, limbs_needed
from .emac_base import Emac
from .emac_fixed import FixedEmac
from .emac_float import FloatEmac
from .emac_posit import PositEmac
from .vector import (
    FixedVectorEngine,
    FloatVectorEngine,
    PositVectorEngine,
    VectorEngine,
    engine_for,
)
from .control import InferenceTiming, layer_cycles, network_timing
from .memory import BRAM_KBITS, LayerMemory
from .positron import PositronLayer, PositronNetwork, scalar_emac_for

__all__ = [
    "ExactAccumulator",
    "LIMB_BITS",
    "combine_limbs",
    "limbs_needed",
    "Emac",
    "FixedEmac",
    "FloatEmac",
    "PositEmac",
    "VectorEngine",
    "FixedVectorEngine",
    "FloatVectorEngine",
    "PositVectorEngine",
    "engine_for",
    "InferenceTiming",
    "layer_cycles",
    "network_timing",
    "LayerMemory",
    "BRAM_KBITS",
    "PositronLayer",
    "PositronNetwork",
    "scalar_emac_for",
]
