"""Deep Positron — the paper's DNN inference architecture (Fig. 1).

A :class:`PositronNetwork` is a sequence of :class:`PositronLayer` objects.
Each layer owns local weight and bias memories holding *bit patterns* of the
network's numerical format, and computes every neuron with an exact
multiply-and-accumulate: products of the low-precision inputs are
accumulated exactly and rounded once back to the ``n``-bit format.  Hidden
layers apply ReLU (exact on patterns: negative -> zero); the readout layer
is affine ("identity" activation), and classification argmaxes the readout
patterns directly through the format's monotone rank table (identical to
argmaxing the decoded values, without the float64 decode).

Each layer compiles its ``(weights, bias)`` into a reusable kernel at
construction (:mod:`repro.formats.kernels`): weight digits are gathered and
stacked once, so every ``forward`` is a single float64 GEMM per batch chunk
plus the batched round-once output stage.  Whole-network calls
(``forward_patterns`` / ``predict_patterns``) additionally ride a cached
fused plan (:meth:`PositronNetwork.network_kernel`,
:mod:`repro.formats.network`) that chains the layers through fused
round-once / pattern-ReLU / operand-gather epilogues with per-layer integer
fast paths — bit-identical to the layer-by-layer path, kept as
``forward_patterns_layers``.

Two execution paths produce identical bits:

* :meth:`PositronLayer.forward` — the vectorized engine (production path);
* :meth:`PositronLayer.forward_scalar` — one scalar EMAC per neuron, used to
  validate the engine and to emulate the hardware datapath one MAC per cycle.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .. import formats
from .control import InferenceTiming, network_timing
from .emac_base import Emac
from .memory import LayerMemory
from .vector import VectorEngine, engine_for

__all__ = ["PositronLayer", "PositronNetwork", "Activation", "scalar_emac_for"]

Activation = str  # "relu" | "identity"
_ACTIVATIONS = ("relu", "identity")

# Monotonic compile stamps: every layer (re)compile takes a fresh epoch, so
# a network's cached fused plan can detect staleness by comparing epoch
# signatures (ids are unreliable — CPython reuses them after GC).
_KERNEL_EPOCHS = itertools.count(1)


def scalar_emac_for(fmt) -> Emac:
    """Reference scalar EMAC for any registered format."""
    return formats.backend_for(fmt).make_scalar_emac()


@dataclass
class PositronLayer:
    """One fully connected layer with per-neuron EMACs and local memories.

    Attributes
    ----------
    fmt:
        Numerical format shared by weights, bias, inputs, and outputs.
    weights:
        ``(out, in)`` uint32 array of weight patterns.
    bias:
        ``(out,)`` uint32 array of bias patterns.
    activation:
        ``"relu"`` for hidden layers, ``"identity"`` for the readout.
    engine:
        The vectorized EMAC engine (shared across layers of one network).
    rounding_mode:
        Round-once output stage of every EMAC in the layer: ``"rne"``
        (default) or ``"rtz"`` (round toward zero, the truncated-EMAC
        ablation).  Change it and call :meth:`recompile` to re-target the
        compiled kernel.
    """

    fmt: object
    weights: np.ndarray
    bias: np.ndarray
    activation: Activation
    engine: VectorEngine
    rounding_mode: str = "rne"

    def __post_init__(self) -> None:
        self.weights = np.asarray(self.weights, dtype=np.uint32)
        self.bias = np.asarray(self.bias, dtype=np.uint32)
        if self.weights.ndim != 2:
            raise ValueError("weights must be (out, in)")
        if self.bias.shape != (self.weights.shape[0],):
            raise ValueError("bias shape must match the output dimension")
        if self.activation not in _ACTIVATIONS:
            raise ValueError(f"activation must be one of {_ACTIVATIONS}")
        self.recompile()

    def recompile(self) -> None:
        """(Re)compile the layer kernel from the current parameters.

        Parameters are compiled once here — gathering weight digits,
        pruning dead planes, stacking the digit-plane GEMM, precomputing
        bias limbs — and every :meth:`forward` reuses the kernel.  Call
        again after mutating ``weights``/``bias``/``rounding_mode`` in
        place.
        """
        formats.check_rounding_mode(self.rounding_mode)
        self._kernel = formats.backend_for(self.fmt).compile_layer(
            self.weights, self.bias, rounding_mode=self.rounding_mode
        )
        # Stamp the compile so cached whole-network plans notice it.
        self._kernel_epoch = next(_KERNEL_EPOCHS)

    @property
    def in_features(self) -> int:
        """Fan-in ``k`` of each neuron's EMAC."""
        return self.weights.shape[1]

    @property
    def out_features(self) -> int:
        """Number of neurons (EMAC units) in the layer."""
        return self.weights.shape[0]

    @property
    def memory(self) -> LayerMemory:
        """Local memory footprint of this layer's parameters."""
        return LayerMemory.for_layer(
            self.out_features, self.in_features, self.engine.width
        )

    # ------------------------------------------------------------------
    def forward(self, patterns: np.ndarray) -> np.ndarray:
        """Compiled exact forward pass on ``(batch, in)`` patterns."""
        out = self._kernel(np.asarray(patterns, dtype=np.uint32))
        if self.activation == "relu":
            out = self.engine.relu(out)
        return out

    def forward_scalar(self, patterns: Sequence[int]) -> list[int]:
        """One-sample reference path: one scalar EMAC per neuron."""
        emac = scalar_emac_for(self.fmt)
        outputs = []
        for o in range(self.out_features):
            bits = emac.dot(
                [int(w) for w in self.weights[o]],
                [int(p) for p in patterns],
                bias_bits=int(self.bias[o]),
            )
            outputs.append(bits)
        if self.activation == "relu":
            relu = self.engine.relu(np.asarray(outputs, dtype=np.uint32))
            outputs = [int(b) for b in relu]
        return outputs


class PositronNetwork:
    """A Deep Positron inference network.

    Build one with :meth:`from_arrays` (pattern arrays) or
    :meth:`from_float_params` (trained float parameters, quantized here).
    """

    def __init__(
        self,
        fmt,
        layers: Sequence[PositronLayer],
        rounding_mode: str | None = None,
    ):
        if not layers:
            raise ValueError("network needs at least one layer")
        for first, second in zip(layers, layers[1:]):
            if first.out_features != second.in_features:
                raise ValueError(
                    f"layer size mismatch: {first.out_features} -> "
                    f"{second.in_features}"
                )
        self.fmt = fmt
        self.layers = list(layers)
        self.engine = layers[0].engine
        modes = {layer.rounding_mode for layer in self.layers}
        if rounding_mode is not None:
            formats.check_rounding_mode(rounding_mode)
            modes.add(rounding_mode)
        if len(modes) != 1:
            # Never silently recompile caller-owned layers: a mismatch is
            # the caller's to resolve (build the layers with the mode, or
            # use with_rounding_mode on a finished network).
            raise ValueError(
                f"inconsistent rounding modes {sorted(modes)}; construct "
                "layers with the desired mode or use with_rounding_mode()"
            )
        self.rounding_mode = modes.pop()
        self._mode_twins: dict[str, "PositronNetwork"] = {}
        self._network_plan = None  # (epoch signature, fused NetworkKernel)

    # ------------------------------------------------------------------
    @classmethod
    def from_arrays(
        cls,
        fmt,
        weight_arrays: Sequence[np.ndarray],
        bias_arrays: Sequence[np.ndarray],
        engine: VectorEngine | None = None,
        rounding_mode: str = "rne",
    ) -> "PositronNetwork":
        """Assemble from pattern arrays; last layer gets identity activation."""
        if len(weight_arrays) != len(bias_arrays):
            raise ValueError("need one bias array per weight array")
        engine = engine or engine_for(fmt)
        layers = []
        last = len(weight_arrays) - 1
        for i, (w, b) in enumerate(zip(weight_arrays, bias_arrays)):
            activation = "identity" if i == last else "relu"
            layers.append(
                PositronLayer(fmt, w, b, activation, engine, rounding_mode)
            )
        return cls(fmt, layers)

    @classmethod
    def from_float_params(
        cls,
        fmt,
        weight_arrays: Sequence[np.ndarray],
        bias_arrays: Sequence[np.ndarray],
        rounding_mode: str = "rne",
    ) -> "PositronNetwork":
        """Quantize trained float parameters into a Deep Positron network."""
        engine = engine_for(fmt)
        weights = [engine.quantize(np.asarray(w)) for w in weight_arrays]
        biases = [engine.quantize(np.asarray(b)) for b in bias_arrays]
        return cls.from_arrays(
            fmt, weights, biases, engine=engine, rounding_mode=rounding_mode
        )

    def with_rounding_mode(self, rounding_mode: str) -> "PositronNetwork":
        """A sibling network on the *same* pattern arrays, re-rounded.

        The twin shares weight/bias arrays and the memoized engine; only
        the compiled kernels differ (their round-once output stage).  The
        rounding-mode ablations use this to deploy one quantized model
        under both modes without re-quantizing.  Twins are cached per mode
        so repeated ablation passes compile once; like ``recompile()``,
        mutating parameter arrays in place afterwards requires recompiling
        the twin's layers too.
        """
        formats.check_rounding_mode(rounding_mode)
        if rounding_mode == self.rounding_mode:
            return self
        twin = self._mode_twins.get(rounding_mode)
        if twin is None:
            layers = [
                PositronLayer(
                    self.fmt,
                    layer.weights,
                    layer.bias,
                    layer.activation,
                    layer.engine,
                    rounding_mode,
                )
                for layer in self.layers
            ]
            twin = self._mode_twins[rounding_mode] = type(self)(
                self.fmt, layers
            )
            # Seed the back-link so mode round-trips are free.
            twin._mode_twins[self.rounding_mode] = self
        return twin

    # ------------------------------------------------------------------
    @property
    def topology(self) -> tuple[int, ...]:
        """(inputs, hidden..., outputs) neuron counts."""
        return (self.layers[0].in_features,) + tuple(
            layer.out_features for layer in self.layers
        )

    def recompile(self) -> None:
        """Recompile every layer kernel (and cached mode twins') in place.

        Call after mutating any layer's ``weights``/``bias`` arrays.  The
        fresh kernel epochs automatically invalidate the cached fused
        network plan (:meth:`network_kernel`), so the next
        ``forward_patterns`` / ``predict_patterns`` recompiles it.
        """
        for layer in self.layers:
            layer.recompile()
        for twin in self._mode_twins.values():
            for layer in twin.layers:
                layer.recompile()

    def network_kernel(self, force_path: str | None = None):
        """The whole network compiled into one fused plan, cached.

        Chains every layer through fused round-once / pattern-space ReLU /
        operand-gather epilogues with a per-shape integer fast path (see
        :mod:`repro.formats.network`).  The cache is keyed by the layers'
        kernel epochs, so any :meth:`PositronLayer.recompile` — a weight
        mutation, a rounding-mode change — invalidates it.  ``force_path``
        pins every layer to one words path (testing hook, never cached).
        """
        signature = tuple(layer._kernel_epoch for layer in self.layers)
        cached = self._network_plan
        if force_path is None and cached is not None and cached[0] == signature:
            return cached[1]
        plan = formats.backend_for(self.fmt).compile_network(
            [(l.weights, l.bias, l.activation) for l in self.layers],
            rounding_mode=self.rounding_mode,
            layer_kernels=[l._kernel for l in self.layers],
            force_path=force_path,
        )
        if force_path is None:
            self._network_plan = (signature, plan)
        return plan

    def forward_patterns(self, patterns: np.ndarray) -> np.ndarray:
        """Exact forward pass: ``(batch, in)`` patterns -> output patterns.

        Runs the fused network plan (:meth:`network_kernel`): intermediate
        activations never materialize beyond their patterns, and usually
        not even that — each epilogue hands the next layer its operands
        directly.  Bit-identical to :meth:`forward_patterns_layers`.
        """
        out = np.asarray(patterns, dtype=np.uint32)
        if out.ndim == 1:
            out = out[None, :]
        return self.network_kernel().forward(out)

    def forward_patterns_layers(self, patterns: np.ndarray) -> np.ndarray:
        """Layer-by-layer forward through the compiled per-layer kernels.

        The pre-fusion execution path (kernel + engine ReLU per layer),
        kept as the oracle the fused plan is property-tested against and
        as the baseline the benchmark regression guard measures fusion
        speedup from.
        """
        out = np.asarray(patterns, dtype=np.uint32)
        if out.ndim == 1:
            out = out[None, :]
        for layer in self.layers:
            out = layer.forward(out)
        return out

    def forward_scalar(self, patterns: Sequence[int]) -> list[int]:
        """Single-sample reference forward pass through scalar EMACs."""
        current = [int(p) for p in patterns]
        for layer in self.layers:
            current = layer.forward_scalar(current)
        return current

    def forward_values(self, inputs: np.ndarray) -> np.ndarray:
        """Quantize float inputs, run exactly, decode outputs to float64."""
        patterns = self.engine.quantize(np.asarray(inputs, dtype=np.float64))
        return self.engine.decode_values(self.forward_patterns(patterns))

    def predict_patterns(self, patterns: np.ndarray) -> np.ndarray:
        """Class prediction from input *patterns*, argmaxed in pattern space.

        The readout rows are never decoded: the backend's monotone rank
        table (:meth:`repro.formats.NumericFormat.rank_table`) orders
        patterns exactly as their values do — equal values share a rank —
        so ``argmax(rank[out])`` is identical to argmaxing the decoded
        float64 activations, ties included.  The fused plan composes that
        rank gather straight into the last layer's round-once epilogue, so
        the readout never materializes output patterns either.
        """
        out = np.asarray(patterns, dtype=np.uint32)
        if out.ndim == 1:
            out = out[None, :]
        return self.network_kernel().predict(out)

    def predict(self, inputs: np.ndarray) -> np.ndarray:
        """Class prediction: pattern-space argmax of the exact readout."""
        patterns = self.engine.quantize(np.asarray(inputs, dtype=np.float64))
        return self.predict_patterns(patterns)

    def accuracy(self, inputs: np.ndarray, labels: np.ndarray) -> float:
        """Classification accuracy on float inputs."""
        labels = np.asarray(labels)
        return float(np.mean(self.predict(inputs) == labels))

    # ------------------------------------------------------------------
    def timing(self) -> InferenceTiming:
        """Streaming dataflow timing of one inference (cycles)."""
        emac = scalar_emac_for(self.fmt)
        return network_timing(
            [layer.in_features for layer in self.layers], emac.pipeline_depth
        )

    def total_memory_bits(self) -> int:
        """Sum of all layers' local parameter memories, in bits."""
        return sum(layer.memory.total_bits for layer in self.layers)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        topo = "-".join(str(t) for t in self.topology)
        return f"PositronNetwork({self.fmt}, topology={topo})"
