"""Common interface of the three EMAC soft cores.

An EMAC (exact multiply-and-accumulate) consumes ``k`` (weight, activation)
pairs, one per clock cycle, accumulating exact products in a wide register;
rounding/truncation happens once, after the final product (paper
Section III-A).  A bias can be preloaded into the accumulator so products
accumulate on top of it.

All EMACs work on raw *bit patterns* (integers), exactly like the hardware;
conversions from real values belong to the format libraries.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Sequence
from fractions import Fraction

__all__ = ["Emac"]


class Emac(ABC):
    """Abstract exact multiply-and-accumulate unit.

    Subclasses implement the per-format decode / multiply / shift /
    accumulate / round pipeline.  The driver contract is::

        emac.reset(bias_bits)        # optional bias preload
        for w, a in pairs:
            emac.step(w, a)          # one MAC per cycle
        out_bits = emac.result()     # single rounding/truncation
    """

    #: Pipeline registers between input and accumulator (paper: a D flip-flop
    #: separates multiply from accumulate; posit adds decode/encode stages).
    pipeline_depth: int = 2

    @property
    @abstractmethod
    def width(self) -> int:
        """Input width ``n`` in bits."""

    @property
    @abstractmethod
    def name(self) -> str:
        """Short identifier: ``fixed``, ``float``, or ``posit``."""

    @abstractmethod
    def reset(self, bias_bits: int | None = None) -> None:
        """Clear the accumulator, optionally preloading a bias pattern."""

    @abstractmethod
    def step(self, weight_bits: int, activation_bits: int) -> None:
        """Accumulate one exact product."""

    @abstractmethod
    def result(self) -> int:
        """Round/truncate the accumulator to an ``n``-bit output pattern."""

    @abstractmethod
    def accumulator_value(self) -> Fraction:
        """Exact rational value currently held (diagnostic)."""

    # ------------------------------------------------------------------
    def dot(
        self,
        weight_bits: Sequence[int],
        activation_bits: Sequence[int],
        bias_bits: int | None = None,
    ) -> int:
        """Convenience: full dot product, returning the output pattern."""
        if len(weight_bits) != len(activation_bits):
            raise ValueError("weights and activations must have equal length")
        self.reset(bias_bits)
        for w, a in zip(weight_bits, activation_bits):
            self.step(w, a)
        return self.result()

    def cycles(self, k: int) -> int:
        """Clock cycles for a ``k``-input dot product (fill + drain)."""
        if k < 1:
            raise ValueError("k must be >= 1")
        return k + self.pipeline_depth
