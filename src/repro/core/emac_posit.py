"""Posit EMAC — the paper's Fig. 5 datapath (Algorithms 1 and 2).

The implementation mirrors Algorithm 2's stages with named intermediates:

* **Decode** (Algorithm 1) — sign / regime / exponent / fraction extraction,
  with the significand left-aligned to the format's widest width so the
  multiplier input is fixed-size (``1 + max_fraction_bits`` bits).
* **Multiplication** — exact product of aligned significands; the combined
  scale factor is ``sf_w + sf_a`` (overflow of the significand product past
  the 2-integer-bit position is implicitly captured because we keep all
  product bits rather than renormalizing, which is arithmetically identical
  to Algorithm 2's ``ovf_mult`` adjustment).
* **Accumulation** — the signed product is shifted left by the *biased*
  scale factor ``sf + bias`` (``bias = 2**(es+1) * (n-2)``, making the
  minimum shift zero — paper Section III-D) into the quire.
* **Convergent rounding & encoding** — a single round-to-nearest-even of the
  quire contents back to an ``n``-bit posit (Algorithm 2 lines 15-43),
  delegated to :func:`repro.posit.encode.encode_exact`, which implements the
  same guard/LSB/sticky increment in pattern space.

Posits never overflow to NaR: results clamp at ``±maxpos``, and nonzero
results below ``minpos`` clamp at ``±minpos``.
"""

from __future__ import annotations

from fractions import Fraction

from ..posit.decode import decode
from ..posit.encode import encode_exact
from ..posit.format import PositFormat
from .accumulator import ExactAccumulator
from .emac_base import Emac

__all__ = ["PositEmac"]


class PositEmac(Emac):
    """Exact MAC over :class:`~repro.posit.format.PositFormat` patterns."""

    pipeline_depth = 4  # decode, multiply, shift/accumulate, round/encode

    def __init__(self, fmt: PositFormat):
        self.fmt = fmt
        # Quire LSB: the smallest bit of an aligned significand product.
        # Aligned significands have max_fraction_bits fraction bits at scale
        # >= min_scale, so products bottom out at
        # 2**(2 * (min_scale - max_fraction_bits)).
        self._quire = ExactAccumulator(
            lsb_exponent=2 * (fmt.min_scale - fmt.max_fraction_bits)
        )
        self.reset()

    @property
    def width(self) -> int:
        """Input width ``n``."""
        return self.fmt.n

    @property
    def name(self) -> str:
        """Format identifier."""
        return "posit"

    @property
    def scale_bias(self) -> int:
        """The Algorithm 2 scale-factor bias, ``2**(es+1) * (n-2)``."""
        return self.fmt.scale_bias

    # ------------------------------------------------------------------
    def reset(self, bias_bits: int | None = None) -> None:
        """Clear the quire; optionally preload a bias pattern."""
        self._quire.reset(0)
        if bias_bits is None:
            return
        d = decode(self.fmt, bias_bits)
        if d.is_nar:
            raise ValueError("bias must be a real posit (NaR rejected)")
        if d.is_zero:
            return
        sig = d.significand_fixed  # aligned to max_fraction_bits
        term = -sig if d.sign else sig
        self._quire.reset(
            term << self._term_shift(d.scale - self.fmt.max_fraction_bits)
        )

    def _term_shift(self, exponent: int) -> int:
        """Shift aligning a term of weight ``2**exponent`` to the quire LSB.

        Equals the Algorithm 2 biased shift: for a product with scale factor
        ``sf``, ``exponent = sf - 2*max_fraction_bits`` and the shift is
        ``sf + 2*max_scale = sf + scale_bias`` -- always >= 0.
        """
        return exponent - self._quire.lsb_exponent

    def step(self, weight_bits: int, activation_bits: int) -> None:
        """One Algorithm 2 iteration: decode, multiply, shift, accumulate."""
        dw = decode(self.fmt, weight_bits)
        da = decode(self.fmt, activation_bits)
        if dw.is_nar or da.is_nar:
            raise ValueError("EMAC inputs must be real posits (paper Section III-D)")
        if dw.is_zero or da.is_zero:
            self._quire.add_term(0, self._quire.lsb_exponent)
            return
        # Multiplication stage.
        sign_mult = dw.sign ^ da.sign
        frac_mult = dw.significand_fixed * da.significand_fixed
        sf_mult = dw.scale + da.scale  # scale of the hidden-bit position
        # Accumulation stage: fracs_mult shifted by the biased scale factor.
        exponent = sf_mult - 2 * self.fmt.max_fraction_bits
        sf_biased = self._term_shift(exponent)
        assert sf_biased >= 0, "biased scale factor must be non-negative"
        self._quire.add_term(-frac_mult if sign_mult else frac_mult, exponent)

    def result(self) -> int:
        """Convergent rounding & encoding of the quire (single rounding)."""
        sign, mag = self._quire.sign_and_magnitude()
        if mag == 0:
            return self.fmt.zero_pattern
        return encode_exact(self.fmt, sign, mag, self._quire.lsb_exponent)

    def accumulator_value(self) -> Fraction:
        """Exact value held in the quire."""
        return self._quire.to_fraction()

    def quire_bits_used(self) -> int:
        """Two's-complement width of the current quire contents (vs eq. (4))."""
        return self._quire.bits_used()
