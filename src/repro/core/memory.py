"""Local parameter memory model.

Deep Positron stores each layer's weights and biases in dedicated on-chip
memory blocks next to the EMACs, avoiding off-chip DRAM accesses during
inference (paper Section III-E; the introduction's 128 W DRAM estimate is
the motivating counterexample).  This module sizes those memories and
converts them to Virtex-7 BRAM block counts for the resource reports.
"""

from __future__ import annotations

from dataclasses import dataclass
import math

__all__ = ["LayerMemory", "BRAM_KBITS"]

#: Capacity of one Virtex-7 block RAM tile in kilobits (RAMB18).
BRAM_KBITS = 18


@dataclass(frozen=True)
class LayerMemory:
    """Parameter storage of one layer.

    Attributes
    ----------
    weight_words / bias_words:
        Number of stored parameters.
    word_bits:
        Width of each word — the format width ``n``.
    """

    weight_words: int
    bias_words: int
    word_bits: int

    @classmethod
    def for_layer(cls, out_features: int, in_features: int, word_bits: int) -> "LayerMemory":
        """Memory for a dense ``(out, in)`` layer with per-neuron biases."""
        if out_features < 1 or in_features < 1:
            raise ValueError("layer dimensions must be positive")
        if word_bits < 1:
            raise ValueError("word width must be positive")
        return cls(
            weight_words=out_features * in_features,
            bias_words=out_features,
            word_bits=word_bits,
        )

    @property
    def total_words(self) -> int:
        """All stored parameters."""
        return self.weight_words + self.bias_words

    @property
    def total_bits(self) -> int:
        """Total storage in bits."""
        return self.total_words * self.word_bits

    @property
    def bram_blocks(self) -> int:
        """RAMB18 tiles needed (capacity-bound estimate)."""
        return max(1, math.ceil(self.total_bits / (BRAM_KBITS * 1024)))

    def __add__(self, other: "LayerMemory") -> "LayerMemory":
        if self.word_bits != other.word_bits:
            raise ValueError("cannot add memories of different word widths")
        return LayerMemory(
            weight_words=self.weight_words + other.weight_words,
            bias_words=self.bias_words + other.bias_words,
            word_bits=self.word_bits,
        )
