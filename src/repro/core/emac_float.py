"""Floating-point EMAC — the paper's Fig. 4 datapath.

Each input is decoded (with subnormal detection adjusting the hidden bit and
exponent), significands are multiplied exactly, and the signed product is
shifted into a fixed-point accumulator whose LSB sits at ``2**(2*min_scale)``
— the weight of the smallest possible product bit (two subnormal LSBs).
After the last accumulation the register is rounded once to the nearest
representable float (round-to-nearest-even) and clipped at the maximum
magnitude; the datapath never produces Inf or NaN.
"""

from __future__ import annotations

from fractions import Fraction

from ..floatp.codec import decode, encode_exact
from ..floatp.format import FloatFormat
from .accumulator import ExactAccumulator
from .emac_base import Emac

__all__ = ["FloatEmac"]


class FloatEmac(Emac):
    """Exact MAC over :class:`~repro.floatp.format.FloatFormat` patterns."""

    pipeline_depth = 3  # decode/multiply register, shift, accumulate register

    def __init__(self, fmt: FloatFormat):
        self.fmt = fmt
        # Smallest product bit: (subnormal LSB)^2 = 2**(2 * min_scale).
        self._acc = ExactAccumulator(lsb_exponent=2 * fmt.min_scale)
        self.reset()

    @property
    def width(self) -> int:
        """Input width ``n = 1 + we + wf``."""
        return self.fmt.n

    @property
    def name(self) -> str:
        """Format identifier."""
        return "float"

    # ------------------------------------------------------------------
    def reset(self, bias_bits: int | None = None) -> None:
        """Clear the accumulator; optionally preload a bias pattern."""
        self._acc.reset(0)
        if bias_bits is None:
            return
        d = decode(self.fmt, bias_bits)
        if d.is_reserved:
            raise ValueError("bias must be finite (no Inf/NaN in the datapath)")
        if d.significand == 0:
            return
        term = -d.significand if d.sign else d.significand
        self._acc.add_term(term, d.scale - self.fmt.wf)
        self._acc.reset(self._acc.raw)  # preload does not count as a product

    def step(self, weight_bits: int, activation_bits: int) -> None:
        """Decode, multiply exactly, shift into the accumulator."""
        dw = decode(self.fmt, weight_bits)
        da = decode(self.fmt, activation_bits)
        if dw.is_reserved or da.is_reserved:
            raise ValueError("EMAC inputs must be finite (paper Section III-C)")
        sig = dw.significand * da.significand
        if sig == 0:
            self._acc.add_term(0, self._acc.lsb_exponent)
            return
        sign = dw.sign ^ da.sign
        exponent = (dw.scale - self.fmt.wf) + (da.scale - self.fmt.wf)
        self._acc.add_term(-sig if sign else sig, exponent)

    def result(self) -> int:
        """Round the register once (RNE) and clamp at the max magnitude."""
        sign, mag = self._acc.sign_and_magnitude()
        if mag == 0:
            return 0
        return encode_exact(self.fmt, sign, mag, self._acc.lsb_exponent)

    def accumulator_value(self) -> Fraction:
        """Exact value held in the wide register."""
        return self._acc.to_fraction()

    def accumulator_bits_used(self) -> int:
        """Two's-complement width of the current contents (vs eq. (3))."""
        return self._acc.bits_used()
