"""Small-float backend: decode tables + batched IEEE-style RNE rounding.

``encode_from_quire_batch`` mirrors :func:`repro.floatp.codec.encode_exact`
tensor-wide: the kept significand window (normal or subnormal) is sliced out
of the normalized quire top, guard/sticky rounding is applied, and the
carry-out / overflow / subnormal cases are resolved with ``np.where`` chains
— bit-identical to the scalar encoder, including signed-zero underflow.
"""

from __future__ import annotations

from fractions import Fraction

import numpy as np

from ..floatp import tables as ft
from ..floatp.codec import decode as float_decode, encode_exact, encode_fraction
from ..floatp.format import FloatFormat
from .base import LimbTables, NumericFormat
from .quire import (
    NormalizedQuire,
    bit_length_int64,
    check_rounding_mode,
    normalize_quire_limbs,
    round_kept_bits,
    words_as_quire,
)

__all__ = ["FloatBackend"]


class FloatBackend(NumericFormat):
    """Backend over a :class:`~repro.floatp.format.FloatFormat`."""

    family = "float"

    def __init__(self, fmt: FloatFormat):
        if not isinstance(fmt, FloatFormat):
            raise TypeError(f"FloatBackend needs a FloatFormat, got {type(fmt).__name__}")
        super().__init__(fmt)

    @property
    def name(self) -> str:
        """Canonical registry name ``float{we}_{wf}``."""
        return f"float{self.fmt.we}_{self.fmt.wf}"

    @property
    def quire_lsb_exponent(self) -> int:
        """Product of two subnormal LSBs, ``2**(2 * min_scale)``."""
        return 2 * self.fmt.min_scale

    # ------------------------------------------------------------------
    def limb_tables(self) -> LimbTables:
        return self._memo("_limb_tables", self._build_limb_tables)

    def _build_limb_tables(self) -> LimbTables:
        fmt = self.fmt
        t = ft.tables_for(fmt)
        sign = t.sign.astype(np.int64)
        signed_sig = np.where(sign == 1, -t.significand, t.significand)
        shift = (t.scale.astype(np.int64) - (1 - fmt.bias)).clip(min=0)
        return LimbTables(
            signed_sig=signed_sig,
            shift=shift,
            invalid=t.is_reserved,
            relu=t.relu.astype(np.int64),
            float_value=t.float_value,
            max_shift=2 * (fmt.max_scale - (1 - fmt.bias)),
            sig_bits=fmt.wf + 1,
            # Input value = sig * 2**(scale - wf); over the quire LSB:
            # (scale - (1-bias)) + ((1-bias) - wf - 2*min_scale).
            bias_extra_shift=(1 - fmt.bias) - fmt.wf - 2 * fmt.min_scale,
        )

    def quantize_batch(self, values: np.ndarray) -> np.ndarray:
        return ft.quantize_array(self.fmt, values)

    def decode_batch(self, patterns: np.ndarray) -> np.ndarray:
        return ft.dequantize_array(self.fmt, patterns)

    def relu_batch(self, patterns: np.ndarray) -> np.ndarray:
        t = ft.tables_for(self.fmt)
        return t.relu[np.asarray(patterns, dtype=np.int64)].astype(np.uint32)

    # ------------------------------------------------------------------
    def encode_from_quire_batch(
        self, limbs: np.ndarray, *, mode: str = "rne"
    ) -> np.ndarray:
        return self._encode_normalized(normalize_quire_limbs(limbs), mode)

    def encode_from_quire_words(
        self, words: np.ndarray, *, mode: str = "rne"
    ) -> np.ndarray:
        return self._encode_normalized(words_as_quire(words), mode)

    def _encode_normalized(
        self, q: NormalizedQuire, mode: str = "rne"
    ) -> np.ndarray:
        check_rounding_mode(mode)
        fmt = self.fmt
        one = np.int64(1)
        scale = self.quire_lsb_exponent + q.total_bits - 1
        sign_term = np.where(q.sign, one << (fmt.n - 1), np.int64(0))
        max_pattern = (fmt.expmax << fmt.wf) | ((1 << fmt.wf) - 1)

        # Hidden bit normalized to position 62 (63-bit magnitude window).
        norm = q.top << (63 - np.maximum(q.top_bits, one))

        # Kept significand width: wf+1 for normals, pinned at the subnormal
        # grid near the bottom; <= 0 means the value is below half an ULP of
        # the smallest subnormal's MSB position.
        lsb_exp = np.maximum(scale - fmt.wf, fmt.min_scale)
        kept_width = scale - lsb_exp + 1
        kept = np.where(kept_width >= 1, norm >> np.clip(63 - kept_width, 0, 63), one * 0)
        guard_pos = np.clip(62 - kept_width, 0, 63)
        guard = (norm >> guard_pos) & 1
        sticky = ((norm & ((one << np.clip(guard_pos, 0, 62)) - 1)) != 0) | q.sticky
        rounded = round_kept_bits(kept, guard, sticky, mode)

        rounded_bits = bit_length_int64(rounded)
        subnormal = (lsb_exp == fmt.min_scale) & (rounded_bits <= fmt.wf)
        # Normal result: renormalize (rounding may have carried out; the
        # narrowing shift is then exact because the low bits are zero).
        new_scale = lsb_exp + rounded_bits - 1
        align = rounded_bits - (fmt.wf + 1)
        sig = np.where(
            align > 0,
            rounded >> np.clip(align, 0, 63),
            rounded << np.clip(-align, 0, 63),
        )
        frac = sig & ((1 << fmt.wf) - 1)
        normal_pattern = ((new_scale + fmt.bias) << fmt.wf) | frac

        pattern = np.where(subnormal, rounded, normal_pattern)
        pattern = np.where(new_scale > fmt.max_scale, np.int64(max_pattern), pattern)
        pattern = np.where(scale > fmt.max_scale, np.int64(max_pattern), pattern)
        pattern = np.where(rounded == 0, np.int64(0), pattern)
        pattern = pattern + sign_term  # signed zero included, as in the scalar
        pattern = np.where(q.is_zero, np.int64(0), pattern)
        return pattern.astype(np.uint32)

    def encode_from_quire_scalar(self, quire: int) -> int:
        if quire == 0:
            return 0
        sign, mag = (1, -quire) if quire < 0 else (0, quire)
        return encode_exact(self.fmt, sign, mag, self.quire_lsb_exponent)

    def truncate_scalar(self, value: Fraction) -> int:
        """Round toward zero: step the RNE result's magnitude down if it overshot."""
        if value == 0:
            return 0
        fmt = self.fmt
        bits = encode_fraction(fmt, value)
        got = float_decode(fmt, bits).to_fraction()
        if abs(got) > abs(value):
            sign = bits & fmt.sign_mask
            mag = bits & ~fmt.sign_mask & fmt.mask
            mag = max(0, mag - 1)
            bits = sign | mag
        return bits

    # ------------------------------------------------------------------
    def make_engine(self):
        from ..core.vector import FloatVectorEngine

        return FloatVectorEngine(self.fmt)

    def make_scalar_emac(self):
        from ..core.emac_float import FloatEmac

        return FloatEmac(self.fmt)
