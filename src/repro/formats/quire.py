"""Batched quire normalization for the vectorized round-once path.

The vector engines accumulate every (sample, neuron) dot product as
unnormalized base-``2**LIMB_BITS`` limbs (see :mod:`repro.core.accumulator`).
The seed implementation reconstituted each quire as a Python big integer and
rounded it with the scalar encoder — a per-(sample, neuron) Python loop that
dominated engine runtime.  This module replaces that loop with whole-tensor
numpy:

1. carry-propagate the limbs into canonical non-negative digits plus a final
   sign carry (the headroom limb guarantees the carry is 0 or -1);
2. two's-complement negative quires back to magnitudes, digit-wise;
3. extract the top three limbs around the highest nonzero digit into a
   single int64 ``top`` (<= 60 bits — more than any n <= 16 format needs to
   round correctly) plus an exact ``sticky`` flag for every bit below.

The resulting :class:`NormalizedQuire` carries everything a format backend
needs to finish round-to-nearest-even without ever leaving numpy: the value
of each quire is ``(-1)**sign * ((top << shift) + low) * 2**lsb_exponent``
with ``low != 0`` iff ``sticky``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "LIMB_BITS",
    "ROUNDING_MODES",
    "NormalizedQuire",
    "arithmetic_shift_round",
    "check_rounding_mode",
    "normalize_quire_limbs",
    "round_kept_bits",
    "words_as_quire",
    "bit_length_int64",
]

#: Rounding modes of the round-once output stage.  ``"rne"`` is the paper's
#: recommended round-to-nearest-even (for fixed point it names the paper's
#: native Fig. 3 floor stage); ``"rtz"`` rounds toward zero — the truncated
#: EMAC of the Section III-A ablation.
ROUNDING_MODES = ("rne", "rtz")


def check_rounding_mode(mode: str) -> str:
    """Validate (and return) a rounding-mode string."""
    if mode not in ROUNDING_MODES:
        raise ValueError(
            f"unknown rounding mode {mode!r} (expected one of {ROUNDING_MODES})"
        )
    return mode


def arithmetic_shift_round(values, shift: int, mode: str = "rne"):
    """Fixed-point output shift of signed int64 ``values`` by ``shift`` bits.

    ``"rne"`` names the paper's native Fig. 3 stage — an arithmetic shift
    right, i.e. floor; ``"rtz"`` floors the magnitude instead (round
    toward zero).  The single definition keeps the fixed backend, its
    engine, and its compiled kernel bit-identical by construction.
    """
    check_rounding_mode(mode)
    if mode == "rne":
        return values >> shift
    return np.where(values < 0, -((-values) >> shift), values >> shift)


def round_kept_bits(kept, guard, sticky, mode: str = "rne"):
    """Batched final rounding of a truncated pattern-space magnitude.

    ``kept`` holds the magnitude bits that fit the output format, ``guard``
    the first dropped bit, and ``sticky`` whether any lower magnitude bit is
    set (int or bool arrays; all elementwise).  RNE applies the classic
    ``guard AND (lsb OR sticky)`` increment; RTZ keeps the truncation —
    round toward zero *is* dropping the guard/sticky tail of a magnitude.
    """
    check_rounding_mode(mode)
    if mode == "rtz":
        return kept
    return kept + (guard & ((kept & 1) | sticky))

#: Width of one vector-engine limb.  Terms are ``product << (shift % LIMB_BITS)``
#: with products below 2**12 at the paper's widths, so per-limb partial sums
#: stay far below 2**53 and remain exact even through float64 staging.
#: (Canonical definition; :mod:`repro.core.accumulator` re-exports it.)
LIMB_BITS = 20

_LIMB_MASK = (1 << LIMB_BITS) - 1

#: Limbs gathered into ``top``; 3 * LIMB_BITS = 60 bits fits int64 and
#: covers the widest rounding window any n <= 16 format requires.
_TOP_LIMBS = 3


@dataclass(frozen=True)
class NormalizedQuire:
    """Sign/magnitude view of a batch of exact quires.

    Each quire's magnitude is ``(top << shift) + low`` where ``low`` is a
    discarded tail below the top three limbs: ``low < 2**shift`` and
    ``low != 0`` iff ``sticky``.  All arrays share the batch shape.
    """

    sign: np.ndarray  # bool
    top: np.ndarray  # int64, < 2**60; 0 iff the quire is zero
    top_bits: np.ndarray  # int64, bit length of ``top``
    shift: np.ndarray  # int64, weight (in bits) of ``top``'s LSB
    sticky: np.ndarray  # bool, any magnitude bit below ``top``
    is_zero: np.ndarray  # bool

    @property
    def total_bits(self) -> np.ndarray:
        """Bit length of each quire magnitude."""
        return self.top_bits + self.shift


def bit_length_int64(x: np.ndarray) -> np.ndarray:
    """Elementwise ``int.bit_length`` for non-negative int64 arrays.

    ``frexp`` gives the bit length of the float64-rounded value; values just
    below a power of two can round up and report one bit too many, so the
    estimate is checked against the integer and corrected.
    """
    v = np.asarray(x, dtype=np.int64)
    _, e = np.frexp(v.astype(np.float64))
    e = e.astype(np.int64)
    over = (v >> np.clip(e - 1, 0, 63)) == 0
    return np.where(v > 0, e - over, 0)


def words_as_quire(words: np.ndarray) -> NormalizedQuire:
    """Sign/magnitude view of *single-word* exact quires.

    Each int64 ``word`` is a whole quire value in quire-LSB units
    (``|word| < 2**62`` so the magnitude keeps a headroom bit).  The
    compiled layer kernels use this when the weights prove every possible
    accumulation fits one word: no limb normalization, no sticky tail —
    the magnitude *is* the exact ``top``.
    """
    w = np.asarray(words, dtype=np.int64)
    sign = w < 0
    mag = np.where(sign, -w, w)
    return NormalizedQuire(
        sign=sign,
        top=mag,
        top_bits=bit_length_int64(mag),
        shift=np.zeros(w.shape, dtype=np.int64),
        sticky=np.zeros(w.shape, dtype=bool),
        is_zero=w == 0,
    )


def normalize_quire_limbs(limbs: np.ndarray) -> NormalizedQuire:
    """Normalize unnormalized int64 limb vectors along the last axis.

    ``limbs[..., i]`` carries weight ``2**(i * LIMB_BITS)``; entries may be
    negative or exceed the limb radix.  The represented integers must fit in
    the given limbs with at least one limb of sign headroom (guaranteed by
    the engines' ``_num_limbs`` sizing).
    """
    digits = np.asarray(limbs, dtype=np.int64)
    if digits.shape[-1] < _TOP_LIMBS:
        pad = [(0, 0)] * (digits.ndim - 1) + [(0, _TOP_LIMBS - digits.shape[-1])]
        digits = np.pad(digits, pad)
    else:
        digits = digits.copy()
    num = digits.shape[-1]

    # Carry propagation: canonical digits in [0, 2**LIMB_BITS) + sign carry.
    carry = np.zeros(digits.shape[:-1], dtype=np.int64)
    for i in range(num):
        v = digits[..., i] + carry
        digits[..., i] = v & _LIMB_MASK
        carry = v >> LIMB_BITS
    if np.any((carry != 0) & (carry != -1)):
        raise OverflowError("quire exceeds its limb allocation")
    sign = carry < 0

    # Two's-complement negatives back to magnitude digits.
    if np.any(sign):
        inc = np.ones(digits.shape[:-1], dtype=np.int64)
        neg = np.empty_like(digits)
        for i in range(num):
            v = (_LIMB_MASK - digits[..., i]) + inc
            neg[..., i] = v & _LIMB_MASK
            inc = v >> LIMB_BITS
        digits = np.where(sign[..., None], neg, digits)

    nonzero = digits != 0
    is_zero = ~nonzero.any(axis=-1)
    # Highest nonzero digit; all-zero rows are pinned to 0 so every derived
    # field (top, shift, sticky) comes out canonical for them.
    high = (num - 1) - np.argmax(nonzero[..., ::-1], axis=-1)
    high = np.where(is_zero, 0, high)
    anchor = np.maximum(high, _TOP_LIMBS - 1)

    gather = anchor[..., None] - np.arange(_TOP_LIMBS - 1, -1, -1)
    window = np.take_along_axis(digits, gather, axis=-1)  # little-endian
    top = np.zeros(digits.shape[:-1], dtype=np.int64)
    for i in range(_TOP_LIMBS - 1, -1, -1):
        top = (top << LIMB_BITS) | window[..., i]

    # Sticky: any nonzero digit strictly below the gathered window.
    below = anchor - (_TOP_LIMBS - 1)
    counts = np.cumsum(nonzero, axis=-1)
    probe = np.clip(below - 1, 0, num - 1)
    low_counts = np.take_along_axis(counts, probe[..., None], axis=-1)[..., 0]
    sticky = (below > 0) & (low_counts > 0)

    return NormalizedQuire(
        sign=sign & ~is_zero,
        top=top,
        top_bits=bit_length_int64(top),
        shift=below * LIMB_BITS,
        sticky=sticky,
        is_zero=is_zero,
    )
