"""Posit backend: decode tables + batched Algorithm-2 convergent rounding.

``encode_from_quire_batch`` is the vectorized mirror of
:func:`repro.posit.encode.encode_exact`: the quire magnitude's top bits are
normalized so the hidden bit sits at a fixed position, the regime /
exponent / fraction body is assembled in pattern space with a padded
fraction window, and the classic ``guard AND (lsb OR sticky)`` increment is
applied to the truncated pattern — bit-identical to the scalar encoder by
construction (and by the property tests).
"""

from __future__ import annotations

from fractions import Fraction

import numpy as np

from ..posit import tables as pt
from ..posit.decode import decode as posit_decode
from ..posit.encode import encode_exact, encode_fraction
from ..posit.format import PositFormat
from .base import LimbTables, NumericFormat
from .quire import (
    NormalizedQuire,
    check_rounding_mode,
    normalize_quire_limbs,
    round_kept_bits,
    words_as_quire,
)

__all__ = ["PositBackend"]

#: Fraction bits carried into the pattern-space body below the exponent
#: field.  Must exceed ``n - 1`` so every dropped bit lands in guard/sticky;
#: 32 keeps the widest body (regime + es + window) well inside int64.
_FRAC_WINDOW = 32


class PositBackend(NumericFormat):
    """Backend over a :class:`~repro.posit.format.PositFormat`."""

    family = "posit"

    def __init__(self, fmt: PositFormat):
        if not isinstance(fmt, PositFormat):
            raise TypeError(f"PositBackend needs a PositFormat, got {type(fmt).__name__}")
        super().__init__(fmt)

    @property
    def name(self) -> str:
        """Canonical registry name ``posit{n}_{es}``."""
        return f"posit{self.fmt.n}_{self.fmt.es}"

    @property
    def quire_lsb_exponent(self) -> int:
        """Product of two minimum-scale aligned significands."""
        return 2 * (self.fmt.min_scale - self.fmt.max_fraction_bits)

    # ------------------------------------------------------------------
    def limb_tables(self) -> LimbTables:
        return self._memo("_limb_tables", self._build_limb_tables)

    def _build_limb_tables(self) -> LimbTables:
        fmt = self.fmt
        t = pt.tables_for(fmt)
        sign = t.sign.astype(np.int64)
        signed_sig = np.where(sign == 1, -t.significand, t.significand)
        shift = (t.scale.astype(np.int64) - fmt.min_scale) * ~(t.is_zero | t.is_nar)
        return LimbTables(
            signed_sig=signed_sig,
            shift=shift,
            invalid=t.is_nar,
            relu=t.relu.astype(np.int64),
            float_value=t.float_value,
            max_shift=4 * fmt.max_scale,  # (scale - min) * 2 at both maxima
            sig_bits=fmt.significand_bits,
            # An input value sig * 2**(scale - max_frac) sits this far above
            # the quire LSB beyond its own ``shift``.
            bias_extra_shift=fmt.max_fraction_bits - fmt.min_scale,
        )

    def quantize_batch(self, values: np.ndarray) -> np.ndarray:
        return pt.quantize_array(self.fmt, values)

    def decode_batch(self, patterns: np.ndarray) -> np.ndarray:
        return pt.dequantize_array(self.fmt, patterns)

    def relu_batch(self, patterns: np.ndarray) -> np.ndarray:
        t = pt.tables_for(self.fmt)
        return t.relu[np.asarray(patterns, dtype=np.int64)].astype(np.uint32)

    # ------------------------------------------------------------------
    def encode_from_quire_batch(
        self, limbs: np.ndarray, *, mode: str = "rne"
    ) -> np.ndarray:
        return self._encode_normalized(normalize_quire_limbs(limbs), mode)

    def encode_from_quire_words(
        self, words: np.ndarray, *, mode: str = "rne"
    ) -> np.ndarray:
        return self._encode_normalized(words_as_quire(words), mode)

    def _encode_normalized(
        self, q: NormalizedQuire, mode: str = "rne"
    ) -> np.ndarray:
        check_rounding_mode(mode)
        fmt = self.fmt
        scale = self.quire_lsb_exponent + q.total_bits - 1
        # Any magnitude bit below the leading one?
        leading = np.int64(1) << np.maximum(q.top_bits - 1, 0)
        frac_nonzero = q.sticky | (q.top != leading)

        # General path: hidden bit normalized to position 62.
        norm = q.top << (63 - np.maximum(q.top_bits, np.int64(1)))
        frac = norm & ((np.int64(1) << 62) - 1)
        frac_top = frac >> (62 - _FRAC_WINDOW)
        sticky = q.sticky | ((frac & ((np.int64(1) << (62 - _FRAC_WINDOW)) - 1)) != 0)

        # Regime / exponent fields in pattern space (paper Algorithm 2).
        if fmt.es:
            k = scale >> fmt.es
            e = scale - (k << fmt.es)
        else:
            k = scale
            e = np.zeros_like(scale)
        k_pos = np.clip(k, 0, fmt.n)  # clip keeps the dead branch's shift legal
        regime = np.where(k >= 0, ((np.int64(1) << (k_pos + 1)) - 1) << 1, np.int64(1))
        regime_width = np.where(k >= 0, k + 2, 1 - k)

        body = (((regime << fmt.es) | e) << _FRAC_WINDOW) | frac_top
        # Lanes with out-of-range scales are overwritten below; clipping just
        # keeps their dead-branch shift amounts legal for int64.
        cut = np.clip(regime_width + fmt.es + _FRAC_WINDOW - (fmt.n - 1), 1, 63)
        pattern = body >> cut
        guard = (body >> (cut - 1)) & 1
        sticky_bit = ((body & ((np.int64(1) << (cut - 1)) - 1)) != 0) | sticky
        pattern = round_kept_bits(pattern, guard, sticky_bit, mode)
        pattern = np.minimum(pattern, fmt.maxpos_pattern)

        if mode == "rne":
            # RNE never produces zero from a nonzero value (posit standard:
            # round-down saturates at minpos) ...
            pattern = np.where(
                pattern == 0, np.int64(fmt.minpos_pattern), pattern
            )
            # Saturation rules ahead of the general path.
            pattern = np.where(
                (scale == fmt.max_scale) & frac_nonzero,
                np.int64(fmt.maxpos_pattern),
                pattern,
            )
            pattern = np.where(
                scale > fmt.max_scale, np.int64(fmt.maxpos_pattern), pattern
            )
            pattern = np.where(
                scale < fmt.min_scale, np.int64(fmt.minpos_pattern), pattern
            )
        else:
            # ... while truncation toward zero *does*: |value| < minpos
            # floors to the zero pattern, |value| > maxpos to maxpos.
            pattern = np.where(
                scale > fmt.max_scale, np.int64(fmt.maxpos_pattern), pattern
            )
            pattern = np.where(scale < fmt.min_scale, np.int64(0), pattern)

        pattern = np.where(q.sign, ((1 << fmt.n) - pattern) & fmt.mask, pattern)
        pattern = np.where(q.is_zero, np.int64(fmt.zero_pattern), pattern)
        return pattern.astype(np.uint32)

    def encode_from_quire_scalar(self, quire: int) -> int:
        if quire == 0:
            return self.fmt.zero_pattern
        sign, mag = (1, -quire) if quire < 0 else (0, quire)
        return encode_exact(self.fmt, sign, mag, self.quire_lsb_exponent)

    def truncate_scalar(self, value: Fraction) -> int:
        """Round toward zero: walk the RNE result down one ULP if it overshot."""
        if value == 0:
            return self.fmt.zero_pattern
        fmt = self.fmt
        bits = encode_fraction(fmt, value)
        got = posit_decode(fmt, bits).to_fraction()
        if abs(got) > abs(value):
            signed = bits - (1 << fmt.n) if bits & fmt.sign_mask else bits
            signed += -1 if value > 0 else 1
            bits = signed % (1 << fmt.n)
            if bits == fmt.nar_pattern:
                bits = 0
        return bits

    # ------------------------------------------------------------------
    def make_engine(self):
        from ..core.vector import PositVectorEngine

        return PositVectorEngine(self.fmt)

    def make_scalar_emac(self):
        from ..core.emac_posit import PositEmac

        return PositEmac(self.fmt)
