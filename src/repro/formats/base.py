"""The ``NumericFormat`` backend protocol.

Every number system the EMAC architecture supports is wrapped in one
:class:`NumericFormat` backend that bundles, behind a uniform interface,
everything the rest of the library needs:

* **metadata** — family string, canonical registry name, label, width;
* **decode tables** (:class:`LimbTables`) feeding the limb-accumulating
  vector engine, or ``None`` for formats with an exact int64 matmul path;
* **batched kernels** — ``quantize_batch`` / ``decode_batch`` /
  ``relu_batch`` and the fully vectorized ``encode_from_quire_batch``
  round-once output stage;
* **factories** for the vectorized engine and the scalar reference EMAC
  (imported lazily so ``repro.formats`` never depends on ``repro.core`` at
  import time);
* **scalar reference hooks** (``encode_from_quire_scalar``,
  ``truncate_scalar``) used by property tests, microbenchmark baselines,
  and the rounding-mode ablations.

Adding a number system to the library means implementing this class and
registering it once (:func:`repro.formats.register_family`); no call site
dispatches on concrete format types anymore.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from fractions import Fraction

import numpy as np

__all__ = ["LimbTables", "NumericFormat"]


@dataclass(frozen=True)
class LimbTables:
    """Per-pattern decode tables consumed by the limb vector engine.

    Indexed by bit pattern.  ``signed_sig`` is the signed aligned
    significand (the EMAC multiplier input with its sign applied) and
    ``shift`` the non-negative alignment ``scale - min_scale``; a product
    term contributes ``signed_sig_w * signed_sig_a`` at quire bit position
    ``shift_w + shift_a``.
    """

    signed_sig: np.ndarray  # int64
    shift: np.ndarray  # int64, >= 0
    invalid: np.ndarray  # bool: patterns the datapath must never see
    relu: np.ndarray  # int64 pattern map
    float_value: np.ndarray  # float64
    max_shift: int  # largest shift_w + shift_a
    sig_bits: int  # aligned significand width
    bias_extra_shift: int  # aligns a single input (not product) to the quire


class NumericFormat(ABC):
    """Uniform backend over one concrete number-system format descriptor."""

    #: Family identifier, e.g. ``"posit"`` — shared by all widths/configs.
    family: str

    def __init__(self, fmt: object):
        self.fmt = fmt

    # -- metadata -------------------------------------------------------
    @property
    @abstractmethod
    def name(self) -> str:
        """Canonical registry name, e.g. ``posit8_1``."""

    @property
    def label(self) -> str:
        """Human-readable identifier, e.g. ``posit<8,1>``."""
        return str(self.fmt)

    @property
    def width(self) -> int:
        """Total pattern width in bits."""
        return self.fmt.n

    @property
    @abstractmethod
    def quire_lsb_exponent(self) -> int:
        """Power-of-two weight of the exact accumulator's LSB."""

    # -- memoization ----------------------------------------------------
    def _memo(self, key: str, build):
        """Instance-level memo: backends are registry-cached per format
        key, so anything stored here is shared by every consumer."""
        value = self.__dict__.get(key)
        if value is None:
            value = self.__dict__[key] = build()
        return value

    # -- vectorized kernels ---------------------------------------------
    def limb_tables(self) -> LimbTables | None:
        """Decode tables for the limb engine; ``None`` if not table-driven."""
        return None

    def compile_layer(
        self, weights, bias=None, *, chunk_elements=None, rounding_mode="rne"
    ):
        """Compile ``(weights, bias)`` into a reusable :class:`LayerKernel`.

        Table-driven formats get the stacked digit-plane GEMM kernel (see
        :mod:`repro.formats.kernels`); families without limb tables fall
        back to a kernel that defers to their engine's ``dot`` — override
        for a format-specific compiled path (fixed point does).
        ``rounding_mode`` selects the round-once output stage: ``"rne"``
        (default) or ``"rtz"`` (round toward zero, the truncated-EMAC
        ablation) — carried through every kernel fast path.
        """
        from .kernels import DotLayerKernel, TableLayerKernel

        if self.limb_tables() is not None:
            return TableLayerKernel(
                self,
                weights,
                bias,
                chunk_elements=chunk_elements,
                rounding_mode=rounding_mode,
            )
        return DotLayerKernel(self, weights, bias, rounding_mode=rounding_mode)

    def compile_network(
        self,
        layers,
        *,
        rounding_mode="rne",
        layer_kernels=None,
        force_path=None,
    ):
        """Compile a whole layer stack into one fused network plan.

        ``layers`` is a sequence of ``(weights, bias, activation)`` triples;
        the resulting :class:`~repro.formats.network.NetworkKernel` chains
        every layer through fused round-once / pattern-ReLU / operand-gather
        epilogues and picks an integer fast path per layer shape (see
        :mod:`repro.formats.network`).  Pass the already compiled per-layer
        kernels via ``layer_kernels`` to let fallback layers reuse them.
        """
        from .network import NetworkKernel

        return NetworkKernel(
            self,
            layers,
            rounding_mode=rounding_mode,
            layer_kernels=layer_kernels,
            force_path=force_path,
        )

    def rank_table(self) -> np.ndarray:
        """Monotone int64 rank per pattern: ``rank[p] < rank[q]`` iff
        ``value[p] < value[q]`` and equal values share a rank.

        Lets readout argmax run in pattern space (no float64 decode of the
        readout rows) with results identical to argmaxing decoded values —
        equal ranks for equal values keep tie-breaking (first index wins)
        the same.  Invalid patterns rank lowest; the datapath never emits
        them.
        """

        def build():
            values = self.decode_batch(
                np.arange(1 << self.width, dtype=np.uint32)
            )
            vals = np.where(np.isfinite(values), values, -np.inf)
            return np.searchsorted(np.unique(vals), vals).astype(np.int64)

        return self._memo("_rank_table", build)

    @abstractmethod
    def quantize_batch(self, values: np.ndarray) -> np.ndarray:
        """float64 array -> nearest patterns (uint32), bit-exact RNE."""

    @abstractmethod
    def decode_batch(self, patterns: np.ndarray) -> np.ndarray:
        """Patterns -> float64 values."""

    @abstractmethod
    def relu_batch(self, patterns: np.ndarray) -> np.ndarray:
        """Elementwise ReLU on patterns (negatives -> zero pattern)."""

    @abstractmethod
    def encode_from_quire_batch(
        self, limbs: np.ndarray, *, mode: str = "rne"
    ) -> np.ndarray:
        """Round a ``(..., L)`` tensor of exact quire limbs to patterns.

        Limbs are unnormalized int64 digits of weight ``2**(i * LIMB_BITS)``
        over a quire whose LSB weighs ``2**quire_lsb_exponent``.  Returns a
        ``(...)`` uint32 pattern array, bit-identical to rounding each quire
        once with the scalar reference of the requested ``mode``: the
        scalar encoder for ``"rne"``, ``truncate_scalar`` for ``"rtz"``.
        """

    def encode_from_quire_words(
        self, words: np.ndarray, *, mode: str = "rne"
    ) -> np.ndarray:
        """Round exact *single-word* quires (int64 ``words`` of quire LSBs).

        The compiled layer kernels prove, per weight matrix, when every
        possible quire fits one int64 (see :mod:`repro.formats.kernels`);
        this entry point then skips limb normalization entirely.  The
        default routes through :meth:`encode_from_quire_batch`; table
        backends override it with a direct sign/magnitude encode.
        """
        words = np.asarray(words, dtype=np.int64)
        # Four limbs: |word| < 2**62 leaves the top limb as pure sign
        # extension, as normalization requires.
        limbs = np.zeros(words.shape + (4,), dtype=np.int64)
        limbs[..., 0] = words
        return self.encode_from_quire_batch(limbs, mode=mode)

    # -- scalar reference hooks -----------------------------------------
    @abstractmethod
    def encode_from_quire_scalar(self, quire: int) -> int:
        """Round one exact quire integer to a pattern (reference path)."""

    @abstractmethod
    def truncate_scalar(self, value: Fraction) -> int:
        """Round ``value`` toward zero to a pattern (ablation reference)."""

    # -- factories (lazy core imports; formats must not import core) ----
    def engine(self):
        """The shared memoized engine for this format.

        Engines are read-only once built (tables plus pure functions), so
        one instance per backend serves every consumer in a process —
        sweeps and pool workers stop rebuilding decode/digit tables per
        candidate config.  Use :meth:`make_engine` for a private instance.
        """
        return self._memo("_engine", self.make_engine)

    @abstractmethod
    def make_engine(self):
        """Vectorized EMAC engine for this format."""

    @abstractmethod
    def make_scalar_emac(self):
        """Reference scalar EMAC for this format."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.label})"
