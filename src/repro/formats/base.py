"""The ``NumericFormat`` backend protocol.

Every number system the EMAC architecture supports is wrapped in one
:class:`NumericFormat` backend that bundles, behind a uniform interface,
everything the rest of the library needs:

* **metadata** — family string, canonical registry name, label, width;
* **decode tables** (:class:`LimbTables`) feeding the limb-accumulating
  vector engine, or ``None`` for formats with an exact int64 matmul path;
* **batched kernels** — ``quantize_batch`` / ``decode_batch`` /
  ``relu_batch`` and the fully vectorized ``encode_from_quire_batch``
  round-once output stage;
* **factories** for the vectorized engine and the scalar reference EMAC
  (imported lazily so ``repro.formats`` never depends on ``repro.core`` at
  import time);
* **scalar reference hooks** (``encode_from_quire_scalar``,
  ``truncate_scalar``) used by property tests, microbenchmark baselines,
  and the rounding-mode ablations.

Adding a number system to the library means implementing this class and
registering it once (:func:`repro.formats.register_family`); no call site
dispatches on concrete format types anymore.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from fractions import Fraction

import numpy as np

__all__ = ["LimbTables", "NumericFormat"]


@dataclass(frozen=True)
class LimbTables:
    """Per-pattern decode tables consumed by the limb vector engine.

    Indexed by bit pattern.  ``signed_sig`` is the signed aligned
    significand (the EMAC multiplier input with its sign applied) and
    ``shift`` the non-negative alignment ``scale - min_scale``; a product
    term contributes ``signed_sig_w * signed_sig_a`` at quire bit position
    ``shift_w + shift_a``.
    """

    signed_sig: np.ndarray  # int64
    shift: np.ndarray  # int64, >= 0
    invalid: np.ndarray  # bool: patterns the datapath must never see
    relu: np.ndarray  # int64 pattern map
    float_value: np.ndarray  # float64
    max_shift: int  # largest shift_w + shift_a
    sig_bits: int  # aligned significand width
    bias_extra_shift: int  # aligns a single input (not product) to the quire


class NumericFormat(ABC):
    """Uniform backend over one concrete number-system format descriptor."""

    #: Family identifier, e.g. ``"posit"`` — shared by all widths/configs.
    family: str

    def __init__(self, fmt: object):
        self.fmt = fmt

    # -- metadata -------------------------------------------------------
    @property
    @abstractmethod
    def name(self) -> str:
        """Canonical registry name, e.g. ``posit8_1``."""

    @property
    def label(self) -> str:
        """Human-readable identifier, e.g. ``posit<8,1>``."""
        return str(self.fmt)

    @property
    def width(self) -> int:
        """Total pattern width in bits."""
        return self.fmt.n

    @property
    @abstractmethod
    def quire_lsb_exponent(self) -> int:
        """Power-of-two weight of the exact accumulator's LSB."""

    # -- vectorized kernels ---------------------------------------------
    def limb_tables(self) -> LimbTables | None:
        """Decode tables for the limb engine; ``None`` if not table-driven."""
        return None

    @abstractmethod
    def quantize_batch(self, values: np.ndarray) -> np.ndarray:
        """float64 array -> nearest patterns (uint32), bit-exact RNE."""

    @abstractmethod
    def decode_batch(self, patterns: np.ndarray) -> np.ndarray:
        """Patterns -> float64 values."""

    @abstractmethod
    def relu_batch(self, patterns: np.ndarray) -> np.ndarray:
        """Elementwise ReLU on patterns (negatives -> zero pattern)."""

    @abstractmethod
    def encode_from_quire_batch(self, limbs: np.ndarray) -> np.ndarray:
        """Round a ``(..., L)`` tensor of exact quire limbs to patterns.

        Limbs are unnormalized int64 digits of weight ``2**(i * LIMB_BITS)``
        over a quire whose LSB weighs ``2**quire_lsb_exponent``.  Returns a
        ``(...)`` uint32 pattern array, bit-identical to rounding each quire
        once with the scalar encoder.
        """

    # -- scalar reference hooks -----------------------------------------
    @abstractmethod
    def encode_from_quire_scalar(self, quire: int) -> int:
        """Round one exact quire integer to a pattern (reference path)."""

    @abstractmethod
    def truncate_scalar(self, value: Fraction) -> int:
        """Round ``value`` toward zero to a pattern (ablation reference)."""

    # -- factories (lazy core imports; formats must not import core) ----
    @abstractmethod
    def make_engine(self):
        """Vectorized EMAC engine for this format."""

    @abstractmethod
    def make_scalar_emac(self):
        """Reference scalar EMAC for this format."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.label})"
