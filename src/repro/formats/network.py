"""Fused-epilogue network kernels: whole-network compiled inference plans.

The per-layer kernels (:mod:`repro.formats.kernels`) already collapse each
layer's exact accumulation to one GEMM, but a network forward still pays a
full generic epilogue at every layer boundary: the quire words run through
the ~30-operation ``encode_from_quire_words`` rounding chain, ReLU is a
separate gather pass, the next layer re-validates every activation pattern
(three whole-tensor reductions) and re-gathers digit planes from scratch.
Profiling a paper-sized posit8 network shows that epilogue machinery — not
the GEMMs — dominates the forward.

A :class:`NetworkKernel` compiles a whole layer stack into one chained
plan in which intermediate activations never materialize beyond their
patterns (and usually not even as patterns — see *operand fusion* below):

* **Round-table epilogue.** In single-word mode every layer output is an
  exact int64 quire ``word``, and rounding is a monotone step function of
  it.  At compile time the step function's breakpoints are found by binary
  search *against the backend's own encoder* (:func:`round_table`), so the
  whole round-once stage becomes one ``searchsorted`` over at most
  ``2**n + 1`` int64 thresholds plus one table gather — bit-identical to
  ``encode_from_quire_words`` by construction, for both rounding modes.
* **Operand fusion.** The gather does not produce patterns and stop: the
  slot table is pre-composed with this layer's pattern-space ReLU map and
  with whatever representation the *next* layer consumes (its exact int64
  aligned values, its pattern indices, or nothing but a rank for the
  readout).  Round-once -> ReLU -> next layer's operand gather is a single
  ``searchsorted`` + ``take`` into the next layer's preallocated
  activation buffer.
* **Fused readout.** ``predict`` composes the last layer's slot table with
  the format's monotone rank table, so classification is
  ``argmax(searchsorted(...))`` — no float64 decode, no pattern
  materialization for the readout rows.
* **Inputs are validated once** per forward call, not once per layer.

Per-layer integer fast paths
----------------------------
Each layer's *words computation* is chosen per shape at compile time from
the eligible candidates, by actually timing them on a synthetic batch
(decisions are cached per ``(backend, mode, shape)`` for the process):

``plane``
    The per-layer kernels' plane-major stage: one float64 BLAS GEMM per
    live activation digit plane against the exact float64 weight values.
    Eligible when the layer is single-word and the weights are narrow
    (``w_bits + LIMB_BITS + log2(in) <= 53``).
``int64``
    A native int64 matmul: activations as exact aligned int64 values
    (one gather, usually pre-fused into the previous epilogue),
    ``A @ W.T`` in integer dtype.  Exact and overflow-free whenever the
    layer's quire bound fits int64: every product and every partial sum
    is bounded by ``max_row sum|w| * max|a| < 2**62``.  This replaces the
    limb-in-float64 trick wherever the single-word bound already holds.
``product``
    A product-rank gather for narrow fan-ins: the registry-memoized
    ``(2**n, 2**n)`` *exact* product table (int64 products in quire-LSB
    units — the exact-path sibling of the ablation layer's rounded
    product table) is pre-gathered per input column, and
    ``word[b, o] = sum_i table_i[a_bi, o]`` needs no digit decomposition
    at all.  Eligible for table formats whose full product range fits
    int64 and whose fan-in is small.
``layer``
    Fallback: the compiled per-layer kernel plus a composed epilogue
    gather.  Used when the quire bound exceeds int64 (pathological
    weights) and for custom formats without limb tables.  Fixed point
    compiles to its native int64 matmul with the shift-round epilogue
    inlined (its clipped signed outputs *are* monotone ranks, so the
    fused readout is a plain argmax).

Exactness: all three fast paths compute the same exact int64 quire word,
then share the same oracle-derived round table — so they are bit-identical
to each other, to the per-layer kernels, and to the scalar EMACs
(property-tested across every registered format, both rounding modes, and
every forced path in ``tests/formats/test_network_kernel.py``).

Obtain plans through :meth:`repro.formats.NumericFormat.compile_network`
(or ``PositronNetwork.network_kernel()``, which recompiles automatically
when a layer is recompiled); ``explain()`` reports the per-layer decision,
candidate timings, and compiled-table footprint — surfaced as
``python -m repro formats --explain DATASET:FORMAT``.
"""

from __future__ import annotations

import time

import numpy as np

from . import kernels as _kernels
from .base import NumericFormat
from .kernels import (
    MatmulLayerKernel,
    TableLayerKernel,
    _check_weights,
    _scratch,
    check_patterns,
    digit_planes,
    quire_bound_bits,
)
from .quire import (
    LIMB_BITS,
    arithmetic_shift_round,
    bit_length_int64,
    check_rounding_mode,
)

__all__ = [
    "NetworkKernel",
    "RoundTable",
    "compile_network",
    "aligned_value_table",
    "exact_product_table",
    "round_table",
    "NETWORK_PATHS",
]

#: Selectable per-layer words-computation paths (``force_path`` values).
NETWORK_PATHS = ("plane", "int64", "product", "layer")

#: Single-word quires are bounded by ``|word| < 2**62``; the round tables
#: cover exactly that window.
_WORD_CAP = np.int64(1) << 62

#: Product-rank candidacy: fan-in cap and per-layer gather-table budget.
_PRODUCT_MAX_FAN_IN = 128
_PRODUCT_MAX_TABLE_BYTES = 32 * 1024 * 1024

#: Rows of the synthetic batch used to time candidate paths at compile.
_PROBE_ROWS = 128

#: Mantissa-bit depth range of the round-table bucket grid: the smallest
#: ``m`` whose buckets separate all boundaries wins.  Adjacent boundaries
#: (format-value midpoints) differ relatively by >= ~2**-(fraction+2), so
#: ``m`` lands near the format width; the cap bounds the dense tables at
#: ``128 << m`` entries (~4 MiB) per backend and rounding mode.
_ROUND_KEY_MIN_M = 4
_ROUND_KEY_MAX_M = 18

#: Per-process decision cache: (backend, mode, shape, candidates) -> entry.
_DECISIONS: dict[tuple, dict] = {}


# ----------------------------------------------------------------------
# Memoized exact integer tables
# ----------------------------------------------------------------------
def aligned_value_table(backend: NumericFormat) -> np.ndarray | None:
    """Per-pattern exact aligned value ``signed_sig << shift`` as int64.

    The int64-matmul fast path multiplies these directly: the product of
    two aligned values is the exact quire word contribution in quire-LSB
    units.  ``None`` when the format has no limb tables or its aligned
    range overflows int64 (no ≤ 8-bit paper format does).
    """

    def build():
        t = backend.limb_tables()
        if t is None or t.sig_bits + int(t.shift.max(initial=0)) > 62:
            return False
        return t.signed_sig << t.shift

    got = backend._memo("_aligned_value_table", build)
    return None if got is False else got


def exact_product_table(backend: NumericFormat) -> np.ndarray | None:
    """The ``(2**n, 2**n)`` *exact* pattern-pair product table, memoized.

    Entry ``[w, a]`` is the exact int64 product of the two patterns'
    aligned values in quire-LSB units — the exact-accumulation sibling of
    the ablation layer's rounded ``naive_product_table``.  ``None`` when
    the format is too wide for the dense table (``n > 10``) or its product
    range overflows int64 (e.g. posit8_2's maxpos products).
    """

    def build():
        t = backend.limb_tables()
        if t is None or backend.width > 10 or 2 * t.sig_bits + t.max_shift > 62:
            return False
        vals = aligned_value_table(backend)
        if vals is None:
            return False
        return vals[:, None] * vals[None, :]

    got = backend._memo("_exact_product_table", build)
    return None if got is False else got


def _round_key(words: np.ndarray, m: int) -> np.ndarray:
    """Monotone bucket key of int64 quire words, ``|word| <= 2**62``.

    The word's float64 image (rounding to nearest is monotone, so order is
    preserved) is bucketed by sign, exponent, and its top ``m`` mantissa
    bits — a magnitude-logarithmic grid fine enough that consecutive round
    boundaries land in distinct buckets (checked at build time).  Keys lie
    in ``[0, 128 << m)``: exponents span only ``[2**0, 2**62]``, so 6 bits
    of (offset) exponent plus the sign fold the whole window into a dense,
    cache-resident table index.
    """
    f = words.astype(np.float64)
    expman = (f.view(np.uint64) >> np.uint64(52 - m)).astype(np.int64)
    mag = (expman & ((1 << (11 + m)) - 1)) - (1022 << m)
    np.clip(mag, 0, (64 << m) - 1, out=mag)
    center = 64 << m
    return np.where(words >= 0, center + mag, center - 1 - mag)


class RoundTable:
    """The round-once output stage as an O(1) indexed lookup on int64 words.

    ``slot_patterns[self.indices(word)]`` equals
    ``encode_from_quire_words(word, mode=mode)`` for every
    ``|word| <= 2**62`` — the whole single-word window the compiled
    kernels can produce.  ``boundaries`` are the breakpoints of the
    (monotone) word -> pattern step function, found by vectorized binary
    search with the backend's own batched encoder as the oracle, so
    agreement is by construction rather than by re-deriving each family's
    rounding rules.

    ``indices`` avoids a per-word binary search: the :func:`_round_key`
    grid is built (at the smallest mantissa depth ``m``) such that every
    bucket contains at most one boundary, so the slot index is one dense
    ``base`` gather plus one compare against the bucket's ``bnd`` entry
    (``INT64_MAX`` where the bucket has none) —
    ``base[k] + (word >= bnd[k])``.  Should no ``m`` up to
    ``_ROUND_KEY_MAX_M`` separate the boundaries (never for the built-in
    families), lookups fall back to ``searchsorted``, bit-identically.
    """

    __slots__ = ("boundaries", "slot_patterns", "_m", "_base", "_bnd")

    def __init__(self, boundaries: np.ndarray, slot_patterns: np.ndarray):
        self.boundaries = boundaries
        self.slot_patterns = slot_patterns
        self._m = None
        for m in range(_ROUND_KEY_MIN_M, _ROUND_KEY_MAX_M + 1):
            keys = _round_key(boundaries, m)
            if keys.size == np.unique(keys).size:
                counts = np.bincount(keys, minlength=128 << m)
                self._base = np.concatenate(
                    [[0], np.cumsum(counts)[:-1]]
                ).astype(np.int64)
                self._bnd = np.full(
                    128 << m, np.iinfo(np.int64).max, dtype=np.int64
                )
                self._bnd[keys] = boundaries
                self._m = m
                break

    def indices(self, words: np.ndarray) -> np.ndarray:
        """Slot index per word: ``#{boundaries <= word}``, flattened."""
        w = words.ravel()
        if self._m is None:
            return np.searchsorted(self.boundaries, w, side="right")
        # A boundary in a *lower* bucket is < word, in a *higher* bucket
        # > word (the key is monotone), so ``base`` counts every crossed
        # boundary except the bucket's own, resolved by one compare.
        k = _round_key(w, self._m)
        idx = self._base[k]
        idx += w >= self._bnd[k]
        return idx

    def lookup(self, words: np.ndarray) -> np.ndarray:
        """Round a tensor of int64 quire words to int64 patterns."""
        return self.slot_patterns[self.indices(words)].reshape(words.shape)


def _midpoint(lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
    # floor((lo + hi) / 2) without int64 overflow (lo, hi span +-2**62).
    return (lo >> 1) + (hi >> 1) + ((lo & 1) & (hi & 1))


def round_table(backend: NumericFormat, mode: str = "rne") -> RoundTable:
    """The backend's memoized :class:`RoundTable` for ``mode``."""
    check_rounding_mode(mode)

    def build():
        t = backend.limb_tables()
        if t is None:
            raise TypeError(f"{backend.name} has no limb decode tables")

        def enc(words):
            return backend.encode_from_quire_words(
                np.asarray(words, dtype=np.int64), mode=mode
            ).astype(np.int64)

        # Anchors: every valid pattern's exact value in quire-LSB units
        # that fits int64, plus the +-2**62 window endpoints.  Values that
        # overflow int64 are necessarily beyond the window; rounding can
        # still *produce* their patterns near the window edge, which the
        # edge gaps' breakpoints capture.
        valid = ~t.invalid
        sig = t.signed_sig[valid]
        sh = (t.shift + t.bias_extra_shift)[valid]
        ok = (sig == 0) | (bit_length_int64(np.abs(sig)) + sh <= 62)
        words = sig[ok] << sh[ok]
        # -1 is anchored besides the representable values and the window
        # endpoints: formats with signed zero encode negative underflow to
        # -0 and word 0 to +0 — same value, distinct patterns — so the
        # sign flip at zero is a breakpoint between *equal* anchor values
        # that needs its own gap.
        anchors = np.unique(
            np.concatenate(
                [words, [-_WORD_CAP, -1, _WORD_CAP]]
            ).astype(np.int64)
        )

        # Between consecutive anchors the step function changes at most
        # once (only the two nearest representable values compete), so one
        # binary search per gap finds every breakpoint.
        lo, hi = anchors[:-1].copy(), anchors[1:].copy()
        p_anchor = enc(anchors)
        plo, phi = p_anchor[:-1], p_anchor[1:]
        active = plo != phi
        lo[~active] = hi[~active]
        while np.any(hi - lo > 1):
            mid = _midpoint(lo, hi)
            stay_low = enc(mid) == plo
            lo = np.where(stay_low, mid, lo)
            hi = np.where(stay_low, hi, mid)
        # hi[g] is the minimal word of gap g's upper slot.
        boundaries = hi[active]
        slot_patterns = np.concatenate([p_anchor[:1], phi[active]])
        table = RoundTable(boundaries, slot_patterns)
        # Self-check the one-breakpoint-per-gap premise at every edge the
        # construction produced (a family whose encoder switches patterns
        # twice between adjacent anchors would silently misround a band).
        probe = np.unique(
            np.concatenate([anchors, boundaries, boundaries - 1])
        )
        if not np.array_equal(table.lookup(probe), enc(probe)):
            raise AssertionError(
                f"round table for {backend.name}/{mode} disagrees with "
                "encode_from_quire_words; the format's rounding is not "
                "one-breakpoint-per-anchor-gap"
            )
        return table

    return backend._memo(f"_round_table_{mode}", build)


# ----------------------------------------------------------------------
# Per-layer steps
# ----------------------------------------------------------------------
class _TableStep:
    """One single-word table-format layer: words computation + fused epilogue.

    ``wants`` names the operand representation the step consumes —
    ``"aval"`` (exact int64 aligned values) for the int64 matmul,
    ``"pattern"`` (int64 pattern indices) for the plane-major and
    product-rank paths.  The *previous* step's epilogue produces it
    directly; :meth:`finalize` composes this step's own epilogue table the
    same way for its consumer.
    """

    def __init__(self, backend, tables, wp, bp, activation, mode, path):
        self.backend = backend
        self.tables = tables
        self.activation = activation
        self.path = path
        self.out_features, self.in_features = wp.shape
        self.rt = round_table(backend, mode)
        self.bias_words = None
        if bp is not None:
            self.bias_words = tables.signed_sig[bp] << (
                tables.shift[bp] + tables.bias_extra_shift
            )
        if path == "int64":
            self.wants = "aval"
            self.w_t = np.ascontiguousarray(aligned_value_table(backend)[wp].T)
        elif path == "product":
            self.wants = "pattern"
            products = exact_product_table(backend)
            # Column i gathered as (2**n, out): word contributions of every
            # possible activation pattern against every output's weight.
            self.col_tables = [
                np.ascontiguousarray(products[wp[:, i]].T)
                for i in range(self.in_features)
            ]
        elif path == "plane":
            self.wants = "pattern"
            digits = digit_planes(backend)
            live = [m for m in range(digits.shape[1]) if digits[:, m].any()]
            w_vals = np.ldexp(
                tables.signed_sig[wp].astype(np.float64), tables.shift[wp]
            )
            self.w_t = np.ascontiguousarray(w_vals.T)
            self.plane_tables = [np.ascontiguousarray(digits[:, m]) for m in live]
            self.plane_shifts = [LIMB_BITS * m for m in live]
        else:  # pragma: no cover - guarded by the planner
            raise ValueError(f"unknown table path {path!r}")

    # -- epilogue composition -------------------------------------------
    def _compose(self, wants: str | None) -> np.ndarray:
        slots = self.rt.slot_patterns
        if self.activation == "relu":
            slots = self.tables.relu[slots]
        if wants == "aval":
            return aligned_value_table(self.backend)[slots]
        if wants == "rank":
            return self.backend.rank_table()[slots]
        return np.ascontiguousarray(slots)  # "pattern" / final output

    def finalize(self, next_wants: str | None) -> None:
        self.slot_out = self._compose(next_wants)
        self.slot_rank = None  # readout variant, built for the last step

    def finalize_readout(self) -> None:
        self.slot_rank = self._compose("rank")

    # -- execution ------------------------------------------------------
    def run(self, ops, scratch, tag, readout=False):
        rows = ops.shape[0]
        out_dim = self.out_features
        words = scratch.get((rows, out_dim), np.int64, tag + "w")
        if self.path == "int64":
            np.matmul(ops, self.w_t, out=words)
        elif self.path == "product":
            np.take(self.col_tables[0], ops[:, 0], axis=0, out=words)
            acc = scratch.get((rows, out_dim), np.int64, tag + "t")
            for i in range(1, self.in_features):
                np.take(self.col_tables[i], ops[:, i], axis=0, out=acc)
                words += acc
        else:  # plane
            words.fill(0)
            staged = scratch.get(
                (rows, self.in_features), np.float64, tag + "a"
            )
            prod = scratch.get((rows, out_dim), np.float64, tag + "p")
            shifted = scratch.get((rows, out_dim), np.int64, tag + "s")
            for table, shift in zip(self.plane_tables, self.plane_shifts):
                np.take(table, ops, out=staged)
                np.matmul(staged, self.w_t, out=prod)
                shifted[:] = prod  # exact: integers < 2**53
                shifted <<= shift
                words += shifted
        if self.bias_words is not None:
            words += self.bias_words
        # Fused epilogue: round-once + ReLU + the consumer's operand
        # gather, as one O(1) slot lookup and one table take.
        idx = self.rt.indices(words)
        table = self.slot_rank if readout else self.slot_out
        out = scratch.get((rows, out_dim), np.int64, tag + "o")
        np.take(table, idx, out=out.ravel())
        return out

    def table_bytes(self) -> int:
        total = self.rt.boundaries.nbytes + self.slot_out.nbytes
        if self.path == "product":
            total += sum(t.nbytes for t in self.col_tables)
        else:
            total += self.w_t.nbytes
        if self.path == "plane":
            total += sum(t.nbytes for t in self.plane_tables)
        return total


class _FixedStep:
    """Fixed-point layer: native int64 matmul with the Fig. 3 epilogue inline.

    Operands are the clipped signed integers themselves (patterns are
    scaled two's-complement words), so ReLU is ``max(v, 0)`` and the
    clipped outputs are already monotone in value — the fused readout
    argmaxes them directly, no rank table needed.
    """

    path = "int64"
    wants = "signed"

    def __init__(self, backend, weights, bias, activation, mode):
        from ..fixedpoint import codec as fx

        fmt = backend.fmt
        self.fmt = fmt
        self.mode = mode
        self.activation = activation
        self.out_features, self.in_features = weights.shape
        self.w_t = np.ascontiguousarray(fx.signed_array(fmt, weights).T)
        self.bias_term = (
            None if bias is None else fx.signed_array(fmt, bias) << fmt.q
        )
        self.next_wants = None

    def finalize(self, next_wants: str | None) -> None:
        self.next_wants = next_wants

    def finalize_readout(self) -> None:
        pass  # clipped signed values double as ranks

    def run(self, ops, scratch, tag, readout=False):
        rows = ops.shape[0]
        fmt = self.fmt
        words = scratch.get((rows, self.out_features), np.int64, tag + "w")
        np.matmul(ops, self.w_t, out=words)
        if self.bias_term is not None:
            words += self.bias_term
        v = arithmetic_shift_round(words, fmt.q, self.mode)
        np.clip(v, fmt.int_min, fmt.int_max, out=v)
        if self.activation == "relu":
            np.maximum(v, 0, out=v)
        if readout or self.next_wants == "signed":
            return v  # monotone in value: rank and operand alike
        v &= fmt.mask  # pattern bits for the final output
        return v

    def table_bytes(self) -> int:
        return self.w_t.nbytes


class _LayerStep:
    """Fallback: the compiled per-layer kernel plus a composed epilogue LUT.

    Covers layers whose quire bound exceeds int64 (no single-word round
    table) and custom formats without limb tables.  Still fuses
    ReLU-and-operand conversion into one pattern-indexed gather.
    """

    path = "layer"
    wants = "pattern"

    def __init__(self, backend, kernel, activation):
        self.backend = backend
        self.kernel = kernel
        self.activation = activation
        self.out_features = kernel.out_features
        self.in_features = kernel.in_features

    def _compose(self, wants: str | None) -> np.ndarray | None:
        lut = np.arange(1 << self.backend.width, dtype=np.int64)
        identity = True
        if self.activation == "relu":
            lut = self.backend.relu_batch(lut.astype(np.uint32)).astype(np.int64)
            identity = False
        if wants == "aval":
            lut = aligned_value_table(self.backend)[lut]
            identity = False
        elif wants == "rank":
            lut = self.backend.rank_table()[lut]
            identity = False
        return None if identity else lut

    def finalize(self, next_wants: str | None) -> None:
        self.out_lut = self._compose(next_wants)
        self.rank_lut = None

    def finalize_readout(self) -> None:
        self.rank_lut = self._compose("rank")

    def run(self, ops, scratch, tag, readout=False):
        out = self.kernel(np.asarray(ops, dtype=np.uint32)).astype(np.int64)
        lut = self.rank_lut if readout else self.out_lut
        return out if lut is None else lut[out]

    def table_bytes(self) -> int:
        return 0 if self.out_lut is None else self.out_lut.nbytes


# ----------------------------------------------------------------------
# The compiled network plan
# ----------------------------------------------------------------------
class NetworkKernel:
    """A whole network compiled into one fused chained plan.

    ``layers`` is a sequence of ``(weights, bias, activation)`` triples
    (patterns as uint32 arrays; activation ``"relu"`` or ``"identity"``).
    :meth:`forward` returns the exact output patterns, bit-identical to
    running the per-layer kernels with interleaved ReLU; :meth:`predict`
    returns rank-argmax class labels without materializing the readout.

    ``force_path`` pins every layer to one words-computation path (testing
    hook; raises if a layer is not eligible for it); by default each
    layer's path is chosen by timing the eligible candidates once per
    ``(backend, mode, shape)`` per process.
    """

    def __init__(
        self,
        backend: NumericFormat,
        layers,
        *,
        rounding_mode: str = "rne",
        layer_kernels=None,
        force_path: str | None = None,
    ):
        if not layers:
            raise ValueError("network kernel needs at least one layer")
        if force_path is not None and force_path not in NETWORK_PATHS:
            raise ValueError(
                f"force_path must be one of {NETWORK_PATHS}, got {force_path!r}"
            )
        self.backend = backend
        self.rounding_mode = check_rounding_mode(rounding_mode)
        if layer_kernels is None:
            layer_kernels = [None] * len(layers)
        if len(layer_kernels) != len(layers):
            raise ValueError("need one compiled kernel (or None) per layer")

        self._tables = backend.limb_tables()
        self.steps = []
        self._decisions = []
        prev_out = None
        for i, (weights, bias, activation) in enumerate(layers):
            weights, bias = _check_weights(weights, bias)
            if prev_out is not None and weights.shape[1] != prev_out:
                raise ValueError(
                    f"layer {i} fan-in {weights.shape[1]} != previous "
                    f"fan-out {prev_out}"
                )
            prev_out = weights.shape[0]
            step, decision = self._plan_layer(
                weights, bias, activation, layer_kernels[i], force_path
            )
            self.steps.append(step)
            self._decisions.append(decision)

        # Compose every epilogue for its consumer; the last step gets the
        # rank-readout variant too.
        for step, nxt in zip(self.steps, self.steps[1:]):
            step.finalize(nxt.wants)
        self.steps[-1].finalize(None)
        self.steps[-1].finalize_readout()

        self.in_features = self.steps[0].in_features
        self.out_features = self.steps[-1].out_features

    # ------------------------------------------------------------------
    def _plan_layer(self, weights, bias, activation, kernel, force_path):
        backend, tables = self.backend, self._tables
        mode = self.rounding_mode

        def compiled():
            return kernel if kernel is not None else backend.compile_layer(
                weights, bias, rounding_mode=mode
            )

        if tables is None:
            probe = compiled()
            if isinstance(probe, MatmulLayerKernel):
                if force_path not in (None, "int64"):
                    raise ValueError(
                        f"fixed point supports only the int64 path, "
                        f"not {force_path!r}"
                    )
                step = _FixedStep(backend, weights, bias, activation, mode)
                return step, {
                    "path": "int64",
                    "eligible": ("int64",),
                    "timings_us": None,
                }
            if force_path not in (None, "layer"):
                raise ValueError(
                    f"{backend.name} has no limb tables; only the layer "
                    f"path is available"
                )
            step = _LayerStep(backend, probe, activation)
            return step, {
                "path": "layer",
                "eligible": ("layer",),
                "timings_us": None,
            }

        wp = check_patterns(tables, weights, "weights")
        bp = None if bias is None else check_patterns(tables, bias, "bias")
        eligible = self._eligible_paths(wp, bp)
        if force_path is not None:
            if force_path != "layer" and force_path not in eligible:
                raise ValueError(
                    f"layer shape {wp.shape} is not eligible for the "
                    f"{force_path!r} path (eligible: {eligible + ('layer',)})"
                )
            chosen, timings = force_path, None
        elif not eligible:
            chosen, timings = "layer", None
        elif len(eligible) == 1:
            chosen, timings = eligible[0], None
        else:
            chosen, timings = self._decide(tables, wp, bp, activation, eligible)
        if chosen == "layer":
            step = _LayerStep(backend, compiled(), activation)
        else:
            step = _TableStep(backend, tables, wp, bp, activation, mode, chosen)
        return step, {
            "path": chosen,
            "eligible": eligible + ("layer",),
            "timings_us": timings,
        }

    def _eligible_paths(self, wp, bp) -> tuple[str, ...]:
        tables = self._tables
        word_mode = quire_bound_bits(tables, wp, bp) <= 62
        if not word_mode:
            return ()
        out_dim, in_dim = wp.shape
        eligible = []
        w_vals = np.ldexp(
            tables.signed_sig[wp].astype(np.float64), tables.shift[wp]
        )
        w_max = np.abs(w_vals).max() if wp.size else 0.0
        w_bits = int(np.frexp(w_max)[1]) if w_max else 0
        if w_bits + LIMB_BITS + max(1, in_dim).bit_length() <= 53:
            eligible.append("plane")
        if aligned_value_table(self.backend) is not None:
            eligible.append("int64")
        if (
            exact_product_table(self.backend) is not None
            and in_dim <= _PRODUCT_MAX_FAN_IN
            and in_dim * out_dim * 8 << self.backend.width
            <= _PRODUCT_MAX_TABLE_BYTES
        ):
            eligible.append("product")
        return tuple(eligible)

    def _decide(self, tables, wp, bp, activation, eligible):
        """Pick the fastest eligible path by timing a synthetic batch."""
        key = (
            self.backend.name,
            self.rounding_mode,
            wp.shape,
            bp is not None,
            eligible,
        )
        cached = _DECISIONS.get(key)
        if cached is not None:
            return cached["path"], cached["timings_us"]
        rng = np.random.default_rng(0)
        pool = np.flatnonzero(~tables.invalid).astype(np.int64)
        patterns = rng.choice(pool, size=(_PROBE_ROWS, wp.shape[1]))
        scratch = _scratch()
        timings = {}
        for path in eligible:
            step = _TableStep(
                self.backend, tables, wp, bp, activation,
                self.rounding_mode, path,
            )
            step.finalize("pattern")
            ops = (
                aligned_value_table(self.backend)[patterns]
                if step.wants == "aval"
                else patterns
            )
            step.run(ops, scratch, "probe-")  # warm scratch + caches
            best = float("inf")
            for _ in range(3):
                t0 = time.perf_counter()
                step.run(ops, scratch, "probe-")
                best = min(best, time.perf_counter() - t0)
            timings[path] = round(best * 1e6, 2)
        chosen = min(timings, key=timings.get)
        _DECISIONS[key] = {"path": chosen, "timings_us": timings}
        return chosen, timings

    # ------------------------------------------------------------------
    def _prepare(self, patterns) -> np.ndarray:
        p = np.asarray(patterns)
        if p.ndim != 2:
            raise ValueError(
                f"patterns must be 2-D (batch, in); got shape {p.shape}"
            )
        if p.shape[1] != self.in_features:
            raise ValueError(
                f"fan-in mismatch: network expects {self.in_features}, "
                f"inputs have {p.shape[1]}"
            )
        if self._tables is not None:
            return check_patterns(self._tables, p, "activations")
        p = np.asarray(p, dtype=np.int64)
        if p.size and (p.min() < 0 or p.max() >= 1 << self.backend.width):
            raise ValueError("activations pattern out of range")
        return p

    def _first_ops(self, p: np.ndarray) -> np.ndarray:
        wants = self.steps[0].wants
        if wants == "aval":
            return aligned_value_table(self.backend)[p]
        if wants == "signed":
            from ..fixedpoint import codec as fx

            return fx.signed_array(self.backend.fmt, p.astype(np.uint32))
        return p  # "pattern"

    def _chunk_rows(self) -> int:
        cap = _kernels._CHUNK_ELEMENTS
        widest = max(s.in_features + 2 * s.out_features for s in self.steps)
        return max(1, cap // widest)

    def _run(self, patterns, readout: bool):
        p = self._prepare(patterns)
        batch = p.shape[0]
        if readout:
            out = np.empty(batch, dtype=np.int64)
        else:
            out = np.empty((batch, self.out_features), dtype=np.uint32)
        chunk = self._chunk_rows()
        scratch = _scratch()
        last = len(self.steps) - 1
        for start in range(0, batch, chunk):
            stop = min(batch, start + chunk)
            x = self._first_ops(p[start:stop])
            for i, step in enumerate(self.steps):
                x = step.run(
                    x, scratch, f"nk{i}-", readout=readout and i == last
                )
            if readout:
                out[start:stop] = np.argmax(x, axis=1)
            else:
                out[start:stop] = x
        return out

    def forward(self, patterns) -> np.ndarray:
        """Exact fused forward: ``(batch, in)`` -> ``(batch, out)`` patterns."""
        return self._run(patterns, readout=False)

    def predict(self, patterns) -> np.ndarray:
        """Fused rank-argmax class labels for ``(batch, in)`` patterns."""
        return self._run(patterns, readout=True)

    # ------------------------------------------------------------------
    def explain(self) -> list[dict]:
        """Per-layer compile decisions: path, eligibility, timings, bytes."""
        report = []
        for i, (step, decision) in enumerate(zip(self.steps, self._decisions)):
            report.append(
                {
                    "layer": i,
                    "in_features": step.in_features,
                    "out_features": step.out_features,
                    "activation": step.activation,
                    "wants": step.wants,
                    "path": decision["path"],
                    "eligible": list(decision["eligible"]),
                    "timings_us": decision["timings_us"],
                    "table_bytes": step.table_bytes(),
                }
            )
        return report


def compile_network(
    backend: NumericFormat,
    layers,
    *,
    rounding_mode: str = "rne",
    layer_kernels=None,
    force_path: str | None = None,
) -> NetworkKernel:
    """Compile ``(weights, bias, activation)`` triples into a fused plan."""
    return NetworkKernel(
        backend,
        layers,
        rounding_mode=rounding_mode,
        layer_kernels=layer_kernels,
        force_path=force_path,
    )
