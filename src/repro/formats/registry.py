"""Name- and type-based registry of :class:`NumericFormat` backends.

The registry is the single dispatch point of the library: everything that
used to switch on concrete format classes (``engine_for``,
``scalar_emac_for``, the quantizers, the sweeps, the CLI) now asks the
registry instead.  A number system joins the whole stack — vector engine,
scalar EMAC, quantization, accuracy sweeps, CLI — with one
:func:`register_family` call:

    register_family(FormatFamily(
        name="posit",
        fmt_type=PositFormat,
        backend_cls=PositBackend,
        parse=_parse_posit,              # "posit8_1" / "posit<8,1>" -> fmt
        sweep_candidates=_posit_sweep,   # width -> candidate descriptors
    ))

Backends are cached per format descriptor (descriptors are frozen
dataclasses), so decode tables, digit planes, engines, and rank tables are
built once per process and shared by every consumer — sweep workers,
compiled layer kernels, and the serving layer's resident models alike
(safe across executor threads: kernel scratch is per-thread).

``docs/formats.md`` is the authoring guide: the full backend protocol,
the small-float backend as the worked example, and what a single
``register_family`` call plugs into.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable, Sequence

from .base import NumericFormat
from .fixed_backend import FixedBackend
from .float_backend import FloatBackend
from .posit_backend import PositBackend

__all__ = [
    "FormatFamily",
    "register_family",
    "unregister_family",
    "families",
    "get",
    "backend_for",
    "available",
]


@dataclass(frozen=True)
class FormatFamily:
    """One registered number system.

    ``parse`` maps a registry name (or a human label) to a format
    descriptor, returning ``None`` when the name belongs to another family.
    ``sweep_candidates`` (optional) lists the descriptors of width ``n``
    the accuracy sweeps should consider.
    """

    name: str
    fmt_type: type
    backend_cls: type
    parse: Callable[[str], object | None]
    sweep_candidates: Callable[[int], Sequence[object]] | None = None


_FAMILIES: dict[str, FormatFamily] = {}
_BACKENDS: dict[object, NumericFormat] = {}
_BY_NAME: dict[str, NumericFormat] = {}


def register_family(family: FormatFamily) -> None:
    """Register (or replace) a number-system family."""
    if not issubclass(family.backend_cls, NumericFormat):
        raise TypeError("backend_cls must subclass NumericFormat")
    _FAMILIES[family.name] = family
    # Drop stale cached backends in case a family is being replaced.  The
    # name memo is order-sensitive (families parse in registration order),
    # so it is flushed wholesale.
    for fmt in [f for f, b in _BACKENDS.items() if b.family == family.name]:
        del _BACKENDS[fmt]
    _BY_NAME.clear()


def unregister_family(name: str) -> None:
    """Remove a family (used by tests registering throwaway formats)."""
    family = _FAMILIES.pop(name, None)
    if family is not None:
        for fmt in [f for f, b in _BACKENDS.items() if b.family == name]:
            del _BACKENDS[fmt]
        _BY_NAME.clear()


def families() -> tuple[FormatFamily, ...]:
    """All registered families, in registration order."""
    return tuple(_FAMILIES.values())


def backend_for(fmt: object) -> NumericFormat:
    """The (cached) backend wrapping a format descriptor."""
    backend = _BACKENDS.get(fmt)
    if backend is not None:
        return backend
    # Exact type match first so a family whose descriptor subclasses another
    # family's descriptor is not shadowed by its parent.
    chosen = None
    for family in _FAMILIES.values():
        if type(fmt) is family.fmt_type:
            chosen = family
            break
        if chosen is None and isinstance(fmt, family.fmt_type):
            chosen = family
    if chosen is not None:
        backend = chosen.backend_cls(fmt)
        _BACKENDS[fmt] = backend
        return backend
    known = ", ".join(_FAMILIES) or "<none>"
    raise TypeError(
        f"no registered format family for {type(fmt).__name__} "
        f"(registered: {known})"
    )


def get(name: str) -> NumericFormat:
    """Resolve a registry name (``posit8_1``) or label (``posit<8,1>``).

    Raises ``KeyError`` both for names no family recognizes and for names a
    family parses but whose parameters its descriptor rejects, so callers
    have a single error contract.  Resolutions are memoized per name key
    (on top of the per-descriptor backend cache), so hot by-name paths —
    sweep config enumeration, CLI, pool workers — skip re-parsing.
    """
    cached = _BY_NAME.get(name)
    if cached is not None:
        return cached
    for family in _FAMILIES.values():
        try:
            fmt = family.parse(name)
        except ValueError as exc:
            raise KeyError(f"invalid format name {name!r}: {exc}") from exc
        if fmt is not None:
            backend = backend_for(fmt)
            _BY_NAME[name] = backend
            return backend
    known = ", ".join(_FAMILIES) or "<none>"
    raise KeyError(f"unknown format name {name!r} (registered families: {known})")


def available(widths: Sequence[int] = (5, 6, 7, 8)) -> list[str]:
    """Canonical names of every sweep candidate at the given widths."""
    names = []
    for n in widths:
        for family in _FAMILIES.values():
            if family.sweep_candidates is None:
                continue
            names.extend(backend_for(fmt).name for fmt in family.sweep_candidates(n))
    return names


# ----------------------------------------------------------------------
# Built-in families
# ----------------------------------------------------------------------
def _two_int_parser(prefix: str) -> Callable[[str], tuple[int, int] | None]:
    pattern = re.compile(
        rf"^{prefix}(?:(\d+)_(\d+)|<(\d+),(\d+)>)$"
    )

    def parse(name: str) -> tuple[int, int] | None:
        m = pattern.match(name)
        if m is None:
            return None
        a, b = (g for g in m.groups() if g is not None)
        return int(a), int(b)

    return parse


_parse_posit_args = _two_int_parser("posit")
_parse_fixed_args = _two_int_parser("fixed")
_FLOAT_NAME = re.compile(r"^float(?:(\d+)_(\d+)|<1,(\d+),(\d+)>)$")


def _parse_posit(name: str):
    from ..posit.format import standard_format

    args = _parse_posit_args(name)
    return None if args is None else standard_format(*args)


def _parse_float(name: str):
    from ..floatp.format import float_format

    m = _FLOAT_NAME.match(name)
    if m is None:
        return None
    we, wf = (int(g) for g in m.groups() if g is not None)
    return float_format(we, wf)


def _parse_fixed(name: str):
    from ..fixedpoint.format import fixed_format

    args = _parse_fixed_args(name)
    return None if args is None else fixed_format(*args)


def _posit_sweep(n: int, es_values: tuple[int, ...] = (0, 1, 2)):
    from ..posit.format import standard_format

    return [standard_format(n, es) for es in es_values if n - 3 - es >= 0]


def _float_sweep(n: int, we_values: tuple[int, ...] = (2, 3, 4, 5)):
    from ..floatp.format import float_format

    return [
        float_format(we, n - 1 - we)
        for we in we_values
        if n - 1 - we >= 1 and we >= 2
    ]


def _fixed_sweep(n: int, q_values: tuple[int, ...] | None = None):
    from ..fixedpoint.format import fixed_format

    qs = q_values if q_values is not None else tuple(range(0, n))
    return [fixed_format(n, q) for q in qs if 0 <= q <= n - 1]


def _register_builtins() -> None:
    from ..fixedpoint.format import FixedFormat
    from ..floatp.format import FloatFormat
    from ..posit.format import PositFormat

    register_family(
        FormatFamily(
            name="posit",
            fmt_type=PositFormat,
            backend_cls=PositBackend,
            parse=_parse_posit,
            sweep_candidates=_posit_sweep,
        )
    )
    register_family(
        FormatFamily(
            name="float",
            fmt_type=FloatFormat,
            backend_cls=FloatBackend,
            parse=_parse_float,
            sweep_candidates=_float_sweep,
        )
    )
    register_family(
        FormatFamily(
            name="fixed",
            fmt_type=FixedFormat,
            backend_cls=FixedBackend,
            parse=_parse_fixed,
            sweep_candidates=_fixed_sweep,
        )
    )


_register_builtins()
