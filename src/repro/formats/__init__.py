"""Unified number-system backends for the EMAC architecture.

One :class:`NumericFormat` backend per number system (posit, small float,
fixed point), each bundling decode tables, bit-exact batched quantization,
the fully vectorized quire round-off stage, and engine/EMAC factories —
plus a name-based registry so formats are addressed as ``posit8_1`` or
``posit<8,1>`` everywhere (CLI, sweeps, quantizers) instead of via
``isinstance`` chains.

    >>> from repro import formats
    >>> backend = formats.get("posit8_1")
    >>> engine = backend.make_engine()

Registering a new family (see :class:`~repro.formats.registry.FormatFamily`)
plugs it into the vector engines, scalar EMACs, quantizers, accuracy sweeps,
and the CLI with no further code changes.
"""

from .base import LimbTables, NumericFormat
from .kernels import (
    DotLayerKernel,
    LayerKernel,
    MatmulLayerKernel,
    TableLayerKernel,
    check_patterns,
    clear_scratch,
    compile_layer,
    digit_planes,
    quire_bound_bits,
)
from .network import (
    NETWORK_PATHS,
    NetworkKernel,
    RoundTable,
    aligned_value_table,
    compile_network,
    exact_product_table,
    round_table,
)
from .quire import (
    LIMB_BITS,
    ROUNDING_MODES,
    NormalizedQuire,
    arithmetic_shift_round,
    bit_length_int64,
    check_rounding_mode,
    normalize_quire_limbs,
    round_kept_bits,
    words_as_quire,
)
from .registry import (
    FormatFamily,
    available,
    backend_for,
    families,
    get,
    register_family,
    unregister_family,
)
from .fixed_backend import FixedBackend
from .float_backend import FloatBackend
from .posit_backend import PositBackend

__all__ = [
    "NumericFormat",
    "LimbTables",
    "LayerKernel",
    "TableLayerKernel",
    "MatmulLayerKernel",
    "DotLayerKernel",
    "compile_layer",
    "digit_planes",
    "check_patterns",
    "quire_bound_bits",
    "clear_scratch",
    "NetworkKernel",
    "RoundTable",
    "NETWORK_PATHS",
    "compile_network",
    "round_table",
    "aligned_value_table",
    "exact_product_table",
    "LIMB_BITS",
    "ROUNDING_MODES",
    "NormalizedQuire",
    "arithmetic_shift_round",
    "check_rounding_mode",
    "normalize_quire_limbs",
    "round_kept_bits",
    "words_as_quire",
    "bit_length_int64",
    "FormatFamily",
    "register_family",
    "unregister_family",
    "families",
    "get",
    "backend_for",
    "available",
    "PositBackend",
    "FloatBackend",
    "FixedBackend",
]
