"""Fixed-point backend.

Fixed point needs no decode tables (patterns *are* scaled integers), so
``limb_tables`` returns ``None`` and the engine uses an exact int64 matmul.
``encode_from_quire_batch`` is still provided — it applies the paper's
Fig. 3 output stage (shift right by ``q`` with floor, then clip) to quires
expressed as limbs, so the backend protocol is uniform across families and
the round-off property tests cover all of them.
"""

from __future__ import annotations

from fractions import Fraction

import numpy as np

from ..fixedpoint import codec as fx
from ..fixedpoint.format import FixedFormat
from .base import NumericFormat
from .quire import arithmetic_shift_round, normalize_quire_limbs

__all__ = ["FixedBackend"]


class FixedBackend(NumericFormat):
    """Backend over a :class:`~repro.fixedpoint.format.FixedFormat`."""

    family = "fixed"

    def __init__(self, fmt: FixedFormat):
        if not isinstance(fmt, FixedFormat):
            raise TypeError(f"FixedBackend needs a FixedFormat, got {type(fmt).__name__}")
        super().__init__(fmt)

    @property
    def name(self) -> str:
        """Canonical registry name ``fixed{n}_{q}``."""
        return f"fixed{self.fmt.n}_{self.fmt.q}"

    @property
    def quire_lsb_exponent(self) -> int:
        """Product grid LSB: ``2**(-2q)``."""
        return -2 * self.fmt.q

    # ------------------------------------------------------------------
    def compile_layer(
        self, weights, bias=None, *, chunk_elements=None, rounding_mode="rne"
    ):
        """Fixed layers compile to a precomputed signed int64 matmul."""
        from .kernels import MatmulLayerKernel

        return MatmulLayerKernel(
            self, weights, bias, rounding_mode=rounding_mode
        )

    def quantize_batch(self, values: np.ndarray) -> np.ndarray:
        return fx.quantize_array(self.fmt, values)

    def decode_batch(self, patterns: np.ndarray) -> np.ndarray:
        return fx.dequantize_array(self.fmt, patterns)

    def relu_batch(self, patterns: np.ndarray) -> np.ndarray:
        return fx.relu_patterns(self.fmt, patterns)

    # ------------------------------------------------------------------
    def encode_from_quire_batch(
        self, limbs: np.ndarray, *, mode: str = "rne"
    ) -> np.ndarray:
        fmt = self.fmt
        q = normalize_quire_limbs(limbs)
        # Quires small enough to matter fit entirely in ``top`` (< 2**60);
        # anything wider saturates after the >> q output shift anyway.
        # ("rne" names the paper's native Fig. 3 floor stage, keeping the
        # pipeline-wide default-mode contract uniform across families.)
        exact = arithmetic_shift_round(
            np.where(q.sign, -q.top, q.top), fmt.q, mode
        )
        saturated = np.where(q.sign, np.int64(fmt.int_min), np.int64(fmt.int_max))
        raw = np.where(q.shift > 0, saturated, np.clip(exact, fmt.int_min, fmt.int_max))
        return ((raw & fmt.mask)).astype(np.uint32)

    def encode_from_quire_scalar(self, quire: int) -> int:
        raw = quire >> self.fmt.q  # arithmetic shift == floor
        raw = max(self.fmt.int_min, min(self.fmt.int_max, raw))
        return raw & self.fmt.mask

    def truncate_scalar(self, value: Fraction) -> int:
        fmt = self.fmt
        if value == 0:
            return 0
        scaled = value * (1 << fmt.q)
        raw = scaled.numerator // scaled.denominator
        if value < 0 and scaled.denominator != 1 and scaled.numerator % scaled.denominator:
            raw += 1  # floor -> toward zero for negatives
        raw = max(fmt.int_min, min(fmt.int_max, raw))
        return raw & fmt.mask

    # ------------------------------------------------------------------
    def make_engine(self):
        from ..core.vector import FixedVectorEngine

        return FixedVectorEngine(self.fmt)

    def make_scalar_emac(self):
        from ..core.emac_fixed import FixedEmac

        return FixedEmac(self.fmt)
