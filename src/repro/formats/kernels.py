"""Compiled per-layer inference kernels: one stacked digit-plane GEMM.

The limb vector engine (:mod:`repro.core.vector`) computes every exact dot
product as a *digit-plane convolution*: each pattern's aligned value is a
handful of signed base-``2**LIMB_BITS`` digits, and the limb-``k``
contribution of a product is ``limbs[b, o, k] = sum_{l+m=k} (A_m @ W_l.T)``.
Executed naively that is up to ``planes**2`` small float64 matmuls per batch
chunk, and the weight digit tensor is re-gathered on every call.

A :class:`LayerKernel` compiles the *(weights, bias)* half of that
convolution once, so each forward call is a **single** float64 GEMM:

Memory layout
-------------
Let ``in`` be the fan-in, ``out`` the fan-out, ``L`` the number of quire
limbs, ``Ma`` the format's live *activation* digit planes (columns of the
digit table that are nonzero for any valid pattern) and ``Lw`` the live
*weight* digit planes of this particular weight matrix (all-zero planes are
pruned at compile time).  The kernel precomputes the stacked weight matrix

    K[m * in + i,  o * L + k]  =  Wdigits[o, i, k - m]      (0 otherwise)

of shape ``(Ma * in, out * L)`` — the limb convolution laid out as a plain
matrix product.  At run time the activations are staged once per chunk as

    A[b, m * in + i]  =  Adigits[b, i, m]                   (chunk, Ma * in)

and ``A @ K``, reshaped to ``(chunk, out, L)``, *is* the full unnormalized
limb tensor; the backend's batched ``encode_from_quire_batch`` rounds it
once, bit-identically to the scalar EMACs.  Bias patterns are precompiled to
quire-aligned limbs ``(out, L)`` and added per chunk.

Exactness bound and the no-chunk fast path
------------------------------------------
Every digit is ``< 2**LIMB_BITS`` so every digit product is
``< 2**(2 * LIMB_BITS)``, and at most ``Lw * in`` nonzero products land in
one output element of the GEMM (adding exact zeros costs nothing).  The
float64 staging is therefore exact — every partial sum is an integer below
``2**53`` — whenever

    2 * LIMB_BITS + ceil(log2(Lw * in))  <=  53,

i.e. ``Lw * in <= 2**(53 - 2 * LIMB_BITS)`` (8192 at the default 20-bit
limbs).  Every topology in the paper (largest fan-in 117, ``Lw <= 5``)
satisfies the bound, so the kernel runs the **no-chunk int64 fast path**:
one GEMM over the full fan-in, cast to int64 once.  Larger fan-ins fall
back to fan-in splits sized ``2**(53 - 2*LIMB_BITS) // Lw``, accumulated in
int64 — still one GEMM per split instead of ``planes**2``.

Single-word and plane-major modes
---------------------------------
Two further compile-time analyses exploit the *actual* weight patterns
(both decided from an exact upper bound ``max_o Σ_i |w_oi| · max|a| +
max|bias|`` on any reachable quire, with guard bits absorbing float64
summation error):

* **single-word** — when the bound fits int64 (``< 2**62``), the limb
  tensor is Horner-combined into one int64 word per quire (every prefix is
  bounded by the quire bound, so no overflow) and rounded by the backend's
  ``encode_from_quire_words`` — limb normalization, the most expensive
  stage of the generic path, is skipped entirely.  True for every trained
  paper model; pathological weights (e.g. maxpos-heavy posit8_2 rows) fall
  back to the stacked-GEMM + normalize path, bit-identically.
* **plane-major** — when additionally ``w_bits + LIMB_BITS + log2(in) <=
  53`` (the weights' full float64 values multiplied by a whole activation
  digit keep every GEMM partial sum exact), the weights are not
  digit-split at all: one ``(batch, in) @ (in, out)`` GEMM per live
  activation plane against the exact float64 weight values, shifted and
  summed into the word.  This is the steady-state path for all paper
  topologies: ~2 GEMMs per layer, no staging transpose, no limb tensor.

Scratch buffers (the staged activations, the GEMM output, and the int64
limb tensor) come from a grow-only *per-thread* pool keyed by shape, so
they are reused across batch chunks *and* across the layers of a network.
Because the pool is thread-local, the memoized backends/engines handed out
by the format registry are safe to share across threads (the serving
layer's executor runs batches for different models concurrently); within a
thread a kernel call never yields, so asyncio tasks cannot interleave
mid-call either.  Cross-process parallelism lives in the process-pool
runner.

Kernels are obtained through :meth:`repro.formats.NumericFormat.compile_layer`
(table-driven formats get the stacked GEMM; fixed point gets a precompiled
signed int64 matmul); ``TableVectorEngine.dot`` wraps a one-shot kernel so
the existing engine API is unchanged.
"""

from __future__ import annotations

import threading

import numpy as np

from .base import LimbTables, NumericFormat
from .quire import LIMB_BITS, arithmetic_shift_round, check_rounding_mode

__all__ = [
    "LayerKernel",
    "TableLayerKernel",
    "MatmulLayerKernel",
    "DotLayerKernel",
    "compile_layer",
    "digit_planes",
    "check_patterns",
    "quire_bound_bits",
    "clear_scratch",
]

#: Soft cap on the size of per-chunk intermediate tensors (elements).
_CHUNK_ELEMENTS = 4_000_000

#: Scratch pool byte budget; least-recently-used buffers are evicted.
_SCRATCH_MAX_BYTES = 256 * 1024 * 1024


class _ScratchPool:
    """Grow-only pool of preallocated buffers keyed by (shape, dtype).

    Layer kernels request identically shaped staging / GEMM / limb buffers
    on every chunk of every forward call; handing back the same arrays
    keeps the hot path allocation-free.  One pool exists per thread (see
    :func:`_scratch`), so two kernels running on different threads can
    never hand out the same buffer.
    """

    def __init__(self) -> None:
        self._buffers: dict[tuple, np.ndarray] = {}

    def get(self, shape: tuple[int, ...], dtype, tag: str = "") -> np.ndarray:
        # ``tag`` separates buffers that may be alive at the same time even
        # when their shapes coincide (e.g. a GEMM's input and output).
        key = (shape, np.dtype(dtype).str, tag)
        buf = self._buffers.pop(key, None)
        if buf is None:
            buf = np.empty(shape, dtype=dtype)
            self._evict(buf.nbytes)
        self._buffers[key] = buf  # re-insert at the back: LRU order
        return buf

    def _evict(self, incoming: int) -> None:
        total = incoming + sum(b.nbytes for b in self._buffers.values())
        while total > _SCRATCH_MAX_BYTES and self._buffers:
            dropped = self._buffers.pop(next(iter(self._buffers)))
            total -= dropped.nbytes

    def clear(self) -> None:
        self._buffers.clear()


_SCRATCH_TLS = threading.local()


def _scratch() -> _ScratchPool:
    """The calling thread's scratch pool (created on first use).

    Keying the pool by thread is what makes the registry-memoized engines
    and compiled kernels shareable across executor threads: concurrent
    forward passes each stage into their own buffers, while the
    single-threaded hot path keeps its allocation-free reuse.
    """
    pool = getattr(_SCRATCH_TLS, "pool", None)
    if pool is None:
        pool = _SCRATCH_TLS.pool = _ScratchPool()
    return pool


def clear_scratch() -> None:
    """Drop this thread's pooled scratch buffers (tests / memory callers)."""
    _scratch().clear()


def digit_planes(backend: NumericFormat) -> np.ndarray:
    """The backend's signed base-``2**LIMB_BITS`` digit table, memoized.

    Entry ``[p, l]`` is pattern ``p``'s signed digit of weight
    ``2**(LIMB_BITS * l)`` in quire-LSB units of one *input*.  Digits are
    ``< 2**LIMB_BITS`` and stored as float64 (exactly representable) so the
    digit-plane contractions run on BLAS.  Built once per backend; the
    registry caches backends per format key, so every engine, kernel, and
    sweep worker in a process shares one table per format.
    """
    cached = backend.__dict__.get("_digit_planes")
    if cached is None:
        tables = backend.limb_tables()
        if tables is None:
            raise TypeError(f"{backend.name} has no limb decode tables")
        cached = _build_digit_planes(tables)
        backend.__dict__["_digit_planes"] = cached
    return cached


def _build_digit_planes(tables: LimbTables) -> np.ndarray:
    sig = tables.signed_sig
    mag = np.abs(sig)
    coarse, rem = np.divmod(tables.shift, LIMB_BITS)
    m = mag << rem  # < 2**(sig_bits + LIMB_BITS - 1), fits easily
    max_input_shift = tables.max_shift // 2
    num = (max_input_shift + tables.sig_bits) // LIMB_BITS + 2
    digits = np.zeros((sig.shape[0], num), dtype=np.int64)
    rows = np.arange(sig.shape[0])
    mask = (1 << LIMB_BITS) - 1
    for l in range((tables.sig_bits + LIMB_BITS - 1) // LIMB_BITS + 1):
        digits[rows, coarse + l] += (m >> (LIMB_BITS * l)) & mask
    digits *= np.sign(sig)[:, None]
    return digits.astype(np.float64)


def check_patterns(tables: LimbTables, patterns, what: str) -> np.ndarray:
    """Validate patterns against the decode tables; return them as int64.

    Shared by the layer kernels, the engines' ``dot_reference`` path, and
    the fused network kernels (which validate the *network* inputs once
    instead of re-validating at every layer boundary).
    """
    p = np.asarray(patterns, dtype=np.int64)
    if p.size and (p.min() < 0 or p.max() >= tables.signed_sig.shape[0]):
        raise ValueError(f"{what} pattern out of range")
    if np.any(tables.invalid[p]):
        raise ValueError(f"{what} contains NaR/reserved patterns")
    return p


_check_patterns = check_patterns


def quire_bound_bits(tables: LimbTables, wp, bp) -> int:
    """Bit length bounding any reachable |quire| for these weights.

    ``max_o sum_i |w_oi| * max_valid_a |a| + max_o |bias_o|`` in
    quire-LSB units, evaluated in float64 with two guard bits of
    safety margin — an over-estimate only ever costs a wider GEMM.
    """
    sig_abs = np.abs(tables.signed_sig).astype(np.float64)
    valid = ~tables.invalid
    act_max = 0.0
    if valid.any():
        act_max = float(np.ldexp(sig_abs[valid], tables.shift[valid]).max())
    row_max = 0.0
    if wp.size:
        w_vals = np.ldexp(sig_abs[wp], tables.shift[wp])
        row_max = float(w_vals.sum(axis=1).max())
    bias_max = 0.0
    if bp is not None and bp.size:
        bias_max = float(
            np.ldexp(
                sig_abs[bp], tables.shift[bp] + tables.bias_extra_shift
            ).max()
        )
    bound = row_max * act_max + bias_max
    if bound == 0.0:
        return 1
    return int(np.frexp(bound)[1]) + 2


def _check_weights(weights, bias) -> tuple[np.ndarray, np.ndarray | None]:
    weights = np.asarray(weights, dtype=np.uint32)
    if weights.ndim != 2:
        raise ValueError(f"weights must be 2-D (out, in); got shape {weights.shape}")
    if bias is not None:
        bias = np.asarray(bias, dtype=np.uint32)
        if bias.shape != (weights.shape[0],):
            raise ValueError(f"bias must have shape ({weights.shape[0]},)")
    return weights, bias


class LayerKernel:
    """A layer's ``(weights, bias)`` compiled against one backend.

    Calling the kernel on ``(batch, in)`` activation patterns returns the
    ``(batch, out)`` exact round-once dot products — the same contract as
    ``VectorEngine.dot(weights, activations, bias)``, with all per-call
    weight preparation hoisted into construction.  ``rounding_mode``
    selects the round-once output stage (``"rne"`` default, ``"rtz"``
    round toward zero) and is honoured by every fast path.
    """

    out_features: int
    in_features: int
    rounding_mode: str = "rne"

    def _check_activations(self, activations) -> np.ndarray:
        a = np.asarray(activations, dtype=np.uint32)
        if a.ndim != 2:
            raise ValueError(
                f"activations must be 2-D (batch, in); got shape {a.shape}"
            )
        if a.shape[1] != self.in_features:
            raise ValueError(
                f"fan-in mismatch: kernel expects {self.in_features}, "
                f"activations have {a.shape[1]}"
            )
        return a

    def __call__(self, activations: np.ndarray) -> np.ndarray:
        raise NotImplementedError


class TableLayerKernel(LayerKernel):
    """Stacked digit-plane GEMM kernel for table-driven formats.

    See the module docstring for the memory layout and exactness bound.
    ``chunk_elements`` overrides the batch-chunk soft cap (``None`` reads
    the module default at call time, so tests can monkeypatch it).
    """

    def __init__(
        self,
        backend: NumericFormat,
        weights: np.ndarray,
        bias: np.ndarray | None = None,
        *,
        chunk_elements: int | None = None,
        rounding_mode: str = "rne",
    ):
        tables = backend.limb_tables()
        if tables is None:
            raise TypeError(f"{backend.name} has no limb decode tables")
        max_term_bits = 2 * tables.sig_bits + LIMB_BITS
        if max_term_bits > 62:
            raise ValueError("significand products too wide for int64 limbs")
        self.backend = backend
        self.rounding_mode = check_rounding_mode(rounding_mode)
        self._tables = tables
        self._chunk_elements = chunk_elements
        self._num_limbs = (tables.max_shift + max_term_bits) // LIMB_BITS + 2

        weights, bias = _check_weights(weights, bias)
        wp = _check_patterns(tables, weights, "weights")
        bp = None if bias is None else _check_patterns(tables, bias, "bias")
        self.out_features, self.in_features = wp.shape
        if self.in_features > 1 << 20:
            raise ValueError(f"fan-in {self.in_features} overflows int64 limb sums")

        digits = digit_planes(backend)
        planes = digits.shape[1]
        dig_w = digits[wp]  # (out, in, planes)
        live_w = [l for l in range(planes) if dig_w[:, :, l].any()]
        live_a = [m for m in range(planes) if digits[:, m].any()]
        # Activation digit gather table restricted to its live planes.
        self._act_digits = np.ascontiguousarray(digits[:, live_a])
        self._live_planes = len(live_a)

        # Single-word analysis: an exact upper bound (guard bits absorb the
        # float64 summation error) on any reachable |quire|.  When it fits
        # int64, the kernel skips limb normalization entirely.
        bound_bits = self._quire_bound_bits(tables, wp, bp)
        self._word_mode = bound_bits <= 62

        # Plane-major analysis: with |w| narrow enough that a full-fan-in
        # product row stays under 2**53 even against a whole activation
        # digit (w_bits + LIMB_BITS + log2(in) <= 53), the weights need no
        # digit split at all — one GEMM per live activation plane against
        # the exact float64 weight values.
        w_vals = np.ldexp(
            tables.signed_sig[wp].astype(np.float64), tables.shift[wp]
        )
        w_bits = 0 if not wp.size or not np.abs(w_vals).max() else int(
            np.frexp(np.abs(w_vals).max())[1]
        )
        in_bits = max(1, self.in_features).bit_length()
        self._plane_major = (
            self._word_mode and w_bits + LIMB_BITS + in_bits <= 53
        )

        out_dim = self.out_features
        self._bias_limbs = None
        self._bias_words = None
        if bp is not None and self._word_mode:
            t = tables
            self._bias_words = t.signed_sig[bp] << (
                t.shift[bp] + t.bias_extra_shift
            )
        if self._plane_major:
            self._w_t = np.ascontiguousarray(w_vals.T)  # (in, out) exact
            self._plane_tables = [
                np.ascontiguousarray(digits[:, m]) for m in live_a
            ]
            self._plane_shifts = [LIMB_BITS * m for m in live_a]
            self._splits = self._blocks = None
            self._gemm_limbs = 1
            return

        L = (
            max(1, -(-bound_bits // LIMB_BITS))
            if self._word_mode
            else self._num_limbs
        )
        self._gemm_limbs = L

        # Fan-in splits keeping every GEMM exact in float64 (module bound).
        max_products = max(1, (1 << (53 - 2 * LIMB_BITS)) // max(1, len(live_w)))
        if self.in_features <= max_products:
            splits = [(0, self.in_features)]  # no-chunk int64 fast path
        else:
            splits = [
                (i, min(self.in_features, i + max_products))
                for i in range(0, self.in_features, max_products)
            ]
        blocks = []
        for i0, i1 in splits:
            block = np.zeros(
                (self._live_planes, i1 - i0, out_dim, L), dtype=np.float64
            )
            for mi, m in enumerate(live_a):
                for l in live_w:
                    block[mi, :, :, l + m] += dig_w[:, i0:i1, l].T
            blocks.append(
                block.reshape(self._live_planes * (i1 - i0), out_dim * L)
            )
        self._splits = splits
        self._blocks = blocks
        if bp is not None and not self._word_mode:
            self._bias_limbs = self._compile_bias(bp)

    _quire_bound_bits = staticmethod(quire_bound_bits)

    def _compile_bias(self, bp: np.ndarray) -> np.ndarray:
        """Each bias pattern as quire-aligned limbs, shape (out, L)."""
        t = self._tables
        sig = t.signed_sig[bp]
        total_shift = t.shift[bp] + t.bias_extra_shift
        idx = total_shift // LIMB_BITS
        rem = total_shift - idx * LIMB_BITS
        limbs = np.zeros((self.out_features, self._num_limbs), dtype=np.int64)
        limbs[np.arange(self.out_features), idx] = sig << rem
        return limbs

    @property
    def num_limbs(self) -> int:
        """Limbs per quire in this kernel's accumulation tensors."""
        return self._num_limbs

    def __call__(self, activations: np.ndarray) -> np.ndarray:
        activations = self._check_activations(activations)
        ap = _check_patterns(self._tables, activations, "activations")
        batch = ap.shape[0]
        out_dim, L = self.out_features, self._gemm_limbs
        out = np.empty((batch, out_dim), dtype=np.uint32)
        if batch == 0:
            return out
        cap = (
            self._chunk_elements
            if self._chunk_elements is not None
            else _CHUNK_ELEMENTS
        )
        scratch = _scratch()
        if self._plane_major:
            chunk = max(1, cap // max(1, self.in_features + out_dim))
            for start in range(0, batch, chunk):
                stop = min(batch, start + chunk)
                rows = stop - start
                apc = ap[start:stop]
                words = scratch.get((rows, out_dim), np.int64, "words")
                words.fill(0)
                shifted = scratch.get((rows, out_dim), np.int64, "shifted")
                prod = scratch.get((rows, out_dim), np.float64, "prod")
                for table, shift in zip(self._plane_tables, self._plane_shifts):
                    np.matmul(table[apc], self._w_t, out=prod)
                    shifted[:] = prod  # exact: integers < 2**53
                    shifted <<= shift
                    words += shifted
                if self._bias_words is not None:
                    words += self._bias_words
                out[start:stop] = self.backend.encode_from_quire_words(
                    words, mode=self.rounding_mode
                )
            return out
        chunk = max(1, cap // max(1, out_dim * L))
        fast = len(self._splits) == 1
        for start in range(0, batch, chunk):
            stop = min(batch, start + chunk)
            rows = stop - start
            limbs = scratch.get((rows, out_dim * L), np.int64, "limbs")
            if not fast:
                limbs.fill(0)
            for (i0, i1), block in zip(self._splits, self._blocks):
                width = i1 - i0
                staged = scratch.get(
                    (rows, self._live_planes * width), np.float64, "staged"
                )
                staged.reshape(rows, self._live_planes, width)[:] = (
                    self._act_digits[ap[start:stop, i0:i1]].transpose(0, 2, 1)
                )
                prod = scratch.get((rows, out_dim * L), np.float64, "prod")
                np.matmul(staged, block, out=prod)
                if fast:
                    limbs[:] = prod  # exact: every entry is an integer < 2**53
                else:
                    # Cast before adding: accumulated limbs can exceed 2**53,
                    # where a float64-intermediate add would lose low bits.
                    limbs += prod.astype(np.int64)
            limb3 = limbs.reshape(rows, out_dim, L)
            if self._word_mode:
                # Horner-combine the limbs into one int64 word per quire;
                # every prefix is bounded by the compile-time |quire| bound.
                words = scratch.get((rows, out_dim), np.int64, "words")
                words[:] = limb3[..., L - 1]
                for k in range(L - 2, -1, -1):
                    words <<= LIMB_BITS
                    words += limb3[..., k]
                if self._bias_words is not None:
                    words += self._bias_words
                out[start:stop] = self.backend.encode_from_quire_words(
                    words, mode=self.rounding_mode
                )
            else:
                if self._bias_limbs is not None:
                    limb3 += self._bias_limbs
                out[start:stop] = self.backend.encode_from_quire_batch(
                    limb3, mode=self.rounding_mode
                )
        return out


class MatmulLayerKernel(LayerKernel):
    """Precompiled exact int64 matmul kernel (fixed point, Fig. 3).

    Fixed point needs no digit planes — patterns *are* scaled integers and
    an int64 matmul is exact at the supported widths — but compiling still
    hoists the signed reinterpretation of weights and the ``<< q`` bias
    alignment out of the per-call path.
    """

    def __init__(
        self,
        backend: NumericFormat,
        weights,
        bias=None,
        *,
        rounding_mode: str = "rne",
    ):
        from ..fixedpoint import codec as fx

        fmt = backend.fmt
        if fmt.n > 16:
            raise ValueError("vector engine supports n <= 16")
        self.backend = backend
        self.fmt = fmt
        self.rounding_mode = check_rounding_mode(rounding_mode)
        self._fx = fx
        weights, bias = _check_weights(weights, bias)
        self.out_features, self.in_features = weights.shape
        self._w_t = np.ascontiguousarray(fx.signed_array(fmt, weights).T)
        self._bias_term = (
            None if bias is None else fx.signed_array(fmt, bias) << fmt.q
        )

    def __call__(self, activations: np.ndarray) -> np.ndarray:
        activations = self._check_activations(activations)
        fmt = self.fmt
        a = self._fx.signed_array(fmt, activations)  # (batch, in)
        acc = a @ self._w_t  # exact: |terms| < 2**(2n-2), k < 2**20
        if self._bias_term is not None:
            acc = acc + self._bias_term[None, :]
        out = arithmetic_shift_round(acc, fmt.q, self.rounding_mode)
        out = np.clip(out, fmt.int_min, fmt.int_max)
        return (out & fmt.mask).astype(np.uint32)


class DotLayerKernel(LayerKernel):
    """Fallback kernel: defer to an engine's ``dot`` per call.

    Used only by custom registered families that neither expose limb
    tables nor override :meth:`NumericFormat.compile_layer`; it preserves
    the compile-then-run API without assuming anything about the engine.
    """

    def __init__(
        self,
        backend: NumericFormat,
        weights,
        bias=None,
        *,
        rounding_mode: str = "rne",
    ):
        self.backend = backend
        self.rounding_mode = check_rounding_mode(rounding_mode)
        weights, bias = _check_weights(weights, bias)
        self.out_features, self.in_features = weights.shape
        self._weights = weights
        self._bias = bias
        self._engine = backend.engine()

    def __call__(self, activations: np.ndarray) -> np.ndarray:
        activations = self._check_activations(activations)
        if self.rounding_mode == "rne":
            # Keep the default path compatible with custom engines whose
            # ``dot`` predates the rounding_mode keyword.
            return self._engine.dot(self._weights, activations, self._bias)
        return self._engine.dot(
            self._weights,
            activations,
            self._bias,
            rounding_mode=self.rounding_mode,
        )


def compile_layer(
    backend: NumericFormat,
    weights: np.ndarray,
    bias: np.ndarray | None = None,
    *,
    chunk_elements: int | None = None,
    rounding_mode: str = "rne",
) -> LayerKernel:
    """Compile ``(weights, bias)`` into the backend's best layer kernel."""
    return backend.compile_layer(
        weights, bias, chunk_elements=chunk_elements, rounding_mode=rounding_mode
    )
