"""Scalar small-float value type, mirroring :class:`repro.posit.Posit`.

Arithmetic decodes to exact rationals, computes exactly, and rounds once
with round-to-nearest-even, clamping at the maximum magnitude (the EMAC's
no-overflow-to-infinity convention).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Union

from .codec import DecodedFloat, decode, encode_float, encode_fraction
from .format import FloatFormat

__all__ = ["FloatP"]

_Number = Union[int, float, Fraction, "FloatP"]


class FloatP:
    """An immutable parametric-precision float."""

    __slots__ = ("_fmt", "_bits", "_decoded")

    def __init__(self, fmt: FloatFormat, bits: int):
        if not fmt.valid_pattern(bits):
            raise ValueError(f"pattern {bits:#x} out of range for {fmt}")
        self._fmt = fmt
        self._bits = bits
        self._decoded: DecodedFloat | None = None

    # ------------------------------------------------------------------
    @classmethod
    def from_bits(cls, fmt: FloatFormat, bits: int) -> "FloatP":
        """Wrap an existing pattern."""
        return cls(fmt, bits)

    @classmethod
    def from_value(cls, fmt: FloatFormat, value: _Number) -> "FloatP":
        """Round any finite real to the nearest float of ``fmt``."""
        if isinstance(value, FloatP):
            if value.fmt == fmt:
                return value
            return cls(fmt, encode_fraction(fmt, value.to_fraction()))
        if isinstance(value, bool):
            raise TypeError("refusing to interpret bool as a float value")
        if isinstance(value, int):
            return cls(fmt, encode_fraction(fmt, Fraction(value)))
        if isinstance(value, Fraction):
            return cls(fmt, encode_fraction(fmt, value))
        if isinstance(value, float):
            return cls(fmt, encode_float(fmt, value))
        raise TypeError(f"cannot build a float from {type(value).__name__}")

    @classmethod
    def zero(cls, fmt: FloatFormat) -> "FloatP":
        """Positive zero."""
        return cls(fmt, 0)

    @classmethod
    def max_value(cls, fmt: FloatFormat) -> "FloatP":
        """Largest positive finite value."""
        return cls(fmt, (fmt.expmax << fmt.wf) | ((1 << fmt.wf) - 1))

    # ------------------------------------------------------------------
    @property
    def fmt(self) -> FloatFormat:
        """The float format."""
        return self._fmt

    @property
    def bits(self) -> int:
        """Raw pattern."""
        return self._bits

    @property
    def decoded(self) -> DecodedFloat:
        """Lazily decoded field view."""
        if self._decoded is None:
            self._decoded = decode(self._fmt, self._bits)
        return self._decoded

    @property
    def is_zero(self) -> bool:
        """True for either signed zero."""
        d = self.decoded
        return d.is_zero

    @property
    def is_negative(self) -> bool:
        """True when the sign bit is set (note: includes -0)."""
        return bool(self._bits & self._fmt.sign_mask)

    def to_fraction(self) -> Fraction:
        """Exact rational value."""
        return self.decoded.to_fraction()

    def __float__(self) -> float:
        return float(self.to_fraction())

    # ------------------------------------------------------------------
    def _coerce(self, other: _Number) -> "FloatP":
        if isinstance(other, FloatP):
            if other._fmt != self._fmt:
                raise TypeError(f"format mismatch: {self._fmt} vs {other._fmt}")
            return other
        return FloatP.from_value(self._fmt, other)

    def _round(self, value: Fraction) -> "FloatP":
        return FloatP(self._fmt, encode_fraction(self._fmt, value))

    def __add__(self, other: _Number) -> "FloatP":
        return self._round(self.to_fraction() + self._coerce(other).to_fraction())

    __radd__ = __add__

    def __sub__(self, other: _Number) -> "FloatP":
        return self._round(self.to_fraction() - self._coerce(other).to_fraction())

    def __rsub__(self, other: _Number) -> "FloatP":
        return self._coerce(other).__sub__(self)

    def __mul__(self, other: _Number) -> "FloatP":
        return self._round(self.to_fraction() * self._coerce(other).to_fraction())

    __rmul__ = __mul__

    def __truediv__(self, other: _Number) -> "FloatP":
        rhs = self._coerce(other)
        if rhs.to_fraction() == 0:
            raise ZeroDivisionError("float division by zero (no Inf in datapath)")
        return self._round(self.to_fraction() / rhs.to_fraction())

    def __neg__(self) -> "FloatP":
        return FloatP(self._fmt, self._bits ^ self._fmt.sign_mask)

    def __abs__(self) -> "FloatP":
        return FloatP(self._fmt, self._bits & ~self._fmt.sign_mask & self._fmt.mask)

    def fma(self, mul: _Number, add: _Number) -> "FloatP":
        """Fused multiply-add with a single rounding."""
        m = self._coerce(mul)
        a = self._coerce(add)
        return self._round(self.to_fraction() * m.to_fraction() + a.to_fraction())

    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if isinstance(other, FloatP):
            # -0 == +0, like IEEE.
            return self._fmt == other._fmt and self.to_fraction() == other.to_fraction()
        if isinstance(other, (int, float, Fraction)):
            try:
                return self.to_fraction() == Fraction(other)
            except (ValueError, OverflowError):
                return False
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self._fmt, self.to_fraction()))

    def __lt__(self, other: _Number) -> bool:
        return self.to_fraction() < self._coerce(other).to_fraction()

    def __le__(self, other: _Number) -> bool:
        return self.to_fraction() <= self._coerce(other).to_fraction()

    def __gt__(self, other: _Number) -> bool:
        return self.to_fraction() > self._coerce(other).to_fraction()

    def __ge__(self, other: _Number) -> bool:
        return self.to_fraction() >= self._coerce(other).to_fraction()

    def __repr__(self) -> str:
        return (
            f"FloatP({self._fmt}, {float(self)!r}, "
            f"bits={self._bits:#0{2 + (self._fmt.n + 3) // 4}x})"
        )
