"""Encode/decode for parametric small floats.

Decoding mirrors the input stage of the paper's floating-point EMAC
(Fig. 4): subnormal detection sets the hidden bit to zero and bumps the
stored exponent to 1 so that value = significand * 2**(exp - bias - wf)
uniformly for normals and subnormals.

Encoding implements round-to-nearest-even with correct subnormal handling
and *clamping at the maximum magnitude* — the EMAC never overflows to
infinity (paper Section III-C), and the reserved all-ones exponent is never
produced.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction

from .format import FloatFormat

__all__ = ["DecodedFloat", "decode", "encode_exact", "encode_fraction", "encode_float"]


@dataclass(frozen=True)
class DecodedFloat:
    """Fields extracted from a float bit pattern.

    ``significand`` includes the hidden bit (0 for subnormals/zero) and has
    ``wf + 1`` bits; the represented magnitude is
    ``significand * 2**(scale - wf)`` where ``scale`` is the unbiased
    exponent (subnormals use ``1 - bias``).
    """

    fmt: FloatFormat
    bits: int
    sign: int
    exponent_field: int
    fraction: int
    is_zero: bool
    is_subnormal: bool
    is_reserved: bool  # all-ones exponent (Inf/NaN in IEEE); not produced here

    @property
    def significand(self) -> int:
        """Hidden bit | fraction, ``wf + 1`` bits."""
        hidden = 0 if (self.is_subnormal or self.is_zero) else 1
        return (hidden << self.fmt.wf) | self.fraction

    @property
    def scale(self) -> int:
        """Unbiased exponent of the significand's hidden-bit position."""
        if self.is_subnormal or self.is_zero:
            return 1 - self.fmt.bias
        return self.exponent_field - self.fmt.bias

    def to_fraction(self) -> Fraction:
        """Exact rational value (reserved patterns raise)."""
        if self.is_reserved:
            raise ValueError("reserved (Inf/NaN) pattern has no rational value")
        if self.is_zero or self.significand == 0:
            return Fraction(0)
        mag = Fraction(self.significand) * _pow2(self.scale - self.fmt.wf)
        return -mag if self.sign else mag


def _pow2(e: int) -> Fraction:
    if e >= 0:
        return Fraction(1 << e)
    return Fraction(1, 1 << -e)


def decode(fmt: FloatFormat, bits: int) -> DecodedFloat:
    """Split a pattern into sign / exponent / fraction with subnormal flags."""
    if not fmt.valid_pattern(bits):
        raise ValueError(f"pattern {bits:#x} out of range for {fmt}")
    sign = (bits >> (fmt.n - 1)) & 1
    exponent_field = (bits >> fmt.wf) & ((1 << fmt.we) - 1)
    fraction = bits & ((1 << fmt.wf) - 1)
    is_zero = exponent_field == 0 and fraction == 0
    is_subnormal = exponent_field == 0 and fraction != 0
    is_reserved = exponent_field == (1 << fmt.we) - 1
    return DecodedFloat(
        fmt=fmt,
        bits=bits,
        sign=sign,
        exponent_field=exponent_field,
        fraction=fraction,
        is_zero=is_zero,
        is_subnormal=is_subnormal,
        is_reserved=is_reserved,
    )


def encode_exact(fmt: FloatFormat, sign: int, mantissa: int, exponent: int) -> int:
    """Round ``(-1)**sign * mantissa * 2**exponent`` to the nearest float.

    Exact for arbitrarily wide mantissas.  Overflow clamps to ``+-max``;
    values below half the smallest subnormal round to (signed) zero.
    """
    if mantissa < 0:
        raise ValueError("mantissa must be non-negative; use the sign argument")
    if mantissa == 0:
        return (sign << (fmt.n - 1)) if sign else 0

    length = mantissa.bit_length()
    scale = exponent + length - 1  # floor(log2(value))

    if scale > fmt.max_scale:
        return _pack(fmt, sign, fmt.expmax, (1 << fmt.wf) - 1)

    # Position of the result LSB: for normals it is scale - wf; for
    # subnormals it is pinned at min_scale = 1 - bias - wf.
    lsb_exp = max(scale - fmt.wf, fmt.min_scale)
    shift = lsb_exp - exponent  # how many low bits of mantissa to drop
    if shift <= 0:
        kept = mantissa << -shift
        rounded = kept
    else:
        kept = mantissa >> shift
        guard = (mantissa >> (shift - 1)) & 1
        sticky = 1 if mantissa & ((1 << (shift - 1)) - 1) else 0
        rounded = kept + (guard & ((kept & 1) | sticky))

    # ``rounded`` is the significand in units of 2**lsb_exp.  Rounding may
    # have carried out (e.g. 1.111... -> 10.000), which raises the scale.
    if rounded == 0:
        return (sign << (fmt.n - 1)) if sign else 0

    width = rounded.bit_length()
    if lsb_exp == fmt.min_scale and width <= fmt.wf:
        # Subnormal result: exponent field 0, no hidden bit.
        return _pack(fmt, sign, 0, rounded)
    # Normal result: normalize so the hidden bit sits at position wf.
    new_scale = lsb_exp + width - 1
    if new_scale > fmt.max_scale:
        return _pack(fmt, sign, fmt.expmax, (1 << fmt.wf) - 1)
    # Align significand to wf+1 bits.  A carry-out of rounding (1.11... ->
    # 10.0...) leaves trailing zeros, so the narrowing shift is exact.
    if width > fmt.wf + 1:
        sig = rounded >> (width - (fmt.wf + 1))
    else:
        sig = rounded << (fmt.wf + 1 - width)
    frac = sig & ((1 << fmt.wf) - 1)
    return _pack(fmt, sign, new_scale + fmt.bias, frac)


def _pack(fmt: FloatFormat, sign: int, exponent_field: int, fraction: int) -> int:
    return (sign << (fmt.n - 1)) | (exponent_field << fmt.wf) | fraction


def encode_fraction(fmt: FloatFormat, value: Fraction) -> int:
    """Round an exact rational to the nearest float pattern."""
    if value == 0:
        return 0
    sign = 1 if value < 0 else 0
    magnitude = -value if sign else value
    num, den = magnitude.numerator, magnitude.denominator
    extra = fmt.n + fmt.wf + 8 + max(0, den.bit_length() - num.bit_length() + 1)
    shifted = num << extra
    q, r = divmod(shifted, den)
    mantissa = (q << 1) | (1 if r else 0)
    return encode_exact(fmt, sign, mantissa, -(extra + 1))


def encode_float(fmt: FloatFormat, value: float) -> int:
    """Round a Python float to the nearest pattern (finite inputs only).

    Signed zero is preserved (``-0.0`` encodes to the negative-zero
    pattern), keeping quantize/decode idempotent on the zero patterns.
    """
    if value != value or value in (float("inf"), float("-inf")):
        raise ValueError("cannot encode non-finite float")
    if value == 0:
        return fmt.sign_mask if math.copysign(1.0, value) < 0 else 0
    return encode_fraction(fmt, Fraction(value))
