"""Parametric IEEE-style floating-point format descriptor.

The paper's floating-point EMAC (Fig. 4) takes inputs with one sign bit,
``we`` exponent bits, and ``wf`` fraction bits, and computes the format
characteristics as:

    bias    = 2**(we-1) - 1
    expmax  = 2**we - 2
    max     = 2**(expmax - bias) * (2 - 2**-wf)
    min     = 2**(1 - bias) * 2**-wf        (smallest subnormal)

The all-ones exponent is reserved (as in IEEE 754) but the EMAC datapath
never produces it: results clamp at ``max`` instead of overflowing to
infinity, and inputs are assumed finite.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from functools import lru_cache
import math

__all__ = ["FloatFormat", "float8_143", "float8_152", "binary16", "float_format"]


@dataclass(frozen=True)
class FloatFormat:
    """Immutable descriptor of a ``(1, we, wf)`` floating-point format."""

    we: int
    wf: int

    def __post_init__(self) -> None:
        if not isinstance(self.we, int) or not isinstance(self.wf, int):
            raise TypeError("we and wf must be integers")
        if self.we < 2:
            raise ValueError(f"we must be >= 2 (got {self.we})")
        if self.wf < 0:
            raise ValueError(f"wf must be >= 0 (got {self.wf})")

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Total width in bits: ``1 + we + wf``."""
        return 1 + self.we + self.wf

    @property
    def bias(self) -> int:
        """Exponent bias, ``2**(we-1) - 1``."""
        return (1 << (self.we - 1)) - 1

    @property
    def expmax(self) -> int:
        """Largest non-reserved biased exponent, ``2**we - 2``."""
        return (1 << self.we) - 2

    @property
    def mask(self) -> int:
        """All-ones mask of width ``n``."""
        return (1 << self.n) - 1

    @property
    def sign_mask(self) -> int:
        """Mask selecting the sign bit."""
        return 1 << (self.n - 1)

    @property
    def num_patterns(self) -> int:
        """Total number of bit patterns, ``2**n``."""
        return 1 << self.n

    # ------------------------------------------------------------------
    @property
    def max_value(self) -> Fraction:
        """Largest finite magnitude."""
        scale = self.expmax - self.bias
        sig = Fraction(2) - Fraction(1, 1 << self.wf)
        return _pow2(scale) * sig

    @property
    def min_value(self) -> Fraction:
        """Smallest positive (subnormal) magnitude."""
        return _pow2(1 - self.bias - self.wf)

    @property
    def min_normal(self) -> Fraction:
        """Smallest positive normal magnitude, ``2**(1-bias)``."""
        return _pow2(1 - self.bias)

    @property
    def max_scale(self) -> int:
        """Power-of-two scale of the largest normal, ``expmax - bias``."""
        return self.expmax - self.bias

    @property
    def min_scale(self) -> int:
        """Power-of-two weight of the subnormal LSB, ``1 - bias - wf``."""
        return 1 - self.bias - self.wf

    @property
    def dynamic_range(self) -> float:
        """``log10(max / min)`` as used by the paper's Fig. 6."""
        return float(math.log10(self.max_value / self.min_value))

    def accumulator_bits(self, k: int) -> int:
        """Width of the exact accumulator for ``k`` products — paper eq. (3).

        ``wa = ceil(log2 k) + 2 * ceil(log2(max / min)) + 2``.
        """
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        carry = 0 if k == 1 else math.ceil(math.log2(k))
        span = math.ceil(math.log2(self.max_value / self.min_value))
        return carry + 2 * span + 2

    # ------------------------------------------------------------------
    def valid_pattern(self, bits: int) -> bool:
        """Whether ``bits`` is a valid ``n``-bit pattern."""
        return 0 <= bits <= self.mask

    def all_patterns(self) -> range:
        """Iterate every bit pattern."""
        return range(self.num_patterns)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"float<1,{self.we},{self.wf}>"


def _pow2(e: int) -> Fraction:
    if e >= 0:
        return Fraction(1 << e)
    return Fraction(1, 1 << -e)


@lru_cache(maxsize=None)
def float_format(we: int, wf: int) -> FloatFormat:
    """Memoized :class:`FloatFormat` constructor."""
    return FloatFormat(we, wf)


#: 8-bit float with a 4-bit exponent — one of the paper's best performers.
float8_143 = float_format(4, 3)
#: 8-bit float with a 5-bit exponent (more range, less precision).
float8_152 = float_format(5, 2)
#: IEEE half precision, for reference experiments.
binary16 = float_format(5, 10)
