"""Parametric IEEE-style small floats (1 sign, we exponent, wf fraction bits).

Subnormal-correct decode/encode with round-to-nearest-even, clamping at the
maximum magnitude (the EMAC datapath never overflows to infinity), a scalar
:class:`FloatP` value type, and lookup tables for vectorized processing.
"""

from .format import FloatFormat, binary16, float8_143, float8_152, float_format
from .codec import DecodedFloat, decode, encode_exact, encode_float, encode_fraction
from .value import FloatP
from .tables import FloatTables, dequantize_array, quantize_array, tables_for

__all__ = [
    "FloatFormat",
    "float_format",
    "float8_143",
    "float8_152",
    "binary16",
    "DecodedFloat",
    "decode",
    "encode_exact",
    "encode_float",
    "encode_fraction",
    "FloatP",
    "FloatTables",
    "tables_for",
    "quantize_array",
    "dequantize_array",
]
