"""Lookup tables for vectorized small-float processing.

Same role as :mod:`repro.posit.tables`: per-pattern decode arrays indexed by
bit pattern, used by the vectorized EMAC engine.  Reserved (all-ones
exponent) patterns are flagged and mapped to NaN in ``float_value``; the
Deep Positron datapath never produces them.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from .codec import decode
from .format import FloatFormat

__all__ = ["FloatTables", "tables_for"]


@dataclass(frozen=True)
class FloatTables:
    """Per-pattern decode tables for a :class:`FloatFormat`.

    ``significand`` carries the hidden bit (``wf + 1`` bits, 0-hidden for
    subnormals); the magnitude of pattern ``p`` is
    ``significand[p] * 2**(scale[p] - wf)``.
    """

    fmt: FloatFormat
    sign: np.ndarray
    scale: np.ndarray
    significand: np.ndarray
    is_zero: np.ndarray
    is_reserved: np.ndarray
    float_value: np.ndarray
    negate: np.ndarray
    relu: np.ndarray

    @property
    def frac_shift(self) -> int:
        """Fraction bits of :attr:`significand`: ``wf``."""
        return self.fmt.wf


def _build(fmt: FloatFormat) -> FloatTables:
    count = fmt.num_patterns
    sign = np.zeros(count, dtype=np.int8)
    scale = np.zeros(count, dtype=np.int32)
    significand = np.zeros(count, dtype=np.int64)
    is_zero = np.zeros(count, dtype=bool)
    is_reserved = np.zeros(count, dtype=bool)
    float_value = np.empty(count, dtype=np.float64)
    negate = np.zeros(count, dtype=np.uint32)
    relu = np.zeros(count, dtype=np.uint32)

    for bits in fmt.all_patterns():
        d = decode(fmt, bits)
        negate[bits] = bits ^ fmt.sign_mask
        if d.is_reserved:
            is_reserved[bits] = True
            float_value[bits] = np.nan
            relu[bits] = 0
            continue
        sign[bits] = d.sign
        scale[bits] = d.scale
        significand[bits] = d.significand
        is_zero[bits] = d.significand == 0
        value = float(d.to_fraction())
        if d.significand == 0 and d.sign:
            value = -0.0  # keep the sign of zero through decode
        float_value[bits] = value
        relu[bits] = 0 if d.sign else bits
    return FloatTables(
        fmt=fmt,
        sign=sign,
        scale=scale,
        significand=significand,
        is_zero=is_zero,
        is_reserved=is_reserved,
        float_value=float_value,
        negate=negate,
        relu=relu,
    )


@lru_cache(maxsize=32)
def tables_for(fmt: FloatFormat) -> FloatTables:
    """Build (or fetch cached) decode tables for ``fmt`` (n <= 16)."""
    if fmt.n > 16:
        raise ValueError(f"decode tables limited to n <= 16; {fmt} is too wide")
    return _build(fmt)


@lru_cache(maxsize=32)
def _sorted_value_table(fmt: FloatFormat):
    """(values, patterns) of every real pattern, sorted ascending by value.

    The stable sort keeps +0 (pattern 0) ahead of -0 among the equal keys.
    """
    t = tables_for(fmt)
    real = ~t.is_reserved
    patterns = np.nonzero(real)[0].astype(np.uint32)
    values = t.float_value[real]
    order = np.argsort(values, kind="stable")
    return values[order], patterns[order]


def quantize_array(fmt: FloatFormat, values: np.ndarray) -> np.ndarray:
    """Round a float array to patterns of ``fmt`` (uint32), vectorized.

    Nearest-value search over the sorted pattern table with ties to the
    even pattern: consecutive same-sign patterns differ by one ULP, so this
    reproduces the scalar encoder's round-to-nearest-even bit for bit
    (including the signed-zero underflow results).
    """
    arr = np.asarray(values, dtype=np.float64)
    flat = arr.ravel()
    if not np.all(np.isfinite(flat)):
        raise ValueError("cannot quantize non-finite values")
    table_values, table_patterns = _sorted_value_table(fmt)
    idx = np.searchsorted(table_values, flat, side="left")
    idx = np.clip(idx, 1, len(table_values) - 1)
    left = table_values[idx - 1]
    right = table_values[idx]
    pick_right = (right - flat) < (flat - left)
    tie = (right - flat) == (flat - left)
    # On a tie pick the neighbor whose pattern is even (RNE in pattern space).
    right_even = (table_patterns[idx] & 1) == 0
    out_idx = np.where(pick_right | (tie & right_even), idx, idx - 1)
    # Saturate exact out-of-range values.
    out_idx = np.where(flat <= table_values[0], 0, out_idx)
    out_idx = np.where(flat >= table_values[-1], len(table_values) - 1, out_idx)
    result = table_patterns[out_idx]
    # The scalar encoder returns *signed* zero on underflow; the value table
    # cannot distinguish +-0, so patch magnitude-zero results by input sign
    # (signbit, so a -0.0 input keeps its sign and quantize stays idempotent
    # over decode).
    mag_zero = (result & np.uint32(fmt.mask & ~fmt.sign_mask)) == 0
    result = np.where(
        mag_zero,
        np.where(np.signbit(flat), np.uint32(fmt.sign_mask), np.uint32(0)),
        result,
    )
    return result.astype(np.uint32).reshape(arr.shape)


def dequantize_array(fmt: FloatFormat, patterns: np.ndarray) -> np.ndarray:
    """Map patterns back to float64 values via the tables."""
    t = tables_for(fmt)
    return t.float_value[np.asarray(patterns, dtype=np.int64)]
