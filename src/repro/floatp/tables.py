"""Lookup tables for vectorized small-float processing.

Same role as :mod:`repro.posit.tables`: per-pattern decode arrays indexed by
bit pattern, used by the vectorized EMAC engine.  Reserved (all-ones
exponent) patterns are flagged and mapped to NaN in ``float_value``; the
Deep Positron datapath never produces them.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from .codec import decode
from .format import FloatFormat
from .value import FloatP

__all__ = ["FloatTables", "tables_for"]


@dataclass(frozen=True)
class FloatTables:
    """Per-pattern decode tables for a :class:`FloatFormat`.

    ``significand`` carries the hidden bit (``wf + 1`` bits, 0-hidden for
    subnormals); the magnitude of pattern ``p`` is
    ``significand[p] * 2**(scale[p] - wf)``.
    """

    fmt: FloatFormat
    sign: np.ndarray
    scale: np.ndarray
    significand: np.ndarray
    is_zero: np.ndarray
    is_reserved: np.ndarray
    float_value: np.ndarray
    negate: np.ndarray
    relu: np.ndarray

    @property
    def frac_shift(self) -> int:
        """Fraction bits of :attr:`significand`: ``wf``."""
        return self.fmt.wf


def _build(fmt: FloatFormat) -> FloatTables:
    count = fmt.num_patterns
    sign = np.zeros(count, dtype=np.int8)
    scale = np.zeros(count, dtype=np.int32)
    significand = np.zeros(count, dtype=np.int64)
    is_zero = np.zeros(count, dtype=bool)
    is_reserved = np.zeros(count, dtype=bool)
    float_value = np.empty(count, dtype=np.float64)
    negate = np.zeros(count, dtype=np.uint32)
    relu = np.zeros(count, dtype=np.uint32)

    for bits in fmt.all_patterns():
        d = decode(fmt, bits)
        negate[bits] = bits ^ fmt.sign_mask
        if d.is_reserved:
            is_reserved[bits] = True
            float_value[bits] = np.nan
            relu[bits] = 0
            continue
        sign[bits] = d.sign
        scale[bits] = d.scale
        significand[bits] = d.significand
        is_zero[bits] = d.significand == 0
        float_value[bits] = float(d.to_fraction())
        relu[bits] = 0 if d.sign else bits
    return FloatTables(
        fmt=fmt,
        sign=sign,
        scale=scale,
        significand=significand,
        is_zero=is_zero,
        is_reserved=is_reserved,
        float_value=float_value,
        negate=negate,
        relu=relu,
    )


@lru_cache(maxsize=32)
def tables_for(fmt: FloatFormat) -> FloatTables:
    """Build (or fetch cached) decode tables for ``fmt`` (n <= 16)."""
    if fmt.n > 16:
        raise ValueError(f"decode tables limited to n <= 16; {fmt} is too wide")
    return _build(fmt)


def quantize_array(fmt: FloatFormat, values: np.ndarray) -> np.ndarray:
    """Round a float array to patterns of ``fmt`` (uint32), elementwise."""
    flat = np.asarray(values, dtype=np.float64).ravel()
    if not np.all(np.isfinite(flat)):
        raise ValueError("cannot quantize non-finite values")
    out = np.empty(flat.shape, dtype=np.uint32)
    cache: dict[float, int] = {}
    for i, v in enumerate(flat):
        key = float(v)
        bits = cache.get(key)
        if bits is None:
            bits = FloatP.from_value(fmt, key).bits
            cache[key] = bits
        out[i] = bits
    return out.reshape(np.asarray(values).shape)


def dequantize_array(fmt: FloatFormat, patterns: np.ndarray) -> np.ndarray:
    """Map patterns back to float64 values via the tables."""
    t = tables_for(fmt)
    return t.float_value[np.asarray(patterns, dtype=np.int64)]
