"""Lookup tables for vectorized posit processing.

For the bit widths the paper studies (n <= 8) a posit format has at most 256
patterns, so decode and many unary operations become table lookups.  The
vectorized EMAC engine (:mod:`repro.core.vector`) indexes these numpy arrays
with whole tensors of bit patterns at once.

Tables are cached per format; building one costs a single pass over all
``2**n`` patterns with the scalar decoder, which also makes the tables a
faithful mirror of the reference implementation by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from .decode import decode
from .format import PositFormat

__all__ = ["PositTables", "tables_for", "MAX_TABLE_BITS"]

#: Largest n for which full decode tables are built (2**16 entries).
MAX_TABLE_BITS = 16


@dataclass(frozen=True)
class PositTables:
    """Per-format decode/operation tables, indexed by bit pattern.

    Attributes
    ----------
    fmt:
        The posit format.
    sign:
        int8; 1 where the pattern encodes a negative value.
    scale:
        int32; ``k * 2**es + e``.  Zero for the reserved patterns (mask with
        ``is_zero``/``is_nar`` before use).
    significand:
        int64; significand left-aligned to ``1 + max_fraction_bits`` bits
        (hidden bit included), i.e. exactly the EMAC multiplier input.
    is_zero / is_nar:
        bool masks for the reserved patterns.
    float_value:
        float64 value of each pattern (NaR maps to NaN).  Used for argmax
        readout and diagnostics, not for exact arithmetic.
    negate:
        uint32; pattern -> pattern of the negated value (two's complement).
    relu:
        uint32; pattern -> pattern after a ReLU (negatives and NaR to zero).
    """

    fmt: PositFormat
    sign: np.ndarray
    scale: np.ndarray
    significand: np.ndarray
    is_zero: np.ndarray
    is_nar: np.ndarray
    float_value: np.ndarray
    negate: np.ndarray
    relu: np.ndarray

    @property
    def frac_shift(self) -> int:
        """Fraction bits of :attr:`significand`: ``max_fraction_bits``."""
        return self.fmt.max_fraction_bits


def _build(fmt: PositFormat) -> PositTables:
    count = fmt.num_patterns
    sign = np.zeros(count, dtype=np.int8)
    scale = np.zeros(count, dtype=np.int32)
    significand = np.zeros(count, dtype=np.int64)
    is_zero = np.zeros(count, dtype=bool)
    is_nar = np.zeros(count, dtype=bool)
    float_value = np.empty(count, dtype=np.float64)
    negate = np.zeros(count, dtype=np.uint32)
    relu = np.zeros(count, dtype=np.uint32)

    for bits in fmt.all_patterns():
        d = decode(fmt, bits)
        if d.is_zero:
            float_value[bits] = 0.0
            negate[bits] = bits
            relu[bits] = bits
            is_zero[bits] = True
            continue
        if d.is_nar:
            float_value[bits] = np.nan
            negate[bits] = bits
            relu[bits] = fmt.zero_pattern
            is_nar[bits] = True
            continue
        sign[bits] = d.sign
        scale[bits] = d.scale
        significand[bits] = d.significand_fixed
        float_value[bits] = float(d.to_fraction())
        negate[bits] = ((1 << fmt.n) - bits) & fmt.mask
        relu[bits] = fmt.zero_pattern if d.sign else bits
    return PositTables(
        fmt=fmt,
        sign=sign,
        scale=scale,
        significand=significand,
        is_zero=is_zero,
        is_nar=is_nar,
        float_value=float_value,
        negate=negate,
        relu=relu,
    )


@lru_cache(maxsize=32)
def tables_for(fmt: PositFormat) -> PositTables:
    """Build (or fetch cached) lookup tables for ``fmt``.

    Raises
    ------
    ValueError
        If ``fmt.n`` exceeds :data:`MAX_TABLE_BITS`; wider formats must use
        the scalar path.
    """
    if fmt.n > MAX_TABLE_BITS:
        raise ValueError(
            f"decode tables limited to n <= {MAX_TABLE_BITS}; {fmt} is too wide"
        )
    return _build(fmt)


@lru_cache(maxsize=32)
def _boundary_table(fmt: PositFormat):
    """Patterns in value order plus their pattern-space rounding boundaries.

    The boundary separating "round to pattern p" from "round to p+1" under
    the paper's Algorithm-2 guard/sticky rounding is exactly the value of
    the (n+1)-bit, same-es posit whose (signed) pattern is ``2p + 1`` — the
    classic posit interleaving property.  Representing boundaries this way
    makes the vectorized quantizer bit-identical to the scalar encoder even
    across regime-taper boundaries, where value-space "nearest" differs.
    """
    from .format import standard_format

    wide = standard_format(fmt.n + 1, fmt.es)
    signed = np.arange(-(1 << (fmt.n - 1)) + 1, 1 << (fmt.n - 1), dtype=np.int64)
    patterns = (signed % (1 << fmt.n)).astype(np.uint32)
    mids = (2 * signed[:-1] + 1) % (1 << wide.n)
    boundaries = np.array(
        [float(decode(wide, int(m)).to_fraction()) for m in mids]
    )
    # A tie exactly on boundaries[i] resolves to whichever of patterns
    # i / i+1 has the even *magnitude* encoding (Algorithm 2: round = guard
    # & (lsb | sticky) with sticky == 0 keeps an even-lsb pattern).
    boundary_to_lower = (np.abs(signed[:-1]) % 2) == 0
    return patterns, boundaries, boundary_to_lower


def quantize_array(fmt: PositFormat, values: np.ndarray) -> np.ndarray:
    """Round a float array to posit patterns (uint32), vectorized.

    Bit-identical to the scalar RNE encoder (Algorithm 2's pattern-space
    rounding, via :func:`_boundary_table`).  Non-finite inputs raise;
    sanitize upstream.  This is the reference quantizer used to convert
    trained float32 parameters into Deep Positron weight memories.
    """
    arr = np.asarray(values, dtype=np.float64)
    flat = arr.ravel()
    if not np.all(np.isfinite(flat)):
        raise ValueError("cannot quantize non-finite values to posit")
    patterns, boundaries, to_lower = _boundary_table(fmt)
    idx = np.searchsorted(boundaries, flat, side="left")
    hit = np.minimum(idx, len(boundaries) - 1)
    tie = boundaries[hit] == flat
    out_idx = idx + np.where(tie & ~to_lower[hit], 1, 0)
    out_idx = np.clip(out_idx, 0, len(patterns) - 1)
    result = patterns[out_idx]
    # Saturation and the never-round-to-zero rule.
    maxpos = float(fmt.maxpos)
    minpos = float(fmt.minpos)
    neg_max = ((1 << fmt.n) - fmt.maxpos_pattern) & fmt.mask
    neg_min = ((1 << fmt.n) - fmt.minpos_pattern) & fmt.mask
    result = np.where(flat >= maxpos, np.uint32(fmt.maxpos_pattern), result)
    result = np.where(flat <= -maxpos, np.uint32(neg_max), result)
    result = np.where((flat > 0) & (flat < minpos), np.uint32(fmt.minpos_pattern), result)
    result = np.where((flat < 0) & (flat > -minpos), np.uint32(neg_min), result)
    result = np.where(flat == 0.0, np.uint32(fmt.zero_pattern), result)
    return result.astype(np.uint32).reshape(arr.shape)


def dequantize_array(fmt: PositFormat, patterns: np.ndarray) -> np.ndarray:
    """Map posit patterns back to float64 values via the tables."""
    t = tables_for(fmt)
    return t.float_value[np.asarray(patterns, dtype=np.int64)]


def nearest_pattern_table(fmt: PositFormat) -> np.ndarray:
    """Sorted (value, pattern) pairs for all real patterns of ``fmt``.

    Returns a ``(2**n - 1, 2)`` float64/uint32 structured view used by the
    fast midpoint-bisection quantizer in :mod:`repro.nn.quantize`.
    """
    t = tables_for(fmt)
    real = ~t.is_nar
    patterns = np.nonzero(real)[0].astype(np.uint32)
    values = t.float_value[real]
    order = np.argsort(values, kind="stable")
    return values[order], patterns[order]
