"""Correctly rounded posit math functions and IEEE interchange.

Beyond the ALU operations of :class:`~repro.posit.value.Posit`, a usable
posit library needs a few transcendental-adjacent functions and a bridge to
IEEE 754 data.  Everything here is *correctly rounded*: computed exactly
(or to provably sufficient precision) and rounded once.
"""

from __future__ import annotations

from fractions import Fraction
import struct

from .encode import encode_exact, encode_fraction
from .format import PositFormat
from .value import Posit

__all__ = ["sqrt", "reciprocal", "pow2_int", "from_float32_bits", "to_float32_bits"]


def _isqrt(n: int) -> int:
    """Floor integer square root (math.isqrt exists, kept explicit)."""
    import math

    return math.isqrt(n)


def sqrt(p: Posit) -> Posit:
    """Correctly rounded posit square root.

    NaR for negative inputs and NaR (posits have no -0); exact zero maps to
    zero.
    """
    fmt = p.fmt
    if p.is_nar or p.is_negative:
        return Posit.nar(fmt)
    if p.is_zero:
        return Posit.zero(fmt)
    value = p.to_fraction()
    # Work with ~3n guard bits: far beyond any rounding boundary ambiguity
    # for an n-bit posit (boundaries are (n+1)-bit posit values).
    precision = 3 * fmt.n + 8
    num, den = value.numerator, value.denominator
    # Normalize to sqrt(m) * 2**e with m in [1, 4).
    e = num.bit_length() - den.bit_length()
    if e % 2:
        e -= 1
    m = value / Fraction(2) ** e  # in [1, 4) roughly
    scaled = (m.numerator << (2 * precision)) // m.denominator
    root = _isqrt(scaled)
    exact = root * root * m.denominator == m.numerator << (2 * precision)
    mantissa = (root << 1) | (0 if exact else 1)  # sticky bit
    exponent = e // 2 - precision - 1
    return Posit(fmt, encode_exact(fmt, 0, mantissa, exponent))


def reciprocal(p: Posit) -> Posit:
    """Correctly rounded ``1 / p`` (NaR for zero and NaR inputs)."""
    fmt = p.fmt
    if p.is_nar or p.is_zero:
        return Posit.nar(fmt)
    return Posit(fmt, encode_fraction(fmt, 1 / p.to_fraction()))


def pow2_int(fmt: PositFormat, k: int) -> Posit:
    """The posit nearest to ``2**k`` (saturates at maxpos/minpos)."""
    return Posit(fmt, encode_exact(fmt, 0, 1, k))


def from_float32_bits(fmt: PositFormat, bits: int) -> Posit:
    """Convert an IEEE binary32 bit pattern to the nearest posit.

    Infinities and NaN map to NaR; signed zero maps to posit zero.
    """
    if not 0 <= bits <= 0xFFFFFFFF:
        raise ValueError("binary32 pattern out of range")
    value = struct.unpack(">f", struct.pack(">I", bits))[0]
    if value != value or value in (float("inf"), float("-inf")):
        return Posit.nar(fmt)
    return Posit.from_value(fmt, float(value))


def to_float32_bits(p: Posit) -> int:
    """Convert a posit to the nearest IEEE binary32 bit pattern.

    NaR maps to the canonical quiet NaN; values beyond binary32's range
    overflow to infinity per IEEE semantics.
    """
    if p.is_nar:
        return 0x7FC00000
    value = float(p)  # correctly rounded: float() goes through Fraction
    return struct.unpack(">I", struct.pack(">f", value))[0]
