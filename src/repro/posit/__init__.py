"""Posit (Type III unum) arithmetic.

Parametric ``(n, es)`` posits: format descriptors, bit-level decode
(paper Algorithm 1), round-to-nearest-even encode (paper Algorithm 2's
convergent rounding), a correctly rounded scalar :class:`Posit` value type,
the exact :class:`Quire` accumulator (paper eq. 4), and lookup tables for
vectorized processing.
"""

from .format import PositFormat, posit8, posit16, posit32, standard_format
from .decode import DecodedPosit, decode, regime_of_run, regime_run_length
from .encode import encode_exact, encode_float, encode_fraction
from .value import NaRError, Posit
from .quire import Quire
from .tables import (
    PositTables,
    dequantize_array,
    nearest_pattern_table,
    quantize_array,
    tables_for,
)
from .math import from_float32_bits, pow2_int, reciprocal, sqrt, to_float32_bits

__all__ = [
    "PositFormat",
    "posit8",
    "posit16",
    "posit32",
    "standard_format",
    "DecodedPosit",
    "decode",
    "regime_of_run",
    "regime_run_length",
    "encode_exact",
    "encode_float",
    "encode_fraction",
    "NaRError",
    "Posit",
    "Quire",
    "PositTables",
    "tables_for",
    "quantize_array",
    "dequantize_array",
    "nearest_pattern_table",
    "sqrt",
    "reciprocal",
    "pow2_int",
    "from_float32_bits",
    "to_float32_bits",
]
