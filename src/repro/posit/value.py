"""Scalar posit value type.

:class:`Posit` wraps an ``(n, es)`` format plus an ``n``-bit pattern and
provides exact arithmetic: every operation decodes to exact rationals,
computes the true result, and rounds once with round-to-nearest-even.  This
is the semantics of a correctly rounded posit ALU and is what the EMAC
reference models are verified against.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Union

from .decode import DecodedPosit, decode
from .encode import encode_exact, encode_fraction, encode_float
from .format import PositFormat

__all__ = ["Posit", "NaRError"]

_Number = Union[int, float, Fraction, "Posit"]


class NaRError(ArithmeticError):
    """Raised when an operation's result is NaR and strict mode is active."""


class Posit:
    """An immutable posit number.

    Construct from a bit pattern with :meth:`from_bits`, or from a numeric
    value with :meth:`from_value` (which rounds).  Arithmetic between posits
    of the same format is correctly rounded; mixing formats raises.
    """

    __slots__ = ("_fmt", "_bits", "_decoded")

    def __init__(self, fmt: PositFormat, bits: int):
        if not fmt.valid_pattern(bits):
            raise ValueError(f"pattern {bits:#x} out of range for {fmt}")
        self._fmt = fmt
        self._bits = bits
        self._decoded: DecodedPosit | None = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_bits(cls, fmt: PositFormat, bits: int) -> "Posit":
        """Wrap an existing ``n``-bit pattern."""
        return cls(fmt, bits)

    @classmethod
    def from_value(cls, fmt: PositFormat, value: _Number) -> "Posit":
        """Round any real number to the nearest posit of ``fmt``."""
        if isinstance(value, Posit):
            if value.fmt == fmt:
                return value
            if value.is_nar:
                return cls.nar(fmt)
            return cls(fmt, encode_fraction(fmt, value.to_fraction()))
        if isinstance(value, bool):
            raise TypeError("refusing to interpret bool as a posit value")
        if isinstance(value, int):
            return cls(fmt, encode_fraction(fmt, Fraction(value)))
        if isinstance(value, Fraction):
            return cls(fmt, encode_fraction(fmt, value))
        if isinstance(value, float):
            return cls(fmt, encode_float(fmt, value))
        raise TypeError(f"cannot build a posit from {type(value).__name__}")

    @classmethod
    def zero(cls, fmt: PositFormat) -> "Posit":
        """The posit zero."""
        return cls(fmt, fmt.zero_pattern)

    @classmethod
    def nar(cls, fmt: PositFormat) -> "Posit":
        """NaR — Not a Real."""
        return cls(fmt, fmt.nar_pattern)

    @classmethod
    def maxpos(cls, fmt: PositFormat) -> "Posit":
        """Largest positive posit."""
        return cls(fmt, fmt.maxpos_pattern)

    @classmethod
    def minpos(cls, fmt: PositFormat) -> "Posit":
        """Smallest positive posit."""
        return cls(fmt, fmt.minpos_pattern)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def fmt(self) -> PositFormat:
        """The posit format of this value."""
        return self._fmt

    @property
    def bits(self) -> int:
        """The raw ``n``-bit pattern."""
        return self._bits

    @property
    def decoded(self) -> DecodedPosit:
        """Lazily decoded field view of the pattern."""
        if self._decoded is None:
            self._decoded = decode(self._fmt, self._bits)
        return self._decoded

    @property
    def is_zero(self) -> bool:
        """True if this is the zero pattern."""
        return self._bits == self._fmt.zero_pattern

    @property
    def is_nar(self) -> bool:
        """True if this is the NaR pattern."""
        return self._bits == self._fmt.nar_pattern

    @property
    def is_negative(self) -> bool:
        """True for strictly negative real values (NaR is not negative)."""
        return not self.is_nar and bool(self._bits & self._fmt.sign_mask)

    def to_fraction(self) -> Fraction:
        """Exact rational value (raises :class:`NaRError` for NaR)."""
        if self.is_nar:
            raise NaRError("NaR has no rational value")
        return self.decoded.to_fraction()

    def __float__(self) -> float:
        if self.is_nar:
            return float("nan")
        return float(self.to_fraction())

    # ------------------------------------------------------------------
    # Arithmetic (exact compute, single rounding)
    # ------------------------------------------------------------------
    def _coerce(self, other: _Number) -> "Posit":
        if isinstance(other, Posit):
            if other._fmt != self._fmt:
                raise TypeError(f"format mismatch: {self._fmt} vs {other._fmt}")
            return other
        return Posit.from_value(self._fmt, other)

    def _round(self, value: Fraction) -> "Posit":
        return Posit(self._fmt, encode_fraction(self._fmt, value))

    def __add__(self, other: _Number) -> "Posit":
        rhs = self._coerce(other)
        if self.is_nar or rhs.is_nar:
            return Posit.nar(self._fmt)
        return self._round(self.to_fraction() + rhs.to_fraction())

    __radd__ = __add__

    def __sub__(self, other: _Number) -> "Posit":
        rhs = self._coerce(other)
        if self.is_nar or rhs.is_nar:
            return Posit.nar(self._fmt)
        return self._round(self.to_fraction() - rhs.to_fraction())

    def __rsub__(self, other: _Number) -> "Posit":
        return self._coerce(other).__sub__(self)

    def __mul__(self, other: _Number) -> "Posit":
        rhs = self._coerce(other)
        if self.is_nar or rhs.is_nar:
            return Posit.nar(self._fmt)
        return self._round(self.to_fraction() * rhs.to_fraction())

    __rmul__ = __mul__

    def __truediv__(self, other: _Number) -> "Posit":
        rhs = self._coerce(other)
        if self.is_nar or rhs.is_nar or rhs.is_zero:
            return Posit.nar(self._fmt)
        return self._round(self.to_fraction() / rhs.to_fraction())

    def __rtruediv__(self, other: _Number) -> "Posit":
        return self._coerce(other).__truediv__(self)

    def __neg__(self) -> "Posit":
        if self.is_nar or self.is_zero:
            return self
        return Posit(self._fmt, ((1 << self._fmt.n) - self._bits) & self._fmt.mask)

    def __abs__(self) -> "Posit":
        return -self if self.is_negative else self

    def fma(self, mul: _Number, add: _Number) -> "Posit":
        """Fused multiply-add ``self * mul + add`` with a single rounding."""
        m = self._coerce(mul)
        a = self._coerce(add)
        if self.is_nar or m.is_nar or a.is_nar:
            return Posit.nar(self._fmt)
        return self._round(self.to_fraction() * m.to_fraction() + a.to_fraction())

    # ------------------------------------------------------------------
    # Comparisons — posits compare like their two's complement patterns
    # ------------------------------------------------------------------
    def _signed_pattern(self) -> int:
        bits = self._bits
        if bits & self._fmt.sign_mask:
            bits -= 1 << self._fmt.n
        return bits

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Posit):
            return self._fmt == other._fmt and self._bits == other._bits
        if isinstance(other, (int, float, Fraction)):
            if self.is_nar:
                return False
            try:
                return self.to_fraction() == Fraction(other)
            except (ValueError, OverflowError):
                return False
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self._fmt, self._bits))

    def _cmp_key(self, other: _Number) -> tuple[int, int]:
        rhs = self._coerce(other)
        if self.is_nar or rhs.is_nar:
            raise NaRError("NaR is unordered")
        return self._signed_pattern(), rhs._signed_pattern()

    def __lt__(self, other: _Number) -> bool:
        a, b = self._cmp_key(other)
        return a < b

    def __le__(self, other: _Number) -> bool:
        a, b = self._cmp_key(other)
        return a <= b

    def __gt__(self, other: _Number) -> bool:
        a, b = self._cmp_key(other)
        return a > b

    def __ge__(self, other: _Number) -> bool:
        a, b = self._cmp_key(other)
        return a >= b

    # ------------------------------------------------------------------
    # Display
    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        if self.is_nar:
            return f"Posit({self._fmt}, NaR)"
        return f"Posit({self._fmt}, {float(self)!r}, bits={self._bits:#0{2 + (self._fmt.n + 3) // 4}x})"
