"""Posit format descriptor.

A posit environment is fully determined by two integers: ``n``, the total
width in bits, and ``es``, the number of exponent bits.  This module provides
:class:`PositFormat`, an immutable descriptor exposing every derived constant
the rest of the library needs (useed, scale bounds, quire width, special bit
patterns), mirroring the characteristics listed in Section III-D of the paper:

    useed = 2 ** (2 ** es)
    max   = useed ** (n - 2)
    min   = useed ** (-(n - 2))
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from functools import lru_cache
import math

__all__ = ["PositFormat", "posit8", "posit16", "posit32", "standard_format"]


@dataclass(frozen=True)
class PositFormat:
    """Immutable descriptor of a posit environment ``(n, es)``.

    Parameters
    ----------
    n:
        Total number of bits.  Must be at least 3 (the smallest width for
        which sign, regime, and regime terminator are all representable).
    es:
        Number of exponent bits.  Must be non-negative.  ``es`` may be
        larger than the number of bits that can physically appear in a
        pattern; trailing exponent bits are then implicitly zero, exactly as
        in the posit standard.
    """

    n: int
    es: int

    def __post_init__(self) -> None:
        if not isinstance(self.n, int) or not isinstance(self.es, int):
            raise TypeError("n and es must be integers")
        if self.n < 3:
            raise ValueError(f"posit width n must be >= 3, got {self.n}")
        if self.es < 0:
            raise ValueError(f"es must be >= 0, got {self.es}")
        if self.es > 8:
            raise ValueError(f"es > 8 is unsupported (got {self.es})")

    # ------------------------------------------------------------------
    # Bit-pattern constants
    # ------------------------------------------------------------------
    @property
    def mask(self) -> int:
        """All-ones mask of width ``n``."""
        return (1 << self.n) - 1

    @property
    def sign_mask(self) -> int:
        """Mask selecting the sign (most significant) bit."""
        return 1 << (self.n - 1)

    @property
    def zero_pattern(self) -> int:
        """The unique encoding of zero: all bits clear."""
        return 0

    @property
    def nar_pattern(self) -> int:
        """The encoding of NaR ("Not a Real"): sign bit set, rest clear."""
        return 1 << (self.n - 1)

    @property
    def maxpos_pattern(self) -> int:
        """Bit pattern of the largest positive posit (0111...1)."""
        return (1 << (self.n - 1)) - 1

    @property
    def minpos_pattern(self) -> int:
        """Bit pattern of the smallest positive posit (000...01)."""
        return 1

    @property
    def num_patterns(self) -> int:
        """Total number of distinct bit patterns, ``2**n``."""
        return 1 << self.n

    # ------------------------------------------------------------------
    # Value-range constants
    # ------------------------------------------------------------------
    @property
    def useed(self) -> int:
        """``2 ** (2 ** es)`` — the regime base."""
        return 1 << (1 << self.es)

    @property
    def max_scale(self) -> int:
        """Largest power-of-two scale: ``(n - 2) * 2**es`` (maxpos)."""
        return (self.n - 2) << self.es

    @property
    def min_scale(self) -> int:
        """Smallest power-of-two scale: ``-(n - 2) * 2**es`` (minpos)."""
        return -self.max_scale

    @property
    def maxpos(self) -> Fraction:
        """Value of the largest positive posit, ``useed ** (n - 2)``."""
        return Fraction(self.useed) ** (self.n - 2)

    @property
    def minpos(self) -> Fraction:
        """Value of the smallest positive posit, ``useed ** -(n - 2)``."""
        return Fraction(1, self.useed ** (self.n - 2))

    @property
    def dynamic_range(self) -> float:
        """``log10(max / min)`` as used by the paper's Fig. 6."""
        # max/min = useed ** (2n - 4) = 2 ** (2**es * (2n - 4))
        return (1 << self.es) * (2 * self.n - 4) * math.log10(2.0)

    # ------------------------------------------------------------------
    # Field-width constants
    # ------------------------------------------------------------------
    @property
    def max_fraction_bits(self) -> int:
        """Widest possible fraction field, ``max(0, n - 3 - es)``.

        Achieved when the regime occupies its minimum two bits.  The paper's
        EMAC datapath (Fig. 5) sizes its multiplier for this width.
        """
        return max(0, self.n - 3 - self.es)

    @property
    def significand_bits(self) -> int:
        """Hidden bit + widest fraction: the EMAC multiplier input width."""
        return 1 + self.max_fraction_bits

    @property
    def scale_bias(self) -> int:
        """Bias applied to scale factors in the EMAC, ``2**(es+1) * (n-2)``.

        Biasing the product scale factor by this amount makes its minimum
        value zero, so a single left shifter suffices for fixed-point
        conversion (paper Section III-D).
        """
        return (1 << (self.es + 1)) * (self.n - 2)

    def quire_bits(self, k: int) -> int:
        """Quire width for ``k`` accumulated products — paper eq. (4).

        ``qsize = 2**(es+2) * (n - 2) + 2 + ceil(log2 k)``, valid for n >= 3.
        """
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        carry = 0 if k == 1 else math.ceil(math.log2(k))
        return (1 << (self.es + 2)) * (self.n - 2) + 2 + carry

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def valid_pattern(self, bits: int) -> bool:
        """Whether ``bits`` is a valid ``n``-bit pattern."""
        return 0 <= bits <= self.mask

    def all_patterns(self) -> range:
        """Iterate every representable bit pattern, ``0 .. 2**n - 1``."""
        return range(self.num_patterns)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"posit<{self.n},{self.es}>"


@lru_cache(maxsize=None)
def standard_format(n: int, es: int) -> PositFormat:
    """Memoized :class:`PositFormat` constructor (formats are tiny, cache them)."""
    return PositFormat(n, es)


#: The 8-bit posit used throughout the paper's Table II experiments.
posit8 = standard_format(8, 0)
#: 16-bit posit with one exponent bit (posit standard draft of the era).
posit16 = standard_format(16, 1)
#: 32-bit posit with two exponent bits.
posit32 = standard_format(32, 2)
