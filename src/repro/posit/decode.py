"""Posit data extraction — the paper's Algorithm 1.

Decoding a posit is nontrivial because the regime field has dynamic width.
This module implements the extraction exactly as the EMAC hardware does:

1. take the two's complement of negative inputs,
2. detect the regime polarity from the bit just below the sign,
3. count the run length (the hardware inverts so a single leading-zero
   detector suffices; in Python we just count),
4. peel off the regime terminator, exponent, and fraction fields.

The result is a :class:`DecodedPosit` carrying the sign, the regime value
``k``, the exponent ``e``, the combined scale factor ``k * 2**es + e``, and
the significand with its hidden bit attached.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from .format import PositFormat

__all__ = ["DecodedPosit", "decode", "regime_run_length", "regime_of_run"]


@dataclass(frozen=True)
class DecodedPosit:
    """Fields extracted from a posit bit pattern.

    Attributes
    ----------
    fmt:
        The posit format the pattern belongs to.
    bits:
        The original ``n``-bit pattern.
    is_zero / is_nar:
        Flags for the two reserved patterns.
    sign:
        1 for negative values, else 0.
    regime:
        The regime value ``k`` (run-length encoded field).
    exponent:
        The unsigned exponent ``e`` (0 when ``es == 0``).
    scale:
        ``k * 2**es + e`` — the power-of-two scale of the value.
    fraction:
        The raw fraction field as an unsigned integer.
    fraction_bits:
        Number of fraction bits physically present in the pattern.
    """

    fmt: PositFormat
    bits: int
    is_zero: bool
    is_nar: bool
    sign: int
    regime: int
    exponent: int
    scale: int
    fraction: int
    fraction_bits: int

    @property
    def significand(self) -> int:
        """Fraction with the hidden bit attached: ``1.f`` as an integer."""
        return (1 << self.fraction_bits) | self.fraction

    @property
    def significand_fixed(self) -> int:
        """Significand left-aligned to the format's widest significand.

        This is the form the EMAC multiplier consumes: every input becomes a
        ``1 + max_fraction_bits``-wide unsigned integer regardless of how many
        fraction bits its pattern actually carried.
        """
        return self.significand << (self.fmt.max_fraction_bits - self.fraction_bits)

    def to_fraction(self) -> Fraction:
        """Exact rational value of the decoded posit.

        Raises
        ------
        ValueError
            If the pattern is NaR, which has no real value.
        """
        if self.is_nar:
            raise ValueError("NaR has no rational value")
        if self.is_zero:
            return Fraction(0)
        magnitude = Fraction(self.significand) * _pow2(self.scale - self.fraction_bits)
        return -magnitude if self.sign else magnitude


def _pow2(e: int) -> Fraction:
    """Exact ``2**e`` as a Fraction for any integer ``e``."""
    if e >= 0:
        return Fraction(1 << e)
    return Fraction(1, 1 << -e)


def regime_run_length(body: int, width: int) -> int:
    """Length of the run of identical leading bits of ``body``.

    ``body`` is interpreted as a ``width``-bit unsigned field (the posit
    pattern with the sign bit removed).  The run is counted from the most
    significant bit; it is terminated either by the complement bit or by the
    end of the field.
    """
    if width <= 0:
        return 0
    top = (body >> (width - 1)) & 1
    run = 1
    for i in range(width - 2, -1, -1):
        if ((body >> i) & 1) == top:
            run += 1
        else:
            break
    return run


def regime_of_run(leading_bit: int, run: int) -> int:
    """Regime value ``k`` from the leading bit and run length (Table I).

    A run of ``m`` zeros encodes ``k = -m``; a run of ``m`` ones encodes
    ``k = m - 1``.
    """
    return run - 1 if leading_bit else -run


def decode(fmt: PositFormat, bits: int) -> DecodedPosit:
    """Extract sign, regime, exponent, and fraction from a posit pattern.

    This is the software mirror of the paper's Algorithm 1.  The two's
    complement is taken for negative inputs before field extraction, so the
    returned fields always describe the magnitude.
    """
    if not fmt.valid_pattern(bits):
        raise ValueError(f"pattern {bits:#x} out of range for {fmt}")

    if bits == fmt.zero_pattern:
        return DecodedPosit(fmt, bits, True, False, 0, 0, 0, 0, 0, 0)
    if bits == fmt.nar_pattern:
        return DecodedPosit(fmt, bits, False, True, 0, 0, 0, 0, 0, 0)

    n = fmt.n
    sign = (bits >> (n - 1)) & 1
    magnitude = ((1 << n) - bits) & fmt.mask if sign else bits

    body = magnitude & (fmt.sign_mask - 1)  # n-1 bits below the sign
    body_width = n - 1

    run = regime_run_length(body, body_width)
    leading = (body >> (body_width - 1)) & 1
    k = regime_of_run(leading, run)

    # Bits remaining after the regime run and its terminator (the terminator
    # is absent when the run reaches the end of the pattern).
    rem_width = max(0, body_width - run - 1)
    rem = body & ((1 << rem_width) - 1) if rem_width > 0 else 0

    if rem_width >= fmt.es:
        exponent = rem >> (rem_width - fmt.es) if fmt.es > 0 else 0
        fraction_bits = rem_width - fmt.es
        fraction = rem & ((1 << fraction_bits) - 1) if fraction_bits > 0 else 0
    else:
        # Exponent field truncated by the regime: missing low bits are zero.
        exponent = rem << (fmt.es - rem_width)
        fraction_bits = 0
        fraction = 0

    scale = (k << fmt.es) + exponent
    return DecodedPosit(
        fmt=fmt,
        bits=bits,
        is_zero=False,
        is_nar=False,
        sign=sign,
        regime=k,
        exponent=exponent,
        scale=scale,
        fraction=fraction,
        fraction_bits=fraction_bits,
    )
