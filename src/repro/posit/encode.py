"""Posit encoding with convergent (round-to-nearest-even) rounding.

This is the software mirror of the tail of the paper's Algorithm 2
("Convergent Rounding & Encoding").  The key property that makes posit
rounding simple in hardware is that posit bit patterns are *monotonic* in
value: truncating the infinitely precise encoded bit string yields the next
posit below, and adding one to the truncated pattern yields the next posit
above.  Round-to-nearest-even therefore reduces to the classic

    round = guard AND (lsb OR sticky)

increment on the truncated pattern (Algorithm 2, lines 39-41), regardless of
whether the boundary being crossed is a fraction, exponent, or regime
boundary.

Two posit-standard special rules apply at the extremes:

* values larger than ``maxpos`` round to ``maxpos`` (posits never overflow),
* nonzero values smaller than ``minpos`` round to ``minpos`` (posits never
  underflow to zero).
"""

from __future__ import annotations

from fractions import Fraction

from .format import PositFormat

__all__ = ["encode_exact", "encode_fraction", "encode_float", "build_body"]


def build_body(fmt: PositFormat, scale: int, frac: int, frac_bits: int) -> tuple[int, int]:
    """Assemble the unrounded sign-free posit body.

    Parameters
    ----------
    fmt:
        Target posit format.
    scale:
        Power-of-two scale of the value (``k * 2**es + e``); must lie in
        ``[min_scale, max_scale]``.
    frac, frac_bits:
        Fraction field below the hidden bit, as an unsigned integer of
        ``frac_bits`` bits.  May be arbitrarily wide (e.g. a full quire's
        worth of bits); no information is dropped here.

    Returns
    -------
    (body, width):
        The concatenated regime | terminator | exponent | fraction bit
        string as an integer, and its width in bits.  Rounding to the
        ``n - 1`` available magnitude bits is the caller's job.
    """
    k, e = divmod(scale, 1 << fmt.es) if fmt.es > 0 else (scale, 0)
    if k >= 0:
        # k encoded as k+1 ones followed by a zero terminator.
        regime = ((1 << (k + 1)) - 1) << 1
        regime_width = k + 2
    else:
        # k encoded as -k zeros followed by a one terminator.
        regime = 1
        regime_width = -k + 1
    body = regime
    body = (body << fmt.es) | e
    body = (body << frac_bits) | frac
    return body, regime_width + fmt.es + frac_bits


def encode_exact(fmt: PositFormat, sign: int, mantissa: int, exponent: int) -> int:
    """Round ``(-1)**sign * mantissa * 2**exponent`` to the nearest posit.

    ``mantissa`` must be a non-negative integer; ``exponent`` any integer.
    The computation is exact: arbitrarily wide mantissas (e.g. extracted from
    a quire) round correctly in a single pass.

    Returns the ``n``-bit posit pattern.
    """
    if mantissa < 0:
        raise ValueError("mantissa must be non-negative; use the sign argument")
    if mantissa == 0:
        return fmt.zero_pattern

    length = mantissa.bit_length()
    scale = exponent + length - 1
    frac_bits = length - 1
    frac = mantissa - (1 << frac_bits)

    if scale > fmt.max_scale:
        pattern = fmt.maxpos_pattern
    elif scale < fmt.min_scale:
        pattern = fmt.minpos_pattern
    elif scale == fmt.max_scale and frac:
        # Above maxpos but below 2*maxpos: nearest representable is maxpos
        # (there is no posit between maxpos and NaR to round up to).
        pattern = fmt.maxpos_pattern
    else:
        body, width = build_body(fmt, scale, frac, frac_bits)
        avail = fmt.n - 1
        if width <= avail:
            pattern = body << (avail - width)
        else:
            cut = width - avail
            pattern = body >> cut
            guard = (body >> (cut - 1)) & 1
            sticky = 1 if body & ((1 << (cut - 1)) - 1) else 0
            lsb = pattern & 1
            pattern += guard & (lsb | sticky)
            if pattern > fmt.maxpos_pattern:
                pattern = fmt.maxpos_pattern
            elif pattern == 0:
                # Rounding never produces zero from a nonzero value.
                pattern = fmt.minpos_pattern

    if sign:
        pattern = ((1 << fmt.n) - pattern) & fmt.mask
    return pattern


def encode_fraction(fmt: PositFormat, value: Fraction) -> int:
    """Round an exact rational to the nearest posit pattern."""
    if value == 0:
        return fmt.zero_pattern
    sign = 1 if value < 0 else 0
    magnitude = -value if sign else value
    num, den = magnitude.numerator, magnitude.denominator
    # Express num/den as mantissa * 2**exponent with enough mantissa bits for
    # correct rounding: scale the numerator so the quotient keeps more
    # precision than any representable posit fraction, then keep an exact
    # sticky via the remainder.
    extra = fmt.n + 4 + max(0, den.bit_length() - num.bit_length() + 1)
    shifted = num << extra
    q, r = divmod(shifted, den)
    # q * 2**-extra approximates the magnitude; fold the remainder into a
    # sticky bit so round-to-nearest-even stays exact.
    mantissa = (q << 1) | (1 if r else 0)
    exponent = -(extra + 1)
    return encode_exact(fmt, sign, mantissa, exponent)


def encode_float(fmt: PositFormat, value: float) -> int:
    """Round a Python float to the nearest posit pattern.

    Raises
    ------
    ValueError
        For NaN or infinite inputs; map them to NaR explicitly at a higher
        level if that is the desired semantics.
    """
    if value != value or value in (float("inf"), float("-inf")):
        raise ValueError("cannot encode non-finite float; use NaR explicitly")
    return encode_fraction(fmt, Fraction(value))
