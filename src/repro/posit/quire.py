"""The quire — posit fixed-point accumulator (Kulisch accumulator).

The paper accumulates EMAC products in a register sized by eq. (4):

    qsize = 2**(es+2) * (n - 2) + 2 + ceil(log2 k)

Products of two posits have scale factors in
``[2 * min_scale, 2 * max_scale]`` and significand products of
``2 * (1 + max_fraction_bits)`` bits; shifting each product into a register
with ``2**(es+2) * (n-2) + 2`` value bits (plus carry headroom) makes the sum
exact.  The quire here is an arbitrary-precision Python integer scaled by a
fixed binary point, so it never overflows regardless of k; :meth:`fits_hw`
reports whether a given accumulation would still fit the paper's hardware
register.
"""

from __future__ import annotations

from fractions import Fraction

from .decode import decode
from .encode import encode_exact
from .format import PositFormat
from .value import Posit

__all__ = ["Quire"]


class Quire:
    """Exact accumulator for posit sums and dot products.

    The internal state is ``value = _acc * 2**-_frac_bits`` where
    ``_frac_bits = 2 * (max_scale + max_fraction_bits)`` — enough fractional
    positions that any product of two posits of the format is an integer
    multiple of the quire LSB.
    """

    __slots__ = ("fmt", "_acc", "_count")

    def __init__(self, fmt: PositFormat):
        self.fmt = fmt
        self._acc = 0
        self._count = 0

    # ------------------------------------------------------------------
    @property
    def frac_bits(self) -> int:
        """Binary point position: quire LSB is ``2**-frac_bits``."""
        return 2 * (self.fmt.max_scale + self.fmt.max_fraction_bits)

    @property
    def count(self) -> int:
        """Number of products accumulated since the last clear."""
        return self._count

    def clear(self) -> None:
        """Reset the accumulator to zero."""
        self._acc = 0
        self._count = 0

    def load(self, value: Posit) -> None:
        """Reset the accumulator to ``value`` (the EMAC bias preload)."""
        self.clear()
        self.add(value)

    # ------------------------------------------------------------------
    def add(self, value: Posit) -> None:
        """Accumulate a single posit exactly."""
        if value.fmt != self.fmt:
            raise TypeError(f"format mismatch: {value.fmt} vs {self.fmt}")
        if value.is_nar:
            raise ArithmeticError("cannot accumulate NaR")
        if value.is_zero:
            self._count += 1
            return
        d = value.decoded
        shift = self.frac_bits + d.scale - d.fraction_bits
        if shift < 0:
            raise AssertionError("quire binary point too narrow (internal bug)")
        term = d.significand << shift
        self._acc += -term if d.sign else term
        self._count += 1

    def multiply_accumulate(self, weight: Posit, activation: Posit) -> None:
        """Accumulate the exact product of two posits (one EMAC step)."""
        if weight.fmt != self.fmt or activation.fmt != self.fmt:
            raise TypeError("format mismatch in multiply_accumulate")
        if weight.is_nar or activation.is_nar:
            raise ArithmeticError("cannot accumulate NaR")
        if weight.is_zero or activation.is_zero:
            self._count += 1
            return
        dw, da = weight.decoded, activation.decoded
        sig = dw.significand * da.significand
        scale = dw.scale + da.scale - dw.fraction_bits - da.fraction_bits
        term = sig << (self.frac_bits + scale)  # scale + frac_bits >= 0 by sizing
        self._acc += -term if dw.sign ^ da.sign else term
        self._count += 1

    def dot(self, weights, activations) -> Posit:
        """Exact dot product: accumulate all pairs, then round once."""
        if len(weights) != len(activations):
            raise ValueError("weights and activations must have equal length")
        for w, a in zip(weights, activations):
            self.multiply_accumulate(w, a)
        return self.to_posit()

    # ------------------------------------------------------------------
    def to_fraction(self) -> Fraction:
        """Exact rational value of the accumulator."""
        return Fraction(self._acc, 1 << self.frac_bits)

    def to_posit(self) -> Posit:
        """Round the accumulated value to the nearest posit (single rounding)."""
        if self._acc == 0:
            return Posit.zero(self.fmt)
        sign = 1 if self._acc < 0 else 0
        mag = -self._acc if sign else self._acc
        bits = encode_exact(self.fmt, sign, mag, -self.frac_bits)
        return Posit(self.fmt, bits)

    def fits_hw(self, k: int | None = None) -> bool:
        """Whether the current value fits the paper's eq. (4) register.

        Equation (4) sizes the quire with one bit per binary position from
        ``2**(2*min_scale)`` (the smallest possible nonzero bit of a posit
        product — patterns with extreme regimes carry few fraction bits, so
        product LSBs never fall below this) up to ``2**(2*max_scale)``, plus
        a sign bit and ``ceil(log2 k)`` carry bits.  This method checks both
        halves of that claim for the current accumulation: alignment of the
        value to the hardware LSB, and magnitude within the carry headroom.
        """
        k = k if k is not None else max(1, self._count)
        hw_lsb_exp = 2 * self.fmt.min_scale  # weight of the register's LSB
        # Alignment: value must be an integer multiple of 2**hw_lsb_exp.
        excess = self.frac_bits + hw_lsb_exp  # bits of _acc below the HW LSB
        if excess > 0 and self._acc & ((1 << excess) - 1):
            return False
        # Magnitude: |value| <= k * maxpos**2.
        limit = k * (1 << (4 * self.fmt.max_scale))  # maxpos^2 in HW-LSB units
        return abs(self._acc >> max(0, excess)) <= limit

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Quire({self.fmt}, value={float(self.to_fraction())!r}, count={self._count})"


def _selftest() -> None:  # pragma: no cover - developer aid
    fmt = PositFormat(8, 0)
    q = Quire(fmt)
    xs = [Posit.from_value(fmt, v) for v in (0.5, 0.25, -0.125)]
    ws = [Posit.from_value(fmt, v) for v in (1.0, 2.0, 4.0)]
    out = q.dot(ws, xs)
    assert float(out) == 0.5 + 0.5 - 0.5
    assert decode(fmt, out.bits).scale == -1


if __name__ == "__main__":  # pragma: no cover
    _selftest()
