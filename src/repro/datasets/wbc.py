"""Wisconsin Breast Cancer equivalent (paper Table II row 1: inference 190).

Substitution note (see DESIGN.md): the WDBC corpus [Street et al. 1993] has
569 samples (357 benign, 212 malignant) and 30 real-valued features — ten
nuclear morphology measurements, each reported as mean / standard error /
worst.  Crucially, the raw features span almost four orders of magnitude
(``area`` ~ 10**3 vs ``smoothness``/``fractal dimension`` ~ 10**-1), and the
paper deploys the network on those raw scales: that heterogeneity is what
breaks a single-binary-point 8-bit fixed format and rewards posit's tapered
dynamic range in Table II.

We reproduce that structure with a latent-factor generator: a per-sample
"severity" latent drives 10 base measurements; mean/SE/worst triplets are
correlated transforms of the base value; and each column is then placed on
its physical scale (spanning ~3 orders of magnitude).  The class-conditional
severity overlap is tuned so a float32 MLP tops out near the paper's 90.1%
baseline.  No standardization is applied — the DNN consumes raw-scale
features exactly as the quantized hardware would.
"""

from __future__ import annotations

import numpy as np

from .splits import Dataset, stratified_split

__all__ = ["load_wbc", "WBC_BENIGN", "WBC_MALIGNANT", "WBC_FEATURES", "WBC_SCALES"]

#: Class sizes of the real corpus.
WBC_BENIGN = 357
WBC_MALIGNANT = 212

#: The ten base measurements; each contributes mean/SE/worst columns.
WBC_FEATURES = (
    "radius",
    "texture",
    "perimeter",
    "area",
    "smoothness",
    "compactness",
    "concavity",
    "concave_points",
    "symmetry",
    "fractal_dimension",
)

#: Physical scale of each base measurement.  These keep the real corpus's
#: ~3.5-order-of-magnitude heterogeneity (area vs concave points) while
#: staying small enough that float32 training remains well conditioned.
WBC_SCALES = np.array([0.5, 0.6, 3.0, 10.0, 0.02, 0.02, 0.02, 0.01, 0.04, 0.015])

#: Loadings of each base measurement on the two malignancy latents.  The
#: geometry latent drives the large-scale features (radius, perimeter,
#: area); the texture latent drives the small-scale ones (smoothness,
#: concavity, concave points).  The two signals are *complementary*: a
#: format that cannot represent one scale group loses that half of the
#: evidence — which is exactly what a single-binary-point fixed format must
#: do, and why it trails in the paper's Table II.
_LOADINGS_GEOMETRY = np.array([0.80, 0.30, 0.80, 0.80, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0])
_LOADINGS_TEXTURE = np.array([0.0, 0.20, 0.0, 0.0, 0.50, 0.70, 0.85, 0.85, 0.40, 0.20])

#: Separation (in latent std units) of each class-conditional latent.
#: Tuned so a float32 MLP tops out near the paper's 90.1% baseline.
_CLASS_SEPARATION = 1.60

#: Relative spread of each measurement around its class-conditional center.
_REL_SPREAD = 0.22


def _sample_class(
    rng: np.random.Generator, count: int, severity_mean: float
) -> np.ndarray:
    geometry = severity_mean + rng.standard_normal(count)
    texture = severity_mean + rng.standard_normal(count)
    noise = rng.standard_normal((count, len(_LOADINGS_GEOMETRY)))
    # Unitless base measurements ~ N(1 + loadings . latents / 3, rel spread).
    drift = (
        _LOADINGS_GEOMETRY * geometry[:, None] + _LOADINGS_TEXTURE * texture[:, None]
    ) / 3.0
    base = np.maximum(1.0 + drift + _REL_SPREAD * noise, 0.05)
    # mean / standard error / worst triplets per measurement (unitless).
    se_noise = np.abs(rng.standard_normal(base.shape))
    se = 0.08 * base + 0.04 * se_noise
    worst = base + 1.5 * se + 0.05 * np.abs(rng.standard_normal(base.shape))
    # Place every column on its physical scale.
    scales = np.concatenate([WBC_SCALES, 0.3 * WBC_SCALES, 1.2 * WBC_SCALES])
    return np.concatenate([base, se, worst], axis=1) * scales


def load_wbc(seed: int = 11, test_size: int = 190) -> Dataset:
    """Generate the WBC-equivalent dataset with the paper's split sizes.

    Features keep their raw heterogeneous scales (no standardization).
    """
    rng = np.random.default_rng(seed)
    benign = _sample_class(rng, WBC_BENIGN, severity_mean=0.0)
    malignant = _sample_class(rng, WBC_MALIGNANT, severity_mean=_CLASS_SEPARATION)
    x = np.concatenate([benign, malignant])
    y = np.concatenate(
        [
            np.zeros(WBC_BENIGN, dtype=np.int64),
            np.ones(WBC_MALIGNANT, dtype=np.int64),
        ]
    )
    train_x, train_y, test_x, test_y = stratified_split(x, y, test_size, rng)
    dataset = Dataset(
        name="wbc",
        train_x=train_x,
        train_y=train_y,
        test_x=test_x,
        test_y=test_y,
        class_names=("benign", "malignant"),
    )
    dataset.validate()
    return dataset
