"""Iris-equivalent dataset (paper Table II row 2: inference size 50).

Substitution note (see DESIGN.md): the UCI files are not shippable in this
offline environment, so we sample class-conditional Gaussians using Fisher's
published per-class feature statistics [Fisher 1936].  Setosa is linearly
separable; versicolor and virginica overlap, which caps accuracy near the
high-90s exactly as on the real data (the paper's 32-bit float baseline is
98%).  150 samples, 50 per class, 4 features, stratified 100/50 split.
"""

from __future__ import annotations

import numpy as np

from .splits import Dataset, stratified_split

__all__ = ["load_iris", "IRIS_CLASS_STATS"]

#: Per-class (mean, std) of the four features — sepal length, sepal width,
#: petal length, petal width — as reported for Fisher's iris measurements.
IRIS_CLASS_STATS: dict[str, tuple[tuple[float, ...], tuple[float, ...]]] = {
    "setosa": ((5.01, 3.43, 1.46, 0.25), (0.35, 0.38, 0.17, 0.11)),
    "versicolor": ((5.94, 2.77, 4.26, 1.33), (0.52, 0.31, 0.47, 0.20)),
    "virginica": ((6.59, 2.97, 5.55, 2.03), (0.64, 0.32, 0.55, 0.27)),
}

#: Pairwise feature correlation applied within each class (petal length and
#: width are strongly correlated on the real data).
_CLASS_CORRELATION = np.array(
    [
        [1.00, 0.50, 0.30, 0.25],
        [0.50, 1.00, 0.30, 0.30],
        [0.30, 0.30, 1.00, 0.80],
        [0.25, 0.30, 0.80, 1.00],
    ]
)


def _sample_class(
    rng: np.random.Generator, mean: np.ndarray, std: np.ndarray, count: int
) -> np.ndarray:
    cov = _CLASS_CORRELATION * np.outer(std, std)
    chol = np.linalg.cholesky(cov)
    z = rng.standard_normal((count, len(mean)))
    samples = mean + z @ chol.T
    # Physical measurements are positive.
    return np.maximum(samples, 0.1)


def load_iris(seed: int = 7, test_size: int = 50, samples_per_class: int = 50) -> Dataset:
    """Generate the Iris-equivalent dataset with the paper's split sizes."""
    if samples_per_class < 2:
        raise ValueError("need at least 2 samples per class")
    rng = np.random.default_rng(seed)
    features, labels = [], []
    for cls_index, (name, (mean, std)) in enumerate(IRIS_CLASS_STATS.items()):
        features.append(
            _sample_class(rng, np.asarray(mean), np.asarray(std), samples_per_class)
        )
        labels.append(np.full(samples_per_class, cls_index, dtype=np.int64))
    x = np.concatenate(features)
    y = np.concatenate(labels)

    train_x, train_y, test_x, test_y = stratified_split(x, y, test_size, rng)
    # No standardization: the network consumes raw centimeter-scale features
    # ([~0.1, ~8] cm), exactly what the quantized hardware would see.
    dataset = Dataset(
        name="iris",
        train_x=train_x,
        train_y=train_y,
        test_x=test_x,
        test_y=test_y,
        class_names=tuple(IRIS_CLASS_STATS),
    )
    dataset.validate()
    return dataset
