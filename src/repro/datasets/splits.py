"""Deterministic dataset utilities: stratified splits and standardization."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Dataset", "stratified_split", "standardize", "one_hot"]


@dataclass
class Dataset:
    """A ready-to-train classification dataset.

    ``train_x``/``test_x`` are float64 feature matrices (already
    preprocessed); labels are int64 class indices.  ``test_x`` has exactly
    the paper's "inference size" rows for the three evaluation datasets.
    """

    name: str
    train_x: np.ndarray
    train_y: np.ndarray
    test_x: np.ndarray
    test_y: np.ndarray
    class_names: tuple[str, ...]

    @property
    def num_features(self) -> int:
        """Feature dimensionality."""
        return self.train_x.shape[1]

    @property
    def num_classes(self) -> int:
        """Number of target classes."""
        return len(self.class_names)

    @property
    def inference_size(self) -> int:
        """Paper terminology for the test-set size."""
        return len(self.test_y)

    def validate(self) -> None:
        """Internal consistency checks (shapes, label ranges, finiteness)."""
        if self.train_x.ndim != 2 or self.test_x.ndim != 2:
            raise ValueError("feature matrices must be 2-D")
        if self.train_x.shape[1] != self.test_x.shape[1]:
            raise ValueError("train/test feature dimensionality mismatch")
        if len(self.train_x) != len(self.train_y) or len(self.test_x) != len(self.test_y):
            raise ValueError("feature/label length mismatch")
        labels = np.concatenate([self.train_y, self.test_y])
        if labels.min() < 0 or labels.max() >= self.num_classes:
            raise ValueError("label out of range")
        if not (np.all(np.isfinite(self.train_x)) and np.all(np.isfinite(self.test_x))):
            raise ValueError("non-finite features")


def stratified_split(
    features: np.ndarray,
    labels: np.ndarray,
    test_size: int,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Split into train/test keeping class proportions, exact test size.

    Per-class test counts are apportioned by the largest-remainder method so
    the test set has exactly ``test_size`` rows.
    """
    features = np.asarray(features)
    labels = np.asarray(labels, dtype=np.int64)
    total = len(labels)
    if not 0 < test_size < total:
        raise ValueError(f"test_size must be in (0, {total})")

    classes, counts = np.unique(labels, return_counts=True)
    exact = counts * (test_size / total)
    base = np.floor(exact).astype(np.int64)
    remainder = test_size - base.sum()
    order = np.argsort(-(exact - base), kind="stable")
    base[order[:remainder]] += 1

    test_idx = []
    for cls, take in zip(classes, base):
        members = np.nonzero(labels == cls)[0]
        picked = rng.permutation(members)[:take]
        test_idx.append(picked)
    test_idx = np.sort(np.concatenate(test_idx))
    mask = np.zeros(total, dtype=bool)
    mask[test_idx] = True
    return features[~mask], labels[~mask], features[mask], labels[mask]


def standardize(
    train_x: np.ndarray, test_x: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Z-score both splits using training statistics only."""
    mean = train_x.mean(axis=0)
    std = train_x.std(axis=0)
    std = np.where(std < 1e-9, 1.0, std)
    return (train_x - mean) / std, (test_x - mean) / std


def one_hot(categorical: np.ndarray, cardinalities: list[int]) -> np.ndarray:
    """One-hot encode integer categorical columns.

    ``categorical`` is ``(rows, attrs)`` with column ``j`` taking values in
    ``[0, cardinalities[j])``.
    """
    categorical = np.asarray(categorical, dtype=np.int64)
    if categorical.ndim != 2 or categorical.shape[1] != len(cardinalities):
        raise ValueError("categorical matrix/cardinality mismatch")
    columns = []
    for j, card in enumerate(cardinalities):
        col = categorical[:, j]
        if col.min() < 0 or col.max() >= card:
            raise ValueError(f"column {j} exceeds its cardinality {card}")
        block = np.zeros((len(col), card), dtype=np.float64)
        block[np.arange(len(col)), col] = 1.0
        columns.append(block)
    return np.concatenate(columns, axis=1)
