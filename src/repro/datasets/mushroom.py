"""Mushroom equivalent (paper Table II row 3: inference size 2708).

Substitution note (see DESIGN.md): the UCI Mushroom corpus [Schlimmer 1987]
has 8124 samples and 22 categorical attributes, one-hot encoded for MLP
input; it is almost perfectly separable (odor alone classifies ~98.5%).  We
reproduce that structure: 22 categorical attributes with the real corpus's
cardinalities, a dominant "odor"-style attribute whose categories are
strongly class-conditional, several weakly informative attributes, pure
noise attributes, and a small label-flip rate so the float32 ceiling lands
near the paper's 96.8% baseline.
"""

from __future__ import annotations

import numpy as np

from .splits import Dataset, one_hot, stratified_split

__all__ = ["load_mushroom", "MUSHROOM_CARDINALITIES", "MUSHROOM_TOTAL"]

#: Cardinalities of the 22 attributes in the real corpus (cap-shape ...
#: habitat).  One-hot width = sum = 117 columns.
MUSHROOM_CARDINALITIES: tuple[int, ...] = (
    6, 4, 10, 2, 9, 2, 2, 2, 12, 2, 5, 4, 4, 9, 9, 1, 4, 3, 5, 9, 6, 7
)

#: Real corpus size (4208 edible / 3916 poisonous).
MUSHROOM_TOTAL = 8124
_EDIBLE = 4208
_POISONOUS = 3916

#: Index of the dominant attribute ("odor", cardinality 9 in the real data).
_DOMINANT_ATTR = 4
#: Weakly informative attributes (spore print color, gill color, ...).
_WEAK_ATTRS = (8, 19, 2, 10)
#: Probability a sample's dominant attribute is drawn from the *other*
#: class's category distribution, plus outright label noise — together these
#: set the Bayes ceiling near the paper's 96.8% float baseline.
_DOMINANT_CONFUSION = 0.022
_LABEL_NOISE = 0.008


def _class_category_bias(
    rng: np.random.Generator, cardinality: int, sharpness: float
) -> tuple[np.ndarray, np.ndarray]:
    """Two class-conditional categorical distributions over one attribute.

    ``sharpness`` near 1 gives the classes (nearly) disjoint category
    support — the first half of the categories belongs to class 0, the
    second half to class 1, with ``1 - sharpness`` mass leaking across.
    Near 0 the distributions coincide (uninformative).
    """
    if cardinality < 2:
        raise ValueError("cardinality must be >= 2")
    half = cardinality // 2
    own0 = np.zeros(cardinality)
    own0[:half] = rng.dirichlet(np.ones(half))
    own1 = np.zeros(cardinality)
    own1[half:] = rng.dirichlet(np.ones(cardinality - half))
    shared = rng.dirichlet(np.ones(cardinality))
    p0 = sharpness * own0 + (1 - sharpness) * shared
    p1 = sharpness * own1 + (1 - sharpness) * shared
    return p0 / p0.sum(), p1 / p1.sum()


def load_mushroom(seed: int = 23, test_size: int = 2708) -> Dataset:
    """Generate the Mushroom-equivalent dataset with the paper's sizes."""
    rng = np.random.default_rng(seed)
    labels = np.concatenate(
        [np.zeros(_EDIBLE, dtype=np.int64), np.ones(_POISONOUS, dtype=np.int64)]
    )
    rng.shuffle(labels)
    rows = len(labels)

    categorical = np.zeros((rows, len(MUSHROOM_CARDINALITIES)), dtype=np.int64)
    for attr, card in enumerate(MUSHROOM_CARDINALITIES):
        if card == 1:
            continue  # veil-type is constant in the real corpus too
        if attr == _DOMINANT_ATTR:
            sharpness = 0.985
        elif attr in _WEAK_ATTRS:
            sharpness = 0.35
        else:
            sharpness = 0.0
        p0, p1 = _class_category_bias(rng, card, sharpness)
        # Occasionally sample from the opposite class's distribution.
        confused = rng.random(rows) < (
            _DOMINANT_CONFUSION if attr == _DOMINANT_ATTR else 0.0
        )
        effective = np.where(confused, 1 - labels, labels)
        draws0 = rng.choice(card, size=rows, p=p0)
        draws1 = rng.choice(card, size=rows, p=p1)
        categorical[:, attr] = np.where(effective == 1, draws1, draws0)

    noisy = labels.copy()
    flips = rng.random(rows) < _LABEL_NOISE
    noisy[flips] = 1 - noisy[flips]

    features = one_hot(categorical, list(MUSHROOM_CARDINALITIES))
    train_x, train_y, test_x, test_y = stratified_split(
        features, noisy, test_size, rng
    )
    dataset = Dataset(
        name="mushroom",
        train_x=train_x,
        train_y=train_y,
        test_x=test_x,
        test_y=test_y,
        class_names=("edible", "poisonous"),
    )
    dataset.validate()
    return dataset
