"""The paper's three evaluation datasets (seeded generators).

Each loader returns a :class:`~repro.datasets.splits.Dataset` with exactly
the paper's inference (test) sizes: WBC 190, Iris 50, Mushroom 2708.  See
DESIGN.md §4 for the documented substitutions.
"""

from .splits import Dataset, one_hot, standardize, stratified_split
from .iris import IRIS_CLASS_STATS, load_iris
from .wbc import WBC_BENIGN, WBC_FEATURES, WBC_MALIGNANT, load_wbc
from .mushroom import MUSHROOM_CARDINALITIES, MUSHROOM_TOTAL, load_mushroom

__all__ = [
    "Dataset",
    "stratified_split",
    "standardize",
    "one_hot",
    "load_iris",
    "IRIS_CLASS_STATS",
    "load_wbc",
    "WBC_BENIGN",
    "WBC_MALIGNANT",
    "WBC_FEATURES",
    "load_mushroom",
    "MUSHROOM_CARDINALITIES",
    "MUSHROOM_TOTAL",
]

#: Loader registry used by the sweeps and benchmarks.
LOADERS = {
    "wbc": load_wbc,
    "iris": load_iris,
    "mushroom": load_mushroom,
}
