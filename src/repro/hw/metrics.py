"""Combined per-EMAC hardware report and figure-series helpers.

:func:`emac_report` bundles everything the paper's Figs 6-9 plot for one
EMAC configuration; the ``*_series`` helpers produce the exact sweeps each
figure shows.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..fixedpoint.format import fixed_format
from ..floatp.format import float_format
from ..posit.format import standard_format
from .design import DEFAULT_FAN_IN, EmacDesign
from .power import PowerReport, power_report
from .resources import LutBreakdown, dsp_count, lut_count
from .timing import StageTimes, fmax_hz, stage_times

__all__ = [
    "EmacReport",
    "emac_report",
    "default_configs_for_width",
    "figure6_series",
    "figure7_series",
    "figure8_series",
]


@dataclass(frozen=True)
class EmacReport:
    """Everything the paper reports about one synthesized EMAC."""

    design: EmacDesign
    luts: LutBreakdown
    dsps: int
    stages: StageTimes
    power: PowerReport

    @property
    def label(self) -> str:
        """Format label."""
        return self.design.label

    @property
    def fmax_hz(self) -> float:
        """Maximum operating frequency."""
        return 1.0 / self.stages.critical

    @property
    def dynamic_range(self) -> float:
        """log10(max/min) of the format."""
        return self.design.dynamic_range

    @property
    def edp(self) -> float:
        """Energy-delay product of one fan_in-length dot product (J*s)."""
        return self.power.edp


def emac_report(fmt, fan_in: int = DEFAULT_FAN_IN) -> EmacReport:
    """Full hardware report for one format at a given dot-product length."""
    design = EmacDesign.for_format(fmt, fan_in)
    return EmacReport(
        design=design,
        luts=lut_count(design),
        dsps=dsp_count(design),
        stages=stage_times(design),
        power=power_report(design),
    )


def default_configs_for_width(n: int) -> dict[str, list]:
    """The format configurations the paper sweeps at width ``n``.

    Posit es in {0, 1, 2} (subject to field fit), float we in {2..5} with
    wf >= 1, fixed q covering fractional splits of the word.
    """
    posits = [
        standard_format(n, es) for es in (0, 1, 2) if n - 3 - es >= 0
    ]
    floats = [
        float_format(we, n - 1 - we) for we in (2, 3, 4, 5) if n - 1 - we >= 1
    ]
    fixeds = [fixed_format(n, q) for q in range(1, n)]
    return {"posit": posits, "float": floats, "fixed": fixeds}


def figure6_series(
    widths: tuple[int, ...] = (5, 6, 7, 8), fan_in: int = DEFAULT_FAN_IN
) -> dict[str, list[tuple[float, float]]]:
    """Fig. 6: (dynamic range, Fmax) points per format family."""
    series: dict[str, list[tuple[float, float]]] = {"fixed": [], "float": [], "posit": []}
    for n in widths:
        configs = default_configs_for_width(n)
        for family, fmts in configs.items():
            for fmt in fmts:
                report = emac_report(fmt, fan_in)
                series[family].append((report.dynamic_range, report.fmax_hz))
    for family in series:
        series[family].sort()
    return series


def _best_accuracy_config(family: str, n: int):
    """Representative config per family/width for Figs 7-9: the paper's
    best performers (posit es<=2, float we in {3,4}, fixed mid split)."""
    if family == "posit":
        es = 1 if n - 4 >= 0 else 0
        return standard_format(n, es)
    if family == "float":
        we = 4 if n - 1 - 4 >= 1 else max(2, n - 2)
        return float_format(we, n - 1 - we)
    return fixed_format(n, max(1, n // 2))


def figure7_series(
    widths: tuple[int, ...] = (5, 6, 7, 8), fan_in: int = DEFAULT_FAN_IN
) -> dict[str, list[tuple[int, float]]]:
    """Fig. 7: (n, EDP) per format family."""
    series: dict[str, list[tuple[int, float]]] = {"fixed": [], "float": [], "posit": []}
    for n in widths:
        for family in series:
            fmt = _best_accuracy_config(family, n)
            series[family].append((n, emac_report(fmt, fan_in).edp))
    return series


def figure8_series(
    widths: tuple[int, ...] = (5, 6, 7, 8), fan_in: int = DEFAULT_FAN_IN
) -> dict[str, list[tuple[int, int]]]:
    """Fig. 8: (n, LUTs) per format family."""
    series: dict[str, list[tuple[int, int]]] = {"fixed": [], "float": [], "posit": []}
    for n in widths:
        for family in series:
            fmt = _best_accuracy_config(family, n)
            series[family].append((n, emac_report(fmt, fan_in).luts.total))
    return series
