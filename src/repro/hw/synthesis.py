"""Network-level synthesis roll-up for a Deep Positron accelerator.

The paper instantiates one EMAC per neuron with local weight/bias memories
(Fig. 1).  This module aggregates the per-EMAC structural estimates into a
whole-accelerator report: LUTs, DSP48s, BRAM tiles, clock (bounded by the
slowest layer's EMAC), power, end-to-end inference latency, and energy per
inference — i.e. what the paper's "full-scale DNN accelerators" conclusion
is about.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.control import InferenceTiming, network_timing
from ..core.memory import LayerMemory
from ..core.positron import PositronNetwork, scalar_emac_for
from . import virtex7 as dev
from .design import EmacDesign
from .power import energy_per_cycle_j
from .resources import dsp_count, lut_count
from .timing import fmax_hz

__all__ = ["LayerSynthesis", "NetworkSynthesis", "synthesize_network"]


@dataclass(frozen=True)
class LayerSynthesis:
    """Resources and timing of one layer (out_features EMAC instances)."""

    design: EmacDesign
    neurons: int
    memory: LayerMemory

    @property
    def luts(self) -> int:
        """LUTs of all EMACs in the layer."""
        return lut_count(self.design).total * self.neurons

    @property
    def dsps(self) -> int:
        """DSP48 slices of all EMACs in the layer."""
        return dsp_count(self.design) * self.neurons

    @property
    def bram_blocks(self) -> int:
        """RAMB18 tiles holding the layer's parameters."""
        return self.memory.bram_blocks

    @property
    def fmax_hz(self) -> float:
        """Clock bound imposed by this layer's EMAC."""
        return fmax_hz(self.design)

    @property
    def energy_per_cycle_j(self) -> float:
        """Switched energy of the whole layer per clock."""
        return energy_per_cycle_j(self.design) * self.neurons


@dataclass(frozen=True)
class NetworkSynthesis:
    """Whole-accelerator report for a Deep Positron network."""

    layers: tuple[LayerSynthesis, ...]
    timing: InferenceTiming

    @property
    def total_luts(self) -> int:
        """LUTs across all layers."""
        return sum(layer.luts for layer in self.layers)

    @property
    def total_dsps(self) -> int:
        """DSP48 slices across all layers."""
        return sum(layer.dsps for layer in self.layers)

    @property
    def total_bram_blocks(self) -> int:
        """RAMB18 tiles across all layers."""
        return sum(layer.bram_blocks for layer in self.layers)

    @property
    def clock_hz(self) -> float:
        """Achievable clock: the slowest layer's EMAC bounds the design."""
        return min(layer.fmax_hz for layer in self.layers)

    @property
    def dynamic_power_w(self) -> float:
        """Dynamic power with every layer busy at the design clock."""
        energy = sum(layer.energy_per_cycle_j for layer in self.layers)
        return energy * self.clock_hz

    @property
    def total_power_w(self) -> float:
        """Dynamic + static share."""
        return self.dynamic_power_w + dev.P_STATIC_SHARE_W

    @property
    def latency_s(self) -> float:
        """Single-sample inference latency at the design clock."""
        return self.timing.latency_seconds(self.clock_hz)

    def batch_latency_s(self, batch: int) -> float:
        """Streaming latency for ``batch`` samples."""
        return self.timing.batch_seconds(batch, self.clock_hz)

    @property
    def energy_per_inference_j(self) -> float:
        """Energy of one streamed inference at steady state."""
        interval = self.timing.initiation_interval / self.clock_hz
        return self.total_power_w * interval

    def render(self) -> str:
        """Human-readable synthesis report."""
        lines = [
            "Deep Positron accelerator synthesis",
            f"{'layer':>5} {'EMACs':>6} {'fan-in':>7} {'LUTs':>8} {'DSPs':>6} "
            f"{'BRAM':>5} {'Fmax':>9}",
        ]
        for i, layer in enumerate(self.layers):
            lines.append(
                f"{i:>5} {layer.neurons:>6} {layer.design.fan_in:>7} "
                f"{layer.luts:>8} {layer.dsps:>6} {layer.bram_blocks:>5} "
                f"{layer.fmax_hz / 1e6:>6.0f}MHz"
            )
        lines.append(
            f"total: {self.total_luts} LUTs, {self.total_dsps} DSP48, "
            f"{self.total_bram_blocks} RAMB18, clock {self.clock_hz / 1e6:.0f} MHz"
        )
        lines.append(
            f"power {1e3 * self.total_power_w:.1f} mW, "
            f"latency {1e6 * self.latency_s:.3f} us/sample, "
            f"energy {1e6 * self.energy_per_inference_j:.3f} uJ/inference"
        )
        return "\n".join(lines)


def synthesize_network(network: PositronNetwork) -> NetworkSynthesis:
    """Roll up a trained/deployed network into an accelerator report."""
    layers = []
    for layer in network.layers:
        design = EmacDesign.for_format(network.fmt, fan_in=layer.in_features)
        layers.append(
            LayerSynthesis(
                design=design,
                neurons=layer.out_features,
                memory=layer.memory,
            )
        )
    depth = scalar_emac_for(network.fmt).pipeline_depth
    timing = network_timing(
        [layer.in_features for layer in network.layers], depth
    )
    return NetworkSynthesis(layers=tuple(layers), timing=timing)
