"""Virtex-7-class device constants.

The paper synthesizes on an xc7vx485t-2ffg1761c with Vivado 2017.2,
optimizing for latency and targeting DSP48 slices.  We model that device
family with generic 28 nm constants.  Absolute numbers are calibrated, not
extracted from Vivado; the reproduction target is the *relative* behaviour
across formats (see DESIGN.md §4).  All constants live here so the
calibration is auditable and adjustable in one place.
"""

from __future__ import annotations

__all__ = [
    "T_CLOCK_OVERHEAD_S",
    "T_LUT_LEVEL_S",
    "T_CARRY_PER_BIT_S",
    "T_DSP_STAGE_S",
    "LUT_CAL",
    "E_LUT_TOGGLE_J",
    "E_DSP_OP_J",
    "ACTIVITY_FACTOR",
    "P_STATIC_SHARE_W",
    "DSP_MAX_WIDTH",
]

#: Clock-to-out + setup + one global route, charged to every pipeline stage.
T_CLOCK_OVERHEAD_S = 0.90e-9

#: One LUT logic level including local routing.
T_LUT_LEVEL_S = 0.35e-9

#: Carry-chain propagation per bit (CARRY4 ~ 4 bits / 60 ps).
T_CARRY_PER_BIT_S = 0.015e-9

#: A fully pipelined DSP48 multiply stage (MREG/PREG enabled, -2 grade).
T_DSP_STAGE_S = 1.55e-9

#: Global LUT-count calibration factor (synthesis overhead: control, muxing,
#: replication) applied on top of the structural estimate.
LUT_CAL = 1.4

#: Dynamic energy of one toggling LUT (gate + local wire) per clock.
E_LUT_TOGGLE_J = 0.5e-12

#: Dynamic energy of one DSP48 multiply.
E_DSP_OP_J = 4.0e-12

#: Average switching activity of datapath logic.
ACTIVITY_FACTOR = 0.15

#: Static power apportioned to one EMAC experiment (device leakage share).
P_STATIC_SHARE_W = 0.05

#: Largest operand width a single DSP48 multiplier accepts (25x18 signed).
DSP_MAX_WIDTH = 18
