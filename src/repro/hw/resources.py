"""LUT / DSP resource model (paper Fig. 8).

Structural costing of each EMAC datapath on 6-input-LUT fabric:

========================  ======================================
element                   LUT cost
========================  ======================================
ripple/carry adder        1 per bit
two's complement          0.5 per bit (inverter + carry chain)
barrel shifter            0.5 per bit per mux level
leading-zero detector     1.2 per bit
comparator / clip         1 per input bit
========================  ======================================

Significand multipliers map to DSP48 slices (the paper targets DSP48
explicitly), so they cost DSPs rather than LUTs at these widths.  A global
calibration factor (:data:`repro.hw.virtex7.LUT_CAL`) absorbs synthesis
overhead.  Posit pays for two Algorithm-1 decoders and the wide quire
shifter, which is why it tops Fig. 8; fixed-point is a bare adder.
"""

from __future__ import annotations

from dataclasses import dataclass
import math

from . import virtex7 as dev
from .design import EmacDesign

__all__ = ["LutBreakdown", "lut_count", "dsp_count"]


@dataclass(frozen=True)
class LutBreakdown:
    """Per-element LUT estimate of one EMAC."""

    decode: float
    multiply: float
    shift: float
    twos_complement: float
    accumulate: float
    normalize: float
    round_clip: float

    @property
    def total(self) -> int:
        """Calibrated total LUTs."""
        raw = (
            self.decode
            + self.multiply
            + self.shift
            + self.twos_complement
            + self.accumulate
            + self.normalize
            + self.round_clip
        )
        return int(round(raw * dev.LUT_CAL))


def _adder(bits: int) -> float:
    return 1.0 * bits


def _twos_complement(bits: int) -> float:
    return 0.5 * bits


def _barrel_shifter(bits: int, stages: int) -> float:
    return 0.5 * bits * stages


def _lzd(bits: int) -> float:
    return 1.2 * bits


def lut_count(design: EmacDesign) -> LutBreakdown:
    """Structural LUT estimate for one EMAC instance."""
    n = design.width
    wa = design.accumulator_bits

    if design.family == "fixed":
        return LutBreakdown(
            decode=0.0,
            multiply=0.0,  # DSP48
            shift=0.0,  # output shift is wiring
            twos_complement=0.0,
            accumulate=_adder(wa),
            normalize=0.0,
            round_clip=1.0 * n + 4.0,  # saturation comparator + mux
        )

    if design.family == "float":
        sub_detect = 2 * (design.fmt.we + 0.5 * design.fmt.wf)
        exp_add = _adder(design.fmt.we + 2)
        shift = _barrel_shifter(wa, design.shifter_stages)
        twos = 2 * _twos_complement(wa)  # into and out of 2's complement
        norm = _lzd(wa) + _barrel_shifter(
            design.product_bits + 2, max(1, math.ceil(math.log2(wa)))
        )
        return LutBreakdown(
            decode=sub_detect,
            multiply=exp_add,
            shift=shift,
            twos_complement=twos,
            accumulate=_adder(wa),
            normalize=norm,
            round_clip=2.0 * design.fmt.wf + design.fmt.we + 6.0,
        )

    if design.family == "posit":
        # Two Algorithm-1 decoders: 2's comp + LZD + regime shifter each.
        dec_stages = max(1, math.ceil(math.log2(n)))
        decode = 2 * (
            _twos_complement(n) + _lzd(n) + _barrel_shifter(n, dec_stages) + 0.5 * n
        )
        sf_add = _adder(design.fmt.es + math.ceil(math.log2(n)) + 2)
        shift = _barrel_shifter(wa, design.shifter_stages)
        twos_narrow = _twos_complement(design.product_bits + 1)
        norm = _lzd(wa) + _barrel_shifter(
            design.product_bits + 2, max(1, math.ceil(math.log2(wa)))
        )
        encode = _barrel_shifter(2 * n, dec_stages) + 2.0 * n + 6.0
        return LutBreakdown(
            decode=decode,
            multiply=sf_add,
            shift=shift,
            twos_complement=twos_narrow + _twos_complement(wa),  # final unsign
            accumulate=_adder(wa),
            normalize=norm,
            round_clip=encode,
        )

    raise ValueError(f"unknown family {design.family!r}")


def dsp_count(design: EmacDesign) -> int:
    """DSP48 slices used by the significand multiplier."""
    ops = design.multiplier_bits
    if ops == 0:
        return 0
    per_dim = max(1, math.ceil(ops / dev.DSP_MAX_WIDTH))
    return per_dim * per_dim
