"""Virtex-7-class structural hardware model for the EMAC soft cores.

Resource (LUT/DSP), timing (Fmax), and power/EDP estimates per EMAC,
calibrated to reproduce the orderings and growth trends of the paper's
Figs 6-9 (see DESIGN.md §4 for the substitution rationale).
"""

from . import virtex7
from .design import DEFAULT_FAN_IN, EmacDesign
from .resources import LutBreakdown, dsp_count, lut_count
from .timing import StageTimes, critical_path_s, fmax_hz, stage_times
from .power import PowerReport, dynamic_power_w, energy_per_cycle_j, power_report
from .metrics import (
    EmacReport,
    default_configs_for_width,
    emac_report,
    figure6_series,
    figure7_series,
    figure8_series,
)
from .synthesis import LayerSynthesis, NetworkSynthesis, synthesize_network

__all__ = [
    "virtex7",
    "EmacDesign",
    "DEFAULT_FAN_IN",
    "LutBreakdown",
    "lut_count",
    "dsp_count",
    "StageTimes",
    "stage_times",
    "critical_path_s",
    "fmax_hz",
    "PowerReport",
    "power_report",
    "dynamic_power_w",
    "energy_per_cycle_j",
    "EmacReport",
    "emac_report",
    "default_configs_for_width",
    "figure6_series",
    "figure7_series",
    "figure8_series",
    "LayerSynthesis",
    "NetworkSynthesis",
    "synthesize_network",
]
