"""Critical-path / Fmax model (paper Fig. 6).

Each EMAC is pipelined as in Figs 3-5: a multiply stage, then a D flip-flop,
then the accumulation stage.  Crucially, in the paper's figures the barrel
shifter (fixed-point conversion) and — for float — the wide two's
complement sit *after* the inter-stage register, inside the accumulation
stage, together with the wide adder.  That loop-carried stage dominates the
clock:

* fixed:  wide adder only                      -> fastest at every n;
* posit:  shifter + narrow 2's comp + adder    -> pays for quire width;
* float:  shifter + WIDE 2's comp + adder      -> pays an extra wide carry
  chain, which is why posit reaches a given dynamic range at a higher Fmax
  (paper Section IV-A).

Feed-forward stages (decode, DSP multiply, rounding/encode) are modeled too
and can limit narrow designs.
"""

from __future__ import annotations

from dataclasses import dataclass
import math

from . import virtex7 as dev
from .design import EmacDesign

__all__ = ["StageTimes", "stage_times", "critical_path_s", "fmax_hz"]


@dataclass(frozen=True)
class StageTimes:
    """Per-pipeline-stage delays in seconds."""

    decode: float
    multiply: float
    accumulate: float
    encode: float

    @property
    def critical(self) -> float:
        """Slowest stage — sets the clock period."""
        return max(self.decode, self.multiply, self.accumulate, self.encode)


def _levels(count: float) -> float:
    return dev.T_CLOCK_OVERHEAD_S + count * dev.T_LUT_LEVEL_S


def _carry(bits: int) -> float:
    return bits * dev.T_CARRY_PER_BIT_S


def stage_times(design: EmacDesign) -> StageTimes:
    """Delays of the four pipeline stages of one EMAC."""
    n = design.width
    wa = design.accumulator_bits

    if design.family == "fixed":
        decode = 0.0
        multiply = dev.T_DSP_STAGE_S
        accumulate = _levels(1) + _carry(wa)  # adder + output mux level
        encode = _levels(2) + _carry(n)  # clip comparator
        return StageTimes(decode, multiply, accumulate, encode)

    shifter_levels = design.shifter_stages
    # The rounding/normalization path is feed-forward and runs once per dot
    # product, so it is pipelined into an LZD stage and a shift/round stage;
    # its contribution to the clock is the slower of the two.
    norm_levels = max(1, math.ceil(math.log2(wa)))

    if design.family == "float":
        decode = _levels(2)  # subnormal detect + hidden-bit mux
        multiply = dev.T_DSP_STAGE_S
        accumulate = (
            _levels(shifter_levels)
            + _carry(wa)  # wide two's complement carry chain
            + _carry(wa)  # wide accumulate adder
        )
        encode = max(
            _levels(norm_levels),  # leading-zero detect over the register
            _levels(2) + _carry(design.product_bits + 2),  # shift + round
        )
        return StageTimes(decode, multiply, accumulate, encode)

    if design.family == "posit":
        dec_levels = max(1, math.ceil(math.log2(n))) + 2  # LZD + shift + 2sC
        decode = _levels(dec_levels) + _carry(n)
        multiply = dev.T_DSP_STAGE_S
        accumulate = (
            _levels(shifter_levels)
            + _carry(design.product_bits + 1)  # narrow 2's comp (Alg. 2 l.11)
            + _carry(wa)  # quire adder
        )
        encode = max(
            _levels(norm_levels),  # LZD over the quire
            _levels(2) + _carry(2 * n),  # regime shift + round increment
        )
        return StageTimes(decode, multiply, accumulate, encode)

    raise ValueError(f"unknown family {design.family!r}")


def critical_path_s(design: EmacDesign) -> float:
    """Clock period lower bound in seconds."""
    return stage_times(design).critical


def fmax_hz(design: EmacDesign) -> float:
    """Maximum operating frequency in Hz."""
    return 1.0 / critical_path_s(design)
