"""Power and energy model (inputs to the paper's Figs 7 and 9).

Dynamic power = activity x (LUT toggle energy x LUTs + DSP op energy) x f,
plus a static leakage share.  Operating frequency defaults to the design's
Fmax (the paper optimizes for latency).
"""

from __future__ import annotations

from dataclasses import dataclass

from . import virtex7 as dev
from .design import EmacDesign
from .resources import dsp_count, lut_count
from .timing import fmax_hz

__all__ = ["PowerReport", "power_report", "dynamic_power_w", "energy_per_cycle_j"]


def energy_per_cycle_j(design: EmacDesign) -> float:
    """Switched energy of one EMAC clock cycle (one MAC)."""
    luts = lut_count(design).total
    dsps = dsp_count(design)
    return dev.ACTIVITY_FACTOR * (
        luts * dev.E_LUT_TOGGLE_J + dsps * dev.E_DSP_OP_J
    )


def dynamic_power_w(design: EmacDesign, frequency_hz: float | None = None) -> float:
    """Dynamic power at ``frequency_hz`` (defaults to Fmax)."""
    f = frequency_hz if frequency_hz is not None else fmax_hz(design)
    if f <= 0:
        raise ValueError("frequency must be positive")
    return energy_per_cycle_j(design) * f


@dataclass(frozen=True)
class PowerReport:
    """Power/energy summary of one EMAC running a ``k``-MAC dot product."""

    design: EmacDesign
    frequency_hz: float
    dynamic_w: float
    static_w: float

    @property
    def total_w(self) -> float:
        """Dynamic + static power."""
        return self.dynamic_w + self.static_w

    @property
    def dot_product_cycles(self) -> int:
        """Cycles per dot product: k MACs + pipeline fill (4 stages)."""
        return self.design.fan_in + 4

    @property
    def dot_product_latency_s(self) -> float:
        """Wall-clock latency of one dot product."""
        return self.dot_product_cycles / self.frequency_hz

    @property
    def dot_product_energy_j(self) -> float:
        """Energy of one dot product (dynamic + static over its latency)."""
        return self.total_w * self.dot_product_latency_s

    @property
    def edp(self) -> float:
        """Energy-delay product of one dot product, in J*s."""
        return self.dot_product_energy_j * self.dot_product_latency_s


def power_report(
    design: EmacDesign, frequency_hz: float | None = None
) -> PowerReport:
    """Build the power/energy summary (defaults to running at Fmax)."""
    f = frequency_hz if frequency_hz is not None else fmax_hz(design)
    return PowerReport(
        design=design,
        frequency_hz=f,
        dynamic_w=dynamic_power_w(design, f),
        static_w=dev.P_STATIC_SHARE_W,
    )
