"""Structural description of each EMAC datapath.

:class:`EmacDesign` derives, from a numerical format and the dot-product
length ``k``, the widths of every datapath element the paper's figures show:
significand multiplier, accumulator/quire register (eqs. (3) and (4)),
shifters, leading-zero detectors, and decode/encode logic.  The resource,
timing, and power models consume these widths.
"""

from __future__ import annotations

from dataclasses import dataclass
import math

from ..fixedpoint.format import FixedFormat
from ..floatp.format import FloatFormat
from ..posit.format import PositFormat

__all__ = ["EmacDesign", "DEFAULT_FAN_IN"]

#: Nominal dot-product length used when synthesizing a standalone EMAC
#: (the paper synthesizes the units outside any specific network).
DEFAULT_FAN_IN = 16


@dataclass(frozen=True)
class EmacDesign:
    """Datapath widths of one EMAC instance.

    Build with :meth:`for_format`.
    """

    family: str  # "fixed" | "float" | "posit"
    fmt: object
    fan_in: int
    accumulator_bits: int  # eq. (3) / eq. (4) register width
    multiplier_bits: int  # significand multiplier operand width
    decode_width: int  # per-input decode datapath width (0 if trivial)
    has_input_shift: bool  # accumulate stage includes a barrel shifter
    has_twos_complement: bool  # accumulate stage includes wide 2's comp

    @classmethod
    def for_format(cls, fmt, fan_in: int = DEFAULT_FAN_IN) -> "EmacDesign":
        """Derive the datapath widths for any supported format."""
        if fan_in < 1:
            raise ValueError("fan_in must be >= 1")
        if isinstance(fmt, FixedFormat):
            return cls(
                family="fixed",
                fmt=fmt,
                fan_in=fan_in,
                accumulator_bits=fmt.accumulator_bits(fan_in),
                multiplier_bits=fmt.n,
                decode_width=0,
                has_input_shift=False,
                has_twos_complement=False,
            )
        if isinstance(fmt, FloatFormat):
            return cls(
                family="float",
                fmt=fmt,
                fan_in=fan_in,
                accumulator_bits=fmt.accumulator_bits(fan_in),
                multiplier_bits=fmt.wf + 1,
                decode_width=fmt.n,  # subnormal detection & hidden-bit mux
                has_input_shift=True,
                # Products arrive sign+magnitude; the wide register needs
                # full-width 2's complement both ways (paper Fig. 4).
                has_twos_complement=True,
            )
        if isinstance(fmt, PositFormat):
            return cls(
                family="posit",
                fmt=fmt,
                fan_in=fan_in,
                accumulator_bits=fmt.quire_bits(fan_in),
                multiplier_bits=fmt.significand_bits,
                decode_width=fmt.n,  # Algorithm 1: LZD + shifter + 2's comp
                has_input_shift=True,
                # Algorithm 2 complements the *narrow* product (line 11),
                # not the quire, so no wide 2's comp in the loop.
                has_twos_complement=False,
            )
        raise TypeError(f"unsupported format {type(fmt).__name__}")

    # ------------------------------------------------------------------
    @property
    def width(self) -> int:
        """Input pattern width ``n``."""
        return self.fmt.n

    @property
    def dynamic_range(self) -> float:
        """``log10(max/min)`` of the input format (paper Fig. 6 x-axis)."""
        return self.fmt.dynamic_range

    @property
    def product_bits(self) -> int:
        """Width of the significand product."""
        return 2 * self.multiplier_bits

    @property
    def shifter_stages(self) -> int:
        """Mux levels of the accumulate-stage barrel shifter."""
        if not self.has_input_shift:
            return 0
        return max(1, math.ceil(math.log2(self.accumulator_bits)))

    @property
    def label(self) -> str:
        """Readable identifier, e.g. ``posit<8,1>``."""
        return str(self.fmt)
