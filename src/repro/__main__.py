"""Command-line experiment driver.

Regenerate any paper artifact from the shell::

    python -m repro table1      # regime interpretation
    python -m repro fig2        # value/weight distributions
    python -m repro fig6        # dynamic range vs Fmax
    python -m repro fig7        # n vs EDP
    python -m repro fig8        # n vs LUTs
    python -m repro fig9        # accuracy degradation vs EDP
    python -m repro table2     # headline accuracy table
    python -m repro all        # everything above

Number systems are addressed by registry name (``python -m repro formats``
lists them); any registered family works end to end::

    python -m repro formats                # registered families/candidates
    python -m repro formats --explain wbc:posit8_1   # fused-plan decisions
    python -m repro synth wbc posit8_1     # synthesis at a named format
    python -m repro sweep iris 8           # full width-8 sweep, one dataset
    python -m repro sweep iris float4_3    # one named config, one dataset

The parallel, resumable runner fans full sweep grids out over worker
processes, sharing trained models and per-task results through the
content-addressed artifact cache (interrupt it; rerunning resumes)::

    python -m repro run table2 --jobs 4    # Table II, 4 worker processes
    python -m repro run fig9 --jobs 4      # Fig. 9, all widths
    python -m repro run sweep --jobs 4 --datasets iris,wbc --widths 5,8
    python -m repro run ablation --jobs 4  # rounding-mode ablation grid
    python -m repro run table2 --no-cache  # bypass the artifact cache

The micro-batching inference service answers concurrent predict requests
over HTTP, coalescing them into compiled-kernel-sized batches with
responses bit-identical to direct ``predict`` (see docs/serving.md).
Service operations ride along: Prometheus ``/metrics``, adaptive
coalescing delay, model hot-swap (``/swap``) and A/B serving with a
sampled bit-identity canary::

    python -m repro serve                  # listen on 127.0.0.1:8707
    python -m repro serve --port 9000 --max-batch 64 --max-delay-ms 5
    python -m repro serve --warmup wbc:posit8_1 --warmup iris:float4_3
    python -m repro serve --no-adaptive-delay      # fixed coalescing window
    python -m repro serve --ab wbc:posit8_1:float8_4 --canary-every 4
"""

from __future__ import annotations

import sys


def _table1() -> str:
    from .posit import regime_of_run, regime_run_length

    lines = ["TABLE I: Regime Interpretation", "Binary   Regime (k)"]
    for binary in ("0001", "001", "01", "10", "110", "1110"):
        bits = int(binary, 2)
        width = len(binary)
        run = regime_run_length(bits, width)
        leading = (bits >> (width - 1)) & 1
        lines.append(f"{binary:<8} {regime_of_run(leading, run):>9}")
    return "\n".join(lines)


def _fig2() -> str:
    from .analysis import (
        in_unit_fraction,
        posit_value_histogram,
        render_histogram,
        trained_model,
        weight_histogram,
    )
    from .posit import standard_format

    fmt = standard_format(7, 0)
    value_hist = posit_value_histogram(fmt)
    weights, _ = trained_model("wbc").model.export_params()
    weight_hist = weight_histogram(weights)
    return "\n\n".join(
        [
            render_histogram("Fig. 2(a): 7-bit posit (es=0) values", value_hist),
            render_histogram("Fig. 2(b): trained WBC weights", weight_hist),
            f"mass in [-1,1]: posit {in_unit_fraction(value_hist):.3f}, "
            f"weights {in_unit_fraction(weight_hist):.3f}",
        ]
    )


def _fig6() -> str:
    from .analysis import render_series
    from .hw import figure6_series

    return render_series(
        "Fig. 6: dynamic range vs Fmax (Hz)",
        figure6_series(),
        x_label="dynamic range",
        y_label="Fmax",
    )


def _fig7() -> str:
    from .analysis import render_series
    from .hw import figure7_series

    return render_series(
        "Fig. 7: n vs EDP (J*s)", figure7_series(), x_label="n", y_label="EDP"
    )


def _fig8() -> str:
    from .analysis import render_series
    from .hw import figure8_series

    return render_series(
        "Fig. 8: n vs LUTs",
        figure8_series(),
        x_label="n",
        y_label="LUTs",
        y_format="{:.0f}",
    )


def _fig9() -> str:
    from .analysis import figure9_series, render_figure9

    return render_figure9(figure9_series())


def _table2() -> str:
    from .analysis import render_table2, table2_rows

    return render_table2(table2_rows())


def _synth(dataset: str, format_name: str = "posit8_1") -> str:
    from . import formats
    from .analysis import trained_model
    from .core import PositronNetwork
    from .hw import synthesize_network

    backend = formats.get(format_name)
    tm = trained_model(dataset)
    weights, biases = tm.model.export_params()
    net = PositronNetwork.from_float_params(backend.fmt, weights, biases)
    return f"[{dataset}, {backend.label}]\n" + synthesize_network(net).render()


def _formats() -> str:
    from . import formats

    lines = ["Registered number-system families:"]
    for family in formats.families():
        lines.append(f"  {family.name:<8} ({family.fmt_type.__name__})")
    lines.append("")
    lines.append("Sweep candidates by width (canonical registry names):")
    for n in (5, 6, 7, 8):
        names = formats.available(widths=(n,))
        lines.append(f"  n={n}: " + " ".join(names))
    lines.append("")
    lines.append("Fused-plan compile report for a served model:")
    lines.append("  python -m repro formats --explain DATASET:FORMAT")
    return "\n".join(lines)


def _formats_explain(spec: str) -> str:
    """Per-layer fused-plan compile report for a trained ``ds:fmt`` model."""
    from . import formats
    from .analysis import trained_model
    from .core import PositronNetwork

    dataset, sep, format_name = spec.partition(":")
    if not sep or not dataset or not format_name:
        raise ValueError(f"--explain wants DATASET:FORMAT, got {spec!r}")
    backend = formats.get(format_name)
    weights, biases = trained_model(dataset).model.export_params()
    net = PositronNetwork.from_float_params(backend.fmt, weights, biases)
    report = net.network_kernel().explain()
    lines = [
        f"[{dataset}, {backend.label}] fused network plan "
        f"(mode={net.rounding_mode})",
        f"{'layer':<6}{'shape':<12}{'act':<10}{'path':<9}"
        f"{'operands':<10}{'tables':<10}candidates (best-of-3 us)",
    ]
    for row in report:
        shape = f"{row['in_features']}->{row['out_features']}"
        timings = row["timings_us"]
        timing_str = (
            "uncontested: " + "/".join(e for e in row["eligible"] if e != "layer")
            if timings is None
            else " ".join(f"{p}={t}" for p, t in sorted(timings.items()))
        )
        lines.append(
            f"{row['layer']:<6}{shape:<12}{row['activation']:<10}"
            f"{row['path']:<9}{row['wants']:<10}"
            f"{row['table_bytes'] / 1024:>7.1f}KB {timing_str}"
        )
    total = sum(row["table_bytes"] for row in report)
    lines.append(f"total compiled-table footprint: {total / 1024:.1f}KB")
    return "\n".join(lines)


def _sweep(dataset: str, spec: str) -> str:
    from .analysis import evaluate_named_format, sweep_width

    if spec.isdigit():
        sweep = sweep_width(dataset, int(spec))
        lines = [
            f"[{dataset}, n={spec}] float32 baseline "
            f"{sweep['float32_accuracy']:.4f}"
        ]
        for row in sweep["all"]:
            lines.append(f"  {row['label']:<16} {row['accuracy']:.4f}")
        for family, best in sweep["best"].items():
            if best is not None:
                lines.append(
                    f"best {family:<6} {best['label']:<16} {best['accuracy']:.4f}"
                )
        return "\n".join(lines)
    result = evaluate_named_format(dataset, spec)
    return (
        f"[{result['dataset']}, {result['label']}] accuracy "
        f"{result['accuracy']:.4f} (float32 {result['float32_accuracy']:.4f})"
    )


def _run(args: list[str]) -> str:
    import argparse
    import os

    from .analysis import (
        DEFAULT_DATASETS,
        DEFAULT_WIDTHS,
        GridQuarantine,
        render_ablation,
        render_figure9,
        render_table2,
        run_ablation,
        run_fig9,
        run_sweeps,
        run_table2,
    )

    parser = argparse.ArgumentParser(
        prog="python -m repro run",
        description="Parallel, resumable experiment runner.",
    )
    parser.add_argument("target", choices=("table2", "fig9", "sweep", "ablation"))
    parser.add_argument(
        "--jobs", "-j", type=int, default=1,
        help="worker processes (0 = all cores; 1 = serial, the default)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="bypass the artifact cache (implies full recompute, no resume)",
    )
    parser.add_argument(
        "--datasets", default=None,
        help=f"comma-separated subset of {','.join(DEFAULT_DATASETS)}",
    )
    parser.add_argument(
        "--widths", default=None,
        help="comma-separated bit widths (sweep/fig9/ablation; default 5-8)",
    )
    parser.add_argument(
        "--max-attempts", type=int, default=3,
        help="attempts per task before it is quarantined (crashed workers "
             "are retried with exponential backoff)",
    )
    parser.add_argument(
        "--retry-backoff", type=float, default=0.5, metavar="SECONDS",
        help="base of the exponential backoff between retry rounds",
    )
    ns = parser.parse_args(args)

    if ns.no_cache:
        os.environ["REPRO_NO_CACHE"] = "1"
    jobs = ns.jobs if ns.jobs > 0 else (os.cpu_count() or 1)
    datasets = (
        tuple(ns.datasets.split(",")) if ns.datasets else DEFAULT_DATASETS
    )
    widths = (
        tuple(int(w) for w in ns.widths.split(","))
        if ns.widths
        else DEFAULT_WIDTHS
    )

    def progress(message: str) -> None:
        print(f"run[{ns.target}] {message}", file=sys.stderr, flush=True)

    retry = {
        "max_attempts": ns.max_attempts,
        "retry_backoff_s": ns.retry_backoff,
    }
    try:
        if ns.target == "table2":
            return render_table2(
                run_table2(datasets, jobs=jobs, progress=progress, **retry)
            )
        if ns.target == "fig9":
            return render_figure9(
                run_fig9(widths, datasets, jobs=jobs, progress=progress,
                         **retry)
            )
        if ns.target == "ablation":
            results = run_ablation(
                datasets, widths, jobs=jobs, progress=progress, **retry
            )
            return render_ablation(list(results.values()))
        sweeps = run_sweeps(datasets, widths, jobs=jobs, progress=progress,
                            **retry)
    except GridQuarantine as exc:
        # The healthy part of the grid completed (and is in the store);
        # report the quarantined tasks instead of pretending all is well.
        for row in exc.report:
            progress(
                f"QUARANTINED {row['dataset']} n={row['width']} after "
                f"{row['attempts']} attempt(s): {row['error']}"
            )
        raise ValueError(str(exc)) from exc
    lines = []
    for task, sweep in sweeps.items():
        lines.append(
            f"[{task.dataset}, n={task.width}] float32 baseline "
            f"{sweep['float32_accuracy']:.4f}"
        )
        for family, best in sweep["best"].items():
            if best is not None:
                lines.append(
                    f"  best {family:<6} {best['label']:<16} "
                    f"{best['accuracy']:.4f}"
                )
    return "\n".join(lines)


def _serve(args: list[str]) -> int:
    import argparse
    import asyncio

    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description="Micro-batching exact-MAC inference service.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8707,
                        help="listen port (0 = any free port)")
    parser.add_argument("--max-batch", type=int, default=32,
                        help="rows per coalesced kernel batch")
    parser.add_argument("--max-delay-ms", type=float, default=2.0,
                        help="longest a lone request waits for batchmates")
    parser.add_argument("--queue-limit", type=int, default=256,
                        help="bounded per-model queue (backpressure)")
    parser.add_argument("--workers", type=int, default=2,
                        help="executor threads running kernel batches")
    parser.add_argument(
        "--no-adaptive-delay", action="store_true",
        help="disable EWMA delay tuning (always wait the full max-delay-ms)",
    )
    parser.add_argument(
        "--warmup", action="append", default=[], metavar="DATASET:FORMAT",
        help="preload a model before serving (repeatable)",
    )
    parser.add_argument(
        "--ab", action="append", default=[], metavar="DATASET:FMT_A:FMT_B",
        help="serve a dataset A/B across two formats with a sampled "
             "bit-identity canary (repeatable)",
    )
    parser.add_argument(
        "--canary-every", type=int, default=8,
        help="run the A/B canary on every Nth routed request (0 = never)",
    )
    parser.add_argument(
        "--shed-threshold", type=float, default=None, metavar="FRACTION",
        help="shed load (503 + Retry-After) once a model's queue reaches "
             "this fraction of --queue-limit (default: off, submitters "
             "wait instead)",
    )
    parser.add_argument(
        "--rollback-after", type=int, default=1, metavar="N",
        help="canary divergences on an A/B arm before it is automatically "
             "rolled back to the last-known-good generation (0 = never)",
    )
    parser.add_argument(
        "--workers-procs", type=int, default=0, metavar="N",
        help="fork N serving processes sharing the port (0 = single "
             "process, the default); control ops fan out to all workers "
             "and SIGHUP triggers a rolling restart",
    )
    parser.add_argument(
        "--pool-mode", choices=("reuseport", "router"), default="reuseport",
        help="multi-process distribution: 'reuseport' shards the listen "
             "socket across workers via SO_REUSEPORT; 'router' proxies "
             "each request to a worker chosen by (dataset, format) so "
             "every model's micro-batcher stays hot in one worker",
    )
    ns = parser.parse_args(args)

    warmups = []
    for spec in ns.warmup:
        dataset, sep, format_name = spec.partition(":")
        if not sep or not dataset or not format_name:
            print(f"error: --warmup wants DATASET:FORMAT, got {spec!r}",
                  file=sys.stderr)
            return 2
        warmups.append((dataset, format_name))

    ab_experiments = []
    for spec in ns.ab:
        parts = spec.split(":")
        if len(parts) != 3 or not all(parts):
            print(f"error: --ab wants DATASET:FMT_A:FMT_B, got {spec!r}",
                  file=sys.stderr)
            return 2
        ab_experiments.append(tuple(parts))

    from .serve import run_pool_forever, serve_forever

    server_kwargs = dict(
        max_batch=ns.max_batch,
        max_delay_ms=ns.max_delay_ms,
        queue_limit=ns.queue_limit,
        executor_workers=ns.workers,
        adaptive_delay=not ns.no_adaptive_delay,
        canary_every=ns.canary_every,
        shed_threshold=ns.shed_threshold,
        rollback_after=ns.rollback_after,
    )
    try:
        if ns.workers_procs > 0:
            asyncio.run(run_pool_forever(
                host=ns.host,
                port=ns.port,
                workers=ns.workers_procs,
                mode=ns.pool_mode,
                warmups=tuple(warmups),
                ab_experiments=tuple(ab_experiments),
                server_kwargs=server_kwargs,
            ))
        else:
            asyncio.run(serve_forever(
                warmups=warmups,
                ab_experiments=ab_experiments,
                host=ns.host,
                port=ns.port,
                **server_kwargs,
            ))
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
    except (KeyError, ValueError, OSError) as exc:
        # str(KeyError) wraps the message in quotes; str(OSError) keeps
        # the human-readable bind error (args[0] would be a bare errno).
        message = exc.args[0] if isinstance(exc, KeyError) and exc.args else exc
        print(f"error: {message}", file=sys.stderr)
        return 2
    return 0


_COMMANDS = {
    "table1": _table1,
    "fig2": _fig2,
    "fig6": _fig6,
    "fig7": _fig7,
    "fig8": _fig8,
    "fig9": _fig9,
    "table2": _table2,
    "formats": _formats,
}


def main(argv: list[str] | None = None) -> int:
    """Entry point: dispatch to one experiment (or ``all``)."""
    args = argv if argv is not None else sys.argv[1:]
    if not args or args[0] in ("-h", "--help"):
        print(__doc__)
        return 0
    command = args[0]
    if command == "synth":
        dataset = args[1] if len(args) > 1 else "wbc"
        format_name = args[2] if len(args) > 2 else "posit8_1"
        try:
            print(_synth(dataset, format_name))
        except (KeyError, ValueError) as exc:
            print(f"error: {exc.args[0]}", file=sys.stderr)
            return 2
        return 0
    if command == "run":
        try:
            print(_run(args[1:]))
        except (KeyError, ValueError) as exc:
            print(f"error: {exc.args[0]}", file=sys.stderr)
            return 2
        return 0
    if command == "serve":
        return _serve(args[1:])
    if command == "formats" and len(args) > 1:
        if args[1] != "--explain" or len(args) < 3:
            print("usage: python -m repro formats [--explain DATASET:FORMAT]",
                  file=sys.stderr)
            return 2
        try:
            print(_formats_explain(args[2]))
        except (KeyError, ValueError) as exc:
            print(f"error: {exc.args[0]}", file=sys.stderr)
            return 2
        return 0
    if command == "sweep":
        if len(args) < 3:
            print("usage: python -m repro sweep <dataset> <width|format-name>",
                  file=sys.stderr)
            return 2
        try:
            print(_sweep(args[1], args[2]))
        except (KeyError, ValueError) as exc:
            print(f"error: {exc.args[0]}", file=sys.stderr)
            return 2
        return 0
    if command == "all":
        for name, fn in _COMMANDS.items():
            print(f"\n{'=' * 20} {name} {'=' * 20}")
            print(fn())
        print(f"\n{'=' * 20} synth {'=' * 20}")
        print(_synth("wbc"))
        return 0
    if command not in _COMMANDS:
        print(f"unknown command '{command}'; try --help", file=sys.stderr)
        return 2
    print(_COMMANDS[command]())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
