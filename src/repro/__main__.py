"""Command-line experiment driver.

Regenerate any paper artifact from the shell::

    python -m repro table1      # regime interpretation
    python -m repro fig2        # value/weight distributions
    python -m repro fig6        # dynamic range vs Fmax
    python -m repro fig7        # n vs EDP
    python -m repro fig8        # n vs LUTs
    python -m repro fig9        # accuracy degradation vs EDP
    python -m repro table2     # headline accuracy table
    python -m repro synth wbc  # accelerator synthesis roll-up
    python -m repro all        # everything above
"""

from __future__ import annotations

import sys


def _table1() -> str:
    from .posit import regime_of_run, regime_run_length

    lines = ["TABLE I: Regime Interpretation", "Binary   Regime (k)"]
    for binary in ("0001", "001", "01", "10", "110", "1110"):
        bits = int(binary, 2)
        width = len(binary)
        run = regime_run_length(bits, width)
        leading = (bits >> (width - 1)) & 1
        lines.append(f"{binary:<8} {regime_of_run(leading, run):>9}")
    return "\n".join(lines)


def _fig2() -> str:
    from .analysis import (
        in_unit_fraction,
        posit_value_histogram,
        render_histogram,
        trained_model,
        weight_histogram,
    )
    from .posit import standard_format

    fmt = standard_format(7, 0)
    value_hist = posit_value_histogram(fmt)
    weights, _ = trained_model("wbc").model.export_params()
    weight_hist = weight_histogram(weights)
    return "\n\n".join(
        [
            render_histogram("Fig. 2(a): 7-bit posit (es=0) values", value_hist),
            render_histogram("Fig. 2(b): trained WBC weights", weight_hist),
            f"mass in [-1,1]: posit {in_unit_fraction(value_hist):.3f}, "
            f"weights {in_unit_fraction(weight_hist):.3f}",
        ]
    )


def _fig6() -> str:
    from .analysis import render_series
    from .hw import figure6_series

    return render_series(
        "Fig. 6: dynamic range vs Fmax (Hz)",
        figure6_series(),
        x_label="dynamic range",
        y_label="Fmax",
    )


def _fig7() -> str:
    from .analysis import render_series
    from .hw import figure7_series

    return render_series(
        "Fig. 7: n vs EDP (J*s)", figure7_series(), x_label="n", y_label="EDP"
    )


def _fig8() -> str:
    from .analysis import render_series
    from .hw import figure8_series

    return render_series(
        "Fig. 8: n vs LUTs",
        figure8_series(),
        x_label="n",
        y_label="LUTs",
        y_format="{:.0f}",
    )


def _fig9() -> str:
    from .analysis import figure9_series, render_figure9

    return render_figure9(figure9_series())


def _table2() -> str:
    from .analysis import render_table2, table2_rows

    return render_table2(table2_rows())


def _synth(dataset: str) -> str:
    from .analysis import trained_model
    from .core import PositronNetwork
    from .hw import synthesize_network
    from .posit import standard_format

    tm = trained_model(dataset)
    weights, biases = tm.model.export_params()
    net = PositronNetwork.from_float_params(standard_format(8, 1), weights, biases)
    return f"[{dataset}, posit<8,1>]\n" + synthesize_network(net).render()


_COMMANDS = {
    "table1": _table1,
    "fig2": _fig2,
    "fig6": _fig6,
    "fig7": _fig7,
    "fig8": _fig8,
    "fig9": _fig9,
    "table2": _table2,
}


def main(argv: list[str] | None = None) -> int:
    """Entry point: dispatch to one experiment (or ``all``)."""
    args = argv if argv is not None else sys.argv[1:]
    if not args or args[0] in ("-h", "--help"):
        print(__doc__)
        return 0
    command = args[0]
    if command == "synth":
        dataset = args[1] if len(args) > 1 else "wbc"
        print(_synth(dataset))
        return 0
    if command == "all":
        for name, fn in _COMMANDS.items():
            print(f"\n{'=' * 20} {name} {'=' * 20}")
            print(fn())
        print(f"\n{'=' * 20} synth {'=' * 20}")
        print(_synth("wbc"))
        return 0
    if command not in _COMMANDS:
        print(f"unknown command '{command}'; try --help", file=sys.stderr)
        return 2
    print(_COMMANDS[command]())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
