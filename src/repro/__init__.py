"""repro — a reproduction of "Deep Positron: A Deep Neural Network Using the
Posit Number System" (Carmichael et al., DATE 2019).

Subpackages
-----------
``repro.posit``
    Parametric posit arithmetic: decode/encode, scalar values, quire, tables.
``repro.floatp``
    Parametric IEEE-style small floats with subnormals.
``repro.fixedpoint``
    Q-format fixed point.
``repro.core``
    The paper's contribution: exact MAC (EMAC) soft cores for all three
    formats, a vectorized bit-identical engine, and the Deep Positron DNN
    inference architecture.
``repro.nn``
    From-scratch numpy MLP training substrate and format quantizers.
``repro.datasets``
    The three evaluation datasets (seeded generators; see DESIGN.md for the
    documented substitutions).
``repro.hw``
    Virtex-7-class structural synthesis model: LUTs, Fmax, power, EDP.
``repro.formats``
    The unified number-system backend registry: one ``NumericFormat`` per
    system (decode tables, batched quantize/round-off, engine and EMAC
    factories), addressed by name (``formats.get("posit8_1")``).
``repro.analysis``
    Experiment drivers reproducing every table and figure.
"""

from . import formats
from .core import (
    FixedEmac,
    FloatEmac,
    PositEmac,
    PositronNetwork,
    engine_for,
)
from .fixedpoint import Fixed, FixedFormat, fixed_format
from .floatp import FloatFormat, FloatP, float_format
from .posit import Posit, PositFormat, Quire, standard_format

__version__ = "1.0.0"

__all__ = [
    "formats",
    "Posit",
    "PositFormat",
    "Quire",
    "standard_format",
    "FloatP",
    "FloatFormat",
    "float_format",
    "Fixed",
    "FixedFormat",
    "fixed_format",
    "FixedEmac",
    "FloatEmac",
    "PositEmac",
    "PositronNetwork",
    "engine_for",
    "__version__",
]
