"""Layers of the float training substrate.

A minimal but complete autograd-free MLP stack: each layer implements
``forward`` caching what ``backward`` needs, and ``backward`` returns the
gradient with respect to its input while storing parameter gradients.  The
networks trained here supply the float32 parent models that Deep Positron
quantizes, mirroring the paper's methodology (train at high precision, infer
at low precision without retraining).
"""

from __future__ import annotations

import numpy as np

from .init import he_uniform, xavier_uniform, zeros_bias

__all__ = ["Dense", "ReLU", "softmax", "log_softmax"]


class Dense:
    """Fully connected layer ``y = x @ W.T + b`` with gradient storage."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator,
        init: str = "he",
    ):
        if init == "he":
            self.weight = he_uniform(rng, in_features, out_features)
        elif init == "xavier":
            self.weight = xavier_uniform(rng, in_features, out_features)
        else:
            raise ValueError(f"unknown init '{init}'")
        self.bias = zeros_bias(out_features)
        self.grad_weight = np.zeros_like(self.weight)
        self.grad_bias = np.zeros_like(self.bias)
        self._input: np.ndarray | None = None

    @property
    def in_features(self) -> int:
        """Fan-in."""
        return self.weight.shape[1]

    @property
    def out_features(self) -> int:
        """Fan-out."""
        return self.weight.shape[0]

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Affine transform; caches the input for the backward pass."""
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ValueError(
                f"expected (batch, {self.in_features}) input, got {x.shape}"
            )
        self._input = x
        return x @ self.weight.T + self.bias

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Accumulate parameter gradients; return gradient w.r.t. input."""
        if self._input is None:
            raise RuntimeError("backward called before forward")
        self.grad_weight = grad_out.T @ self._input
        self.grad_bias = grad_out.sum(axis=0)
        return grad_out @ self.weight

    def parameters(self) -> list[tuple[np.ndarray, np.ndarray]]:
        """(parameter, gradient) pairs for the optimizer."""
        return [(self.weight, self.grad_weight), (self.bias, self.grad_bias)]


class ReLU:
    """Rectified linear activation."""

    def __init__(self) -> None:
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        """max(x, 0); caches the active mask."""
        self._mask = x > 0
        return np.where(self._mask, x, 0.0)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Pass gradients only through active units."""
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        return np.where(self._mask, grad_out, 0.0)

    def parameters(self) -> list[tuple[np.ndarray, np.ndarray]]:
        """Activations have no parameters."""
        return []


def softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise softmax with the max-subtraction stability trick."""
    z = logits - logits.max(axis=1, keepdims=True)
    e = np.exp(z)
    return e / e.sum(axis=1, keepdims=True)


def log_softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise log-softmax (numerically stable)."""
    z = logits - logits.max(axis=1, keepdims=True)
    return z - np.log(np.exp(z).sum(axis=1, keepdims=True))
