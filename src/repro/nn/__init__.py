"""Training substrate: numpy MLPs, optimizers, metrics, and quantization.

Supplies the float32 parent models that Deep Positron deploys at low
precision, plus the format-configuration search used by the paper's sweeps.
"""

from .init import he_uniform, xavier_uniform, zeros_bias
from .layers import Dense, ReLU, log_softmax, softmax
from .model import MLP
from .train import TrainConfig, TrainResult, cross_entropy_grad, train_classifier
from .metrics import accuracy, confusion_matrix, degradation, per_class_accuracy
from .quantize import (
    FormatConfig,
    best_fixed_q,
    candidate_configs,
    quantization_mse,
    quantize_nearest,
)

__all__ = [
    "he_uniform",
    "xavier_uniform",
    "zeros_bias",
    "Dense",
    "ReLU",
    "softmax",
    "log_softmax",
    "MLP",
    "TrainConfig",
    "TrainResult",
    "train_classifier",
    "cross_entropy_grad",
    "accuracy",
    "confusion_matrix",
    "per_class_accuracy",
    "degradation",
    "FormatConfig",
    "quantize_nearest",
    "quantization_mse",
    "best_fixed_q",
    "candidate_configs",
]
