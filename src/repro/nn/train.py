"""Training loop: mini-batch SGD with momentum or Adam, early stopping.

Cross-entropy over softmax logits; gradients flow through the
:class:`~repro.nn.model.MLP` stack.  Everything is seeded and deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .layers import softmax
from .model import MLP

__all__ = ["TrainConfig", "TrainResult", "train_classifier", "cross_entropy_grad"]


def cross_entropy_grad(logits: np.ndarray, labels: np.ndarray) -> np.ndarray:
    """Gradient of mean cross-entropy w.r.t. logits: ``(p - y) / batch``."""
    batch = logits.shape[0]
    grad = softmax(logits)
    grad[np.arange(batch), labels] -= 1.0
    return grad / batch


@dataclass
class TrainConfig:
    """Hyperparameters for :func:`train_classifier`."""

    epochs: int = 200
    batch_size: int = 32
    learning_rate: float = 0.05
    momentum: float = 0.9
    weight_decay: float = 1e-4
    optimizer: str = "sgd"  # "sgd" | "adam"
    adam_beta1: float = 0.9
    adam_beta2: float = 0.999
    adam_eps: float = 1e-8
    early_stop_patience: int = 40
    seed: int = 0

    def __post_init__(self) -> None:
        if self.optimizer not in ("sgd", "adam"):
            raise ValueError("optimizer must be 'sgd' or 'adam'")
        if self.epochs < 1 or self.batch_size < 1:
            raise ValueError("epochs and batch_size must be positive")


@dataclass
class TrainResult:
    """Training outcome and learning curves."""

    final_train_accuracy: float
    final_valid_accuracy: float
    best_valid_accuracy: float
    epochs_run: int
    train_loss_curve: list[float] = field(default_factory=list)
    valid_accuracy_curve: list[float] = field(default_factory=list)


class _Optimizer:
    """SGD-with-momentum / Adam over (param, grad) pairs."""

    def __init__(self, cfg: TrainConfig, params: list[tuple[np.ndarray, np.ndarray]]):
        self.cfg = cfg
        self.slots = [np.zeros_like(p) for p, _ in params]
        self.slots2 = [np.zeros_like(p) for p, _ in params]
        self.t = 0

    def step(self, params: list[tuple[np.ndarray, np.ndarray]]) -> None:
        cfg = self.cfg
        self.t += 1
        for i, (param, grad) in enumerate(params):
            g = grad + cfg.weight_decay * param
            if cfg.optimizer == "sgd":
                self.slots[i] = cfg.momentum * self.slots[i] - cfg.learning_rate * g
                param += self.slots[i]
            else:
                self.slots[i] = cfg.adam_beta1 * self.slots[i] + (1 - cfg.adam_beta1) * g
                self.slots2[i] = (
                    cfg.adam_beta2 * self.slots2[i] + (1 - cfg.adam_beta2) * g * g
                )
                m_hat = self.slots[i] / (1 - cfg.adam_beta1**self.t)
                v_hat = self.slots2[i] / (1 - cfg.adam_beta2**self.t)
                param -= cfg.learning_rate * m_hat / (np.sqrt(v_hat) + cfg.adam_eps)


def train_classifier(
    model: MLP,
    train_x: np.ndarray,
    train_y: np.ndarray,
    valid_x: np.ndarray | None = None,
    valid_y: np.ndarray | None = None,
    config: TrainConfig | None = None,
) -> TrainResult:
    """Train ``model`` in place; returns curves and final metrics.

    Early stopping tracks validation accuracy (falling back to training
    accuracy when no validation split is given) and restores the best
    parameters seen.
    """
    cfg = config or TrainConfig()
    train_x = np.asarray(train_x, dtype=np.float64)
    train_y = np.asarray(train_y, dtype=np.int64)
    if valid_x is None or valid_y is None:
        valid_x, valid_y = train_x, train_y
    rng = np.random.default_rng(cfg.seed)
    optimizer = _Optimizer(cfg, model.parameters())

    best_acc = -1.0
    best_params: tuple[list[np.ndarray], list[np.ndarray]] | None = None
    stale = 0
    loss_curve: list[float] = []
    acc_curve: list[float] = []
    epochs_run = 0

    for epoch in range(cfg.epochs):
        epochs_run = epoch + 1
        order = rng.permutation(len(train_x))
        epoch_loss = 0.0
        batches = 0
        for start in range(0, len(order), cfg.batch_size):
            idx = order[start : start + cfg.batch_size]
            logits = model.forward(train_x[idx])
            grad = cross_entropy_grad(logits, train_y[idx])
            model.backward(grad)
            optimizer.step(model.parameters())
            # Stable per-batch loss from the already computed logits.
            z = logits - logits.max(axis=1, keepdims=True)
            logp = z - np.log(np.exp(z).sum(axis=1, keepdims=True))
            epoch_loss += float(-logp[np.arange(len(idx)), train_y[idx]].mean())
            batches += 1
        loss_curve.append(epoch_loss / max(1, batches))

        acc = model.accuracy(valid_x, valid_y)
        acc_curve.append(acc)
        if acc > best_acc + 1e-12:
            best_acc = acc
            best_params = model.export_params()
            stale = 0
        else:
            stale += 1
            if stale >= cfg.early_stop_patience:
                break

    if best_params is not None:
        model.import_params(*best_params)
    return TrainResult(
        final_train_accuracy=model.accuracy(train_x, train_y),
        final_valid_accuracy=model.accuracy(valid_x, valid_y),
        best_valid_accuracy=best_acc,
        epochs_run=epochs_run,
        train_loss_curve=loss_curve,
        valid_accuracy_curve=acc_curve,
    )
