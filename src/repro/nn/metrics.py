"""Classification metrics."""

from __future__ import annotations

import numpy as np

__all__ = ["accuracy", "confusion_matrix", "per_class_accuracy", "degradation"]


def accuracy(predictions: np.ndarray, labels: np.ndarray) -> float:
    """Fraction of correct predictions."""
    predictions = np.asarray(predictions)
    labels = np.asarray(labels)
    if predictions.shape != labels.shape:
        raise ValueError("shape mismatch between predictions and labels")
    if predictions.size == 0:
        raise ValueError("empty prediction array")
    return float(np.mean(predictions == labels))


def confusion_matrix(
    predictions: np.ndarray, labels: np.ndarray, num_classes: int
) -> np.ndarray:
    """``(num_classes, num_classes)`` counts; rows = truth, cols = predicted."""
    predictions = np.asarray(predictions, dtype=np.int64)
    labels = np.asarray(labels, dtype=np.int64)
    if predictions.shape != labels.shape:
        raise ValueError("shape mismatch between predictions and labels")
    if num_classes < 1:
        raise ValueError("num_classes must be positive")
    if predictions.size and (
        predictions.min() < 0
        or predictions.max() >= num_classes
        or labels.min() < 0
        or labels.max() >= num_classes
    ):
        raise ValueError("class index out of range")
    matrix = np.zeros((num_classes, num_classes), dtype=np.int64)
    np.add.at(matrix, (labels, predictions), 1)
    return matrix


def per_class_accuracy(
    predictions: np.ndarray, labels: np.ndarray, num_classes: int
) -> np.ndarray:
    """Recall per class (NaN for absent classes)."""
    cm = confusion_matrix(predictions, labels, num_classes)
    totals = cm.sum(axis=1).astype(np.float64)
    with np.errstate(invalid="ignore", divide="ignore"):
        return np.where(totals > 0, np.diag(cm) / totals, np.nan)


def degradation(baseline_accuracy: float, accuracy_value: float) -> float:
    """Accuracy drop vs a baseline, in percentage points (paper Fig. 9)."""
    return 100.0 * (baseline_accuracy - accuracy_value)
