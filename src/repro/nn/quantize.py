"""Quantization of trained float parameters into EMAC formats.

The paper trains at 32-bit float and deploys at [5,8]-bit without
retraining; the only free knobs are the format parameters (``es`` for posit,
``we`` for float, ``q`` for fixed).  This module provides:

* fast exact-nearest quantization via sorted value tables (bit-identical to
  the scalar RNE encoders, verified by tests);
* per-format configuration search (:func:`best_fixed_q`,
  :func:`candidate_configs`) used by the Table II / Fig. 9 sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from ..fixedpoint import codec as fx
from ..fixedpoint.format import FixedFormat, fixed_format
from ..floatp import tables as ft
from ..floatp.format import FloatFormat, float_format
from ..posit import tables as pt
from ..posit.decode import decode as posit_decode
from ..posit.format import PositFormat, standard_format

__all__ = [
    "FormatConfig",
    "quantize_nearest",
    "candidate_configs",
    "best_fixed_q",
    "quantization_mse",
]


@dataclass(frozen=True)
class FormatConfig:
    """A named numerical configuration used in the sweeps."""

    family: str  # "posit" | "float" | "fixed"
    fmt: object

    @property
    def label(self) -> str:
        """Human-readable identifier (e.g. ``posit<8,1>``)."""
        return str(self.fmt)

    @property
    def width(self) -> int:
        """Total bits."""
        return self.fmt.n


def _table_quantize(values: np.ndarray, table_values: np.ndarray,
                    table_patterns: np.ndarray) -> np.ndarray:
    """Nearest-value quantization with ties to the even-indexed neighbor.

    ``table_values`` must be sorted ascending with ``table_patterns``
    aligned.  Because consecutive patterns of both posit and small-float
    formats differ by one ULP, nearest-value with tie-to-lower-index-parity
    reproduces round-to-nearest-even in pattern space.
    """
    v = np.asarray(values, dtype=np.float64)
    idx = np.searchsorted(table_values, v, side="left")
    idx = np.clip(idx, 1, len(table_values) - 1)
    left = table_values[idx - 1]
    right = table_values[idx]
    dist_left = v - left
    dist_right = right - v
    pick_right = dist_right < dist_left
    tie = dist_right == dist_left
    # On a tie pick the neighbor whose pattern is even.
    right_even = (table_patterns[idx] & 1) == 0
    choose = pick_right | (tie & right_even)
    out_idx = np.where(choose, idx, idx - 1)
    # Saturate exact out-of-range values.
    out_idx = np.where(v <= table_values[0], 0, out_idx)
    out_idx = np.where(v >= table_values[-1], len(table_values) - 1, out_idx)
    return table_patterns[out_idx].astype(np.uint32)


@lru_cache(maxsize=32)
def _posit_boundary_table(fmt: PositFormat):
    """Sorted posit values, patterns, and pattern-space rounding boundaries.

    The boundary separating "round to pattern p" from "round to p+1" under
    the paper's Algorithm-2 guard/sticky rounding is exactly the value of
    the (n+1)-bit, same-es posit whose (signed) pattern is ``2p + 1`` — the
    classic posit interleaving property.  Representing boundaries this way
    makes the vectorized quantizer bit-identical to the scalar encoder even
    across regime-taper boundaries, where value-space "nearest" differs.
    """
    wide = standard_format(fmt.n + 1, fmt.es)
    signed = np.arange(-(1 << (fmt.n - 1)) + 1, 1 << (fmt.n - 1), dtype=np.int64)
    patterns = (signed % (1 << fmt.n)).astype(np.uint32)
    values = np.array(
        [
            0.0
            if p == 0
            else float(posit_decode(fmt, int(p)).to_fraction())
            for p in patterns
        ]
    )
    mids = (2 * signed[:-1] + 1) % (1 << wide.n)
    boundaries = np.array(
        [float(posit_decode(wide, int(m)).to_fraction()) for m in mids]
    )
    # A tie exactly on boundaries[i] resolves to whichever of patterns
    # i / i+1 has the even *magnitude* encoding (Algorithm 2: round = guard
    # & (lsb | sticky) with sticky == 0 keeps an even-lsb pattern).
    magnitudes = np.abs(signed)
    boundary_to_lower = (magnitudes[:-1] % 2) == 0
    return values, patterns, boundaries, boundary_to_lower


def _posit_quantize(fmt: PositFormat, arr: np.ndarray) -> np.ndarray:
    _values, patterns, boundaries, to_lower = _posit_boundary_table(fmt)
    flat = arr.ravel()
    idx = np.searchsorted(boundaries, flat, side="left")
    hit = np.minimum(idx, len(boundaries) - 1)
    tie = boundaries[hit] == flat
    out_idx = idx + np.where(tie & ~to_lower[hit], 1, 0)
    out_idx = np.clip(out_idx, 0, len(patterns) - 1)
    result = patterns[out_idx]
    # Saturation and the never-round-to-zero rule.
    maxpos = float(fmt.maxpos)
    minpos = float(fmt.minpos)
    result = np.where(flat >= maxpos, np.uint32(fmt.maxpos_pattern), result)
    neg_max = ((1 << fmt.n) - fmt.maxpos_pattern) & fmt.mask
    result = np.where(flat <= -maxpos, np.uint32(neg_max), result)
    tiny_pos = (flat > 0) & (flat < minpos)
    tiny_neg = (flat < 0) & (flat > -minpos)
    neg_min = ((1 << fmt.n) - fmt.minpos_pattern) & fmt.mask
    result = np.where(tiny_pos, np.uint32(fmt.minpos_pattern), result)
    result = np.where(tiny_neg, np.uint32(neg_min), result)
    result = np.where(flat == 0.0, np.uint32(fmt.zero_pattern), result)
    return result.astype(np.uint32).reshape(arr.shape)


def quantize_nearest(fmt, values: np.ndarray) -> np.ndarray:
    """Quantize a float array to ``fmt`` patterns, vectorized.

    Bit-identical to the scalar encoders: floats use IEEE-style RNE, posits
    use the paper's Algorithm-2 pattern-space rounding (see
    :func:`_posit_boundary_table`), fixed point uses RNE on the raw grid.
    """
    arr = np.asarray(values, dtype=np.float64)
    if not np.all(np.isfinite(arr)):
        raise ValueError("cannot quantize non-finite values")
    if isinstance(fmt, FixedFormat):
        return fx.quantize_array(fmt, arr)
    if isinstance(fmt, PositFormat):
        return _posit_quantize(fmt, arr)
    if isinstance(fmt, FloatFormat):
        t = ft.tables_for(fmt)
        real = ~t.is_reserved
        patterns = np.nonzero(real)[0].astype(np.uint32)
        vals = t.float_value[real]
        # Collapse -0/+0 duplicates deterministically: stable sort keeps +0
        # (pattern 0) before -0, and ties prefer the even (all-zero) pattern.
        order = np.argsort(vals, kind="stable")
        return _table_quantize(arr, vals[order], patterns[order]).reshape(arr.shape)
    raise TypeError(f"no quantizer for {type(fmt).__name__}")


def quantization_mse(fmt, values: np.ndarray) -> float:
    """Mean squared error introduced by quantizing ``values`` to ``fmt``."""
    arr = np.asarray(values, dtype=np.float64)
    patterns = quantize_nearest(fmt, arr)
    if isinstance(fmt, FixedFormat):
        back = fx.dequantize_array(fmt, patterns)
    elif isinstance(fmt, PositFormat):
        back = pt.dequantize_array(fmt, patterns)
    else:
        back = ft.dequantize_array(fmt, patterns)
    return float(np.mean((arr - back) ** 2))


def best_fixed_q(n: int, sample_values: np.ndarray) -> FixedFormat:
    """Pick the fraction width minimizing quantization MSE on a sample.

    This mirrors the "precision-adaptable" knob of the paper's fixed-point
    EMAC: the deployment chooses the binary point that best covers the
    trained parameter distribution.
    """
    best: tuple[float, FixedFormat] | None = None
    for q in range(0, n):
        fmt = fixed_format(n, q)
        mse = quantization_mse(fmt, sample_values)
        if best is None or mse < best[0] - 1e-18:
            best = (mse, fmt)
    assert best is not None
    return best[1]


def candidate_configs(
    n: int,
    es_values: tuple[int, ...] = (0, 1, 2),
    we_values: tuple[int, ...] = (2, 3, 4, 5),
    q_values: tuple[int, ...] | None = None,
) -> list[FormatConfig]:
    """All format configurations of width ``n`` the sweeps consider.

    The paper reports best posit results at ``es in {0, 2}`` and best float
    results at ``we in {3, 4}``; the default candidate sets cover those.
    """
    configs: list[FormatConfig] = []
    for es in es_values:
        if n - 3 - es >= 0:
            configs.append(FormatConfig("posit", standard_format(n, es)))
    for we in we_values:
        wf = n - 1 - we
        if wf >= 1 and we >= 2:
            configs.append(FormatConfig("float", float_format(we, wf)))
    qs = q_values if q_values is not None else tuple(range(0, n))
    for q in qs:
        if 0 <= q <= n - 1:
            configs.append(FormatConfig("fixed", fixed_format(n, q)))
    return configs
