"""Quantization of trained float parameters into EMAC formats.

The paper trains at 32-bit float and deploys at [5,8]-bit without
retraining; the only free knobs are the format parameters (``es`` for posit,
``we`` for float, ``q`` for fixed).  This module provides:

* fast exact-nearest quantization (:func:`quantize_nearest`), delegating to
  the registered :mod:`repro.formats` backend of any number system —
  bit-identical to the scalar RNE encoders, verified by tests;
* per-format configuration search (:func:`best_fixed_q`,
  :func:`candidate_configs`) used by the Table II / Fig. 9 sweeps.
  Candidate enumeration walks the format registry, so a newly registered
  family joins the sweeps automatically.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import formats
from ..fixedpoint.format import FixedFormat, fixed_format

__all__ = [
    "FormatConfig",
    "quantize_nearest",
    "candidate_configs",
    "best_fixed_q",
    "quantization_mse",
]


@dataclass(frozen=True)
class FormatConfig:
    """A named numerical configuration used in the sweeps."""

    family: str  # registry family name, e.g. "posit" | "float" | "fixed"
    fmt: object

    @property
    def label(self) -> str:
        """Human-readable identifier (e.g. ``posit<8,1>``)."""
        return str(self.fmt)

    @property
    def name(self) -> str:
        """Canonical registry name (e.g. ``posit8_1``)."""
        return formats.backend_for(self.fmt).name

    @property
    def width(self) -> int:
        """Total bits."""
        return self.fmt.n


def quantize_nearest(fmt, values: np.ndarray) -> np.ndarray:
    """Quantize a float array to ``fmt`` patterns, vectorized.

    Bit-identical to the scalar encoders of every registered format family
    (floats use IEEE-style RNE, posits the paper's Algorithm-2 pattern-space
    rounding, fixed point RNE on the raw grid).
    """
    arr = np.asarray(values, dtype=np.float64)
    if not np.all(np.isfinite(arr)):
        raise ValueError("cannot quantize non-finite values")
    return formats.backend_for(fmt).quantize_batch(arr)


def quantization_mse(fmt, values: np.ndarray) -> float:
    """Mean squared error introduced by quantizing ``values`` to ``fmt``."""
    backend = formats.backend_for(fmt)
    arr = np.asarray(values, dtype=np.float64)
    back = backend.decode_batch(backend.quantize_batch(arr))
    return float(np.mean((arr - back) ** 2))


def best_fixed_q(n: int, sample_values: np.ndarray) -> FixedFormat:
    """Pick the fraction width minimizing quantization MSE on a sample.

    This mirrors the "precision-adaptable" knob of the paper's fixed-point
    EMAC: the deployment chooses the binary point that best covers the
    trained parameter distribution.
    """
    best: tuple[float, FixedFormat] | None = None
    for q in range(0, n):
        fmt = fixed_format(n, q)
        mse = quantization_mse(fmt, sample_values)
        if best is None or mse < best[0] - 1e-18:
            best = (mse, fmt)
    assert best is not None
    return best[1]


def candidate_configs(
    n: int,
    es_values: tuple[int, ...] = (0, 1, 2),
    we_values: tuple[int, ...] = (2, 3, 4, 5),
    q_values: tuple[int, ...] | None = None,
) -> list[FormatConfig]:
    """All format configurations of width ``n`` the sweeps consider.

    The paper reports best posit results at ``es in {0, 2}`` and best float
    results at ``we in {3, 4}``; the default candidate sets cover those.
    Families beyond the built-in three come straight from the registry's
    ``sweep_candidates`` hooks.
    """
    knobs = {"posit": (es_values,), "float": (we_values,), "fixed": (q_values,)}
    configs: list[FormatConfig] = []
    for family in formats.families():
        if family.sweep_candidates is None:
            continue
        args = knobs.get(family.name, ())
        configs.extend(
            FormatConfig(family.name, fmt)
            for fmt in family.sweep_candidates(n, *args)
        )
    return configs
