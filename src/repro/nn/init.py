"""Weight initialization schemes (seeded, numpy-only)."""

from __future__ import annotations

import numpy as np

__all__ = ["he_uniform", "xavier_uniform", "zeros_bias"]


def he_uniform(rng: np.random.Generator, fan_in: int, fan_out: int) -> np.ndarray:
    """He/Kaiming uniform init — suited to ReLU layers.

    Returns a ``(fan_out, fan_in)`` float64 matrix drawn from
    ``U(-sqrt(6/fan_in), +sqrt(6/fan_in))``.
    """
    if fan_in < 1 or fan_out < 1:
        raise ValueError("fan_in and fan_out must be positive")
    limit = np.sqrt(6.0 / fan_in)
    return rng.uniform(-limit, limit, size=(fan_out, fan_in))


def xavier_uniform(rng: np.random.Generator, fan_in: int, fan_out: int) -> np.ndarray:
    """Xavier/Glorot uniform init — suited to linear/readout layers."""
    if fan_in < 1 or fan_out < 1:
        raise ValueError("fan_in and fan_out must be positive")
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=(fan_out, fan_in))


def zeros_bias(fan_out: int) -> np.ndarray:
    """Zero bias vector of length ``fan_out``."""
    if fan_out < 1:
        raise ValueError("fan_out must be positive")
    return np.zeros(fan_out, dtype=np.float64)
