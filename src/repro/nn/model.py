"""MLP container for the training substrate."""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from .layers import Dense, ReLU, log_softmax, softmax

__all__ = ["MLP"]


class MLP:
    """Feed-forward classifier: Dense/ReLU stacks with an affine readout.

    ``topology = (inputs, hidden..., outputs)`` matches the Deep Positron
    architecture of Fig. 1: ReLU after every hidden layer, identity readout.
    """

    def __init__(self, topology: Sequence[int], rng: np.random.Generator):
        if len(topology) < 2:
            raise ValueError("topology needs at least input and output sizes")
        if any(t < 1 for t in topology):
            raise ValueError("all layer sizes must be positive")
        self.topology = tuple(int(t) for t in topology)
        self.stack: list = []
        for i, (fan_in, fan_out) in enumerate(zip(topology, topology[1:])):
            last = i == len(topology) - 2
            self.stack.append(
                Dense(fan_in, fan_out, rng, init="xavier" if last else "he")
            )
            if not last:
                self.stack.append(ReLU())

    # ------------------------------------------------------------------
    @property
    def dense_layers(self) -> list[Dense]:
        """The Dense layers, in order."""
        return [m for m in self.stack if isinstance(m, Dense)]

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Logits for a ``(batch, inputs)`` matrix."""
        out = np.asarray(x, dtype=np.float64)
        for module in self.stack:
            out = module.forward(out)
        return out

    def backward(self, grad_logits: np.ndarray) -> np.ndarray:
        """Backpropagate from the logits gradient; returns input gradient."""
        grad = grad_logits
        for module in reversed(self.stack):
            grad = module.backward(grad)
        return grad

    def parameters(self) -> list[tuple[np.ndarray, np.ndarray]]:
        """(parameter, gradient) pairs across all layers."""
        params = []
        for module in self.stack:
            params.extend(module.parameters())
        return params

    # ------------------------------------------------------------------
    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """Softmax class probabilities."""
        return softmax(self.forward(x))

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Argmax class predictions."""
        return np.argmax(self.forward(x), axis=1)

    def accuracy(self, x: np.ndarray, y: np.ndarray) -> float:
        """Classification accuracy against integer labels."""
        return float(np.mean(self.predict(x) == np.asarray(y)))

    def nll(self, x: np.ndarray, y: np.ndarray) -> float:
        """Mean negative log-likelihood (cross-entropy) of labels."""
        logp = log_softmax(self.forward(x))
        rows = np.arange(len(y))
        return float(-logp[rows, np.asarray(y)].mean())

    # ------------------------------------------------------------------
    def export_params(self) -> tuple[list[np.ndarray], list[np.ndarray]]:
        """Copies of (weights, biases) per dense layer, for quantization."""
        weights = [layer.weight.copy() for layer in self.dense_layers]
        biases = [layer.bias.copy() for layer in self.dense_layers]
        return weights, biases

    def import_params(
        self, weights: Sequence[np.ndarray], biases: Sequence[np.ndarray]
    ) -> None:
        """Load parameters (shapes must match)."""
        dense = self.dense_layers
        if len(weights) != len(dense) or len(biases) != len(dense):
            raise ValueError("parameter count mismatch")
        for layer, w, b in zip(dense, weights, biases):
            if layer.weight.shape != np.shape(w) or layer.bias.shape != np.shape(b):
                raise ValueError("parameter shape mismatch")
            layer.weight = np.array(w, dtype=np.float64)
            layer.bias = np.array(b, dtype=np.float64)

    def cast_float32(self) -> None:
        """Round parameters through float32 — the paper's 32-bit baseline."""
        for layer in self.dense_layers:
            layer.weight = layer.weight.astype(np.float32).astype(np.float64)
            layer.bias = layer.bias.astype(np.float32).astype(np.float64)

    # ------------------------------------------------------------------
    def export_arrays(self) -> dict[str, np.ndarray]:
        """Flat array mapping of the model (topology + per-layer params).

        The inverse of :meth:`from_arrays`; the round trip is bit-identical
        (float64 in, float64 out), which the artifact store relies on so a
        reloaded parent model reproduces the exact sweep accuracies.
        """
        arrays: dict[str, np.ndarray] = {
            "topology": np.asarray(self.topology, dtype=np.int64)
        }
        for i, layer in enumerate(self.dense_layers):
            arrays[f"weight_{i}"] = layer.weight.copy()
            arrays[f"bias_{i}"] = layer.bias.copy()
        return arrays

    @classmethod
    def from_arrays(cls, arrays: dict[str, np.ndarray]) -> "MLP":
        """Rebuild a model from :meth:`export_arrays` output, bit-identical."""
        if "topology" not in arrays:
            raise ValueError("missing 'topology' entry")
        topology = tuple(int(t) for t in np.asarray(arrays["topology"]))
        model = cls(topology, np.random.default_rng(0))
        count = len(model.dense_layers)
        try:
            weights = [arrays[f"weight_{i}"] for i in range(count)]
            biases = [arrays[f"bias_{i}"] for i in range(count)]
        except KeyError as exc:
            raise ValueError(f"missing parameter array {exc.args[0]!r}") from exc
        model.import_params(weights, biases)
        return model

    def save_npz(self, path) -> None:
        """Serialize parameters to an ``.npz`` file (see :meth:`load_npz`)."""
        np.savez(path, **self.export_arrays())

    @classmethod
    def load_npz(cls, path) -> "MLP":
        """Load a model saved by :meth:`save_npz`; round trip is bit-exact."""
        with np.load(path) as data:
            return cls.from_arrays({k: data[k] for k in data.files})
