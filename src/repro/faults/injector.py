"""Deterministic, seeded fault injection for the chaos harness.

Every resilience claim in this repo is testable because the pipeline is
bit-exact: a retried task, a re-executed batch, or a rolled-back model
must produce *bit-identical* answers, so a test can inject a fault and
assert recovery by simple equality.  This module is the injection
machinery: production code declares **injection points** by name
(:func:`register_point` + :func:`fire`), and tests or operators arm
**rules** that decide — deterministically — when a point actually fires
and what happens when it does.

Injection points currently registered across the codebase:

==================  =====================================================
``runner.task``     start of one grid task in a pool worker
``store.publish``   an artifact's temp file, fully written, pre-rename
``serve.batch``     one micro-batch execution on an executor thread
``serve.connection``  one accepted HTTP request, pre-dispatch
``client.connect``  a :class:`~repro.serve.client.ServeClient` connect
``client.send``     one client request write
``client.recv``     one client response read
``pool.worker``     a serve-pool worker process (start/ready/batch/drain)
``pool.route``      one pool manager→worker control or routing hop
==================  =====================================================

Actions: ``kill`` (``os._exit`` — a hard process death), ``raise`` (an
exception, type named by ``exc``), ``stall`` (sleep ``stall_s``),
``truncate`` / ``corrupt`` (mutate the file named by the point's ``path``
context), ``drop`` (close the ``sock`` context if given, then raise
``ConnectionResetError``), ``half_close`` (shut down the write side of
``sock``).

Activation is either a context manager::

    with faults.inject("serve.batch", "raise", times=1):
        ...

or the ``REPRO_FAULTS`` environment variable, which is what reaches
runner pool workers through the inherited environment::

    REPRO_FAULTS='runner.task=kill:times=1:match=task=iris-5'

The spec grammar is ``point=action[:key=value]*`` clauses joined by
``;``.  Rule knobs: ``times`` (max fires, 0 = unlimited), ``after``
(skip the first N matching hits), ``every`` (then fire each Nth hit),
``p``/``seed`` (fire probability, deterministic RNG), ``match`` (a
substring the rendered context must contain), ``exc`` (exception type
for ``raise``), ``stall_s``.

Every fired fault is logged: in memory on the active injector, and — when
a trace path is configured (``REPRO_FAULT_TRACE`` or the context
manager's ``trace`` argument) — appended as a JSON line to that file.
The trace file is also how ``times`` stays bounded *across processes*: a
pool worker that killed itself cannot decrement an in-memory counter, so
the count of fires for a rule is recovered from the trace before firing
again.  See ``docs/fault-tolerance.md`` for the harness guide.
"""

from __future__ import annotations

import json
import os
import random
import socket
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field, fields
from pathlib import Path
from typing import Any, Iterator

__all__ = [
    "InjectedFault",
    "FaultRule",
    "FaultPlan",
    "FaultEvent",
    "FaultInjector",
    "register_point",
    "registered_points",
    "fire",
    "activate",
    "inject",
    "active_injector",
    "read_trace",
    "ENV_SPEC",
    "ENV_TRACE",
]

ENV_SPEC = "REPRO_FAULTS"
ENV_TRACE = "REPRO_FAULT_TRACE"


class InjectedFault(RuntimeError):
    """The default exception raised by an armed ``raise`` rule."""


#: Exception types a ``raise`` rule may name (``exc=...``); kept to a
#: closed set so a spec typo fails loudly instead of minting Exceptions.
_EXCEPTIONS: dict[str, type[BaseException]] = {
    "InjectedFault": InjectedFault,
    "RuntimeError": RuntimeError,
    "MemoryError": MemoryError,
    "OSError": OSError,
    "ConnectionError": ConnectionError,
    "ConnectionResetError": ConnectionResetError,
    "ConnectionRefusedError": ConnectionRefusedError,
    "BrokenPipeError": BrokenPipeError,
}

_ACTIONS = (
    "kill", "raise", "stall", "truncate", "corrupt", "drop", "half_close",
)

#: Injection-point registry: name -> one-line description.  ``fire`` on
#: an unregistered name raises, so a typo in production code cannot
#: silently arm nothing.
_POINTS: dict[str, str] = {}


def register_point(name: str, doc: str = "") -> str:
    """Declare an injection point (idempotent; returns the name)."""
    _POINTS[name] = doc or _POINTS.get(name, "")
    return name


def registered_points() -> dict[str, str]:
    """The registered injection points and their descriptions."""
    return dict(_POINTS)


@dataclass(frozen=True)
class FaultRule:
    """One armed fault: where it applies, when it fires, what it does."""

    point: str
    action: str
    times: int = 1  # max fires (0 = unlimited)
    after: int = 0  # skip the first ``after`` matching hits
    every: int = 1  # then fire on every ``every``-th hit
    p: float = 1.0  # fire probability per eligible hit
    seed: int = 0  # RNG seed for ``p`` (deterministic)
    match: str = ""  # substring the rendered context must contain
    exc: str = "InjectedFault"  # action=raise: exception type name
    stall_s: float = 0.05  # action=stall: sleep duration

    def __post_init__(self) -> None:
        if self.action not in _ACTIONS:
            raise ValueError(f"unknown fault action '{self.action}'")
        if self.action == "raise" and self.exc not in _EXCEPTIONS:
            raise ValueError(f"unknown exception type '{self.exc}'")
        if self.times < 0 or self.after < 0 or self.every < 1:
            raise ValueError("times/after must be >= 0, every >= 1")
        if not 0.0 < self.p <= 1.0:
            raise ValueError("p must be in (0, 1]")

    def render(self) -> str:
        """The spec-clause form of this rule (inverse of ``parse``)."""
        parts = [f"{self.point}={self.action}"]
        for f in fields(self):
            if f.name in ("point", "action"):
                continue
            value = getattr(self, f.name)
            if value != f.default:
                parts.append(f"{f.name}={value}")
        return ":".join(parts)


_INT_OPTIONS = {"times", "after", "every", "seed"}
_FLOAT_OPTIONS = {"p", "stall_s"}


def _parse_clause(clause: str) -> FaultRule:
    head, *options = clause.split(":")
    point, sep, action = head.partition("=")
    if not sep or not point or not action:
        raise ValueError(f"fault clause must be point=action[...]: {clause!r}")
    kwargs: dict[str, Any] = {}
    for option in options:
        key, sep, value = option.partition("=")
        if not sep:
            raise ValueError(f"fault option must be key=value: {option!r}")
        if key in _INT_OPTIONS:
            kwargs[key] = int(value)
        elif key in _FLOAT_OPTIONS:
            kwargs[key] = float(value)
        elif key in ("match", "exc"):
            kwargs[key] = value
        else:
            raise ValueError(f"unknown fault option '{key}'")
    return FaultRule(point=point, action=action, **kwargs)


@dataclass(frozen=True)
class FaultPlan:
    """An ordered set of rules, parseable from a ``REPRO_FAULTS`` spec."""

    rules: tuple[FaultRule, ...]

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        clauses = [c.strip() for c in spec.split(";") if c.strip()]
        return cls(tuple(_parse_clause(c) for c in clauses))

    def render(self) -> str:
        return ";".join(rule.render() for rule in self.rules)


@dataclass
class FaultEvent:
    """One fired fault, as recorded in the injector's trace."""

    seq: int
    pid: int
    point: str
    action: str
    rule: str  # stable rule id (index:point:action within the plan)
    context: str

    def as_dict(self) -> dict:
        return {
            "seq": self.seq, "pid": self.pid, "point": self.point,
            "action": self.action, "rule": self.rule, "context": self.context,
        }


def _render_context(context: dict[str, Any]) -> str:
    """The matchable text form of a fire's context (sockets elided)."""
    return " ".join(
        f"{key}={value}"
        for key, value in sorted(context.items())
        if not isinstance(value, socket.socket)
    )


class FaultInjector:
    """Decides, per :func:`fire`, whether a rule triggers — and logs it."""

    def __init__(self, plan: FaultPlan, trace_path: str | None = None):
        self.plan = plan
        self.trace_path = trace_path
        self.events: list[FaultEvent] = []
        self._hits: dict[str, int] = {}
        self._fired: dict[str, int] = {}
        self._rngs: dict[str, random.Random] = {}
        self._lock = threading.Lock()

    @staticmethod
    def _rule_id(index: int, rule: FaultRule) -> str:
        return f"{index}:{rule.point}:{rule.action}"

    def fired(self, rule_id: str | None = None) -> int:
        """Fires recorded by this injector (optionally for one rule)."""
        with self._lock:
            if rule_id is None:
                return sum(self._fired.values())
            return self._fired.get(rule_id, 0)

    def _fired_everywhere(self, rule_id: str) -> int:
        """Fires for ``rule_id`` across processes sharing the trace file.

        Own fires are counted in memory; other processes' fires (e.g. a
        pool worker that ``kill``-ed itself) are recovered from the trace
        file they appended to before acting.
        """
        count = self._fired.get(rule_id, 0)
        if self.trace_path and os.path.exists(self.trace_path):
            try:
                for event in read_trace(self.trace_path):
                    if event.rule == rule_id and event.pid != os.getpid():
                        count += 1
            except OSError:
                pass
        return count

    def decide(self, point: str, context: dict[str, Any]) -> tuple[FaultRule, str] | None:
        """The first rule that should fire at this hit, if any."""
        text = _render_context(context)
        with self._lock:
            for index, rule in enumerate(self.plan.rules):
                if rule.point != point:
                    continue
                if rule.match and rule.match not in text:
                    continue
                rule_id = self._rule_id(index, rule)
                hits = self._hits.get(rule_id, 0) + 1
                self._hits[rule_id] = hits
                if hits <= rule.after:
                    continue
                if (hits - rule.after - 1) % rule.every != 0:
                    continue
                if rule.times and self._fired_everywhere(rule_id) >= rule.times:
                    continue
                if rule.p < 1.0:
                    rng = self._rngs.setdefault(
                        rule_id, random.Random(rule.seed)
                    )
                    if rng.random() >= rule.p:
                        continue
                self._fired[rule_id] = self._fired.get(rule_id, 0) + 1
                return rule, rule_id
        return None

    def log(self, rule_id: str, rule: FaultRule, context: dict[str, Any]) -> FaultEvent:
        """Record a fire — durably *before* the action runs, so even an
        ``os._exit`` leaves evidence in the trace file."""
        event = FaultEvent(
            seq=len(self.events), pid=os.getpid(), point=rule.point,
            action=rule.action, rule=rule_id,
            context=_render_context(context),
        )
        self.events.append(event)
        if self.trace_path:
            line = json.dumps(event.as_dict())
            with open(self.trace_path, "a") as handle:
                handle.write(line + "\n")
                handle.flush()
        return event


def read_trace(path: str | Path) -> list[FaultEvent]:
    """The fired-fault events appended to a trace file, in order."""
    events = []
    for line in Path(path).read_text().splitlines():
        if line.strip():
            events.append(FaultEvent(**json.loads(line)))
    return events


# ----------------------------------------------------------------------
# Activation: context-manager stack, else the environment spec.
# ----------------------------------------------------------------------
_stack: list[FaultInjector] = []
_env_injector: FaultInjector | None = None
_env_spec_seen: str | None = None


def active_injector() -> FaultInjector | None:
    """The injector ``fire`` consults: innermost context manager if any,
    else one parsed (and cached per spec string) from ``REPRO_FAULTS``."""
    global _env_injector, _env_spec_seen
    if _stack:
        return _stack[-1]
    spec = os.environ.get(ENV_SPEC)
    if not spec:
        _env_injector = None
        _env_spec_seen = None
        return None
    if spec != _env_spec_seen:
        _env_injector = FaultInjector(
            FaultPlan.parse(spec), trace_path=os.environ.get(ENV_TRACE)
        )
        _env_spec_seen = spec
    return _env_injector


@contextmanager
def activate(
    plan: FaultPlan | str, trace: str | Path | None = None
) -> Iterator[FaultInjector]:
    """Arm a plan (or spec string) for the dynamic extent of the block."""
    if isinstance(plan, str):
        plan = FaultPlan.parse(plan)
    injector = FaultInjector(plan, str(trace) if trace else None)
    _stack.append(injector)
    try:
        yield injector
    finally:
        _stack.remove(injector)


def inject(point: str, action: str, **options: Any):
    """Single-rule sugar: ``with faults.inject("serve.batch", "raise"):``"""
    trace = options.pop("trace", None)
    return activate(
        FaultPlan((FaultRule(point=point, action=action, **options),)),
        trace=trace,
    )


def _perform(rule: FaultRule, point: str, context: dict[str, Any]) -> None:
    if rule.action == "kill":
        os._exit(70)
    if rule.action == "raise":
        raise _EXCEPTIONS[rule.exc](f"injected fault at {point}")
    if rule.action == "stall":
        time.sleep(rule.stall_s)
        return
    if rule.action in ("truncate", "corrupt"):
        path = Path(str(context["path"]))
        data = path.read_bytes()
        if rule.action == "truncate":
            path.write_bytes(data[: len(data) // 2])
        elif data:
            # XOR a middle span so the change can never be a no-op.
            blob = bytearray(data)
            start = len(blob) // 3
            for i in range(start, min(len(blob), start + max(1, len(blob) // 8))):
                blob[i] ^= 0xFF
            path.write_bytes(bytes(blob))
        return
    sock = context.get("sock")
    if rule.action == "half_close":
        if sock is not None:
            sock.shutdown(socket.SHUT_WR)
        return
    # drop: sever the connection (if a socket was handed in) and surface
    # the reset the peer would have seen.
    if sock is not None:
        try:
            sock.close()
        except OSError:
            pass
    raise ConnectionResetError(f"injected socket drop at {point}")


def fire(point: str, **context: Any) -> None:
    """Hit an injection point.  A no-op unless an armed rule matches.

    Raises ``KeyError`` for unregistered points (typo safety).  When a
    rule fires, the event is traced first, then the action runs — so a
    ``kill`` still leaves its trace line behind for cross-process
    ``times`` accounting.
    """
    if point not in _POINTS:
        raise KeyError(f"unregistered fault injection point '{point}'")
    injector = active_injector()
    if injector is None:
        return
    decision = injector.decide(point, context)
    if decision is None:
        return
    rule, rule_id = decision
    injector.log(rule_id, rule, context)
    _perform(rule, point, context)
