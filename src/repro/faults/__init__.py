"""Chaos harness: deterministic, seeded fault injection.

See :mod:`repro.faults.injector` for the model (points, rules, actions,
activation, trace) and ``docs/fault-tolerance.md`` for the operator
guide.  The short form::

    from repro import faults

    with faults.inject("serve.batch", "raise", times=1) as injector:
        ...                      # one batch execution fails, then heals
    injector.events              # the trace of fired faults

    REPRO_FAULTS='runner.task=kill:times=1' python -m repro run table2
"""

from .injector import (
    ENV_SPEC,
    ENV_TRACE,
    FaultEvent,
    FaultInjector,
    FaultPlan,
    FaultRule,
    InjectedFault,
    activate,
    active_injector,
    fire,
    inject,
    read_trace,
    register_point,
    registered_points,
)

__all__ = [
    "ENV_SPEC",
    "ENV_TRACE",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultRule",
    "InjectedFault",
    "activate",
    "active_injector",
    "fire",
    "inject",
    "read_trace",
    "register_point",
    "registered_points",
]
