"""Shared stdlib-only HTTP/1.1 plumbing for the serving tier.

One hand-rolled HTTP surface serves three callers: the public
:class:`~repro.serve.server.InferenceServer` handler, the pool manager's
control server (:mod:`repro.serve.pool`), and the in-process async client
(:func:`fetch`) those two use to talk to each other — worker → manager
forwarding, manager → worker control fan-out, and router → worker
proxying.  Keeping the parser/renderer here means every hop speaks
byte-identical HTTP and a framing fix lands everywhere at once.
"""

from __future__ import annotations

import asyncio
import json

__all__ = [
    "HttpError",
    "STATUS_TEXT",
    "MAX_BODY_BYTES",
    "read_request",
    "write_response",
    "split_query",
    "fetch",
]

#: Reject request bodies larger than this (a predict batch of millions of
#: rows should be sharded by the client, not buffered in one read).
MAX_BODY_BYTES = 32 * 1024 * 1024

STATUS_TEXT = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 413: "Payload Too Large",
    500: "Internal Server Error", 502: "Bad Gateway",
    503: "Service Unavailable", 504: "Gateway Timeout",
}


class HttpError(Exception):
    """A handled request failure, rendered as a JSON error response."""

    def __init__(self, status: int, message: str,
                 headers: dict[str, str] | None = None):
        super().__init__(message)
        self.status = status
        self.message = message
        self.headers = headers or {}


def split_query(path: str) -> tuple[str, dict[str, str]]:
    """``/swap?local=1&x=y`` -> ``("/swap", {"local": "1", "x": "y"})``.

    The serving API only ever uses flat ``k=v`` pairs, so this stays a
    two-line split instead of pulling in ``urllib.parse`` on the hot path.
    """
    path, _, raw = path.partition("?")
    query: dict[str, str] = {}
    if raw:
        for pair in raw.split("&"):
            if pair:
                key, _, value = pair.partition("=")
                query[key] = value
    return path, query


async def read_request(reader):
    """Parse one request; ``(method, path, headers, body)`` or ``None`` on
    clean EOF between keep-alive requests.  Raises :class:`HttpError` for
    malformed framing (the caller answers and closes)."""
    # One read for the whole head (request line + headers): requests are
    # small, and a single ``readuntil`` keeps the per-request event loop
    # work minimal on the hot path.
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise
    except asyncio.LimitOverrunError:
        raise HttpError(400, "header block too large") from None
    lines = head.decode("latin-1").split("\r\n")
    try:
        method, path, _version = lines[0].split()
    except ValueError:
        raise HttpError(400, "malformed request line") from None
    headers: dict[str, str] = {}
    for raw in lines[1:]:
        if raw:
            name, _, value = raw.partition(":")
            headers[name.strip().lower()] = value.strip()
    try:
        length = int(headers.get("content-length", "0") or "0")
    except ValueError:
        raise HttpError(400, "malformed Content-Length") from None
    if length < 0:
        raise HttpError(400, "malformed Content-Length")
    if length > MAX_BODY_BYTES:
        raise HttpError(413, "request body too large")
    body = await reader.readexactly(length) if length else b""
    return method.upper(), path, headers, body


async def write_response(
    writer, status, payload, close_conn,
    content_type: str = "application/json",
    extra_headers: dict[str, str] | None = None,
) -> None:
    """Serialize + write one response (``payload`` may be pre-encoded
    bytes: bulk predict bodies and /metrics text arrive rendered)."""
    body = (
        payload
        if isinstance(payload, bytes)
        else json.dumps(payload).encode("utf-8")
    )
    extras = "".join(
        f"{name}: {value}\r\n"
        for name, value in (extra_headers or {}).items()
    )
    head = (
        f"HTTP/1.1 {status} {STATUS_TEXT.get(status, 'Unknown')}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: {'close' if close_conn else 'keep-alive'}\r\n"
        f"{extras}"
        "\r\n"
    ).encode("latin-1")
    writer.write(head + body)
    await writer.drain()


async def fetch(
    host: str,
    port: int,
    method: str,
    path: str,
    body: bytes | dict | None = None,
    timeout_s: float = 30.0,
) -> tuple[int, bytes]:
    """One-shot async HTTP exchange; ``(status, body_bytes)``.

    The control plane's transport: worker → manager forwarding, manager →
    worker fan-out, and router → worker proxying all go through here.
    Connections are deliberately not reused — control traffic is rare and
    a fresh connection per exchange sidesteps stale-socket failure modes
    across process restarts.  Raises ``OSError`` / ``TimeoutError`` on
    connect/framing failures (callers decide retry policy).
    """
    if isinstance(body, dict):
        body = json.dumps(body).encode("utf-8")
    payload = body or b""
    request = (
        f"{method} {path} HTTP/1.1\r\n"
        f"Host: {host}:{port}\r\n"
        f"Content-Length: {len(payload)}\r\n"
        "Connection: close\r\n"
        "\r\n"
    ).encode("latin-1") + payload

    async def exchange() -> tuple[int, bytes]:
        reader, writer = await asyncio.open_connection(host, port)
        try:
            writer.write(request)
            await writer.drain()
            status_line = await reader.readline()
            parts = status_line.decode("latin-1").split()
            if len(parts) < 2 or not parts[1].isdigit():
                raise ConnectionError(
                    f"malformed status line from {host}:{port}: "
                    f"{status_line!r}"
                )
            status = int(parts[1])
            length = None
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("latin-1").partition(":")
                if name.strip().lower() == "content-length":
                    length = int(value.strip())
            if length is None:  # Connection: close framing
                data = await reader.read()
            else:
                data = await reader.readexactly(length)
            return status, data
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    return await asyncio.wait_for(exchange(), timeout_s)
