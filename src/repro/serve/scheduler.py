"""Transport-agnostic micro-batch scheduling core.

The micro-batching contract — coalesce until ``max_batch`` rows or an
(adaptively tuned) deadline, shed when saturated, expire per-request
deadlines before any kernel work, split oversized stacks, isolate poison
requests — is pure scheduling policy.  Nothing in it needs an event
loop, so this module holds the policy **once** and the transports bind
it thinly:

* :class:`~repro.serve.batcher.MicroBatcher` — the asyncio binding the
  HTTP server runs (one worker task per served model);
* :class:`ThreadBatcher` (here) — the same scheduler driven by a plain
  worker thread over a :class:`queue.Queue`, usable anywhere without an
  event loop: embedded callers, benchmarks, and the process-pool worker
  tier (:mod:`repro.serve.pool`), whose workers are separate processes
  that need batching without inheriting the parent's loop.

Both bindings share :class:`SchedulerPolicy` (every decision: effective
delay, shed threshold, deadline expiry) and the executor-side helpers
(:func:`stack_batch`, :func:`predict_in_slices`), so their observable
behavior is identical by construction — and property-tested to be, in
``tests/serve/test_scheduler.py``, which parametrizes the batcher suite
over both.

**Bit-exactness.**  Scheduling cannot change any answer: quantization is
elementwise, every kernel partial sum is an exact integer in float64, and
the rank-table argmax is per-row — so coalescing, splitting, or executing
on a different transport is bit-identical to direct ``predict``.
"""

from __future__ import annotations

import math
import queue
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from .. import faults
from .stats import ServeStats

__all__ = [
    "SchedulerPolicy",
    "ThreadBatcher",
    "ServiceClosed",
    "QueueSaturated",
    "DeadlineExceeded",
    "stack_batch",
    "predict_in_slices",
    "POINT_BATCH",
    "POINT_WORKER",
]

#: Fires once per micro-batch execution, on the executing thread, before
#: any kernel work; context is ``model=<key> rows=<n>``.  ``raise`` here
#: exercises the poison-isolation retry, ``stall`` simulates a slow
#: kernel (for deadline/shed scenarios), ``kill`` a worker-process death
#: mid-batch (the pool chaos suite).
POINT_BATCH = faults.register_point(
    "serve.batch", "one micro-batch execution on an executor thread"
)

#: Fires in whichever **process** is executing serving work — at
#: ``phase=batch`` here (every micro-batch, any transport), and at
#: ``phase=start`` / ``phase=ready`` / ``phase=drain`` in a pool worker's
#: lifecycle (:mod:`repro.serve.pool`).  ``kill:match=phase=batch``
#: drops a pool worker mid-batch; ``kill:match=phase=start`` kills it
#: during boot (the pool's restart machinery must recover from both).
#: Registered here because the batch-phase fire lives in the shared
#: executor body below; the pool only adds the lifecycle phases.
POINT_WORKER = faults.register_point(
    "pool.worker", "the process executing serving work (pool workers: "
    "start/ready/drain lifecycle phases plus every batch)"
)

#: EWMA smoothing factor for the inter-arrival gap estimator: ~the last
#: dozen arrivals dominate, so the effective delay tracks load shifts
#: within a few requests without chasing single-gap noise.
_EWMA_ALPHA = 0.25


class ServiceClosed(RuntimeError):
    """Raised by ``submit`` once the batcher has begun shutting down."""


class QueueSaturated(RuntimeError):
    """Raised by ``submit`` when load shedding is on and the queue is at
    or past the shed threshold — the HTTP layer answers 503 +
    ``Retry-After`` instead of letting the request wait."""


class DeadlineExceeded(RuntimeError):
    """A request's deadline expired while it waited in the queue; it was
    answered 504 and its rows were never executed."""


@dataclass
class PendingRequest:
    """One enqueued request: quantized patterns plus its result future.

    ``future`` is whatever the transport resolves — an
    :class:`asyncio.Future` under the asyncio binding, a
    :class:`concurrent.futures.Future` under the thread binding.  Both
    expose ``done`` / ``set_result`` / ``set_exception``, which is all
    the shared resolution code touches.
    """

    patterns: np.ndarray  # (rows, in) uint32
    rows: int
    future: Any
    enqueued: float  # transport clock time, for queue+execute latency
    deadline: float | None = None  # absolute clock time; None = none


class SchedulerPolicy:
    """Every micro-batching *decision*, transport-free.

    Owns the knobs (validated once, at construction) and the adaptive
    coalescing estimator; the bindings ask it what to do and keep only
    the plumbing (queues, futures, threads vs tasks) to themselves.
    """

    def __init__(
        self,
        *,
        max_batch: int = 32,
        max_delay_ms: float = 2.0,
        queue_limit: int = 256,
        adaptive_delay: bool = True,
        shed_threshold: float | None = None,
    ):
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_delay_ms < 0:
            raise ValueError("max_delay_ms must be >= 0")
        if queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")
        if shed_threshold is not None and not 0.0 < shed_threshold <= 1.0:
            raise ValueError("shed_threshold must be in (0, 1]")
        self.max_batch = int(max_batch)
        self.max_delay = float(max_delay_ms) / 1000.0
        self.queue_limit = int(queue_limit)
        self.adaptive_delay = bool(adaptive_delay)
        # Load shedding is opt-in: None keeps the original backpressure
        # behavior (full queue = submitters wait).  With a threshold f,
        # submits are refused outright once qsize reaches
        # ceil(f * queue_limit), so the server can answer 503 fast
        # instead of stacking latency onto an already-saturated queue.
        self.shed_threshold = shed_threshold
        self.shed_at = (
            None
            if shed_threshold is None
            else max(1, math.ceil(shed_threshold * queue_limit))
        )
        self._arrival_gap_s: float | None = None  # EWMA inter-arrival gap
        self._last_arrival_s: float | None = None

    # -- adaptive coalescing delay --------------------------------------
    def observe_arrival(self, now: float) -> None:
        if self._last_arrival_s is not None:
            gap = max(0.0, now - self._last_arrival_s)
            if self._arrival_gap_s is None:
                self._arrival_gap_s = gap
            else:
                self._arrival_gap_s += _EWMA_ALPHA * (
                    gap - self._arrival_gap_s
                )
        self._last_arrival_s = now

    @property
    def effective_delay(self) -> float:
        """The coalescing window (seconds) the next batch will wait.

        * no estimate yet (cold start) or adaptation disabled: the full
          ``max_delay`` — the conservative fixed-window behavior;
        * dense traffic (EWMA gap below the window): wait the expected
          time to *fill* the batch, ``gap * (max_batch - 1)``, capped at
          ``max_delay`` — a saturating burst closes the batch by count
          long before any deadline;
        * sparse traffic (EWMA gap beyond the window): batchmates are
          unlikely inside the window, so the wait decays as
          ``max_delay * (max_delay / gap)`` toward an immediate flush.

        Continuous at ``gap == max_delay`` and always in
        ``[0, max_delay]``.  This is pure scheduling — it can change when
        a batch executes, never what it computes.
        """
        if not self.adaptive_delay or self._arrival_gap_s is None:
            return self.max_delay
        gap = self._arrival_gap_s
        if gap >= self.max_delay:
            if gap <= 0.0:  # max_delay == 0 and no observed spacing
                return 0.0
            return self.max_delay * (self.max_delay / gap)
        return min(self.max_delay, gap * (self.max_batch - 1))

    # -- per-submit decisions -------------------------------------------
    def should_shed(self, qsize: int) -> bool:
        """Whether a submit arriving at queue depth ``qsize`` is shed."""
        return self.shed_at is not None and qsize >= self.shed_at

    @staticmethod
    def validate_patterns(patterns) -> np.ndarray:
        patterns = np.asarray(patterns, dtype=np.uint32)
        if patterns.ndim != 2:
            raise ValueError("patterns must be 2-D (rows, features)")
        return patterns

    # -- batch-assembly decisions ---------------------------------------
    def split_expired(
        self, batch: list[PendingRequest], now: float
    ) -> tuple[list[PendingRequest], list[PendingRequest]]:
        """Partition an assembled batch into (live, expired) requests.

        Expiry is judged once, at batch assembly: expired rows are
        answered without ever touching a kernel, and live rows keep
        their place in the batch.
        """
        live, expired = [], []
        for item in batch:
            if item.deadline is not None and now > item.deadline:
                expired.append(item)
            else:
                live.append(item)
        return live, expired

    def expiry_error(self, item: PendingRequest, now: float) -> DeadlineExceeded:
        """The 504-material exception for one expired request."""
        exc = DeadlineExceeded(
            f"deadline expired after "
            f"{(now - item.enqueued) * 1000.0:.1f}ms in queue"
        )
        exc._repro_counted = True
        return exc


def stack_batch(batch: list[PendingRequest]) -> np.ndarray:
    """The stacked pattern matrix for one coalesced batch."""
    if len(batch) == 1:
        return batch[0].patterns
    return np.vstack([item.patterns for item in batch])


def predict_in_slices(
    model, stacked: np.ndarray, cap: int
) -> tuple[np.ndarray, list[int]]:
    """Predict a stacked matrix in ``cap``-row slices (kernel-side body).

    The injection point fires here, inside the error boundary, so an
    armed fault behaves exactly like a kernel failure on every
    transport.
    """
    faults.fire(POINT_BATCH, model=model.key, rows=int(stacked.shape[0]))
    faults.fire(POINT_WORKER, phase="batch", model=model.key,
                rows=int(stacked.shape[0]))
    network = model.network
    sizes, parts = [], []
    for start in range(0, stacked.shape[0], cap):
        chunk = stacked[start:start + cap]
        parts.append(network.predict_patterns(chunk))
        sizes.append(chunk.shape[0])
    if not parts:
        # Every coalesced request was zero-row: there is nothing to
        # predict, and ``np.concatenate([])`` would raise and fail the
        # whole batch.  Answer with an empty prediction array (each
        # zero-row caller slices an empty view).
        return np.zeros(0, dtype=np.int64), sizes
    return np.concatenate(parts), sizes


_CLOSE = object()  # queue sentinel; FIFO order makes it drain-then-exit


class ThreadBatcher:
    """The thread transport: one worker thread per served model.

    Mirrors :class:`~repro.serve.batcher.MicroBatcher` decision for
    decision (both delegate to :class:`SchedulerPolicy`), but runs on a
    plain daemon thread over a bounded :class:`queue.Queue` and resolves
    :class:`concurrent.futures.Future` results — no event loop anywhere.
    Kernel execution happens on the worker thread itself (the
    thread-local scratch pools make that safe), which is exactly what a
    pool worker process wants: batching without asyncio.
    """

    def __init__(
        self,
        model,
        *,
        max_batch: int = 32,
        max_delay_ms: float = 2.0,
        queue_limit: int = 256,
        stats: ServeStats | None = None,
        adaptive_delay: bool = True,
        shed_threshold: float | None = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.policy = SchedulerPolicy(
            max_batch=max_batch,
            max_delay_ms=max_delay_ms,
            queue_limit=queue_limit,
            adaptive_delay=adaptive_delay,
            shed_threshold=shed_threshold,
        )
        self.model = model
        self.stats = stats if stats is not None else ServeStats()
        self.generation = 1  # bumped by swap_model (observability only)
        self._clock = clock
        self._queue: queue.Queue = queue.Queue(maxsize=queue_limit)
        self._thread: threading.Thread | None = None
        self._closing = False
        self._lock = threading.Lock()  # submit-side state (EWMA, start)

    # -- knob mirrors (same surface as MicroBatcher) --------------------
    @property
    def max_batch(self) -> int:
        return self.policy.max_batch

    @property
    def max_delay(self) -> float:
        return self.policy.max_delay

    @property
    def queue_limit(self) -> int:
        return self.policy.queue_limit

    @property
    def adaptive_delay(self) -> bool:
        return self.policy.adaptive_delay

    @property
    def shed_threshold(self) -> float | None:
        return self.policy.shed_threshold

    @property
    def effective_delay(self) -> float:
        return self.policy.effective_delay

    @property
    def effective_delay_ms(self) -> float:
        return self.policy.effective_delay * 1000.0

    @property
    def pending(self) -> int:
        """Requests currently queued (excludes the in-flight batch)."""
        return self._queue.qsize()

    @property
    def shedding(self) -> bool:
        return self.policy.should_shed(self._queue.qsize())

    @property
    def saturated(self) -> bool:
        return self._queue.qsize() >= self.policy.queue_limit

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start the worker thread (idempotent)."""
        with self._lock:
            if self._thread is None:
                self._thread = threading.Thread(
                    target=self._run,
                    name=f"repro-batcher-{self.model.key}",
                    daemon=True,
                )
                self._thread.start()

    def submit_async(self, patterns, deadline: float | None = None) -> Future:
        """Enqueue ``(rows, in)`` patterns; a Future of the predictions.

        Same contract as the asyncio binding's ``submit``: blocks when
        the bounded queue is full (backpressure), raises
        :class:`ServiceClosed` once shutdown has begun and
        :class:`QueueSaturated` when load shedding is active; a
        ``deadline`` (absolute ``clock()`` time) expires unexecuted.
        """
        if self._closing:
            raise ServiceClosed(f"batcher for {self.model.key} is shut down")
        if self.policy.should_shed(self._queue.qsize()):
            self.stats.record_shed()
            raise QueueSaturated(
                f"queue for {self.model.key} is saturated "
                f"({self._queue.qsize()}/{self.policy.queue_limit}); "
                "shedding load"
            )
        patterns = self.policy.validate_patterns(patterns)
        self.start()
        now = self._clock()
        with self._lock:
            self.policy.observe_arrival(now)
        item = PendingRequest(patterns, patterns.shape[0], Future(),
                              now, deadline)
        self._queue.put(item)
        return item.future

    def submit(
        self,
        patterns,
        deadline: float | None = None,
        timeout: float | None = None,
    ) -> np.ndarray:
        """Blocking ``submit_async`` (the common embedded-caller path)."""
        return self.submit_async(patterns, deadline).result(timeout)

    def close(self) -> None:
        """Stop accepting requests, drain everything queued, then exit.

        FIFO makes draining trivial: the sentinel is enqueued after the
        last accepted request, so by the time the worker sees it every
        pending batch has been executed and answered.
        """
        join = False
        with self._lock:
            if not self._closing:
                self._closing = True
                self._queue.put(_CLOSE)
            join = self._thread is not None
        if join:
            self._thread.join()

    def swap_model(self, model) -> int:
        """Atomically replace the served model (hot-swap, same key)."""
        if model.key != self.model.key:
            raise ValueError(
                f"cannot swap {self.model.key} to {model.key}: "
                "a batcher serves exactly one (dataset, format) key"
            )
        self.model = model
        self.generation += 1
        return self.generation

    # ------------------------------------------------------------------
    def _run(self) -> None:
        while True:
            item = self._queue.get()
            if item is _CLOSE:
                return
            batch = [item]
            rows = item.rows
            saw_close = False
            deadline = self._clock() + self.policy.effective_delay
            while rows < self.policy.max_batch:
                remaining = deadline - self._clock()
                if remaining <= 0:
                    # Deadline hit: still coalesce the backlog without
                    # waiting — a same-tick burst batches fully even
                    # when the window is microseconds.
                    while rows < self.policy.max_batch:
                        try:
                            nxt = self._queue.get_nowait()
                        except queue.Empty:
                            break
                        if nxt is _CLOSE:
                            saw_close = True
                            break
                        batch.append(nxt)
                        rows += nxt.rows
                    break
                try:
                    nxt = self._queue.get(timeout=remaining)
                except queue.Empty:
                    continue  # drain-then-flush via the deadline branch
                if nxt is _CLOSE:
                    saw_close = True
                    break
                batch.append(nxt)
                rows += nxt.rows
            self._execute(batch)
            if saw_close:
                return

    def _execute(self, batch: list[PendingRequest]) -> None:
        batch, expired = self.policy.split_expired(batch, self._clock())
        now = self._clock()
        for item in expired:
            self.stats.record_deadline_expired()
            if not item.future.done():
                item.future.set_exception(self.policy.expiry_error(item, now))
        if not batch:
            return
        model = self.model  # read once per batch (swap atomicity)
        try:
            predictions, sizes = predict_in_slices(
                model, stack_batch(batch), self.policy.max_batch
            )
        except Exception as exc:
            if len(batch) == 1:
                # A lone request's failure is its own: propagate it.
                self.stats.record_error()
                exc._repro_counted = True
                if not batch[0].future.done():
                    batch[0].future.set_exception(exc)
                return
            # Poison isolation: one bad request (or one transient fault)
            # must not fail its batchmates — re-execute each alone.
            self.stats.record_batch_retry()
            self._execute_singly(batch, model)
            return
        self._resolve(batch, predictions, sizes)

    def _execute_singly(self, batch: list[PendingRequest], model) -> None:
        for item in batch:
            try:
                predictions, sizes = predict_in_slices(
                    model, item.patterns, self.policy.max_batch
                )
            except Exception as exc:  # this request really is the poison
                self.stats.record_error()
                exc._repro_counted = True
                if not item.future.done():
                    item.future.set_exception(exc)
                continue
            self._resolve([item], predictions, sizes)

    def _resolve(self, batch, predictions, sizes) -> None:
        for size in sizes:
            self.stats.record_batch(self.model.key, size)
        offset = 0
        now = self._clock()
        for item in batch:
            result = predictions[offset:offset + item.rows]
            offset += item.rows
            if not item.future.done():  # caller cancelled/timed out: the
                item.future.set_result(result)  # request was unanswered,
                self.stats.record_request(  # so it must not count as one
                    item.rows, (now - item.enqueued) * 1000.0
                )
