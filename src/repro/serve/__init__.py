"""Micro-batching inference service for the exact-MAC stack.

``repro.serve`` turns the offline reproduction into an always-on service:
a stdlib-only asyncio HTTP server whose per-model micro-batchers coalesce
concurrent requests into the stacked batches the compiled layer kernels
are built for, with responses **bit-identical** to calling
:meth:`repro.core.positron.PositronNetwork.predict` directly.

    python -m repro serve --port 8707 --max-batch 32 --max-delay-ms 2

See ``docs/serving.md`` for the API, the batching knobs, and the
bit-exactness argument.
"""

from .ab import ABExperiment
from .batcher import (
    DeadlineExceeded,
    MicroBatcher,
    QueueSaturated,
    ServiceClosed,
)
from .client import ServeClient, ServeError
from .pool import PoolHandle, WorkerPool, run_pool_forever, start_pool_in_thread
from .registry import ModelRegistry, ServedModel, build_served_model
from .scheduler import SchedulerPolicy, ThreadBatcher
from .server import InferenceServer, ServerHandle, serve_forever, start_in_thread
from .stats import ServeStats, merge_states, percentile

__all__ = [
    "ABExperiment",
    "MicroBatcher",
    "SchedulerPolicy",
    "ThreadBatcher",
    "ServiceClosed",
    "QueueSaturated",
    "DeadlineExceeded",
    "ServeClient",
    "ServeError",
    "ModelRegistry",
    "ServedModel",
    "build_served_model",
    "InferenceServer",
    "ServerHandle",
    "serve_forever",
    "start_in_thread",
    "WorkerPool",
    "PoolHandle",
    "start_pool_in_thread",
    "run_pool_forever",
    "ServeStats",
    "merge_states",
    "percentile",
]
