"""Always-on inference service over plain ``asyncio.start_server``.

Stdlib-only HTTP/1.1 (no ``http.server``): a connection handler parses
request line + headers + ``Content-Length`` body, dispatches, and writes a
JSON response, keeping the connection alive between requests.  Endpoints:

==========================  =================================================
``GET  /health``            liveness + loaded-model count
``GET  /models``            loaded models, batching knobs, effective delays
``POST /warmup``            ``{"dataset", "format"}`` — load/train eagerly
``POST /predict``           ``{"dataset", "format", "inputs": [[...], ...]}``
                            (omit ``format`` to route via an A/B experiment)
``GET  /stats``             counters, batch-size histogram, p50/p99 latency
``GET  /metrics``           the same counters in Prometheus text format
``POST /swap``              ``{"dataset", "format"}`` — hot-swap the model
``POST /rollback``          ``{"dataset", "format"}`` — restore the previous
                            generation (idempotent; no-op without one)
``POST /ab`` / ``GET /ab``  configure / inspect A/B serving experiments
==========================  =================================================

When the server runs as a **pool worker** (``repro.serve.pool``) the
control endpoints (swap/ab/rollback/stats/metrics) arriving on the shared
public port are forwarded to the pool manager, which fans out / merges
across all workers; the manager's own fan-out arrives on a loopback admin
listener and is answered locally.  ``drain()`` implements the graceful
half of a rolling restart: stop accepting, finish in-flight requests,
report ``"draining"`` from ``/health``.

One :class:`~repro.serve.batcher.MicroBatcher` per served model coalesces
concurrent predict requests into stacked batches (see ``docs/serving.md``);
blocking work (model loading/training, kernel execution) runs on a small
thread pool, which the thread-local kernel scratch pools make safe.

Embedding: :func:`start_in_thread` runs a server on a background thread
with its own event loop — used by ``examples/serve_demo.py``, the load
tests, and the throughput benchmark.
"""

from __future__ import annotations

import asyncio
import json
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from .. import faults
from .ab import ABExperiment
from .batcher import (
    DeadlineExceeded,
    MicroBatcher,
    QueueSaturated,
    ServiceClosed,
)
from .http import (
    MAX_BODY_BYTES as _MAX_BODY_BYTES,
    HttpError as _HttpError,
    fetch,
    read_request,
    split_query,
    write_response,
)
from .registry import ModelRegistry, ServedModel
from .stats import ServeStats

__all__ = ["InferenceServer", "ServerHandle", "start_in_thread", "serve_forever"]

#: Fires once per accepted HTTP request, pre-dispatch; ``drop`` here
#: severs the connection mid-exchange the way a flaky network would.
POINT_CONNECTION = faults.register_point(
    "serve.connection", "one accepted HTTP request, pre-dispatch"
)

#: The Retry-After hint (seconds) sent with load-shed 503s.  Shedding
#: clears as soon as the queue drains below the threshold, which at
#: micro-batch latencies is well under a second.
_RETRY_AFTER_S = 1

#: Bodies above this parse + quantize on the executor instead of the event
#: loop, so one bulk request cannot stall health checks and coalescing
#: deadlines for everyone else.  (Quantization is elementwise, so where it
#: runs cannot change any served bit.)
_INLINE_BODY_BYTES = 64 * 1024

#: Control endpoints a pooled worker must not answer alone: hitting any
#: of these on the *public* (shared) port reaches one arbitrary worker,
#: so the worker forwards to the pool manager, which fans out / merges
#: across every worker (see :mod:`repro.serve.pool`).  The manager's
#: fan-out comes back on each worker's loopback admin listener, which is
#: trusted as "local" and answered directly.
_POOLED_FORWARD = {"/swap", "/ab", "/rollback", "/stats", "/metrics"}


class InferenceServer:
    """The service: registry + per-model micro-batchers + HTTP front end."""

    def __init__(
        self,
        registry: ModelRegistry | None = None,
        *,
        host: str = "127.0.0.1",
        port: int = 8707,
        max_batch: int = 32,
        max_delay_ms: float = 2.0,
        queue_limit: int = 256,
        executor_workers: int = 2,
        submit_timeout_s: float = 60.0,
        adaptive_delay: bool = True,
        canary_every: int = 8,
        shed_threshold: float | None = None,
        rollback_after: int = 1,
        reuse_port: bool = False,
        pool_manager_port: int | None = None,
        pool_worker_index: int | None = None,
    ):
        # Fail at construction, not on the first request: these values are
        # otherwise only exercised when a batcher is built or a queue fills.
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_delay_ms < 0:
            raise ValueError("max_delay_ms must be >= 0")
        if queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")
        if executor_workers < 1:
            raise ValueError("executor_workers must be >= 1")
        if submit_timeout_s <= 0:
            raise ValueError("submit_timeout_s must be > 0")
        if canary_every < 0:
            raise ValueError("canary_every must be >= 0")
        if shed_threshold is not None and not 0.0 < shed_threshold <= 1.0:
            raise ValueError("shed_threshold must be in (0, 1]")
        if rollback_after < 0:
            raise ValueError("rollback_after must be >= 0")
        self.registry = registry if registry is not None else ModelRegistry()
        self.host = host
        self.port = port
        self.max_batch = max_batch
        self.max_delay_ms = max_delay_ms
        self.queue_limit = queue_limit
        self.submit_timeout_s = submit_timeout_s
        self.adaptive_delay = bool(adaptive_delay)
        self.canary_every = int(canary_every)
        self.shed_threshold = shed_threshold
        # Canary divergences on one A/B arm before that arm is rolled
        # back to its last-known-good generation (0 disables rollback).
        self.rollback_after = int(rollback_after)
        self.stats = ServeStats()
        self._batchers: dict[str, MicroBatcher] = {}
        self._experiments: dict[str, ABExperiment] = {}
        self._rollback_events: list[dict] = []
        self._executor = ThreadPoolExecutor(
            max_workers=executor_workers, thread_name_prefix="repro-serve"
        )
        self._server: asyncio.base_events.Server | None = None
        self._closing = False
        self._started_at = time.monotonic()
        # -- pool-worker wiring (all inert in single-process mode) -------
        # SO_REUSEPORT lets N worker processes bind the same public port;
        # the kernel spreads accepts across them (see repro.serve.pool).
        self.reuse_port = bool(reuse_port)
        # When pooled: the manager's loopback control port (forward
        # target) and this worker's index (observability).
        self.pool_manager_port = pool_manager_port
        self.pool_worker_index = pool_worker_index
        # The loopback admin listener (pooled workers only): the
        # manager's private door for control fan-out and stats scrapes.
        self._admin_server: asyncio.base_events.Server | None = None
        self.admin_port: int | None = None
        # -- graceful drain ----------------------------------------------
        self._draining = False
        self._active_requests = 0  # requests currently in dispatch
        self._conn_writers: set = set()  # open public connections
        self._control_tasks: set = set()  # in-flight pool notifications

    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind and start accepting connections (``port=0`` picks a free
        port; ``self.port`` is updated to the bound one).

        With ``reuse_port`` the public socket binds ``SO_REUSEPORT`` so
        sibling worker processes can share the port; a pooled worker
        (``pool_manager_port`` set) additionally opens a loopback admin
        listener on an ephemeral port — the manager's private address for
        this worker, exempt from forwarding and from drain's
        stop-accepting (the manager must still reach a draining worker).
        """
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port,
            reuse_port=self.reuse_port or None,
        )
        self.port = self._server.sockets[0].getsockname()[1]
        if self.pool_manager_port is not None:
            self._admin_server = await asyncio.start_server(
                self._handle_admin_connection, "127.0.0.1", 0
            )
            self.admin_port = (
                self._admin_server.sockets[0].getsockname()[1]
            )

    async def drain(self, grace_s: float = 5.0) -> None:
        """Graceful shutdown, phase one: stop accepting, finish in-flight.

        * ``/health`` flips to ``"draining"`` immediately;
        * the public listener closes (new connections go to siblings —
          under SO_REUSEPORT the kernel only picks among live listeners);
        * requests already being dispatched complete and are answered;
        * keep-alive connections are told ``Connection: close`` on their
          next response, and idle ones are closed once in-flight work is
          done (or ``grace_s`` expires).

        The admin listener stays up so the manager can watch the drain.
        Call :meth:`close` afterwards for phase two (batcher + executor
        teardown).  No request is ever executed twice: a request either
        got its response before the connection closed, or was never
        dispatched at all.
        """
        if self._draining:
            return
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        deadline = time.monotonic() + grace_s
        while self._active_requests and time.monotonic() < deadline:
            await asyncio.sleep(0.01)
        # Whatever is left holding a connection open is idle keep-alive
        # (or past its grace): close the transports so handlers exit.
        for writer in list(self._conn_writers):
            writer.close()

    async def close(self) -> None:
        """Stop accepting, drain every batcher queue, release the executor.

        Idempotent, and ordered so an in-flight request racing shutdown
        cannot create a fresh batcher on a dead executor: ``_closing``
        flips *before* the batchers drain, and :meth:`batcher_for`
        refuses (``ServiceClosed`` -> 503) from that point on.
        """
        if self._closing:
            return
        self._closing = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._admin_server is not None:
            self._admin_server.close()
            await self._admin_server.wait_closed()
        if self._batchers:
            await asyncio.gather(
                *(b.close() for b in self._batchers.values())
            )
        self._executor.shutdown(wait=True)

    def batcher_for(self, model: ServedModel) -> MicroBatcher:
        """This model's batcher, created (and started) on first use.

        Raises :class:`ServiceClosed` once shutdown has begun — a late
        request must get a 503, not a fresh undrained batcher whose
        executor is already shut down.
        """
        batcher = self._batchers.get(model.key)
        if batcher is None:
            if self._closing:
                raise ServiceClosed(
                    "server is shutting down; not accepting new work"
                )
            batcher = MicroBatcher(
                model,
                max_batch=self.max_batch,
                max_delay_ms=self.max_delay_ms,
                queue_limit=self.queue_limit,
                executor=self._executor,
                stats=self.stats,
                adaptive_delay=self.adaptive_delay,
                shed_threshold=self.shed_threshold,
            )
            batcher.start()
            self._batchers[model.key] = batcher
        return batcher

    # -- HTTP plumbing --------------------------------------------------
    async def _handle_admin_connection(self, reader, writer) -> None:
        """The loopback admin listener: same handler, trusted as local."""
        await self._handle_connection(reader, writer, local=True)

    async def _handle_connection(self, reader, writer,
                                 local: bool = False) -> None:
        if not local:
            self._conn_writers.add(writer)
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except _HttpError as exc:
                    await self._write_response(
                        writer, exc.status, {"error": exc.message}, True
                    )
                    break
                if request is None:
                    break
                method, path, headers, body = request
                faults.fire(POINT_CONNECTION, path=path)
                close_conn = headers.get("connection", "").lower() == "close"
                if self._draining and not local:
                    # Answer this request, then shut the connection so the
                    # client reconnects to a live worker.
                    close_conn = True
                content_type = "application/json"
                extra_headers: dict[str, str] = {}
                self._active_requests += 1
                try:
                    result = await self._dispatch(method, path, body,
                                                  local=local)
                    status, payload = result[0], result[1]
                    if len(result) > 2:  # /metrics returns its own type
                        content_type = result[2]
                except _HttpError as exc:
                    status, payload = exc.status, {"error": exc.message}
                    extra_headers = exc.headers
                except QueueSaturated as exc:
                    # Load shedding: refuse fast with a retry hint rather
                    # than stacking more latency onto a saturated queue.
                    status = 503
                    payload = {
                        "error": str(exc),
                        "retry_after_s": _RETRY_AFTER_S,
                    }
                    extra_headers = {"Retry-After": str(_RETRY_AFTER_S)}
                except DeadlineExceeded as exc:
                    # The request's own deadline expired while it queued;
                    # its rows were never executed.
                    status, payload = 504, {"error": str(exc)}
                except ServiceClosed as exc:
                    status, payload = 503, {"error": str(exc)}
                except Exception as exc:  # never tear the connection down
                    # Batch-execution failures were already counted (once
                    # per batch) by the batcher; don't count them again for
                    # each of the N coalesced requests they fan out to.
                    if not getattr(exc, "_repro_counted", False):
                        self.stats.record_error()
                    status, payload = 500, {"error": f"{type(exc).__name__}: {exc}"}
                finally:
                    self._active_requests -= 1
                await self._write_response(
                    writer, status, payload, close_conn, content_type,
                    extra_headers,
                )
                if close_conn:
                    break
        except (asyncio.IncompleteReadError, ConnectionError):
            # Abrupt client disconnects (reset mid-read, EPIPE mid-write)
            # are normal churn, not server errors.
            pass
        finally:
            self._conn_writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    # The HTTP parser/renderer is shared with the pool control plane
    # (``repro.serve.http``); these staticmethod hooks keep the handler
    # code and the test surface unchanged.
    _read_request = staticmethod(read_request)
    _write_response = staticmethod(write_response)

    # -- routing --------------------------------------------------------
    async def _forward_to_manager(self, method: str, path: str, body: bytes):
        """Proxy one control request to the pool manager (pooled workers).

        Control traffic that lands on the shared public port reaches one
        arbitrary worker; answering locally would desynchronize the pool
        (a swap applied to 1 of N registries) or under-report (one
        worker's counters).  The manager fans out / merges and its
        response is passed through verbatim, status and all.
        """
        try:
            status, data = await fetch(
                "127.0.0.1", self.pool_manager_port, method, path, body,
                timeout_s=60.0,
            )
        except (OSError, asyncio.TimeoutError) as exc:
            raise _HttpError(
                502, f"pool manager unreachable: {type(exc).__name__}"
            ) from None
        content_type = (
            "text/plain; version=0.0.4; charset=utf-8"
            if path == "/metrics"
            else "application/json"
        )
        return status, data, content_type

    async def _dispatch(self, method: str, path: str, body: bytes,
                        local: bool = False):
        path, _query = split_query(path)
        if (
            self.pool_manager_port is not None
            and not local
            and path in _POOLED_FORWARD
        ):
            return await self._forward_to_manager(method, path, body)
        if path == "/health":
            self._require(method, "GET")
            return 200, self._health()
        if path == "/stats":
            self._require(method, "GET")
            if local and self.pool_manager_port is not None:
                # The manager's scrape: raw mergeable state, not the
                # rounded snapshot (percentiles cannot be averaged).
                return 200, self._export_worker_state()
            return 200, self.stats.snapshot()
        if path == "/metrics":
            self._require(method, "GET")
            text = self.stats.render_prometheus(
                queue_depths={
                    key: batcher.pending
                    for key, batcher in self._batchers.items()
                },
                effective_delay_ms={
                    key: round(batcher.effective_delay_ms, 6)
                    for key, batcher in self._batchers.items()
                },
            )
            return (
                200,
                text.encode("utf-8"),
                "text/plain; version=0.0.4; charset=utf-8",
            )
        if path == "/rollback":
            self._require(method, "POST")
            return 200, await self._rollback_endpoint(self._json_body(body))
        if path == "/models":
            self._require(method, "GET")
            return 200, {
                "loaded": [m.describe() for m in self.registry.loaded()],
                "batching": {
                    "max_batch": self.max_batch,
                    "max_delay_ms": self.max_delay_ms,
                    "queue_limit": self.queue_limit,
                    "adaptive_delay": self.adaptive_delay,
                    "shed_threshold": self.shed_threshold,
                    "rollback_after": self.rollback_after,
                    "effective_delay_ms": {
                        key: round(batcher.effective_delay_ms, 3)
                        for key, batcher in sorted(self._batchers.items())
                    },
                },
                "ab": {
                    dataset: exp.describe()
                    for dataset, exp in sorted(self._experiments.items())
                },
            }
        if path == "/warmup":
            self._require(method, "POST")
            model = await self._resolve_model(self._json_body(body))
            return 200, model.describe()
        if path == "/swap":
            self._require(method, "POST")
            return 200, await self._swap(self._json_body(body))
        if path == "/ab":
            if method == "GET":
                return 200, {
                    dataset: exp.describe()
                    for dataset, exp in sorted(self._experiments.items())
                }
            self._require(method, "POST")
            return 200, await self._configure_ab(self._json_body(body))
        if path == "/predict":
            self._require(method, "POST")
            return 200, await self._predict(body)
        raise _HttpError(404, f"no route for {path}")

    def _health(self) -> dict:
        """The ``/health`` body, reporting degraded states honestly.

        A future load balancer (ROADMAP item 1) keys off ``status``:
        ``ok`` means fully healthy, ``degraded`` means alive but impaired
        — some queue at its hard limit, load shedding engaged, or an
        automatic rollback on record (sticky: a rollback means a bad
        generation served divergent bits until the canary caught it, so
        it stays visible until an operator restarts or investigates).
        """
        degraded: dict = {}
        saturated = sorted(
            key for key, b in self._batchers.items() if b.saturated
        )
        shedding = sorted(
            key for key, b in self._batchers.items() if b.shedding
        )
        if saturated:
            degraded["queue_saturated"] = saturated
        if shedding:
            degraded["shedding"] = shedding
        if self.stats.rollbacks:
            degraded["rollbacks"] = self.stats.rollbacks
        if self._draining:
            status = "draining"  # alive, finishing in-flight, not accepting
        elif degraded:
            status = "degraded"
        else:
            status = "ok"
        health = {
            "status": status,
            "models_loaded": len(self.registry.loaded()),
            "uptime_s": round(time.monotonic() - self._started_at, 3),
            "shed_mode": self.shed_threshold is not None,
            "degraded": degraded,
        }
        if self.pool_worker_index is not None:
            health["worker"] = self.pool_worker_index
            health["draining"] = self._draining
        return health

    def _export_worker_state(self) -> dict:
        """The admin ``/stats`` body: everything the manager needs to
        merge this worker into the pooled view."""
        return {
            "worker": self.pool_worker_index,
            "draining": self._draining,
            "state": self.stats.export_state(),
            "queue_depths": {
                key: batcher.pending
                for key, batcher in self._batchers.items()
            },
            "effective_delay_ms": {
                key: round(batcher.effective_delay_ms, 6)
                for key, batcher in self._batchers.items()
            },
            "models_loaded": len(self.registry.loaded()),
        }

    @staticmethod
    def _require(method: str, expected: str) -> None:
        if method != expected:
            raise _HttpError(405, f"use {expected}")

    @staticmethod
    def _json_body(body: bytes) -> dict:
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            raise _HttpError(400, "body must be a JSON object") from None
        if not isinstance(payload, dict):
            raise _HttpError(400, "body must be a JSON object")
        return payload

    async def _resolve_model(self, payload: dict) -> ServedModel:
        dataset = payload.get("dataset")
        format_name = payload.get("format")
        if not isinstance(dataset, str) or not isinstance(format_name, str):
            raise _HttpError(400, "need string fields 'dataset' and 'format'")
        try:
            return await self.registry.get(
                dataset, format_name, executor=self._executor
            )
        except KeyError as exc:
            raise _HttpError(400, str(exc.args[0])) from None

    @staticmethod
    def _quantize_inputs(model: ServedModel, payload: dict) -> np.ndarray:
        raw = payload.get("inputs")
        if raw is None:
            raise _HttpError(400, "missing 'inputs'")
        try:
            inputs = np.asarray(raw, dtype=np.float64)
        except (TypeError, ValueError):
            raise _HttpError(400, "'inputs' must be a numeric array") from None
        if inputs.ndim == 1:
            inputs = inputs[None, :]
        if inputs.ndim != 2 or inputs.shape[0] == 0:
            raise _HttpError(400, "'inputs' must be (rows, features), rows >= 1")
        if inputs.shape[1] != model.num_features:
            raise _HttpError(
                400,
                f"{model.dataset} expects {model.num_features} features, "
                f"got {inputs.shape[1]}",
            )
        return model.quantize(inputs)

    # -- model lifecycle operations (hot-swap, A/B) ---------------------
    async def _swap(self, payload: dict) -> dict:
        """``POST /swap``: rebuild one served model and switch to it.

        The registry entry is replaced atomically, the live batcher (if
        one exists) flips to the new network between batches, and any A/B
        arm pointing at the key follows — so the canary keeps comparing
        served output against the network that actually serves.
        """
        if self._closing:
            raise ServiceClosed("server is shutting down; cannot swap")
        dataset = payload.get("dataset")
        format_name = payload.get("format")
        if not isinstance(dataset, str) or not isinstance(format_name, str):
            raise _HttpError(400, "need string fields 'dataset' and 'format'")
        try:
            model = await self.registry.reload(
                dataset, format_name, executor=self._executor
            )
        except KeyError as exc:
            raise _HttpError(400, str(exc.args[0])) from None
        batcher = self._batchers.get(model.key)
        generation = (
            batcher.swap_model(model) if batcher is not None else 1
        )
        for experiment in self._experiments.values():
            if experiment.arm_a.key == model.key:
                experiment.arm_a = model
            if experiment.arm_b.key == model.key:
                experiment.arm_b = model
            if model.key in (experiment.arm_a.key, experiment.arm_b.key):
                # A fresh generation is judged fresh: its rollback
                # counter must not inherit its predecessor's strikes.
                experiment.reset_arm_divergences(model.format_name)
        self.stats.record_swap()
        return {
            "swapped": model.key,
            "generation": generation,
            "model": model.describe(),
        }

    async def _configure_ab(self, payload: dict) -> dict:
        """``POST /ab``: serve one dataset A/B across two formats."""
        dataset = payload.get("dataset")
        format_a = payload.get("format_a")
        format_b = payload.get("format_b")
        canary_every = payload.get("canary_every", self.canary_every)
        if not (
            isinstance(dataset, str)
            and isinstance(format_a, str)
            and isinstance(format_b, str)
        ):
            raise _HttpError(
                400, "need string fields 'dataset', 'format_a', 'format_b'"
            )
        if (
            isinstance(canary_every, bool)
            or not isinstance(canary_every, int)
            or canary_every < 0
        ):
            raise _HttpError(400, "'canary_every' must be an integer >= 0")
        try:
            arm_a = await self.registry.get(
                dataset, format_a, executor=self._executor
            )
            arm_b = await self.registry.get(
                dataset, format_b, executor=self._executor
            )
            experiment = ABExperiment(
                dataset, arm_a, arm_b, canary_every=canary_every
            )
        except KeyError as exc:
            raise _HttpError(400, str(exc.args[0])) from None
        except ValueError as exc:
            raise _HttpError(400, str(exc)) from None
        self._experiments[dataset] = experiment
        return experiment.describe()

    async def configure_ab(
        self,
        dataset: str,
        format_a: str,
        format_b: str,
        canary_every: int | None = None,
    ) -> dict:
        """Register (or replace) an A/B experiment — the CLI ``--ab`` path."""
        payload = {
            "dataset": dataset, "format_a": format_a, "format_b": format_b,
        }
        if canary_every is not None:
            payload["canary_every"] = canary_every
        try:
            return await self._configure_ab(payload)
        except _HttpError as exc:
            raise ValueError(exc.message) from None

    # -- the predict path -----------------------------------------------
    async def _submit(
        self, model: ServedModel, patterns, deadline: float | None = None
    ) -> np.ndarray:
        """Submit patterns to the model's batcher with the 503 timeout.

        ``deadline`` (absolute loop time) rides into the batcher, which
        answers expired rows with :class:`DeadlineExceeded` (-> 504)
        instead of executing them.
        """
        batcher = self.batcher_for(model)
        try:
            return await asyncio.wait_for(
                batcher.submit(patterns, deadline=deadline),
                self.submit_timeout_s,
            )
        except asyncio.TimeoutError:
            self.stats.record_rejected()
            raise _HttpError(503, "prediction queue saturated; retry") from None

    @staticmethod
    def _parse_deadline(payload: dict, loop) -> float | None:
        """``deadline_ms`` (a request-relative budget) -> absolute loop
        time, validated; ``None`` when the request sets no deadline."""
        raw = payload.get("deadline_ms")
        if raw is None:
            return None
        if isinstance(raw, bool) or not isinstance(raw, (int, float)):
            raise _HttpError(400, "'deadline_ms' must be a positive number")
        if not raw > 0 or not np.isfinite(raw):
            raise _HttpError(400, "'deadline_ms' must be a positive number")
        return loop.time() + float(raw) / 1000.0

    async def _run_canary(
        self,
        experiment: ABExperiment,
        model: ServedModel,
        patterns: np.ndarray,
        served: np.ndarray,
        payload: dict,
        offload: bool,
    ) -> dict:
        """One sampled bit-identity check: both arms, served vs direct.

        The other arm quantizes the same float inputs with its own engine
        and answers through its own (batched) path; each arm's served
        response is then compared against a standalone
        ``predict_patterns`` recompute of its own patterns.  A mismatch
        on either arm means the serving layer changed bits — counted as
        a divergence.  Cross-arm disagreement (two formats legitimately
        predicting different classes) is tracked separately.
        """
        other = experiment.other(model)
        loop = asyncio.get_running_loop()
        if offload:
            other_patterns = await loop.run_in_executor(
                self._executor, self._quantize_inputs, other, payload
            )
        else:
            other_patterns = self._quantize_inputs(other, payload)
        served_other = await self._submit(other, other_patterns)

        def recompute():
            return (
                model.network.predict_patterns(patterns),
                other.network.predict_patterns(other_patterns),
            )

        direct, direct_other = await loop.run_in_executor(
            self._executor, recompute
        )
        arm_diverged = not np.array_equal(served, direct)
        other_diverged = not np.array_equal(served_other, direct_other)
        diverged = arm_diverged or other_diverged
        rows_disagreed = int(np.count_nonzero(direct != direct_other))
        experiment.record_canary(diverged, len(direct), rows_disagreed)
        self.stats.record_canary(diverged)
        result = {
            "checked": True,
            "diverged": diverged,
            "rows_disagreed": rows_disagreed,
        }
        # Divergence is charged per arm so only the lying generation is
        # rolled back; healthy arms are left alone.
        rollbacks = []
        for arm, arm_hit in ((model, arm_diverged), (other, other_diverged)):
            if not arm_hit:
                continue
            count = experiment.record_arm_divergence(arm.format_name)
            if self.rollback_after and count >= self.rollback_after:
                event = await self._rollback_arm(experiment, arm)
                if event is not None:
                    rollbacks.append(event)
        if rollbacks:
            result["rollbacks"] = rollbacks
        return result

    async def _rollback_arm(
        self, experiment: ABExperiment, bad: ServedModel
    ) -> dict | None:
        """Swap one A/B arm back to its last-known-good generation.

        In a worker pool the rollback also fans out: siblings are serving
        the same convicted generation (swaps are broadcast), so the
        manager is told to roll every worker back — each sibling's own
        rollback is idempotent (no previous generation left = no-op).
        """
        return await self._apply_rollback(
            bad.dataset, bad.format_name, notify_pool=True
        )

    async def _rollback_endpoint(self, payload: dict) -> dict:
        """``POST /rollback``: restore the previous generation of one
        model — the manual counterpart of the automatic canary rollback,
        and the fan-out target the pool manager broadcasts to.  Idempotent:
        with no stashed previous generation it reports a no-op."""
        dataset = payload.get("dataset")
        format_name = payload.get("format")
        if not isinstance(dataset, str) or not isinstance(format_name, str):
            raise _HttpError(400, "need string fields 'dataset' and 'format'")
        event = await self._apply_rollback(dataset, format_name)
        if event is None:
            return {
                "rolled_back": None,
                "reason": "no previous generation",
            }
        return event

    async def _apply_rollback(
        self, dataset: str, format_name: str, notify_pool: bool = False
    ) -> dict | None:
        """Restore one model's last-known-good generation locally.

        Runs under the registry's per-key lock (inside ``rollback``); the
        live batcher flips to the restored network between batches, every
        experiment arm pointing at the key follows, and the event lands
        in stats (``/metrics``), ``/health``, and the ``/ab`` report.
        Returns ``None`` when no previous generation exists to restore.
        """
        restored = await self.registry.rollback(dataset, format_name)
        if restored is None:
            return None
        batcher = self._batchers.get(restored.key)
        generation = (
            batcher.swap_model(restored) if batcher is not None else None
        )
        for exp in self._experiments.values():
            if exp.arm_a.key == restored.key:
                exp.arm_a = restored
            if exp.arm_b.key == restored.key:
                exp.arm_b = restored
            if restored.key in (exp.arm_a.key, exp.arm_b.key):
                # The restored generation gets a clean slate: its canary
                # verdicts must not inherit the convicted generation's
                # divergences.
                exp.reset_arm_divergences(restored.format_name)
                exp.rollbacks += 1
        self.stats.record_rollback()
        event = {
            "rolled_back": restored.key,
            "generation": generation,
            "dataset": restored.dataset,
            "arm": restored.format_name,
        }
        self._rollback_events.append(event)
        if notify_pool and self.pool_manager_port is not None:
            self._notify_pool_rollback(restored.dataset, restored.format_name)
        return event

    def _notify_pool_rollback(self, dataset: str, format_name: str) -> None:
        """Tell the manager to fan a canary rollback out to the siblings
        (fire-and-forget: the local rollback already applied, and a dead
        manager means a dying pool anyway)."""

        async def notify() -> None:
            try:
                await fetch(
                    "127.0.0.1", self.pool_manager_port, "POST",
                    "/rollback",
                    {"dataset": dataset, "format": format_name},
                    timeout_s=30.0,
                )
            except (OSError, asyncio.TimeoutError):
                pass

        task = asyncio.get_running_loop().create_task(notify())
        self._control_tasks.add(task)
        task.add_done_callback(self._control_tasks.discard)

    async def _predict(self, body: bytes) -> dict:
        offload = len(body) > _INLINE_BODY_BYTES
        loop = asyncio.get_running_loop()
        if offload:
            payload = await loop.run_in_executor(
                self._executor, self._json_body, body
            )
        else:
            payload = self._json_body(body)
        experiment = canary = None
        dataset = payload.get("dataset")
        if payload.get("format") is None and isinstance(dataset, str):
            experiment = self._experiments.get(dataset)
        if experiment is not None:
            model, canary = experiment.route()
        else:
            model = await self._resolve_model(payload)
        if offload:
            patterns = await loop.run_in_executor(
                self._executor, self._quantize_inputs, model, payload
            )
        else:
            patterns = self._quantize_inputs(model, payload)
        deadline = self._parse_deadline(payload, loop)
        predictions = await self._submit(model, patterns, deadline)
        ab_info = None
        if experiment is not None:
            ab_info = {"arm": model.format_name, "canary": bool(canary)}
            if canary:
                ab_info["canary_result"] = await self._run_canary(
                    experiment, model, patterns, predictions, payload,
                    offload,
                )

        def render():
            classes = [int(c) for c in predictions]
            payload = {
                "dataset": model.dataset,
                "format": model.format_name,
                "predictions": classes,
                "labels": [model.class_names[c] for c in classes],
            }
            if ab_info is not None:
                payload["ab"] = ab_info
            return json.dumps(payload).encode("utf-8") if offload else payload

        if offload:
            # Bulk responses (hundreds of thousands of labels + a multi-MB
            # dumps) are built and serialized off the event loop too.
            return await loop.run_in_executor(self._executor, render)
        return render()


# ----------------------------------------------------------------------
# Embedding and CLI entry points
# ----------------------------------------------------------------------
class ServerHandle:
    """A server running on a background thread, with a blocking ``stop``."""

    def __init__(self, server: InferenceServer, loop, thread, stop_event):
        self.server = server
        self._loop = loop
        self._thread = thread
        self._stop_event = stop_event

    @property
    def address(self) -> tuple[str, int]:
        return (self.server.host, self.server.port)

    def stop(self, timeout: float = 30.0) -> None:
        """Signal shutdown (drains batcher queues) and join the thread."""
        self._loop.call_soon_threadsafe(self._stop_event.set)
        self._thread.join(timeout)

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()


def start_in_thread(**server_kwargs) -> ServerHandle:
    """Start an :class:`InferenceServer` on a daemon thread; wait until it
    is accepting connections (``port=0`` resolves to the bound port)."""
    ready = threading.Event()
    holder: dict = {}

    async def main() -> None:
        server = InferenceServer(**server_kwargs)
        await server.start()
        stop_event = asyncio.Event()
        holder["server"] = server
        holder["loop"] = asyncio.get_running_loop()
        holder["stop_event"] = stop_event
        ready.set()
        await stop_event.wait()
        await server.close()

    def run() -> None:
        try:
            asyncio.run(main())
        except Exception as exc:  # surface bind errors to the caller
            holder["error"] = exc
            ready.set()

    thread = threading.Thread(target=run, name="repro-serve", daemon=True)
    thread.start()
    ready.wait()
    if "error" in holder:
        raise holder["error"]
    return ServerHandle(
        holder["server"], holder["loop"], thread, holder["stop_event"]
    )


async def serve_forever(warmups=(), ab_experiments=(), **server_kwargs) -> None:
    """Run a server in the current event loop until cancelled (CLI path).

    ``warmups`` is a sequence of ``(dataset, format_name)`` pairs to load
    before the listening banner is printed; ``ab_experiments`` is a
    sequence of ``(dataset, format_a, format_b)`` triples to serve A/B.
    """
    server = InferenceServer(**server_kwargs)
    await server.start()
    for dataset, format_name in warmups:
        model = await server.registry.get(
            dataset, format_name, executor=server._executor
        )
        print(f"warmed up {model.key}", file=sys.stderr, flush=True)
    for dataset, format_a, format_b in ab_experiments:
        described = await server.configure_ab(dataset, format_a, format_b)
        print(
            f"A/B serving {dataset}: {'/'.join(described['arms'])} "
            f"(canary every {described['canary_every']})",
            file=sys.stderr, flush=True,
        )
    print(
        f"repro.serve listening on http://{server.host}:{server.port} "
        f"(max_batch={server.max_batch}, max_delay_ms={server.max_delay_ms})",
        flush=True,
    )
    try:
        await asyncio.Event().wait()
    finally:
        await server.close()
