"""A/B serving: two formats for one dataset, with a bit-identity canary.

An :class:`ABExperiment` routes predict requests for one dataset between
two served models (the same trained parent quantized at two number
formats) round-robin, so both arms see the same traffic mix.  A sampled
fraction of routed requests additionally runs the **canary**: the request
is executed through *both* arms' micro-batchers, and each arm's served
(batched, coalesced, possibly split) response is compared bit-for-bit
against a direct, standalone ``predict_patterns`` recompute of the same
patterns.

Predictions are deterministic integers — quantization is elementwise, the
kernels are exact, the argmax is per-row — so the served and direct
answers of the *same* arm can only differ if the serving layer mis-sliced,
mis-ordered, or mixed up a batch, or a hot-swap left a batcher executing
a stale network.  Any divergence is therefore a real compile/serve bug and
trips ``canary_divergences`` (never expected to move; alert on nonzero).

The two *arms*' predictions may legitimately differ from each other — they
are different number systems.  That cross-arm disagreement is recorded
separately (``rows_disagreed``) as accuracy observability, not as an
error; on the rows where the arms' direct computations agree, the canary
guarantees the served responses are bit-identical too.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from .registry import ServedModel

__all__ = ["ABExperiment"]


@dataclass
class ABExperiment:
    """One dataset served A/B across two formats, with canary counters."""

    dataset: str
    arm_a: ServedModel
    arm_b: ServedModel
    canary_every: int = 8  # canary every Nth routed request (0 = never)
    requests_per_arm: Counter = field(default_factory=Counter)
    canary_checks: int = 0
    canary_divergences: int = 0  # served != direct for some arm: a bug
    divergences_per_arm: Counter = field(default_factory=Counter)
    rollbacks: int = 0  # automatic rollbacks triggered by this experiment
    rows_compared: int = 0  # canary rows where both arms answered
    rows_disagreed: int = 0  # arms legitimately predicting differently
    _router: int = 0

    def __post_init__(self) -> None:
        if self.arm_a.dataset != self.dataset or (
            self.arm_b.dataset != self.dataset
        ):
            raise ValueError("both arms must serve the experiment's dataset")
        if self.arm_a.format_name == self.arm_b.format_name:
            raise ValueError("A/B arms must be two distinct formats")
        if self.canary_every < 0:
            raise ValueError("canary_every must be >= 0")

    @property
    def arms(self) -> tuple[ServedModel, ServedModel]:
        return (self.arm_a, self.arm_b)

    def route(self) -> tuple[ServedModel, bool]:
        """Assign the next request to an arm; flag it for the canary.

        Round-robin keeps the split exactly 50/50 and deterministic (no
        RNG in the serving path); the canary fires every
        ``canary_every``-th routed request, starting with the first, so
        a short test run still exercises it.
        """
        assigned = self.arms[self._router % 2]
        canary = (
            self.canary_every > 0
            and self._router % self.canary_every == 0
        )
        self._router += 1
        self.requests_per_arm[assigned.format_name] += 1
        return assigned, canary

    def other(self, model: ServedModel) -> ServedModel:
        """The arm ``model`` is not."""
        return self.arm_b if model is self.arm_a else self.arm_a

    def record_canary(
        self, diverged: bool, rows: int, rows_disagreed: int
    ) -> None:
        """Book one canary outcome.

        ``diverged`` — some arm's served response differed from its own
        direct recompute (a serve bug).  ``rows_disagreed`` — rows where
        the two arms' (correct) predictions differ, out of ``rows``.
        """
        self.canary_checks += 1
        if diverged:
            self.canary_divergences += 1
        self.rows_compared += rows
        self.rows_disagreed += rows_disagreed

    def record_arm_divergence(self, format_name: str) -> int:
        """Charge one served-vs-direct divergence to a specific arm.

        Rollback decisions are per-arm: only the generation that is
        actually lying should be rolled back.  Returns the arm's running
        divergence count so the caller can compare it to its threshold.
        """
        self.divergences_per_arm[format_name] += 1
        return self.divergences_per_arm[format_name]

    def reset_arm_divergences(self, format_name: str) -> None:
        """Clear an arm's divergence count (after its model was replaced,
        the restored generation deserves a fresh verdict)."""
        self.divergences_per_arm[format_name] = 0

    def describe(self) -> dict:
        """JSON-ready row for ``GET /ab``."""
        return {
            "dataset": self.dataset,
            "arms": [self.arm_a.format_name, self.arm_b.format_name],
            "canary_every": self.canary_every,
            "requests_per_arm": dict(sorted(self.requests_per_arm.items())),
            "canary": {
                "checks": self.canary_checks,
                "divergences": self.canary_divergences,
                "divergences_per_arm": dict(
                    sorted(self.divergences_per_arm.items())
                ),
                "rows_compared": self.rows_compared,
                "rows_disagreed": self.rows_disagreed,
            },
            "rollbacks": self.rollbacks,
        }
