"""Serving counters: requests, batch-size histogram, latency percentiles.

One :class:`ServeStats` instance lives on the server; every micro-batcher
reports into it.  Everything is O(1) per event — the latency percentiles
come from a bounded ring of the most recent samples, so ``/stats`` stays
cheap no matter how long the server has been up.  All mutation happens on
the event loop (batchers run there), so no locking is needed; the executor
threads never touch this module.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

__all__ = ["ServeStats", "percentile"]

#: Latency ring size: enough for stable p99 without unbounded growth.
_LATENCY_WINDOW = 4096


def percentile(samples: list[float], q: float) -> float:
    """The ``q``-th percentile (0-100) by nearest-rank, 0.0 when empty."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = max(0, min(len(ordered) - 1, round(q / 100.0 * len(ordered)) - 1))
    return ordered[rank]


@dataclass
class ServeStats:
    """Aggregate counters for one server (with a per-model breakdown)."""

    requests: int = 0
    samples: int = 0
    batches: int = 0
    errors: int = 0
    rejected: int = 0  # backpressure: queue-full rejections
    batch_sizes: Counter = field(default_factory=Counter)
    per_model: Counter = field(default_factory=Counter)
    _latencies_ms: list[float] = field(default_factory=list)
    _latency_pos: int = 0

    # -- event hooks (called by batchers / the request handlers) --------
    def record_batch(self, model_key: str, size: int) -> None:
        """One executed micro-batch of ``size`` stacked samples."""
        self.batches += 1
        self.batch_sizes[size] += 1
        self.per_model[model_key] += size

    def record_request(self, samples: int, latency_ms: float) -> None:
        """One completed predict request (``samples`` rows)."""
        self.requests += 1
        self.samples += samples
        if len(self._latencies_ms) < _LATENCY_WINDOW:
            self._latencies_ms.append(latency_ms)
        else:
            self._latencies_ms[self._latency_pos] = latency_ms
            self._latency_pos = (self._latency_pos + 1) % _LATENCY_WINDOW

    def record_error(self) -> None:
        self.errors += 1

    def record_rejected(self) -> None:
        self.rejected += 1

    # -- reporting ------------------------------------------------------
    @property
    def mean_batch_size(self) -> float:
        total = sum(self.batch_sizes.values())
        if not total:
            return 0.0
        return sum(s * c for s, c in self.batch_sizes.items()) / total

    def snapshot(self) -> dict:
        """JSON-ready view served by ``GET /stats``."""
        return {
            "requests": self.requests,
            "samples": self.samples,
            "batches": self.batches,
            "errors": self.errors,
            "rejected": self.rejected,
            "mean_batch_size": round(self.mean_batch_size, 3),
            "batch_size_histogram": {
                str(size): count
                for size, count in sorted(self.batch_sizes.items())
            },
            "samples_per_model": dict(sorted(self.per_model.items())),
            "latency_ms": {
                "p50": round(percentile(self._latencies_ms, 50), 3),
                "p99": round(percentile(self._latencies_ms, 99), 3),
                "window": len(self._latencies_ms),
            },
        }
