"""Serving counters: requests, batch-size histogram, latency percentiles.

One :class:`ServeStats` instance lives on the server; every micro-batcher
reports into it.  Everything is O(1) per event — the latency percentiles
come from a bounded ring of the most recent samples, so ``/stats`` stays
cheap no matter how long the server has been up.  All mutation happens on
the event loop (batchers run there), so no locking is needed; the executor
threads never touch this module.

Two read-side renderings share the same counters: :meth:`ServeStats.
snapshot` (the JSON ``/stats`` body) and :meth:`ServeStats.
render_prometheus` (the ``/metrics`` text exposition — counters,
the batch-size histogram as cumulative ``_bucket`` series, per-model
gauges, and latency quantiles as a summary).
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field

__all__ = ["ServeStats", "percentile", "merge_states"]

#: Latency ring size: enough for stable p99 without unbounded growth.
_LATENCY_WINDOW = 4096

#: Cumulative ``le`` bucket bounds for the /metrics batch-size histogram.
#: Powers of two cover every sane ``max_batch``; +Inf is appended on render.
_BATCH_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)


def percentile(samples: list[float], q: float) -> float:
    """The ``q``-th percentile (0-100) by nearest-rank, 0.0 when empty.

    True nearest-rank: the value at rank ``ceil(q/100 * N)`` (1-based,
    clamped to ``[1, N]``), so ``percentile([1, 2, 3, 4, 5], 50)`` is the
    median 3.  Banker's ``round()`` here would report one rank low for
    every half-way quantile — the seed bug that skewed p50/p99.
    """
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = max(1, min(len(ordered), math.ceil(q / 100.0 * len(ordered))))
    return ordered[rank - 1]


def _escape_label(value: str) -> str:
    """Escape a Prometheus label value (backslash, quote, newline)."""
    return (
        value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")
    )


def _fmt(value: float) -> str:
    """Render a sample value: integers stay integral, floats stay short."""
    if isinstance(value, bool):  # pragma: no cover - defensive
        value = int(value)
    if isinstance(value, int) or float(value).is_integer():
        return str(int(value))
    return repr(float(value))


@dataclass
class ServeStats:
    """Aggregate counters for one server (with a per-model breakdown)."""

    requests: int = 0
    samples: int = 0
    batches: int = 0
    errors: int = 0
    rejected: int = 0  # backpressure: queue-full rejections
    shed: int = 0  # load-shed refusals (503 + Retry-After)
    deadline_expired: int = 0  # requests answered 504, never executed
    swaps: int = 0  # successful POST /swap model replacements
    rollbacks: int = 0  # automatic canary rollbacks to last-known-good
    batch_retries: int = 0  # poison-isolation single-request re-executions
    canary_checks: int = 0  # sampled A/B bit-identity comparisons
    canary_divergences: int = 0  # served != direct — a real serve bug
    batch_sizes: Counter = field(default_factory=Counter)
    per_model: Counter = field(default_factory=Counter)
    _latencies_ms: list[float] = field(default_factory=list)
    _latency_pos: int = 0
    _latency_sum_ms: float = 0.0  # cumulative, for the /metrics summary

    # -- event hooks (called by batchers / the request handlers) --------
    def record_batch(self, model_key: str, size: int) -> None:
        """One executed micro-batch of ``size`` stacked samples."""
        self.batches += 1
        self.batch_sizes[size] += 1
        self.per_model[model_key] += size

    def record_request(self, samples: int, latency_ms: float) -> None:
        """One completed predict request (``samples`` rows)."""
        self.requests += 1
        self.samples += samples
        self._latency_sum_ms += latency_ms
        if len(self._latencies_ms) < _LATENCY_WINDOW:
            self._latencies_ms.append(latency_ms)
        else:
            self._latencies_ms[self._latency_pos] = latency_ms
            self._latency_pos = (self._latency_pos + 1) % _LATENCY_WINDOW

    def record_error(self) -> None:
        self.errors += 1

    def record_rejected(self) -> None:
        self.rejected += 1

    def record_shed(self) -> None:
        self.shed += 1

    def record_deadline_expired(self) -> None:
        self.deadline_expired += 1

    def record_swap(self) -> None:
        self.swaps += 1

    def record_rollback(self) -> None:
        self.rollbacks += 1

    def record_batch_retry(self) -> None:
        """One failed batch re-executed request-by-request (isolation)."""
        self.batch_retries += 1

    def record_canary(self, diverged: bool) -> None:
        """One sampled canary comparison; ``diverged`` means served output
        differed from the direct recompute — always a compile/serve bug."""
        self.canary_checks += 1
        if diverged:
            self.canary_divergences += 1

    # -- reporting ------------------------------------------------------
    @property
    def mean_batch_size(self) -> float:
        total = sum(self.batch_sizes.values())
        if not total:
            return 0.0
        return sum(s * c for s, c in self.batch_sizes.items()) / total

    def snapshot(self) -> dict:
        """JSON-ready view served by ``GET /stats``."""
        return {
            "requests": self.requests,
            "samples": self.samples,
            "batches": self.batches,
            "errors": self.errors,
            "rejected": self.rejected,
            "shed": self.shed,
            "deadline_expired": self.deadline_expired,
            "swaps": self.swaps,
            "rollbacks": self.rollbacks,
            "batch_retries": self.batch_retries,
            "canary": {
                "checks": self.canary_checks,
                "divergences": self.canary_divergences,
            },
            "mean_batch_size": round(self.mean_batch_size, 3),
            "batch_size_histogram": {
                str(size): count
                for size, count in sorted(self.batch_sizes.items())
            },
            "samples_per_model": dict(sorted(self.per_model.items())),
            "latency_ms": {
                "p50": round(percentile(self._latencies_ms, 50), 3),
                "p99": round(percentile(self._latencies_ms, 99), 3),
                "window": len(self._latencies_ms),
            },
        }

    def export_state(self) -> dict:
        """The raw, lossless counter state (JSON-ready).

        The pool manager aggregates ``/stats`` and ``/metrics`` across
        worker processes; the rendered :meth:`snapshot` is lossy (rounded
        percentiles cannot be merged), so workers export this instead and
        the manager rebuilds a pooled :class:`ServeStats` via
        :func:`merge_states` — pooled percentiles are then computed over
        the concatenated windows, not averaged per worker.
        """
        return {
            "requests": self.requests,
            "samples": self.samples,
            "batches": self.batches,
            "errors": self.errors,
            "rejected": self.rejected,
            "shed": self.shed,
            "deadline_expired": self.deadline_expired,
            "swaps": self.swaps,
            "rollbacks": self.rollbacks,
            "batch_retries": self.batch_retries,
            "canary_checks": self.canary_checks,
            "canary_divergences": self.canary_divergences,
            "batch_sizes": {str(k): v for k, v in self.batch_sizes.items()},
            "per_model": dict(self.per_model),
            "latencies_ms": list(self._latencies_ms),
            "latency_sum_ms": self._latency_sum_ms,
        }

    def render_prometheus(
        self,
        queue_depths: dict[str, int] | None = None,
        effective_delay_ms: dict[str, float] | None = None,
    ) -> str:
        """The ``GET /metrics`` body: Prometheus text exposition format.

        ``queue_depths`` / ``effective_delay_ms`` are per-model gauges the
        server reads off its live batchers at scrape time (they are state,
        not events, so they don't live in the counters).
        """
        lines: list[str] = []

        def counter(name: str, help_text: str, value: float) -> None:
            lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} counter")
            lines.append(f"{name} {_fmt(value)}")

        def gauge_family(
            name: str, help_text: str, values: dict[str, float]
        ) -> None:
            lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} gauge")
            for model, value in sorted(values.items()):
                lines.append(
                    f'{name}{{model="{_escape_label(model)}"}} {_fmt(value)}'
                )

        counter("repro_serve_requests_total",
                "Completed predict requests.", self.requests)
        counter("repro_serve_samples_total",
                "Predicted rows across all requests.", self.samples)
        counter("repro_serve_batches_total",
                "Executed micro-batches.", self.batches)
        counter("repro_serve_errors_total",
                "Failed requests (batch execution or handler errors).",
                self.errors)
        counter("repro_serve_rejected_total",
                "Requests rejected by backpressure (queue saturated).",
                self.rejected)
        counter("repro_serve_shed_total",
                "Requests refused by load shedding (503 + Retry-After).",
                self.shed)
        counter("repro_serve_deadline_expired_total",
                "Requests whose deadline expired in queue (504, never "
                "executed).",
                self.deadline_expired)
        counter("repro_serve_swaps_total",
                "Model hot-swaps applied via POST /swap.", self.swaps)
        counter("repro_serve_rollbacks_total",
                "Automatic canary rollbacks to the last-known-good "
                "generation.",
                self.rollbacks)
        counter("repro_serve_batch_retries_total",
                "Failed micro-batches re-executed request-by-request "
                "(poison isolation).",
                self.batch_retries)
        counter("repro_serve_canary_checks_total",
                "Sampled A/B canary bit-identity comparisons.",
                self.canary_checks)
        counter("repro_serve_canary_divergences_total",
                "Canary comparisons where served output differed from the "
                "direct recompute (any nonzero value is a serve bug).",
                self.canary_divergences)

        # Batch-size histogram: cumulative le-buckets over executed batches.
        name = "repro_serve_batch_size"
        lines.append(f"# HELP {name} Rows per executed micro-batch.")
        lines.append(f"# TYPE {name} histogram")
        cumulative = 0
        for bound in _BATCH_BUCKETS:
            cumulative = sum(
                count for size, count in self.batch_sizes.items()
                if size <= bound
            )
            lines.append(f'{name}_bucket{{le="{bound}"}} {cumulative}')
        lines.append(f'{name}_bucket{{le="+Inf"}} {self.batches}')
        lines.append(
            f"{name}_sum "
            f"{_fmt(sum(s * c for s, c in self.batch_sizes.items()))}"
        )
        lines.append(f"{name}_count {self.batches}")

        # Latency: recent-window quantiles as a summary; sum/count are
        # cumulative over the server's whole life.
        name = "repro_serve_latency_ms"
        lines.append(
            f"# HELP {name} Request latency in milliseconds "
            "(quantiles over the recent window)."
        )
        lines.append(f"# TYPE {name} summary")
        for q in (50, 99):
            lines.append(
                f'{name}{{quantile="{q / 100}"}} '
                f"{_fmt(round(percentile(self._latencies_ms, q), 6))}"
            )
        lines.append(f"{name}_sum {_fmt(round(self._latency_sum_ms, 6))}")
        lines.append(f"{name}_count {self.requests}")

        if self.per_model:
            model_name = "repro_serve_model_samples_total"
            lines.append(
                f"# HELP {model_name} Predicted rows per served model."
            )
            lines.append(f"# TYPE {model_name} counter")
            for model, count in sorted(self.per_model.items()):
                lines.append(
                    f'{model_name}{{model="{_escape_label(model)}"}} {count}'
                )
        if queue_depths:
            gauge_family(
                "repro_serve_queue_depth",
                "Requests queued per model (excludes the in-flight batch).",
                queue_depths,
            )
        if effective_delay_ms:
            gauge_family(
                "repro_serve_effective_delay_ms",
                "Adaptive coalescing delay currently in effect per model.",
                effective_delay_ms,
            )
        return "\n".join(lines) + "\n"


def merge_states(states: list[dict]) -> ServeStats:
    """Rebuild one pooled :class:`ServeStats` from worker
    :meth:`~ServeStats.export_state` dicts.

    Scalars and histograms sum; the latency windows concatenate (clipped
    to the ring size), so pooled p50/p99 are true percentiles over the
    combined recent samples rather than an average of per-worker
    percentiles — averaging quantiles is the classic aggregation bug this
    function exists to avoid.
    """
    merged = ServeStats()
    for state in states:
        for name in (
            "requests", "samples", "batches", "errors", "rejected", "shed",
            "deadline_expired", "swaps", "rollbacks", "batch_retries",
            "canary_checks", "canary_divergences",
        ):
            setattr(merged, name, getattr(merged, name) + int(
                state.get(name, 0)
            ))
        for size, count in state.get("batch_sizes", {}).items():
            merged.batch_sizes[int(size)] += int(count)
        for model, count in state.get("per_model", {}).items():
            merged.per_model[model] += int(count)
        merged._latencies_ms.extend(state.get("latencies_ms", ()))
        merged._latency_sum_ms += float(state.get("latency_sum_ms", 0.0))
    if len(merged._latencies_ms) > _LATENCY_WINDOW:
        merged._latencies_ms = merged._latencies_ms[-_LATENCY_WINDOW:]
    return merged
