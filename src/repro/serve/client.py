"""Tiny blocking client for the inference service (stdlib sockets only).

One :class:`ServeClient` holds one keep-alive TCP connection and speaks
just enough HTTP/1.1 for the service: a request is one ``sendall``, a
response is the header block plus a ``Content-Length`` JSON body.  That
keeps the client's per-request overhead well under the kernel time being
amortized — it exists for examples, load tests, and the throughput
benchmark, not as a general HTTP library.

A client is **not** thread-safe; give each load-generating thread its own
(as the examples and benchmarks do).

    >>> with ServeClient(port=handle.server.port) as client:
    ...     client.warmup("wbc", "posit8_1")
    ...     client.predict("wbc", "posit8_1", test_x[:4])["predictions"]
"""

from __future__ import annotations

import json
import socket

import numpy as np

__all__ = ["ServeClient", "ServeError"]

_HEAD_END = b"\r\n\r\n"


class ServeError(RuntimeError):
    """A non-200 response from the service."""

    def __init__(self, status: int, message: str):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class ServeClient:
    """Blocking JSON-over-HTTP client for one server."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8707,
                 timeout: float = 60.0):
        self.host = host
        self.port = port
        self.timeout = timeout
        self._sock: socket.socket | None = None
        self._buffer = bytearray()

    # -- connection management ------------------------------------------
    def _connect(self) -> socket.socket:
        sock = socket.create_connection(
            (self.host, self.port), timeout=self.timeout
        )
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._buffer.clear()
        return sock

    def close(self) -> None:
        if self._sock is not None:
            self._sock.close()
            self._sock = None
        self._buffer.clear()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- one request/response exchange ----------------------------------
    def _request(self, method: str, path: str, payload: dict | None = None,
                 raw: bool = False):
        body = b"" if payload is None else json.dumps(payload).encode("utf-8")
        message = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Content-Type: application/json\r\n"
            "\r\n"
        ).encode("latin-1") + body
        if self._sock is None:
            self._sock = self._connect()
            return self._exchange(message, raw)
        try:
            return self._exchange(message, raw)
        except TimeoutError:
            # The server may still be executing the request (e.g. a slow
            # first-warmup training run) — re-sending would double the
            # work, so surface the timeout to the caller instead.
            self.close()
            raise
        except ConnectionError:
            # Stale keep-alive (server restarted, idle drop): retry once on
            # a fresh connection.
            self.close()
            self._sock = self._connect()
            return self._exchange(message, raw)

    def _exchange(self, message: bytes, raw: bool = False):
        self._sock.sendall(message)
        head = self._read_until_head_end()
        lines = head.decode("latin-1").split("\r\n")
        status = int(lines[0].split(" ", 2)[1])
        length = 0
        for line in lines[1:]:
            name, _, value = line.partition(":")
            if name.strip().lower() == "content-length":
                length = int(value.strip())
                break
        body = self._read_exactly(length) if length else b""
        if status != 200:
            # Error bodies are JSON even on text endpoints like /metrics.
            try:
                data = json.loads(body) if body else {}
            except json.JSONDecodeError:
                data = {"error": body.decode("utf-8", "replace")}
            raise ServeError(status, data.get("error", "unknown error"))
        if raw:
            return body.decode("utf-8")
        return json.loads(body) if length else {}

    def _read_until_head_end(self) -> bytes:
        while True:
            index = self._buffer.find(_HEAD_END)
            if index >= 0:
                head = bytes(self._buffer[:index])
                del self._buffer[: index + len(_HEAD_END)]
                return head
            chunk = self._sock.recv(65536)
            if not chunk:
                raise ConnectionError("server closed the connection")
            self._buffer.extend(chunk)

    def _read_exactly(self, length: int) -> bytes:
        while len(self._buffer) < length:
            chunk = self._sock.recv(65536)
            if not chunk:
                raise ConnectionError("server closed mid-body")
            self._buffer.extend(chunk)
        body = bytes(self._buffer[:length])
        del self._buffer[:length]
        return body

    # -- endpoints ------------------------------------------------------
    def health(self) -> dict:
        return self._request("GET", "/health")

    def stats(self) -> dict:
        return self._request("GET", "/stats")

    def metrics(self) -> str:
        """The Prometheus text exposition served by ``GET /metrics``."""
        return self._request("GET", "/metrics", raw=True)

    def models(self) -> dict:
        return self._request("GET", "/models")

    def warmup(self, dataset: str, format_name: str) -> dict:
        """Load (or train-and-cache) a model before taking traffic."""
        return self._request(
            "POST", "/warmup", {"dataset": dataset, "format": format_name}
        )

    def swap(self, dataset: str, format_name: str) -> dict:
        """Hot-swap: rebuild the served model and switch to it atomically."""
        return self._request(
            "POST", "/swap", {"dataset": dataset, "format": format_name}
        )

    def start_ab(self, dataset: str, format_a: str, format_b: str,
                 canary_every: int | None = None) -> dict:
        """Serve ``dataset`` A/B across two formats with a sampled canary."""
        payload = {
            "dataset": dataset, "format_a": format_a, "format_b": format_b,
        }
        if canary_every is not None:
            payload["canary_every"] = canary_every
        return self._request("POST", "/ab", payload)

    def ab_status(self) -> dict:
        """Per-experiment routing and canary counters (``GET /ab``)."""
        return self._request("GET", "/ab")

    def predict(self, dataset: str, format_name: str | None, inputs) -> dict:
        """Predict classes for ``(rows, features)`` float inputs.

        ``format_name=None`` omits the format field: the server routes
        the request through the dataset's A/B experiment (400 if none).
        """
        rows = np.asarray(inputs, dtype=np.float64)
        payload = {"dataset": dataset, "inputs": rows.tolist()}
        if format_name is not None:
            payload["format"] = format_name
        return self._request("POST", "/predict", payload)
