"""Tiny blocking client for the inference service (stdlib sockets only).

One :class:`ServeClient` holds one keep-alive TCP connection and speaks
just enough HTTP/1.1 for the service: a request is one ``sendall``, a
response is the header block plus a ``Content-Length`` JSON body.  That
keeps the client's per-request overhead well under the kernel time being
amortized — it exists for examples, load tests, and the throughput
benchmark, not as a general HTTP library.

Connection failures — refused connects, stale keep-alives, resets
mid-exchange — are retried up to ``retries`` attempts with exponential
backoff + jitter.  Re-sending is safe because every endpoint is
idempotent (predictions are deterministic; /swap rebuilds from the same
store artifacts).  Response *timeouts* are never retried: the server may
still be executing the request (e.g. a slow first-warmup training run),
and re-sending would double the work.

A client is **not** thread-safe; give each load-generating thread its own
(as the examples and benchmarks do).

    >>> with ServeClient(port=handle.server.port) as client:
    ...     client.warmup("wbc", "posit8_1")
    ...     client.predict("wbc", "posit8_1", test_x[:4])["predictions"]
"""

from __future__ import annotations

import json
import random
import socket
import time

import numpy as np

from .. import faults

__all__ = ["ServeClient", "ServeError"]

_HEAD_END = b"\r\n\r\n"

#: Fires before a connect / request write / response read; ``raise`` with
#: ``exc=ConnectionRefusedError`` at ``client.connect`` simulates a down
#: server, ``drop`` at ``client.send``/``client.recv`` a flaky network.
POINT_CONNECT = faults.register_point(
    "client.connect", "a ServeClient TCP connect"
)
POINT_SEND = faults.register_point(
    "client.send", "one client request write"
)
POINT_RECV = faults.register_point(
    "client.recv", "one client response read"
)


class ServeError(RuntimeError):
    """A non-200 response from the service."""

    def __init__(self, status: int, message: str,
                 retry_after: float | None = None):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message
        self.retry_after = retry_after  # seconds, from Retry-After (503s)


class ServeClient:
    """Blocking JSON-over-HTTP client for one server.

    ``retries`` bounds the *attempts* per request (default 3: the
    original try plus two retries); ``retry_backoff_s`` seeds the
    exponential backoff between them, jittered to avoid thundering
    herds.  ``retry_on_503`` additionally retries load-shed/saturation
    503 responses, honoring the server's ``Retry-After`` hint.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 8707,
                 timeout: float = 60.0, retries: int = 3,
                 retry_backoff_s: float = 0.05,
                 retry_on_503: bool = False,
                 rng: random.Random | None = None):
        if retries < 1:
            raise ValueError("retries must be >= 1")
        if retry_backoff_s < 0:
            raise ValueError("retry_backoff_s must be >= 0")
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retries = int(retries)
        self.retry_backoff_s = float(retry_backoff_s)
        self.retry_on_503 = bool(retry_on_503)
        self._rng = rng if rng is not None else random.Random()
        self._sleep = time.sleep  # patchable seam for fast tests
        self._sock: socket.socket | None = None
        self._buffer = bytearray()

    # -- connection management ------------------------------------------
    def _connect(self) -> socket.socket:
        faults.fire(POINT_CONNECT, host=self.host, port=self.port)
        sock = socket.create_connection(
            (self.host, self.port), timeout=self.timeout
        )
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._buffer.clear()
        return sock

    def close(self) -> None:
        if self._sock is not None:
            self._sock.close()
            self._sock = None
        self._buffer.clear()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- one request/response exchange ----------------------------------
    def _request(self, method: str, path: str, payload: dict | None = None,
                 raw: bool = False):
        body = b"" if payload is None else json.dumps(payload).encode("utf-8")
        message = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Content-Type: application/json\r\n"
            "\r\n"
        ).encode("latin-1") + body
        last_exc: Exception | None = None
        for attempt in range(1, self.retries + 1):
            try:
                if self._sock is None:
                    self._sock = self._connect()
                return self._exchange(message, raw)
            except TimeoutError:
                # The server may still be executing the request (e.g. a
                # slow first-warmup training run) — re-sending would
                # double the work, so surface the timeout to the caller.
                self.close()
                raise
            except ServeError as exc:
                if not (self.retry_on_503 and exc.status == 503):
                    raise
                # Shed/saturation: the connection is healthy, only the
                # queue is full.  Honor the server's Retry-After hint
                # (but never wait less than our own backoff).
                last_exc = exc
                if attempt < self.retries:
                    self._sleep(max(
                        exc.retry_after or 0.0,
                        self._backoff(attempt),
                    ))
                continue
            except (ConnectionError, OSError) as exc:
                # Refused connect (server not up yet / restarting), stale
                # keep-alive, or a reset mid-exchange.  Every endpoint is
                # idempotent, so resend on a fresh connection after
                # backoff.  TimeoutError was already handled above (it
                # subclasses OSError).
                self.close()
                last_exc = exc
                if attempt < self.retries:
                    self._sleep(self._backoff(attempt))
        raise last_exc

    def _backoff(self, attempt: int) -> float:
        """Exponential backoff with jitter: ``base * 2^(attempt-1) *
        [1, 2)`` seconds."""
        return (
            self.retry_backoff_s
            * (2 ** (attempt - 1))
            * (1.0 + self._rng.random())
        )

    def _exchange(self, message: bytes, raw: bool = False):
        faults.fire(POINT_SEND, host=self.host, port=self.port,
                    sock=self._sock)
        self._sock.sendall(message)
        faults.fire(POINT_RECV, host=self.host, port=self.port,
                    sock=self._sock)
        head = self._read_until_head_end()
        lines = head.decode("latin-1").split("\r\n")
        status = int(lines[0].split(" ", 2)[1])
        length = 0
        retry_after = None
        for line in lines[1:]:
            name, _, value = line.partition(":")
            field = name.strip().lower()
            if field == "content-length":
                length = int(value.strip())
            elif field == "retry-after":
                try:
                    retry_after = float(value.strip())
                except ValueError:
                    pass
        body = self._read_exactly(length) if length else b""
        if status != 200:
            # Error bodies are JSON even on text endpoints like /metrics.
            try:
                data = json.loads(body) if body else {}
            except json.JSONDecodeError:
                data = {"error": body.decode("utf-8", "replace")}
            raise ServeError(status, data.get("error", "unknown error"),
                             retry_after=retry_after)
        if raw:
            return body.decode("utf-8")
        return json.loads(body) if length else {}

    def _read_until_head_end(self) -> bytes:
        while True:
            index = self._buffer.find(_HEAD_END)
            if index >= 0:
                head = bytes(self._buffer[:index])
                del self._buffer[: index + len(_HEAD_END)]
                return head
            chunk = self._sock.recv(65536)
            if not chunk:
                raise ConnectionError("server closed the connection")
            self._buffer.extend(chunk)

    def _read_exactly(self, length: int) -> bytes:
        while len(self._buffer) < length:
            chunk = self._sock.recv(65536)
            if not chunk:
                raise ConnectionError("server closed mid-body")
            self._buffer.extend(chunk)
        body = bytes(self._buffer[:length])
        del self._buffer[:length]
        return body

    # -- endpoints ------------------------------------------------------
    def health(self) -> dict:
        return self._request("GET", "/health")

    def stats(self) -> dict:
        return self._request("GET", "/stats")

    def metrics(self) -> str:
        """The Prometheus text exposition served by ``GET /metrics``."""
        return self._request("GET", "/metrics", raw=True)

    def models(self) -> dict:
        return self._request("GET", "/models")

    def warmup(self, dataset: str, format_name: str) -> dict:
        """Load (or train-and-cache) a model before taking traffic."""
        return self._request(
            "POST", "/warmup", {"dataset": dataset, "format": format_name}
        )

    def swap(self, dataset: str, format_name: str) -> dict:
        """Hot-swap: rebuild the served model and switch to it atomically."""
        return self._request(
            "POST", "/swap", {"dataset": dataset, "format": format_name}
        )

    def start_ab(self, dataset: str, format_a: str, format_b: str,
                 canary_every: int | None = None) -> dict:
        """Serve ``dataset`` A/B across two formats with a sampled canary."""
        payload = {
            "dataset": dataset, "format_a": format_a, "format_b": format_b,
        }
        if canary_every is not None:
            payload["canary_every"] = canary_every
        return self._request("POST", "/ab", payload)

    def ab_status(self) -> dict:
        """Per-experiment routing and canary counters (``GET /ab``)."""
        return self._request("GET", "/ab")

    def predict(self, dataset: str, format_name: str | None, inputs,
                deadline_ms: float | None = None) -> dict:
        """Predict classes for ``(rows, features)`` float inputs.

        ``format_name=None`` omits the format field: the server routes
        the request through the dataset's A/B experiment (400 if none).
        ``deadline_ms`` gives the request a latency budget: rows still
        queued when it expires are answered 504 and never executed.
        """
        rows = np.asarray(inputs, dtype=np.float64)
        payload = {"dataset": dataset, "inputs": rows.tolist()}
        if format_name is not None:
            payload["format"] = format_name
        if deadline_ms is not None:
            payload["deadline_ms"] = deadline_ms
        return self._request("POST", "/predict", payload)
