"""Served-model registry: ``(dataset, format_name)`` -> ready network.

The serving layer never trains or compiles anything per request.  The first
request (or an explicit ``/warmup``) for a ``(dataset, format_name)`` pair:

1. resolves the trained float parent model through
   :func:`repro.analysis.sweep.trained_model` — which loads it from the
   content-addressed artifact store by spec hash, or trains once and
   persists it (see ``docs/running-experiments.md``);
2. quantizes the parameters into a :class:`~repro.core.positron.
   PositronNetwork`, whose layers compile their digit-plane GEMM kernels at
   construction against the registry-memoized format backend — so decode
   tables, digit planes, and rank tables are shared with every other
   consumer in the process;
3. caches the resulting :class:`ServedModel` for the life of the server.

Loading is serialized per key with an :class:`asyncio.Lock` (concurrent
first requests train once, not N times) and runs on the executor so the
event loop keeps answering health checks while a model trains.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import Executor
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from .. import formats
from ..core.positron import PositronNetwork

__all__ = ["ServedModel", "ModelRegistry"]

#: Loader contract: ``dataset_name -> TrainedModel`` (raises ``KeyError``
#: for unknown datasets).  The default is the store-backed
#: :func:`repro.analysis.sweep.trained_model`; tests inject tiny synthetic
#: models here to keep the suite training-free.
Loader = Callable[[str], object]


@dataclass
class ServedModel:
    """One deployable network plus the metadata requests need."""

    dataset: str
    format_name: str  # canonical registry name, e.g. ``posit8_1``
    backend: formats.NumericFormat
    network: PositronNetwork
    num_features: int
    class_names: tuple[str, ...]
    float32_accuracy: float

    @property
    def key(self) -> str:
        """Stable identifier used in stats and the ``/models`` listing."""
        return f"{self.dataset}/{self.format_name}"

    def quantize(self, inputs: np.ndarray) -> np.ndarray:
        """Float features -> input patterns (elementwise, request-local).

        Quantization is per-element, so quantizing each request separately
        and stacking the patterns is bit-identical to quantizing a stacked
        float batch — the first half of the served-equals-direct guarantee.
        """
        return self.network.engine.quantize(np.asarray(inputs, dtype=np.float64))

    def describe(self) -> dict:
        """JSON-ready row for the ``/models`` endpoint."""
        return {
            "dataset": self.dataset,
            "format": self.format_name,
            "label": self.backend.label,
            "num_features": self.num_features,
            "classes": list(self.class_names),
            "topology": list(self.network.topology),
            "float32_accuracy": self.float32_accuracy,
        }


def _default_loader(dataset: str):
    from ..analysis.sweep import trained_model

    return trained_model(dataset)


def build_served_model(
    dataset: str, format_name: str, loader: Loader | None = None
) -> ServedModel:
    """Synchronous load path: resolve, quantize, compile.

    ``formats.get`` canonicalizes the name (``posit<8,1>`` and ``posit8_1``
    map to the same backend and therefore the same served model).  Raises
    ``KeyError`` for unknown datasets or format names.
    """
    backend = formats.get(format_name)
    tm = (loader or _default_loader)(dataset)
    weights, biases = tm.model.export_params()
    network = PositronNetwork.from_float_params(backend.fmt, weights, biases)
    # Warm the fused whole-network plan here, off the request path: the
    # batcher's predict_patterns rides it, and compiling it involves
    # round-table bisection plus per-layer fast-path timing probes that
    # must not land on the first request's latency.
    network.network_kernel()
    return ServedModel(
        dataset=dataset,
        format_name=backend.name,
        backend=backend,
        network=network,
        num_features=network.topology[0],
        class_names=tuple(tm.dataset.class_names),
        float32_accuracy=float(tm.float32_accuracy),
    )


@dataclass
class ModelRegistry:
    """Async cache of :class:`ServedModel` instances, one per key."""

    loader: Loader | None = None
    _models: dict[tuple[str, str], ServedModel] = field(default_factory=dict)
    _locks: dict[tuple[str, str], asyncio.Lock] = field(default_factory=dict)
    #: Last-known-good generation per key: the model each ``reload``
    #: displaced, kept so a misbehaving replacement can be rolled back.
    _previous: dict[tuple[str, str], ServedModel] = field(
        default_factory=dict
    )

    async def get(
        self,
        dataset: str,
        format_name: str,
        executor: Executor | None = None,
    ) -> ServedModel:
        """The served model for ``(dataset, format_name)``, loading once.

        Concurrent callers for the same key await one load; callers for
        different keys load independently.  The blocking work (store read
        or training + kernel compilation) runs on ``executor``.
        """
        backend = formats.get(format_name)  # canonicalize + fail fast
        key = (dataset, backend.name)
        model = self._models.get(key)
        if model is not None:
            return model
        lock = self._locks.setdefault(key, asyncio.Lock())
        async with lock:
            model = self._models.get(key)
            if model is None:
                loop = asyncio.get_running_loop()
                model = await loop.run_in_executor(
                    executor, build_served_model, dataset, backend.name,
                    self.loader,
                )
                self._models[key] = model
        return model

    async def reload(
        self,
        dataset: str,
        format_name: str,
        executor: Executor | None = None,
    ) -> ServedModel:
        """Rebuild a served model and atomically replace the cached entry.

        The hot-swap path (``POST /swap``): the loader/store is consulted
        again — picking up retrained or repaired artifacts written since
        the model was first loaded — and the fresh :class:`ServedModel`
        (new network, newly compiled kernels and fused plan) replaces the
        old one in a single assignment.  Requests resolving the key during
        the rebuild keep getting the old model; the per-key lock
        serializes concurrent reloads.
        """
        backend = formats.get(format_name)
        key = (dataset, backend.name)
        lock = self._locks.setdefault(key, asyncio.Lock())
        async with lock:
            loop = asyncio.get_running_loop()
            model = await loop.run_in_executor(
                executor, build_served_model, dataset, backend.name,
                self.loader,
            )
            displaced = self._models.get(key)
            if displaced is not None:
                self._previous[key] = displaced
            self._models[key] = model
        return model

    async def rollback(self, dataset: str, format_name: str) -> ServedModel | None:
        """Restore the last-known-good generation for a key, if any.

        The canary-triggered recovery path: under the same per-key lock
        as ``reload``, the displaced model saved by the last reload
        becomes current again.  The rolled-back (bad) generation is
        *not* stashed as previous — rolling back twice must not
        reinstall the model the canary just convicted.  Returns the
        restored model, or ``None`` when no previous generation exists
        (nothing was ever reloaded, or it was already consumed).
        """
        backend = formats.get(format_name)
        key = (dataset, backend.name)
        lock = self._locks.setdefault(key, asyncio.Lock())
        async with lock:
            previous = self._previous.pop(key, None)
            if previous is None:
                return None
            self._models[key] = previous
        return previous

    def previous_generation(self, dataset: str, format_name: str) -> ServedModel | None:
        """The model a rollback would restore for this key (or ``None``)."""
        backend = formats.get(format_name)
        return self._previous.get((dataset, backend.name))

    def loaded(self) -> list[ServedModel]:
        """Currently resident models, in load order."""
        return list(self._models.values())
