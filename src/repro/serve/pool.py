"""Multi-process worker tier: socket-sharded serving with one control plane.

One asyncio process tops out far below the "millions of users" target no
matter how well it batches — the GIL serializes HTTP parsing, JSON, and
quantization even with kernel work on executor threads.  Models are
bit-exact ``.npz`` blobs in the content-addressed store, so independent
worker processes hydrate *identical* registries by spec hash and any
worker can answer any request with bit-identical output.  That makes the
scale-out shape the standard one: N stateless replicas behind a shared
model store.

:class:`WorkerPool` forks N worker processes (``spawn`` context — clean
interpreters, no inherited locks), each running a full
:class:`~repro.serve.server.InferenceServer` with its own registry,
batchers, and executor threads.  Two distribution modes:

* ``reuseport`` (default) — every worker binds the same public port with
  ``SO_REUSEPORT``; the kernel spreads accepted connections across the
  live listeners.  The pool holds a bound-but-never-listening placeholder
  socket in the same reuseport group, which (a) resolves ``port=0`` once
  so all workers agree, and (b) keeps the port reserved while workers
  restart.  Zero-copy, no extra hop — but each model's micro-batcher runs
  warm in *every* worker.
* ``router`` — the pool process owns the public port and proxies each
  request to a worker chosen by CRC32 of the ``(dataset, format)``
  routing key, so each model's batcher stays hot in exactly one worker
  (better coalescing when many models share few cores); any worker can
  still serve any key (bits are worker-agnostic), so a dead target just
  fails over to the next index.

**The control plane.**  The pool binds a loopback *manager* port before
spawning; workers forward control requests (``/swap``, ``/ab``,
``/rollback``, ``/stats``, ``/metrics``) that land on the shared public
port up to it, and the manager fans out to every worker's private admin
listener — so a swap observed by any worker becomes a swap applied to
*all* registries, and ``/stats``/``/metrics`` report pooled totals with
true percentiles over the concatenated latency windows (never averaged
quantiles).  A worker that misses a fan-out (it was restarting) keeps an
older generation *number* but serves bit-identical answers — both
generations were rebuilt from the same store artifact — so divergence is
impossible; the supervisor's next restart re-hydrates lazily from the
store anyway.

**Self-healing.**  A supervisor task restarts dead workers with the same
jittered exponential backoff the analysis runner uses for crashed pool
workers; ``SIGTERM`` to a worker triggers graceful drain (stop accepting,
finish in-flight batches, exit 0), and :meth:`WorkerPool.rolling_restart`
drains and replaces workers one at a time so the pool never serves a
request with zero live listeners.

Fault points: ``pool.worker`` (worker lifecycle + every batch — see
:mod:`repro.serve.scheduler`) and ``pool.route`` (fired per fan-out /
routing target in the pool process; ``raise``/``drop`` here simulate a
torn control channel, which the broadcast's bounded retries must absorb).
"""

from __future__ import annotations

import asyncio
import importlib
import json
import multiprocessing
import os
import random
import signal
import socket
import sys
import threading
import time
import zlib
from dataclasses import dataclass, field

from .. import faults
from ..analysis.runner import _backoff_delay
from .http import (
    HttpError,
    fetch,
    read_request,
    split_query,
    write_response,
)
from .registry import ModelRegistry
from .scheduler import POINT_WORKER
from .server import InferenceServer
from .stats import merge_states

__all__ = [
    "WorkerPool",
    "PoolHandle",
    "start_pool_in_thread",
    "run_pool_forever",
    "POINT_WORKER",
    "POINT_ROUTE",
]

#: Fires in the pool process once per control fan-out target
#: (``mode=broadcast``) and, in router mode, once per routed request
#: (``mode=route``); context carries ``path`` and the target ``worker``.
#: ``raise`` simulates a dropped control channel mid-``/swap`` — the
#: bounded per-worker retries must still converge every registry.
POINT_ROUTE = faults.register_point(
    "pool.route", "one control fan-out / request-routing hop in the pool "
    "process"
)

#: Control paths the pool answers itself (fan-out or merge) instead of
#: routing to a single worker.
_CONTROL_PATHS = {"/swap", "/ab", "/rollback", "/stats", "/metrics"}

#: Per-worker attempts for one control fan-out before that worker is
#: reported failed (it still converges later: restarts rehydrate from
#: the store, and rollback fan-out is idempotent).
_BROADCAST_ATTEMPTS = 3

#: A worker alive this long has its restart-backoff attempt counter
#: reset — only *crash loops* escalate the backoff, not occasional
#: faults hours apart.
_STABLE_AFTER_S = 5.0


def _resolve_loader(spec: str | None):
    """``"module:attr"`` -> the loader callable (``None`` = store-backed).

    Workers are spawned, so the loader cannot be pickled directly — it
    travels as an import spec and resolves inside the worker.  Tests
    point this at module-level tiny-model loaders.
    """
    if spec is None:
        return None
    module_name, _, attr = spec.partition(":")
    if not attr:
        raise ValueError(f"loader spec must be 'module:attr', got {spec!r}")
    return getattr(importlib.import_module(module_name), attr)


def route_index(dataset: str, format_name: str, n_workers: int) -> int:
    """Deterministic worker index for a ``(dataset, format)`` routing key.

    CRC32, not ``hash()``: Python string hashing is salted per process,
    and the router must pick the same worker across restarts so each
    model's micro-batcher stays hot in one place.
    """
    key = f"{dataset}/{format_name}".encode("utf-8")
    return zlib.crc32(key) % max(1, n_workers)


# ----------------------------------------------------------------------
# Worker process entry (module-level: must be picklable for spawn)
# ----------------------------------------------------------------------
def _worker_entry(config: dict, conn) -> None:
    try:
        asyncio.run(_worker_main(config, conn))
    except KeyboardInterrupt:
        pass


async def _worker_main(config: dict, conn) -> None:
    faults.fire(POINT_WORKER, phase="start", worker=config["index"])
    registry = ModelRegistry(loader=_resolve_loader(config["loader_spec"]))
    server = InferenceServer(
        registry=registry,
        host=config["host"],
        port=config["port"],
        reuse_port=config["reuse_port"],
        pool_manager_port=config["manager_port"],
        pool_worker_index=config["index"],
        **config["server_kwargs"],
    )
    await server.start()
    for dataset, format_name in config["warmups"]:
        await server.registry.get(dataset, format_name,
                                  executor=server._executor)
    for dataset, format_a, format_b in config["ab_experiments"]:
        await server.configure_ab(dataset, format_a, format_b)
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    # SIGTERM = graceful drain (the supervisor's stop and the rolling
    # restart both send it); SIGINT reaches the whole foreground process
    # group on Ctrl-C, so workers treat it the same way.
    for signum in (signal.SIGTERM, signal.SIGINT):
        loop.add_signal_handler(signum, stop.set)
    conn.send({
        "serve_port": server.port,
        "admin_port": server.admin_port,
        "pid": os.getpid(),
    })
    conn.close()
    faults.fire(POINT_WORKER, phase="ready", worker=config["index"])

    async def watch_parent() -> None:
        # A manager that dies without stopping the pool (SIGKILL, or a
        # hard SIGTERM that skipped cleanup) must not leave orphaned
        # workers serving forever: when we are reparented, drain.
        while os.getppid() == config["parent_pid"]:
            await asyncio.sleep(1.0)
        stop.set()

    watchdog = asyncio.ensure_future(watch_parent())
    await stop.wait()
    watchdog.cancel()
    faults.fire(POINT_WORKER, phase="drain", worker=config["index"])
    await server.drain(config["drain_grace_s"])
    await server.close()


# ----------------------------------------------------------------------
# The pool
# ----------------------------------------------------------------------
@dataclass
class _Worker:
    """Supervision record for one worker slot."""

    index: int
    process: multiprocessing.process.BaseProcess | None = None
    serve_port: int | None = None
    admin_port: int | None = None
    pid: int | None = None
    started_at: float = 0.0
    attempts: int = 0  # consecutive failed/short-lived starts
    restarts: int = 0  # lifetime restarts (observability)
    stopping: bool = False  # deliberate termination: don't auto-restart
    dead: bool = False  # gave up after max_restarts crash-loop attempts

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.exitcode is None


class WorkerPool:
    """N serving processes + the control plane, in the current event loop.

    ``server_kwargs`` passes batching/serving knobs through to every
    worker's :class:`~repro.serve.server.InferenceServer` (``max_batch``,
    ``max_delay_ms``, ``queue_limit``, ``shed_threshold``, ...); they must
    be picklable.  ``loader_spec`` is a ``"module:attr"`` import path for
    a registry loader (tests inject tiny synthetic models; ``None`` uses
    the store-backed default).
    """

    def __init__(
        self,
        *,
        host: str = "127.0.0.1",
        port: int = 8707,
        workers: int = 2,
        mode: str = "reuseport",
        loader_spec: str | None = None,
        server_kwargs: dict | None = None,
        warmups: tuple = (),
        ab_experiments: tuple = (),
        restart_backoff_s: float = 0.5,
        max_restarts: int = 5,
        drain_grace_s: float = 5.0,
        ready_timeout_s: float = 120.0,
        seed: int | None = None,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if mode not in ("reuseport", "router"):
            raise ValueError("mode must be 'reuseport' or 'router'")
        if mode == "reuseport" and not hasattr(socket, "SO_REUSEPORT"):
            # Platforms without SO_REUSEPORT (or with it compiled out)
            # fall back to the router automatically.
            mode = "router"
        self.host = host
        self.port = port
        self.workers = int(workers)
        self.mode = mode
        self.loader_spec = loader_spec
        self.server_kwargs = dict(server_kwargs or {})
        self.warmups = tuple(warmups)
        self.ab_experiments = tuple(ab_experiments)
        self.restart_backoff_s = float(restart_backoff_s)
        self.max_restarts = int(max_restarts)
        self.drain_grace_s = float(drain_grace_s)
        self.ready_timeout_s = float(ready_timeout_s)
        # Jitter for restart backoff; seeded for deterministic tests.
        self._rng = random.Random(seed)
        self._ctx = multiprocessing.get_context("spawn")
        self._workers: list[_Worker] = []
        self.manager_port: int | None = None
        self._manager_server: asyncio.base_events.Server | None = None
        self._router_server: asyncio.base_events.Server | None = None
        self._placeholder: socket.socket | None = None
        self._supervisor: asyncio.Task | None = None
        self._stopping = False
        self._started_at = time.monotonic()

    # -- lifecycle ------------------------------------------------------
    async def start(self) -> None:
        """Bind the control plane (and public port), spawn every worker,
        and wait until all report ready."""
        self._manager_server = await asyncio.start_server(
            self._handle_control, "127.0.0.1", 0
        )
        self.manager_port = (
            self._manager_server.sockets[0].getsockname()[1]
        )
        if self.mode == "reuseport":
            # The placeholder joins the reuseport group without ever
            # listening: accepts only spread across *listening* sockets,
            # so it serves no traffic — it resolves port=0 to one number
            # all workers share and keeps the port ours between restarts.
            self._placeholder = socket.socket(
                socket.AF_INET, socket.SOCK_STREAM
            )
            self._placeholder.setsockopt(
                socket.SOL_SOCKET, socket.SO_REUSEPORT, 1
            )
            self._placeholder.bind((self.host, self.port))
            self.port = self._placeholder.getsockname()[1]
        else:
            self._router_server = await asyncio.start_server(
                self._handle_router, self.host, self.port
            )
            self.port = self._router_server.sockets[0].getsockname()[1]
        self._workers = [_Worker(index=i) for i in range(self.workers)]
        # Sequential spawn: model hydration is disk/CPU-bound and spawn
        # is memory-spiky; one at a time keeps small hosts stable, and
        # _spawn_worker retries boot-time deaths with backoff.
        for worker in self._workers:
            await self._spawn_worker(worker)
        self._supervisor = asyncio.get_running_loop().create_task(
            self._supervise()
        )

    async def stop(self) -> None:
        """Drain and reap every worker, then tear down the control plane."""
        self._stopping = True
        if self._supervisor is not None:
            self._supervisor.cancel()
            try:
                await self._supervisor
            except asyncio.CancelledError:
                pass
        for worker in self._workers:
            worker.stopping = True
            if worker.alive:
                worker.process.terminate()  # SIGTERM -> graceful drain
        for worker in self._workers:
            if worker.process is not None:
                await self._join(worker, timeout_s=self.drain_grace_s + 10.0)
        for server in (self._manager_server, self._router_server):
            if server is not None:
                server.close()
                await server.wait_closed()
        if self._placeholder is not None:
            self._placeholder.close()
            self._placeholder = None

    async def rolling_restart(self) -> list[dict]:
        """Replace workers one at a time with zero pool downtime.

        Each worker in turn: SIGTERM (drain: stop accepting, finish
        in-flight, exit 0), reap, respawn, wait ready, health-poll its
        admin listener.  Siblings keep serving throughout — under
        SO_REUSEPORT the kernel only assigns new connections to live
        listeners, and the router fails over by index.
        """
        events = []
        for worker in self._workers:
            worker.stopping = True
            try:
                if worker.alive:
                    worker.process.terminate()
                    await self._join(
                        worker, timeout_s=self.drain_grace_s + 10.0
                    )
                exit_code = (
                    worker.process.exitcode
                    if worker.process is not None else None
                )
                worker.attempts = 0
                worker.dead = False
                await self._spawn_worker(worker)
                worker.restarts += 1
                await self._await_healthy(worker)
                events.append({
                    "worker": worker.index,
                    "exit_code": exit_code,
                    "pid": worker.pid,
                })
            finally:
                worker.stopping = False
        return events

    # -- spawning and supervision ---------------------------------------
    def _worker_config(self, index: int) -> dict:
        return {
            "index": index,
            "host": self.host if self.mode == "reuseport" else "127.0.0.1",
            "port": self.port if self.mode == "reuseport" else 0,
            "reuse_port": self.mode == "reuseport",
            "manager_port": self.manager_port,
            "loader_spec": self.loader_spec,
            "server_kwargs": self.server_kwargs,
            "warmups": self.warmups,
            "ab_experiments": self.ab_experiments,
            "drain_grace_s": self.drain_grace_s,
            "parent_pid": os.getpid(),
        }

    async def _spawn_worker(self, worker: _Worker) -> None:
        """Start one worker and wait for its ready report, retrying
        boot-time deaths with jittered exponential backoff."""
        while True:
            worker.attempts += 1
            if worker.attempts > 1:
                delay = _backoff_delay(
                    self._rng, self.restart_backoff_s, worker.attempts - 1
                )
                await asyncio.sleep(delay)
            parent_conn, child_conn = self._ctx.Pipe(duplex=False)
            process = self._ctx.Process(
                target=_worker_entry,
                args=(self._worker_config(worker.index), child_conn),
                name=f"repro-serve-worker-{worker.index}",
                daemon=True,
            )
            process.start()
            child_conn.close()
            worker.process = process
            try:
                ready = await self._wait_ready(parent_conn, process)
            except (RuntimeError, TimeoutError) as exc:
                parent_conn.close()
                if worker.attempts > self.max_restarts:
                    worker.dead = True
                    raise RuntimeError(
                        f"worker {worker.index} failed to start after "
                        f"{worker.attempts} attempts: {exc}"
                    ) from exc
                continue
            parent_conn.close()
            worker.serve_port = ready["serve_port"]
            worker.admin_port = ready["admin_port"]
            worker.pid = ready["pid"]
            worker.started_at = time.monotonic()
            worker.dead = False
            return

    async def _wait_ready(self, conn, process) -> dict:
        deadline = time.monotonic() + self.ready_timeout_s
        while time.monotonic() < deadline:
            if conn.poll(0):
                try:
                    return conn.recv()
                except (EOFError, OSError):
                    raise RuntimeError(
                        "worker closed the ready pipe without reporting"
                    ) from None
            if process.exitcode is not None:
                raise RuntimeError(
                    f"worker died during startup (exit {process.exitcode})"
                )
            await asyncio.sleep(0.05)
        raise TimeoutError(
            f"worker not ready within {self.ready_timeout_s}s"
        )

    async def _join(self, worker: _Worker, timeout_s: float) -> None:
        deadline = time.monotonic() + timeout_s
        while worker.process.exitcode is None:
            if time.monotonic() > deadline:
                worker.process.kill()  # drain hung past its grace
                deadline = time.monotonic() + 5.0
            await asyncio.sleep(0.05)

    async def _await_healthy(self, worker: _Worker,
                             timeout_s: float = 30.0) -> None:
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            try:
                status, body = await fetch(
                    "127.0.0.1", worker.admin_port, "GET", "/health",
                    timeout_s=5.0,
                )
                if status == 200:
                    health = json.loads(body)
                    if health.get("status") in ("ok", "degraded"):
                        return
            except (OSError, asyncio.TimeoutError, ValueError):
                pass
            await asyncio.sleep(0.1)
        raise TimeoutError(
            f"worker {worker.index} did not turn healthy within {timeout_s}s"
        )

    async def _supervise(self) -> None:
        """Restart workers that die (kill -9, OOM, chaos faults)."""
        while True:
            await asyncio.sleep(0.2)
            for worker in self._workers:
                if worker.stopping or worker.dead:
                    continue
                if worker.alive:
                    if (
                        worker.attempts
                        and time.monotonic() - worker.started_at
                        > _STABLE_AFTER_S
                    ):
                        worker.attempts = 0  # survived: not a crash loop
                    continue
                if worker.process is None:
                    continue
                worker.restarts += 1
                try:
                    await self._spawn_worker(worker)
                except RuntimeError as exc:
                    print(
                        f"repro.serve.pool: giving up on worker "
                        f"{worker.index}: {exc}",
                        file=sys.stderr, flush=True,
                    )

    # -- the control plane ----------------------------------------------
    async def _handle_control(self, reader, writer) -> None:
        await self._serve_http(reader, writer, self._control_dispatch)

    async def _handle_router(self, reader, writer) -> None:
        await self._serve_http(reader, writer, self._router_dispatch)

    async def _serve_http(self, reader, writer, dispatch) -> None:
        """Minimal keep-alive HTTP loop shared by manager and router."""
        try:
            while True:
                try:
                    request = await read_request(reader)
                except HttpError as exc:
                    await write_response(
                        writer, exc.status, {"error": exc.message}, True
                    )
                    break
                if request is None:
                    break
                method, path, headers, body = request
                close_conn = headers.get("connection", "").lower() == "close"
                content_type = "application/json"
                try:
                    result = await dispatch(method, path, body)
                    status, payload = result[0], result[1]
                    if len(result) > 2:
                        content_type = result[2]
                except HttpError as exc:
                    status, payload = exc.status, {"error": exc.message}
                except Exception as exc:
                    status = 500
                    payload = {"error": f"{type(exc).__name__}: {exc}"}
                await write_response(
                    writer, status, payload, close_conn, content_type
                )
                if close_conn:
                    break
        except (asyncio.IncompleteReadError, ConnectionError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    def _live_workers(self) -> list[_Worker]:
        return [
            w for w in self._workers
            if w.alive and w.admin_port is not None
        ]

    async def _call_worker(
        self, worker: _Worker, method: str, path: str, body: bytes,
        mode: str,
    ) -> tuple[int, bytes]:
        """One manager->worker exchange with bounded retries.

        ``pool.route`` fires per attempt *before* the socket work, so an
        armed ``raise`` behaves exactly like a torn control channel and
        the retry loop is what recovers.
        """
        last_exc: Exception | None = None
        for attempt in range(1, _BROADCAST_ATTEMPTS + 1):
            try:
                faults.fire(
                    POINT_ROUTE, path=path, worker=worker.index, mode=mode,
                )
                return await fetch(
                    "127.0.0.1", worker.admin_port, method, path, body,
                    timeout_s=60.0,
                )
            except (OSError, asyncio.TimeoutError, RuntimeError) as exc:
                last_exc = exc
                if attempt < _BROADCAST_ATTEMPTS:
                    await asyncio.sleep(0.05 * attempt)
        raise ConnectionError(
            f"worker {worker.index} unreachable for {method} {path}: "
            f"{type(last_exc).__name__}: {last_exc}"
        )

    async def _broadcast(
        self, method: str, path: str, body: bytes
    ) -> tuple[list[tuple[int, int, bytes]], list[int]]:
        """Fan one control request out to every live worker.

        Returns ``(results, failed)`` where results are ``(worker_index,
        status, body)`` triples.  Sequential on purpose: a swap fan-out
        triggers a model rebuild per worker, and serializing them keeps
        peak load bounded on small hosts (control traffic is rare).
        """
        results, failed = [], []
        for worker in self._live_workers():
            try:
                status, data = await self._call_worker(
                    worker, method, path, body, mode="broadcast"
                )
                results.append((worker.index, status, data))
            except ConnectionError:
                failed.append(worker.index)
        return results, failed

    async def _control_dispatch(self, method: str, path: str, body: bytes):
        path, _query = split_query(path)
        if path in ("/swap", "/rollback"):
            if method != "POST":
                raise HttpError(405, "use POST")
            return await self._fanout_json(method, path, body)
        if path == "/ab":
            if method == "POST":
                return await self._fanout_json(method, path, body)
            if method != "GET":
                raise HttpError(405, "use GET or POST")
            return await self._first_worker_response(method, path, body)
        if path == "/stats":
            if method != "GET":
                raise HttpError(405, "use GET")
            return 200, await self._aggregate_stats()
        if path == "/metrics":
            if method != "GET":
                raise HttpError(405, "use GET")
            return await self._aggregate_metrics()
        if path == "/health":
            if method != "GET":
                raise HttpError(405, "use GET")
            return 200, await self._aggregate_health()
        raise HttpError(404, f"no pool route for {path}")

    async def _fanout_json(self, method: str, path: str, body: bytes):
        """Broadcast a mutating control op; merge the worker responses.

        Workers answer independently, so the pool reply reports them all:
        the first success's body (they agree — same store, same spec
        hash) plus per-worker status and any unreachable workers.  A
        worker that missed the fan-out serves bit-identical answers from
        its older generation and converges at its next restart or swap.
        """
        results, failed = await self._broadcast(method, path, body)
        ok = [
            (idx, json.loads(data))
            for idx, status, data in results
            if status == 200
        ]
        errors = {
            str(idx): json.loads(data).get("error", f"status {status}")
            for idx, status, data in results
            if status != 200
        }
        if not ok:
            detail = errors or {"pool": "no live workers reachable"}
            return 502, {"error": "fan-out failed", "workers": detail}
        payload = dict(ok[0][1])
        payload["pool"] = {
            "applied": [idx for idx, _ in ok],
            "failed_status": errors,
            "unreachable": failed,
        }
        return 200, payload

    async def _first_worker_response(
        self, method: str, path: str, body: bytes
    ):
        """Read-only control op answered by the first reachable worker."""
        for worker in self._live_workers():
            try:
                status, data = await self._call_worker(
                    worker, method, path, body, mode="broadcast"
                )
                return status, data, "application/json"
            except ConnectionError:
                continue
        raise HttpError(502, "no live workers reachable")

    async def _collect_worker_states(self) -> list[dict]:
        states = []
        for worker in self._live_workers():
            try:
                status, data = await self._call_worker(
                    worker, "GET", "/stats", b"", mode="broadcast"
                )
            except ConnectionError:
                continue
            if status == 200:
                states.append(json.loads(data))
        return states

    async def _aggregate_stats(self) -> dict:
        """Pooled ``/stats``: merged counters + per-worker summary."""
        worker_states = await self._collect_worker_states()
        merged = merge_states([w["state"] for w in worker_states])
        snapshot = merged.snapshot()
        snapshot["pool"] = self._pool_info()
        snapshot["workers"] = [
            {
                "worker": w["worker"],
                "draining": w["draining"],
                "requests": w["state"]["requests"],
                "batches": w["state"]["batches"],
                "models_loaded": w["models_loaded"],
            }
            for w in worker_states
        ]
        return snapshot

    async def _aggregate_metrics(self):
        """Pooled ``/metrics``: one exposition over every worker.

        Counters sum; per-model queue depths sum; the effective-delay
        gauge reports the per-model maximum (the most conservative window
        any worker is currently applying).
        """
        worker_states = await self._collect_worker_states()
        merged = merge_states([w["state"] for w in worker_states])
        queue_depths: dict[str, int] = {}
        delays: dict[str, float] = {}
        for state in worker_states:
            for key, depth in state.get("queue_depths", {}).items():
                queue_depths[key] = queue_depths.get(key, 0) + depth
            for key, delay in state.get("effective_delay_ms", {}).items():
                delays[key] = max(delays.get(key, 0.0), delay)
        text = merged.render_prometheus(
            queue_depths=queue_depths, effective_delay_ms=delays
        )
        return (
            200,
            text.encode("utf-8"),
            "text/plain; version=0.0.4; charset=utf-8",
        )

    async def _aggregate_health(self) -> dict:
        """Pool health: every worker's view plus supervision state."""
        workers = []
        worst = "ok"
        rank = {"ok": 0, "degraded": 1, "draining": 2, "restarting": 3}
        for worker in self._workers:
            if not worker.alive or worker.admin_port is None:
                entry = {"worker": worker.index, "status": "restarting"}
                if worker.dead:
                    entry["status"] = "dead"
                    worst = "degraded"
                workers.append(entry)
                worst = max(worst, "restarting", key=lambda s: rank.get(s, 1))
                continue
            try:
                status, data = await fetch(
                    "127.0.0.1", worker.admin_port, "GET", "/health",
                    timeout_s=5.0,
                )
                health = json.loads(data)
            except (OSError, asyncio.TimeoutError, ValueError):
                workers.append(
                    {"worker": worker.index, "status": "unreachable"}
                )
                worst = "degraded"
                continue
            workers.append(health)
            state = health.get("status", "degraded")
            worst = max(worst, state, key=lambda s: rank.get(s, 1))
        return {
            "status": worst,
            "workers": workers,
            "pool": self._pool_info(),
        }

    def _pool_info(self) -> dict:
        return {
            "mode": self.mode,
            "workers": self.workers,
            "alive": sum(1 for w in self._workers if w.alive),
            "restarts": sum(w.restarts for w in self._workers),
            "uptime_s": round(time.monotonic() - self._started_at, 3),
        }

    # -- router mode ----------------------------------------------------
    async def _router_dispatch(self, method: str, path: str, body: bytes):
        bare, _query = split_query(path)
        if bare in _CONTROL_PATHS:
            return await self._control_dispatch(method, path, body)
        if bare == "/health":
            if method != "GET":
                raise HttpError(405, "use GET")
            return 200, await self._aggregate_health()
        live = self._live_workers()
        if not live:
            raise HttpError(503, "no live workers")
        # Route by (dataset, format) so each model's batcher stays hot in
        # exactly one worker; requests without a key (e.g. /models) pin
        # to the first worker.  Bits are worker-agnostic, so a dead
        # target fails over to the next live index harmlessly.
        start = 0
        if bare in ("/predict", "/warmup") and body:
            try:
                payload = json.loads(body)
                dataset = payload.get("dataset", "")
                format_name = payload.get("format") or ""
                start = route_index(
                    str(dataset), str(format_name), len(self._workers)
                )
            except (ValueError, UnicodeDecodeError):
                pass  # the worker will answer 400 with the real message
        indices = {w.index: w for w in live}
        order = [
            (start + offset) % len(self._workers)
            for offset in range(len(self._workers))
        ]
        last_error: Exception | None = None
        for index in order:
            worker = indices.get(index)
            if worker is None:
                continue
            try:
                faults.fire(
                    POINT_ROUTE, path=bare, worker=index, mode="route",
                )
                status, data = await fetch(
                    "127.0.0.1", worker.serve_port, method, path, body,
                    timeout_s=120.0,
                )
                return status, data, "application/json"
            except (OSError, asyncio.TimeoutError, RuntimeError) as exc:
                last_error = exc
                continue
        raise HttpError(
            502,
            f"no worker reachable: {type(last_error).__name__}: {last_error}",
        )


# ----------------------------------------------------------------------
# Embedding and CLI entry points
# ----------------------------------------------------------------------
class PoolHandle:
    """A pool running on a background thread, with a blocking ``stop``."""

    def __init__(self, pool: WorkerPool, loop, thread, stop_event):
        self.pool = pool
        self._loop = loop
        self._thread = thread
        self._stop_event = stop_event

    @property
    def address(self) -> tuple[str, int]:
        return (self.pool.host, self.pool.port)

    def rolling_restart(self, timeout: float = 300.0) -> list[dict]:
        """Run a rolling restart from the calling thread (blocking)."""
        future = asyncio.run_coroutine_threadsafe(
            self.pool.rolling_restart(), self._loop
        )
        return future.result(timeout)

    def stop(self, timeout: float = 120.0) -> None:
        self._loop.call_soon_threadsafe(self._stop_event.set)
        self._thread.join(timeout)

    def __enter__(self) -> "PoolHandle":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()


def start_pool_in_thread(**pool_kwargs) -> PoolHandle:
    """Start a :class:`WorkerPool` on a daemon thread; wait until every
    worker is accepting (mirrors ``start_in_thread`` for one server)."""
    ready = threading.Event()
    holder: dict = {}

    async def main() -> None:
        pool = WorkerPool(**pool_kwargs)
        try:
            await pool.start()
        except Exception as exc:
            holder["error"] = exc
            ready.set()
            await pool.stop()
            return
        stop_event = asyncio.Event()
        holder["pool"] = pool
        holder["loop"] = asyncio.get_running_loop()
        holder["stop_event"] = stop_event
        ready.set()
        try:
            await stop_event.wait()
        finally:
            await pool.stop()

    def run() -> None:
        try:
            asyncio.run(main())
        except Exception as exc:  # pragma: no cover - defensive
            holder.setdefault("error", exc)
            ready.set()

    thread = threading.Thread(target=run, name="repro-serve-pool",
                              daemon=True)
    thread.start()
    ready.wait()
    if "error" in holder:
        raise holder["error"]
    return PoolHandle(
        holder["pool"], holder["loop"], thread, holder["stop_event"]
    )


async def run_pool_forever(**pool_kwargs) -> None:
    """CLI path: run the pool until interrupted; SIGHUP rolls the pool."""
    pool = WorkerPool(**pool_kwargs)
    await pool.start()
    loop = asyncio.get_running_loop()
    rolling: set[asyncio.Task] = set()
    stop = asyncio.Event()

    def roll() -> None:
        task = loop.create_task(pool.rolling_restart())
        rolling.add(task)
        task.add_done_callback(rolling.discard)

    try:
        loop.add_signal_handler(signal.SIGHUP, roll)
        # SIGTERM must reach the finally below: the default disposition
        # would kill this manager without stopping the pool, orphaning
        # the worker processes (their parent-death watchdog would catch
        # it, but a drain on our way out is the honest exit).
        for signum in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(signum, stop.set)
    except (NotImplementedError, AttributeError):  # pragma: no cover
        pass
    print(
        f"repro.serve pool listening on http://{pool.host}:{pool.port} "
        f"({pool.workers} workers, mode={pool.mode}, "
        f"control=127.0.0.1:{pool.manager_port}; SIGHUP = rolling restart)",
        flush=True,
    )
    try:
        await stop.wait()
    finally:
        await pool.stop()
