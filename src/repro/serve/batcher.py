"""Micro-batching scheduler: coalesce concurrent requests into one GEMM.

The compiled layer kernels (:mod:`repro.formats.kernels`) amortize to one
float64 GEMM per layer *per batch* — a batch-1 request pays the whole
per-call overhead for a single sample.  A :class:`MicroBatcher` turns
concurrent single requests into kernel-sized batches:

* every served model owns one batcher and one bounded :class:`asyncio.Queue`
  (backpressure: when the queue is full, ``submit`` waits, which propagates
  to the HTTP handler and ultimately to TCP);
* the worker takes the first pending request, then keeps collecting until
  the stacked batch reaches ``max_batch`` rows or the coalescing deadline
  elapses since the batch opened — a lone request is flushed at the
  deadline, a burst fills the batch immediately;
* with ``adaptive_delay`` (the default) the deadline is not a fixed
  ``max_delay_ms`` but an **EWMA-tuned effective delay** in
  ``[0, max_delay_ms]``: the batcher tracks the exponentially weighted
  inter-arrival gap of submits, waits roughly the expected time to fill a
  batch when traffic is dense, and decays toward an immediate flush when
  the gap grows past the window (sparse traffic gains no batchmates by
  waiting, so it should not pay the latency).  Timing only — no setting
  of the knob can change any served bit;
* the stacked pattern matrix is executed through
  :meth:`~repro.core.positron.PositronNetwork.predict_patterns` on an
  executor thread, in slices of at most ``max_batch`` rows (a multi-row
  request can overflow the batch; the overflow splits into further
  full-size slices).  That call rides the network's fused plan
  (:mod:`repro.formats.network`) — round-once, pattern-space ReLU, and
  the rank-argmax readout chained per layer, warmed at model load — and
  stays bit-identical to direct ``predict`` because the fused plan is
  bit-identical to the per-layer kernels.

**Bit-exactness.** Coalescing cannot change any answer: quantization is
elementwise (stacking quantized requests equals quantizing the stacked
batch), every kernel partial sum is an exact integer in float64 so the GEMM
result is independent of batch composition, and the rank-table argmax is
per-row.  Served predictions are therefore bit-identical to calling
``predict`` on each request alone — property-tested under concurrent load
in ``tests/serve/``.
"""

from __future__ import annotations

import asyncio
import math
from concurrent.futures import Executor
from dataclasses import dataclass

import numpy as np

from .. import faults
from .registry import ServedModel
from .stats import ServeStats

__all__ = [
    "MicroBatcher",
    "ServiceClosed",
    "QueueSaturated",
    "DeadlineExceeded",
]

#: Fires once per micro-batch execution, on the executor thread, before
#: any kernel work; context is ``model=<key> rows=<n>``.  ``raise`` here
#: exercises the poison-isolation retry, ``stall`` simulates a slow
#: kernel (for deadline/shed scenarios).
POINT_BATCH = faults.register_point(
    "serve.batch", "one micro-batch execution on an executor thread"
)


class ServiceClosed(RuntimeError):
    """Raised by ``submit`` once the batcher has begun shutting down."""


class QueueSaturated(RuntimeError):
    """Raised by ``submit`` when load shedding is on and the queue is at
    or past the shed threshold — the HTTP layer answers 503 +
    ``Retry-After`` instead of letting the request wait."""


class DeadlineExceeded(RuntimeError):
    """A request's deadline expired while it waited in the queue; it was
    answered 504 and its rows were never executed."""


@dataclass
class _Pending:
    """One enqueued request: quantized patterns plus its result future."""

    patterns: np.ndarray  # (rows, in) uint32
    rows: int
    future: asyncio.Future
    enqueued: float  # loop time, for queue+execute latency
    deadline: float | None = None  # absolute loop time; None = no deadline


_CLOSE = object()  # queue sentinel; FIFO order makes it drain-then-exit

#: EWMA smoothing factor for the inter-arrival gap estimator: ~the last
#: dozen arrivals dominate, so the effective delay tracks load shifts
#: within a few requests without chasing single-gap noise.
_EWMA_ALPHA = 0.25


class MicroBatcher:
    """Coalesces requests for **one** served model (models never cross-batch:
    each model's batcher owns its own queue and worker)."""

    def __init__(
        self,
        model: ServedModel,
        *,
        max_batch: int = 32,
        max_delay_ms: float = 2.0,
        queue_limit: int = 256,
        executor: Executor | None = None,
        stats: ServeStats | None = None,
        adaptive_delay: bool = True,
        shed_threshold: float | None = None,
    ):
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_delay_ms < 0:
            raise ValueError("max_delay_ms must be >= 0")
        if shed_threshold is not None and not 0.0 < shed_threshold <= 1.0:
            raise ValueError("shed_threshold must be in (0, 1]")
        self.model = model
        self.max_batch = int(max_batch)
        self.max_delay = float(max_delay_ms) / 1000.0
        self.adaptive_delay = bool(adaptive_delay)
        self.stats = stats if stats is not None else ServeStats()
        self.generation = 1  # bumped by swap_model (observability only)
        self.queue_limit = int(queue_limit)
        # Load shedding is opt-in: None keeps the original backpressure
        # behavior (full queue = submitters wait).  With a threshold f,
        # submits are refused outright once qsize reaches
        # ceil(f * queue_limit), so the server can answer 503 fast
        # instead of stacking latency onto an already-saturated queue.
        self.shed_threshold = shed_threshold
        self._shed_at = (
            None
            if shed_threshold is None
            else max(1, math.ceil(shed_threshold * queue_limit))
        )
        self._executor = executor
        self._queue: asyncio.Queue = asyncio.Queue(maxsize=queue_limit)
        self._task: asyncio.Task | None = None
        self._closing = False
        self._arrival_gap_s: float | None = None  # EWMA inter-arrival gap
        self._last_arrival_s: float | None = None

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start the worker task (requires a running event loop)."""
        if self._task is None:
            self._task = asyncio.get_running_loop().create_task(self._run())

    async def submit(
        self, patterns: np.ndarray, deadline: float | None = None
    ) -> np.ndarray:
        """Enqueue ``(rows, in)`` input patterns; await the predictions.

        Returns the ``(rows,)`` class predictions for exactly this
        request's rows.  Waits when the bounded queue is full; raises
        :class:`ServiceClosed` once shutdown has begun,
        :class:`QueueSaturated` when load shedding is active, and
        :class:`DeadlineExceeded` if ``deadline`` (absolute loop time)
        passes before the request's batch is assembled — expired rows
        are never executed.
        """
        if self._closing:
            raise ServiceClosed(f"batcher for {self.model.key} is shut down")
        if self._shed_at is not None and self._queue.qsize() >= self._shed_at:
            self.stats.record_shed()
            raise QueueSaturated(
                f"queue for {self.model.key} is saturated "
                f"({self._queue.qsize()}/{self.queue_limit}); shedding load"
            )
        patterns = np.asarray(patterns, dtype=np.uint32)
        if patterns.ndim != 2:
            raise ValueError("patterns must be 2-D (rows, features)")
        loop = asyncio.get_running_loop()
        self.start()
        now = loop.time()
        self._observe_arrival(now)
        item = _Pending(patterns, patterns.shape[0], loop.create_future(),
                        now, deadline)
        await self._queue.put(item)
        return await item.future

    async def close(self) -> None:
        """Stop accepting requests, drain everything queued, then exit.

        FIFO makes draining trivial: the sentinel is enqueued after the
        last accepted request, so by the time the worker sees it every
        pending batch has been executed and answered.
        """
        if not self._closing:
            self._closing = True
            await self._queue.put(_CLOSE)
        if self._task is not None:
            await self._task

    def swap_model(self, model: ServedModel) -> int:
        """Atomically replace the served model (hot-swap).

        The replacement must serve the same ``(dataset, format)`` key:
        requests already queued were quantized by the old model, and the
        per-format decode tables are registry-memoized, so same-key swaps
        keep every queued pattern meaningful.  The in-flight batch (if
        any) completes on the old network — ``_execute`` reads
        ``self.model`` once per batch — and every later batch runs the new
        one.  Returns the new generation number.
        """
        if model.key != self.model.key:
            raise ValueError(
                f"cannot swap {self.model.key} to {model.key}: "
                "a batcher serves exactly one (dataset, format) key"
            )
        self.model = model
        self.generation += 1
        return self.generation

    @property
    def pending(self) -> int:
        """Requests currently queued (excludes the in-flight batch)."""
        return self._queue.qsize()

    @property
    def shedding(self) -> bool:
        """Whether a submit arriving now would be shed (503)."""
        return (
            self._shed_at is not None
            and self._queue.qsize() >= self._shed_at
        )

    @property
    def saturated(self) -> bool:
        """Whether the queue is at its hard limit (submitters wait)."""
        return self._queue.qsize() >= self.queue_limit

    # -- adaptive coalescing delay --------------------------------------
    def _observe_arrival(self, now: float) -> None:
        if self._last_arrival_s is not None:
            gap = max(0.0, now - self._last_arrival_s)
            if self._arrival_gap_s is None:
                self._arrival_gap_s = gap
            else:
                self._arrival_gap_s += _EWMA_ALPHA * (
                    gap - self._arrival_gap_s
                )
        self._last_arrival_s = now

    @property
    def effective_delay(self) -> float:
        """The coalescing window (seconds) the next batch will wait.

        * no estimate yet (cold start) or adaptation disabled: the full
          ``max_delay`` — the conservative fixed-window behavior;
        * dense traffic (EWMA gap below the window): wait the expected
          time to *fill* the batch, ``gap * (max_batch - 1)``, capped at
          ``max_delay`` — a saturating burst closes the batch by count
          long before any deadline;
        * sparse traffic (EWMA gap beyond the window): batchmates are
          unlikely inside the window, so the wait decays as
          ``max_delay * (max_delay / gap)`` toward an immediate flush.

        Continuous at ``gap == max_delay`` and always in
        ``[0, max_delay]``.  This is pure scheduling — it can change when
        a batch executes, never what it computes.
        """
        if not self.adaptive_delay or self._arrival_gap_s is None:
            return self.max_delay
        gap = self._arrival_gap_s
        if gap >= self.max_delay:
            if gap <= 0.0:  # max_delay == 0 and no observed spacing
                return 0.0
            return self.max_delay * (self.max_delay / gap)
        return min(self.max_delay, gap * (self.max_batch - 1))

    @property
    def effective_delay_ms(self) -> float:
        """``effective_delay`` in milliseconds (for ``/models``/metrics)."""
        return self.effective_delay * 1000.0

    # ------------------------------------------------------------------
    async def _run(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            item = await self._queue.get()
            if item is _CLOSE:
                return
            batch = [item]
            rows = item.rows
            saw_close = False
            deadline = loop.time() + self.effective_delay
            while rows < self.max_batch:
                remaining = deadline - loop.time()
                if remaining <= 0:
                    # Deadline hit (possibly a near-zero adaptive window):
                    # still coalesce the backlog.  One zero-sleep lets
                    # already-scheduled submitters enqueue, then drain
                    # without waiting — a same-tick burst batches fully
                    # even when the window is microseconds.
                    await asyncio.sleep(0)
                    while rows < self.max_batch:
                        try:
                            nxt = self._queue.get_nowait()
                        except asyncio.QueueEmpty:
                            break
                        if nxt is _CLOSE:
                            saw_close = True
                            break
                        batch.append(nxt)
                        rows += nxt.rows
                    break
                try:
                    nxt = await asyncio.wait_for(self._queue.get(), remaining)
                except asyncio.TimeoutError:
                    continue  # drain-then-flush via the deadline branch
                if nxt is _CLOSE:
                    saw_close = True
                    break
                batch.append(nxt)
                rows += nxt.rows
            await self._execute(batch, loop)
            if saw_close:
                return

    def _predict_stack(self, network, stacked: np.ndarray):
        """Kernel-side body (executor thread): predict a stacked matrix in
        ``max_batch``-row slices.  The injection point fires here, inside
        the error boundary, so an armed fault behaves exactly like a
        kernel failure."""
        faults.fire(POINT_BATCH, model=self.model.key,
                    rows=int(stacked.shape[0]))
        cap = self.max_batch
        sizes, parts = [], []
        for start in range(0, stacked.shape[0], cap):
            chunk = stacked[start:start + cap]
            parts.append(network.predict_patterns(chunk))
            sizes.append(chunk.shape[0])
        if not parts:
            # Every coalesced request was zero-row: there is nothing
            # to predict, and ``np.concatenate([])`` would raise and
            # fail the whole batch.  Answer with an empty prediction
            # array (each zero-row caller slices an empty view).
            return np.zeros(0, dtype=np.int64), sizes
        return np.concatenate(parts), sizes

    def _expire_deadlines(self, batch: list[_Pending], loop) -> list[_Pending]:
        """Fail expired requests with 504 material; return the live rest.

        Expiry is judged once, at batch assembly: rows whose deadline has
        already passed are answered without ever touching a kernel, and
        live rows keep their place in the batch.
        """
        now = loop.time()
        live = []
        for item in batch:
            if item.deadline is not None and now > item.deadline:
                self.stats.record_deadline_expired()
                exc = DeadlineExceeded(
                    f"deadline expired after "
                    f"{(now - item.enqueued) * 1000.0:.1f}ms in queue"
                )
                exc._repro_counted = True
                if not item.future.done():
                    item.future.set_exception(exc)
            else:
                live.append(item)
        return live

    async def _execute(self, batch: list[_Pending], loop) -> None:
        batch = self._expire_deadlines(batch, loop)
        if not batch:
            return
        network = self.model.network

        def run() -> tuple[np.ndarray, list[int]]:
            # Stacking lives inside the error boundary too: a width
            # mismatch between coalesced requests (or a MemoryError) must
            # resolve the futures, never kill the worker task.
            stacked = (
                batch[0].patterns
                if len(batch) == 1
                else np.vstack([item.patterns for item in batch])
            )
            return self._predict_stack(network, stacked)

        try:
            predictions, sizes = await loop.run_in_executor(
                self._executor, run
            )
        except Exception as exc:
            if len(batch) == 1:
                # A lone request's failure is its own: propagate it.
                self.stats.record_error()
                # Mark as counted so the fan-out deliveries of this one
                # failure are not re-counted per request by the handler.
                exc._repro_counted = True
                item = batch[0]
                if not item.future.done():
                    item.future.set_exception(exc)
                return
            # Poison isolation: one bad request (or one transient fault)
            # must not fail its batchmates.  Re-execute each request
            # alone; healthy ones succeed bit-identically (batch
            # composition cannot change any answer), the poison one
            # fails by itself.
            self.stats.record_batch_retry()
            await self._execute_singly(batch, network, loop)
            return
        self._resolve(batch, predictions, sizes, loop)

    async def _execute_singly(self, batch, network, loop) -> None:
        for item in batch:
            def run_one(item=item):
                return self._predict_stack(network, item.patterns)

            try:
                predictions, sizes = await loop.run_in_executor(
                    self._executor, run_one
                )
            except Exception as exc:  # this request really is the poison
                self.stats.record_error()
                exc._repro_counted = True
                if not item.future.done():
                    item.future.set_exception(exc)
                continue
            self._resolve([item], predictions, sizes, loop)

    def _resolve(self, batch, predictions, sizes, loop) -> None:
        for size in sizes:
            self.stats.record_batch(self.model.key, size)
        offset = 0
        now = loop.time()
        for item in batch:
            result = predictions[offset:offset + item.rows]
            offset += item.rows
            if not item.future.done():  # caller cancelled/timed out: the
                item.future.set_result(result)  # request was not answered,
                self.stats.record_request(  # so it must not count as one
                    item.rows, (now - item.enqueued) * 1000.0
                )
