"""Micro-batching scheduler, asyncio binding: coalesce requests into one GEMM.

The compiled layer kernels (:mod:`repro.formats.kernels`) amortize to one
float64 GEMM per layer *per batch* — a batch-1 request pays the whole
per-call overhead for a single sample.  A :class:`MicroBatcher` turns
concurrent single requests into kernel-sized batches:

* every served model owns one batcher and one bounded :class:`asyncio.Queue`
  (backpressure: when the queue is full, ``submit`` waits, which propagates
  to the HTTP handler and ultimately to TCP);
* the worker takes the first pending request, then keeps collecting until
  the stacked batch reaches ``max_batch`` rows or the coalescing deadline
  elapses since the batch opened — a lone request is flushed at the
  deadline, a burst fills the batch immediately;
* with ``adaptive_delay`` (the default) the deadline is not a fixed
  ``max_delay_ms`` but an **EWMA-tuned effective delay** in
  ``[0, max_delay_ms]``: the batcher tracks the exponentially weighted
  inter-arrival gap of submits, waits roughly the expected time to fill a
  batch when traffic is dense, and decays toward an immediate flush when
  the gap grows past the window (sparse traffic gains no batchmates by
  waiting, so it should not pay the latency).  Timing only — no setting
  of the knob can change any served bit;
* the stacked pattern matrix is executed through
  :meth:`~repro.core.positron.PositronNetwork.predict_patterns` on an
  executor thread, in slices of at most ``max_batch`` rows (a multi-row
  request can overflow the batch; the overflow splits into further
  full-size slices).  That call rides the network's fused plan
  (:mod:`repro.formats.network`) — round-once, pattern-space ReLU, and
  the rank-argmax readout chained per layer, warmed at model load — and
  stays bit-identical to direct ``predict`` because the fused plan is
  bit-identical to the per-layer kernels.

Every scheduling *decision* — effective delay, shed threshold, deadline
expiry, slice caps, poison isolation — lives in
:class:`~repro.serve.scheduler.SchedulerPolicy` and the shared helpers in
:mod:`repro.serve.scheduler`, which also provides the loop-free
:class:`~repro.serve.scheduler.ThreadBatcher` binding used by the
process-pool worker tier.  This module is only the asyncio plumbing.

**Bit-exactness.** Coalescing cannot change any answer: quantization is
elementwise (stacking quantized requests equals quantizing the stacked
batch), every kernel partial sum is an exact integer in float64 so the GEMM
result is independent of batch composition, and the rank-table argmax is
per-row.  Served predictions are therefore bit-identical to calling
``predict`` on each request alone — property-tested under concurrent load
in ``tests/serve/``.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import Executor

import numpy as np

from .registry import ServedModel
from .scheduler import (
    _CLOSE,
    POINT_BATCH,
    DeadlineExceeded,
    PendingRequest,
    QueueSaturated,
    SchedulerPolicy,
    ServiceClosed,
    predict_in_slices,
    stack_batch,
)
from .stats import ServeStats

__all__ = [
    "MicroBatcher",
    "ServiceClosed",
    "QueueSaturated",
    "DeadlineExceeded",
    "POINT_BATCH",
]

#: Back-compat alias — the pending-request record now lives in
#: :mod:`repro.serve.scheduler`, shared by both transport bindings.
_Pending = PendingRequest


class MicroBatcher:
    """Coalesces requests for **one** served model (models never cross-batch:
    each model's batcher owns its own queue and worker)."""

    def __init__(
        self,
        model: ServedModel,
        *,
        max_batch: int = 32,
        max_delay_ms: float = 2.0,
        queue_limit: int = 256,
        executor: Executor | None = None,
        stats: ServeStats | None = None,
        adaptive_delay: bool = True,
        shed_threshold: float | None = None,
    ):
        self.policy = SchedulerPolicy(
            max_batch=max_batch,
            max_delay_ms=max_delay_ms,
            queue_limit=queue_limit,
            adaptive_delay=adaptive_delay,
            shed_threshold=shed_threshold,
        )
        self.model = model
        self.stats = stats if stats is not None else ServeStats()
        self.generation = 1  # bumped by swap_model (observability only)
        self._executor = executor
        self._queue: asyncio.Queue = asyncio.Queue(maxsize=queue_limit)
        self._task: asyncio.Task | None = None
        self._closing = False

    # -- policy mirrors (the knobs and estimator live on the policy) ------
    @property
    def max_batch(self) -> int:
        return self.policy.max_batch

    @property
    def max_delay(self) -> float:
        return self.policy.max_delay

    @property
    def queue_limit(self) -> int:
        return self.policy.queue_limit

    @property
    def adaptive_delay(self) -> bool:
        return self.policy.adaptive_delay

    @property
    def shed_threshold(self) -> float | None:
        return self.policy.shed_threshold

    @property
    def _shed_at(self) -> int | None:
        return self.policy.shed_at

    @property
    def _arrival_gap_s(self) -> float | None:
        return self.policy._arrival_gap_s

    @_arrival_gap_s.setter
    def _arrival_gap_s(self, value: float | None) -> None:
        self.policy._arrival_gap_s = value

    def _observe_arrival(self, now: float) -> None:
        self.policy.observe_arrival(now)

    @property
    def effective_delay(self) -> float:
        """The coalescing window (seconds) the next batch will wait —
        see :meth:`repro.serve.scheduler.SchedulerPolicy.effective_delay`."""
        return self.policy.effective_delay

    @property
    def effective_delay_ms(self) -> float:
        """``effective_delay`` in milliseconds (for ``/models``/metrics)."""
        return self.policy.effective_delay * 1000.0

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start the worker task (requires a running event loop)."""
        if self._task is None:
            self._task = asyncio.get_running_loop().create_task(self._run())

    async def submit(
        self, patterns: np.ndarray, deadline: float | None = None
    ) -> np.ndarray:
        """Enqueue ``(rows, in)`` input patterns; await the predictions.

        Returns the ``(rows,)`` class predictions for exactly this
        request's rows.  Waits when the bounded queue is full; raises
        :class:`ServiceClosed` once shutdown has begun,
        :class:`QueueSaturated` when load shedding is active, and
        :class:`DeadlineExceeded` if ``deadline`` (absolute loop time)
        passes before the request's batch is assembled — expired rows
        are never executed.
        """
        if self._closing:
            raise ServiceClosed(f"batcher for {self.model.key} is shut down")
        if self.policy.should_shed(self._queue.qsize()):
            self.stats.record_shed()
            raise QueueSaturated(
                f"queue for {self.model.key} is saturated "
                f"({self._queue.qsize()}/{self.queue_limit}); shedding load"
            )
        patterns = self.policy.validate_patterns(patterns)
        loop = asyncio.get_running_loop()
        self.start()
        now = loop.time()
        self.policy.observe_arrival(now)
        item = PendingRequest(patterns, patterns.shape[0],
                              loop.create_future(), now, deadline)
        await self._queue.put(item)
        return await item.future

    async def close(self) -> None:
        """Stop accepting requests, drain everything queued, then exit.

        FIFO makes draining trivial: the sentinel is enqueued after the
        last accepted request, so by the time the worker sees it every
        pending batch has been executed and answered.
        """
        if not self._closing:
            self._closing = True
            await self._queue.put(_CLOSE)
        if self._task is not None:
            await self._task

    def swap_model(self, model: ServedModel) -> int:
        """Atomically replace the served model (hot-swap).

        The replacement must serve the same ``(dataset, format)`` key:
        requests already queued were quantized by the old model, and the
        per-format decode tables are registry-memoized, so same-key swaps
        keep every queued pattern meaningful.  The in-flight batch (if
        any) completes on the old network — ``_execute`` reads
        ``self.model`` once per batch — and every later batch runs the new
        one.  Returns the new generation number.
        """
        if model.key != self.model.key:
            raise ValueError(
                f"cannot swap {self.model.key} to {model.key}: "
                "a batcher serves exactly one (dataset, format) key"
            )
        self.model = model
        self.generation += 1
        return self.generation

    @property
    def pending(self) -> int:
        """Requests currently queued (excludes the in-flight batch)."""
        return self._queue.qsize()

    @property
    def shedding(self) -> bool:
        """Whether a submit arriving now would be shed (503)."""
        return self.policy.should_shed(self._queue.qsize())

    @property
    def saturated(self) -> bool:
        """Whether the queue is at its hard limit (submitters wait)."""
        return self._queue.qsize() >= self.policy.queue_limit

    # ------------------------------------------------------------------
    async def _run(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            item = await self._queue.get()
            if item is _CLOSE:
                return
            batch = [item]
            rows = item.rows
            saw_close = False
            deadline = loop.time() + self.policy.effective_delay
            while rows < self.max_batch:
                remaining = deadline - loop.time()
                if remaining <= 0:
                    # Deadline hit (possibly a near-zero adaptive window):
                    # still coalesce the backlog.  One zero-sleep lets
                    # already-scheduled submitters enqueue, then drain
                    # without waiting — a same-tick burst batches fully
                    # even when the window is microseconds.
                    await asyncio.sleep(0)
                    while rows < self.max_batch:
                        try:
                            nxt = self._queue.get_nowait()
                        except asyncio.QueueEmpty:
                            break
                        if nxt is _CLOSE:
                            saw_close = True
                            break
                        batch.append(nxt)
                        rows += nxt.rows
                    break
                try:
                    nxt = await asyncio.wait_for(self._queue.get(), remaining)
                except asyncio.TimeoutError:
                    continue  # drain-then-flush via the deadline branch
                if nxt is _CLOSE:
                    saw_close = True
                    break
                batch.append(nxt)
                rows += nxt.rows
            await self._execute(batch, loop)
            if saw_close:
                return

    def _expire_deadlines(
        self, batch: list[PendingRequest], loop
    ) -> list[PendingRequest]:
        """Fail expired requests with 504 material; return the live rest."""
        now = loop.time()
        live, expired = self.policy.split_expired(batch, now)
        for item in expired:
            self.stats.record_deadline_expired()
            if not item.future.done():
                item.future.set_exception(self.policy.expiry_error(item, now))
        return live

    async def _execute(self, batch: list[PendingRequest], loop) -> None:
        batch = self._expire_deadlines(batch, loop)
        if not batch:
            return
        model = self.model  # read once per batch (swap atomicity)

        def run() -> tuple[np.ndarray, list[int]]:
            # Stacking lives inside the error boundary too: a width
            # mismatch between coalesced requests (or a MemoryError) must
            # resolve the futures, never kill the worker task.
            return predict_in_slices(model, stack_batch(batch),
                                     self.max_batch)

        try:
            predictions, sizes = await loop.run_in_executor(
                self._executor, run
            )
        except Exception as exc:
            if len(batch) == 1:
                # A lone request's failure is its own: propagate it.
                self.stats.record_error()
                # Mark as counted so the fan-out deliveries of this one
                # failure are not re-counted per request by the handler.
                exc._repro_counted = True
                item = batch[0]
                if not item.future.done():
                    item.future.set_exception(exc)
                return
            # Poison isolation: one bad request (or one transient fault)
            # must not fail its batchmates.  Re-execute each request
            # alone; healthy ones succeed bit-identically (batch
            # composition cannot change any answer), the poison one
            # fails by itself.
            self.stats.record_batch_retry()
            await self._execute_singly(batch, model, loop)
            return
        self._resolve(batch, predictions, sizes, loop)

    async def _execute_singly(self, batch, model, loop) -> None:
        for item in batch:
            def run_one(item=item):
                return predict_in_slices(model, item.patterns,
                                         self.max_batch)

            try:
                predictions, sizes = await loop.run_in_executor(
                    self._executor, run_one
                )
            except Exception as exc:  # this request really is the poison
                self.stats.record_error()
                exc._repro_counted = True
                if not item.future.done():
                    item.future.set_exception(exc)
                continue
            self._resolve([item], predictions, sizes, loop)

    def _resolve(self, batch, predictions, sizes, loop) -> None:
        for size in sizes:
            self.stats.record_batch(self.model.key, size)
        offset = 0
        now = loop.time()
        for item in batch:
            result = predictions[offset:offset + item.rows]
            offset += item.rows
            if not item.future.done():  # caller cancelled/timed out: the
                item.future.set_result(result)  # request was not answered,
                self.stats.record_request(  # so it must not count as one
                    item.rows, (now - item.enqueued) * 1000.0
                )
