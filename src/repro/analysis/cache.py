"""In-process and on-disk caching of expensive experiment artifacts.

Training the parent models and running exact-inference sweeps takes tens of
seconds; tests, benchmarks, and examples all share the results through this
module.  The on-disk layer is a JSON file per experiment under
``.repro_cache/`` in the working directory (delete the directory, or set
``REPRO_NO_CACHE=1``, to force recomputation).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Callable

__all__ = ["cache_dir", "cached_json", "clear_cache"]

_ENV_DISABLE = "REPRO_NO_CACHE"
_DIRNAME = ".repro_cache"


def cache_dir() -> Path:
    """Directory for cached experiment results (created on demand)."""
    root = Path(os.environ.get("REPRO_CACHE_DIR", _DIRNAME))
    root.mkdir(parents=True, exist_ok=True)
    return root


def cached_json(name: str, compute: Callable[[], Any]) -> Any:
    """Return the cached JSON value for ``name`` or compute and store it.

    Values must be JSON-serializable.  Caching is skipped entirely when the
    ``REPRO_NO_CACHE`` environment variable is set.
    """
    if os.environ.get(_ENV_DISABLE):
        return compute()
    path = cache_dir() / f"{name}.json"
    if path.exists():
        try:
            with path.open() as handle:
                return json.load(handle)
        except (json.JSONDecodeError, OSError):
            path.unlink(missing_ok=True)
    value = compute()
    tmp = path.with_suffix(".tmp")
    with tmp.open("w") as handle:
        json.dump(value, handle)
    tmp.replace(path)
    return value


def clear_cache() -> None:
    """Delete all cached experiment results."""
    root = cache_dir()
    for path in root.glob("*.json"):
        path.unlink()
