"""In-process and on-disk caching of expensive experiment artifacts.

Training the parent models and running exact-inference sweeps takes tens of
seconds; tests, benchmarks, and examples all share the results through this
module.  The on-disk layer is a JSON file per experiment under
``.repro_cache/`` in the working directory (delete the directory, or set
``REPRO_NO_CACHE=1``, to force recomputation; point ``REPRO_CACHE_DIR``
somewhere else to relocate it).

All writes are atomic: content goes to a per-writer unique temp file in the
destination directory, then a ``rename`` publishes it.  Concurrent writers
(e.g. parallel sweep workers racing on the same artifact) each hold their
own temp file, so the worst case is a duplicated write, never a torn file
or a vanished temp.
"""

from __future__ import annotations

import json
import os
import shutil
import uuid
from pathlib import Path
from typing import Any, Callable

from .. import faults

__all__ = [
    "cache_dir",
    "cache_enabled",
    "cached_json",
    "clear_cache",
    "atomic_write_json",
    "fsync_dir",
    "unique_tmp",
]

_ENV_DISABLE = "REPRO_NO_CACHE"
_DIRNAME = ".repro_cache"

#: Fires on an artifact temp file after it is fully written and synced
#: but before the rename publishes it — ``truncate``/``corrupt`` here
#: simulate the torn artifact a mid-write crash would leave behind.
POINT_PUBLISH = faults.register_point(
    "store.publish", "artifact temp file written, pre-rename"
)


def cache_enabled() -> bool:
    """Whether on-disk caching is active (``REPRO_NO_CACHE`` unset)."""
    return not os.environ.get(_ENV_DISABLE)


def cache_dir() -> Path:
    """Directory for cached experiment results (created on demand)."""
    root = Path(os.environ.get("REPRO_CACHE_DIR", _DIRNAME))
    root.mkdir(parents=True, exist_ok=True)
    return root


def unique_tmp(path: Path) -> Path:
    """A temp-file path unique to this writer, in ``path``'s directory.

    Same filesystem as the destination, so ``Path.replace`` stays atomic;
    unique per (pid, uuid), so concurrent writers never share a temp file —
    a fixed ``.tmp`` suffix would let one writer rename the file out from
    under another mid-write.
    """
    return path.with_name(f".{path.name}.{os.getpid()}.{uuid.uuid4().hex}.tmp")


def fsync_dir(path: Path) -> None:
    """fsync a directory so a just-renamed entry survives a hard kill.

    Best-effort: some filesystems (and Windows) refuse directory fsync;
    those platforms simply keep their weaker rename durability.
    """
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_json(path: Path, value: Any) -> None:
    """Atomically publish ``value`` as JSON at ``path`` (race-safe).

    The temp file is fsynced before the rename and the directory after
    it, so a power loss or SIGKILL cannot publish a truncated artifact
    under the final name.
    """
    tmp = unique_tmp(path)
    try:
        with tmp.open("w") as handle:
            json.dump(value, handle)
            handle.flush()
            os.fsync(handle.fileno())
        faults.fire(POINT_PUBLISH, path=str(tmp), artifact=str(path))
        tmp.replace(path)
        fsync_dir(path.parent)
    finally:
        tmp.unlink(missing_ok=True)


def cached_json(name: str, compute: Callable[[], Any]) -> Any:
    """Return the cached JSON value for ``name`` or compute and store it.

    Values must be JSON-serializable.  Caching is skipped entirely when the
    ``REPRO_NO_CACHE`` environment variable is set.
    """
    if not cache_enabled():
        return compute()
    path = cache_dir() / f"{name}.json"
    if path.exists():
        try:
            with path.open() as handle:
                return json.load(handle)
        except (ValueError, OSError):
            # ValueError covers JSONDecodeError and the UnicodeDecodeError
            # a corrupted byte sequence raises before JSON even parses.
            path.unlink(missing_ok=True)
    value = compute()
    atomic_write_json(path, value)
    return value


def clear_cache() -> None:
    """Delete all cached experiment results (flat JSONs and the store)."""
    root = cache_dir()
    for path in root.glob("*.json"):
        path.unlink()
    store = root / "store"
    if store.is_dir():
        shutil.rmtree(store, ignore_errors=True)
