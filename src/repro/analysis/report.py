"""Text renderers for the paper's tables and figures.

Benchmarks and examples share these so every experiment prints the same
rows/series the paper reports, in a stable plain-text form.
"""

from __future__ import annotations

import numpy as np

from .histograms import Histogram

__all__ = [
    "render_table2",
    "render_series",
    "render_histogram",
    "render_figure9",
    "render_ablation",
    "ascii_bar",
]


def ascii_bar(value: float, maximum: float, width: int = 40) -> str:
    """A proportional bar of '#' characters."""
    if maximum <= 0:
        raise ValueError("maximum must be positive")
    filled = int(round(width * max(0.0, min(1.0, value / maximum))))
    return "#" * filled


def render_table2(rows: list[dict]) -> str:
    """Table II: Deep Positron accuracy with 8-bit EMACs."""
    lines = [
        "TABLE II: Deep Positron performance on low-dimensional datasets "
        "with 8-bit EMACs",
        f"{'Dataset':<10} {'Inference':>9}  {'Posit':>8}  {'Float':>8}  "
        f"{'Fixed':>8}  {'32-bit Float':>12}",
    ]
    for row in rows:
        lines.append(
            f"{row['dataset']:<10} {row['inference_size']:>9}  "
            f"{100 * row['posit']:>7.2f}%  {100 * row['float']:>7.2f}%  "
            f"{100 * row['fixed']:>7.2f}%  {100 * row['float32']:>11.2f}%"
        )
    lines.append(
        "best configs: "
        + "; ".join(
            f"{row['dataset']}: {row['posit_config']}, {row['float_config']}, "
            f"{row['fixed_config']}"
            for row in rows
        )
    )
    return "\n".join(lines)


def render_ablation(results: list[dict]) -> str:
    """Rounding-mode ablation table: exact vs naive MAC vs truncated EMAC.

    One line per (dataset, width, config) cell; the deltas are the paper's
    Section III-A claims made quantitative (positive = the EMAC choice
    helps).
    """
    lines = [
        "Ablation: exact round-once EMAC vs round-every-MAC vs truncated EMAC",
        f"{'dataset':<10} {'config':<14} {'exact':>8} {'naive':>8} "
        f"{'trunc':>8} {'d-naive':>8} {'d-trunc':>8}",
    ]
    for cell in results:
        for row in cell["rows"]:
            lines.append(
                f"{cell['dataset']:<10} {row['label']:<14} "
                f"{100 * row['exact']:>7.2f}% {100 * row['naive']:>7.2f}% "
                f"{100 * row['truncated']:>7.2f}% "
                f"{100 * (row['exact'] - row['naive']):>7.2f}p "
                f"{100 * (row['exact'] - row['truncated']):>7.2f}p"
            )
    return "\n".join(lines)


def render_series(
    title: str,
    series: dict[str, list[tuple[float, float]]],
    x_label: str,
    y_label: str,
    y_format: str = "{:.3e}",
) -> str:
    """Generic (x, y) multi-series rendering for Figs 6-8."""
    lines = [title, f"{'family':<8} {x_label:>14} {y_label:>16}"]
    for family, points in series.items():
        for x, y in points:
            x_text = f"{x:.3f}" if isinstance(x, float) else f"{x}"
            lines.append(f"{family:<8} {x_text:>14} {y_format.format(y):>16}")
    return "\n".join(lines)


def render_figure9(series: dict[str, list[dict]]) -> str:
    """Fig. 9: average accuracy degradation vs EDP, annotated with n."""
    lines = [
        "Fig. 9: Avg. accuracy degradation (%) vs energy-delay-product",
        f"{'family':<8} {'n':>3} {'degradation %':>14} {'EDP (J*s)':>14}",
    ]
    for family, points in series.items():
        for point in points:
            lines.append(
                f"{family:<8} {point['n']:>3} "
                f"{point['avg_degradation_pct']:>14.3f} "
                f"{point['avg_edp']:>14.3e}"
            )
    return "\n".join(lines)


def render_histogram(title: str, histogram: Histogram, width: int = 40) -> str:
    """ASCII rendering of a histogram (Fig. 2 panels)."""
    counts = histogram.counts
    peak = float(counts.max()) if counts.size else 0.0
    if peak <= 0:
        raise ValueError("empty histogram")
    centers = (histogram.edges[:-1] + histogram.edges[1:]) / 2
    lines = [title]
    for center, count in zip(centers, counts):
        lines.append(
            f"{center:>7.2f} | {ascii_bar(float(count), peak, width):<{width}} "
            f"{count:.0f}"
        )
    return "\n".join(lines)
