"""Process-parallel, resumable executor for the sweep and ablation grids.

The paper's headline artifacts are full sweeps over dataset × width ×
format-config.  :func:`run_sweeps` fans the (dataset, width) task grid out
over a ``ProcessPoolExecutor``; each task evaluates all candidate configs
of its width batched through one engine pass per config
(:func:`~repro.analysis.sweep.evaluate_configs_batch`) and persists its
result individually in the content-addressed artifact store.
:func:`run_ablation` runs the Section III-A rounding-mode ablation grid
(:func:`~repro.analysis.ablation.ablation_width` cells) through the same
executor.  Two consequences:

* **Resumability** — an interrupted run leaves every finished task's
  artifact behind; the next invocation loads those and only submits the
  missing tasks.  Parent models are likewise store-backed, so resumed (or
  racing) workers *load* trained parameters instead of retraining.
* **Bit-identity** — workers execute exactly the serial
  :func:`~repro.analysis.sweep.sweep_width` code path on bit-identically
  reloaded models, so ``jobs=N`` output equals the serial output bit for
  bit (property-tested).

With ``REPRO_NO_CACHE=1`` the store is bypassed: workers return results
over the pipe only, and each worker trains its own parent model.

CLI: ``python -m repro run table2|fig9|sweep|ablation --jobs N``.  The
full guide — phases, resume semantics, environment variables — is
``docs/running-experiments.md``.
"""

from __future__ import annotations

from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Callable, Sequence

from .ablation import ABLATION_WIDTHS, ablation_task_key, ablation_width
from .store import artifact_store, store_enabled
from .sweep import (
    EXPERIMENTS,
    _table2_row,
    figure9_series,
    model_key,
    sweep_task_key,
    sweep_width,
    trained_model,
)

__all__ = [
    "SweepTask",
    "DEFAULT_DATASETS",
    "DEFAULT_WIDTHS",
    "plan_tasks",
    "run_sweeps",
    "run_table2",
    "run_fig9",
    "run_ablation",
]

DEFAULT_DATASETS: tuple[str, ...] = ("wbc", "iris", "mushroom")
DEFAULT_WIDTHS: tuple[int, ...] = (5, 6, 7, 8)

#: Progress callback: called with one human-readable line per event.
Progress = Callable[[str], None]


@dataclass(frozen=True)
class SweepTask:
    """One unit of the fan-out: a full-width sweep on one dataset."""

    dataset: str
    width: int


def plan_tasks(
    datasets: Sequence[str], widths: Sequence[int]
) -> list[SweepTask]:
    """The task grid, in deterministic (dataset-major) order."""
    for name in datasets:
        if name not in EXPERIMENTS:
            raise KeyError(f"unknown dataset '{name}'")
    for n in widths:
        if not 2 <= int(n) <= 32:
            raise ValueError(f"unsupported sweep width {n}")
    return [SweepTask(d, int(n)) for d in datasets for n in widths]


# -- worker entry points (module level: picklable under any start method) --
def _train_worker(dataset: str) -> str:
    """Train (and store) one parent model; returns the dataset name."""
    trained_model(dataset)
    return dataset


def _sweep_worker(task: SweepTask) -> tuple[SweepTask, dict]:
    """Run one sweep task; the result is also persisted to the store."""
    return task, sweep_width(task.dataset, task.width)


def _ablation_worker(task: SweepTask) -> tuple[SweepTask, dict]:
    """Run one ablation task; the result is also persisted to the store."""
    return task, ablation_width(task.dataset, task.width)


def _noop(_: str) -> None:
    return None


def _run_grid(
    tasks: list[SweepTask],
    evaluate: Callable[[str, int], dict],
    task_key: Callable[[str, int], str],
    worker: Callable[[SweepTask], tuple[SweepTask, dict]],
    jobs: int,
    progress: Progress,
) -> dict[SweepTask, dict]:
    """Shared grid executor: store-resumed, pre-trained, process-parallel.

    ``evaluate`` is the serial in-process path, ``task_key`` the store key
    of one task's artifact (resume granularity), ``worker`` the picklable
    process-pool entry point.  Sweeps and ablations differ only in those
    three ingredients.
    """
    total = len(tasks)
    results: dict[SweepTask, dict] = {}

    if jobs <= 1:
        for i, task in enumerate(tasks, 1):
            results[task] = evaluate(task.dataset, task.width)
            progress(f"[{i}/{total}] {task.dataset} n={task.width} done")
        return results

    pending: list[SweepTask] = []
    if store_enabled():
        store = artifact_store()
        for task in tasks:
            cached = store.load_result(task_key(task.dataset, task.width))
            if cached is not None:
                results[task] = cached
                progress(
                    f"[{len(results)}/{total}] {task.dataset} "
                    f"n={task.width} cached"
                )
            else:
                pending.append(task)
    else:
        pending = list(tasks)

    if pending:
        workers = min(jobs, len(pending))
        # Phase 1: make sure every parent model a pending task needs exists
        # in the store, training missing ones in parallel (one task per
        # dataset) so phase-2 workers never race to retrain the same model.
        if store_enabled():
            missing = []
            for name in dict.fromkeys(t.dataset for t in pending):
                if not store.has_model(model_key(EXPERIMENTS[name])):
                    missing.append(name)
            if missing:
                with ProcessPoolExecutor(
                    max_workers=min(workers, len(missing))
                ) as pool:
                    for name in pool.map(_train_worker, missing):
                        progress(f"trained parent model: {name}")

        # Phase 2: fan the pending tasks out.
        done_count = len(results)
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {pool.submit(worker, task): task for task in pending}
            outstanding = set(futures)
            while outstanding:
                finished, outstanding = wait(
                    outstanding, return_when=FIRST_COMPLETED
                )
                for future in finished:
                    task, value = future.result()
                    results[task] = value
                    done_count += 1
                    progress(
                        f"[{done_count}/{total}] {task.dataset} "
                        f"n={task.width} done"
                    )

    return {task: results[task] for task in tasks}


def run_sweeps(
    datasets: Sequence[str] = DEFAULT_DATASETS,
    widths: Sequence[int] = DEFAULT_WIDTHS,
    jobs: int = 1,
    progress: Progress | None = None,
) -> dict[SweepTask, dict]:
    """Execute the sweep grid, parallel over tasks, resuming from the store.

    Returns ``{task: sweep_result}`` for every task in the grid, in plan
    order.  ``jobs <= 1`` runs serially in-process (the reference path);
    ``jobs > 1`` fans pending tasks out over worker processes after a
    pre-training phase that guarantees each parent model is trained exactly
    once and then *loaded* by every task that needs it.
    """
    return _run_grid(
        plan_tasks(datasets, widths),
        sweep_width,
        sweep_task_key,
        _sweep_worker,
        jobs,
        progress or _noop,
    )


def run_ablation(
    datasets: Sequence[str] = DEFAULT_DATASETS,
    widths: Sequence[int] = ABLATION_WIDTHS,
    jobs: int = 1,
    progress: Progress | None = None,
) -> dict[SweepTask, dict]:
    """Execute the rounding-mode ablation grid through the task runner.

    Same fan-out, store-cached resume, and pre-training phase as
    :func:`run_sweeps`; each task is one
    :func:`~repro.analysis.ablation.ablation_width` cell (exact vs naive
    vs truncated accuracy for every posit candidate at that width).
    """
    return _run_grid(
        plan_tasks(datasets, widths),
        ablation_width,
        ablation_task_key,
        _ablation_worker,
        jobs,
        progress or _noop,
    )


def run_table2(
    datasets: Sequence[str] = DEFAULT_DATASETS,
    jobs: int = 1,
    progress: Progress | None = None,
) -> list[dict]:
    """Table II rows via the parallel runner (bit-identical to serial)."""
    sweeps = run_sweeps(datasets, (8,), jobs=jobs, progress=progress)
    return [_table2_row(sweeps[SweepTask(name, 8)]) for name in datasets]


def run_fig9(
    widths: Sequence[int] = DEFAULT_WIDTHS,
    datasets: Sequence[str] = DEFAULT_DATASETS,
    jobs: int = 1,
    progress: Progress | None = None,
) -> dict[str, list[dict]]:
    """Fig. 9 series via the parallel runner (bit-identical to serial)."""
    sweeps = run_sweeps(datasets, widths, jobs=jobs, progress=progress)
    lookup = {(t.dataset, t.width): v for t, v in sweeps.items()}
    return figure9_series(tuple(widths), tuple(datasets), sweeps=lookup)
