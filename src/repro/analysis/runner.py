"""Process-parallel, resumable executor for the sweep and ablation grids.

The paper's headline artifacts are full sweeps over dataset × width ×
format-config.  :func:`run_sweeps` fans the (dataset, width) task grid out
over a ``ProcessPoolExecutor``; each task evaluates all candidate configs
of its width batched through one engine pass per config
(:func:`~repro.analysis.sweep.evaluate_configs_batch`) and persists its
result individually in the content-addressed artifact store.
:func:`run_ablation` runs the Section III-A rounding-mode ablation grid
(:func:`~repro.analysis.ablation.ablation_width` cells) through the same
executor.  Two consequences:

* **Resumability** — an interrupted run leaves every finished task's
  artifact behind; the next invocation loads those and only submits the
  missing tasks.  Parent models are likewise store-backed, so resumed (or
  racing) workers *load* trained parameters instead of retraining.
* **Bit-identity** — workers execute exactly the serial
  :func:`~repro.analysis.sweep.sweep_width` code path on bit-identically
  reloaded models, so ``jobs=N`` output equals the serial output bit for
  bit (property-tested).

With ``REPRO_NO_CACHE=1`` the store is bypassed: workers return results
over the pipe only, and each worker trains its own parent model.

CLI: ``python -m repro run table2|fig9|sweep|ablation --jobs N``.  The
full guide — phases, resume semantics, environment variables — is
``docs/running-experiments.md``.
"""

from __future__ import annotations

import random
import shutil
import tempfile
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Sequence

from .. import faults
from .ablation import ABLATION_WIDTHS, ablation_task_key, ablation_width
from .store import artifact_store, store_enabled
from .sweep import (
    EXPERIMENTS,
    _table2_row,
    figure9_series,
    model_key,
    sweep_task_key,
    sweep_width,
    trained_model,
)

__all__ = [
    "SweepTask",
    "TaskFailure",
    "GridQuarantine",
    "DEFAULT_DATASETS",
    "DEFAULT_WIDTHS",
    "DEFAULT_MAX_ATTEMPTS",
    "plan_tasks",
    "run_sweeps",
    "run_table2",
    "run_fig9",
    "run_ablation",
]

#: Attempts (first try included) before a task is quarantined.
DEFAULT_MAX_ATTEMPTS = 3

#: Base of the exponential backoff between retry rounds, in seconds.
DEFAULT_RETRY_BACKOFF_S = 0.5

#: Fires at the start of one grid task inside a pool worker; context is
#: ``task=<dataset>-<width>``.  ``kill`` here exercises the
#: BrokenProcessPool recovery path, ``raise`` the task-retry path.
POINT_TASK = faults.register_point(
    "runner.task", "start of one grid task in a pool worker"
)

DEFAULT_DATASETS: tuple[str, ...] = ("wbc", "iris", "mushroom")
DEFAULT_WIDTHS: tuple[int, ...] = (5, 6, 7, 8)

#: Progress callback: called with one human-readable line per event.
Progress = Callable[[str], None]


@dataclass(frozen=True)
class SweepTask:
    """One unit of the fan-out: a full-width sweep on one dataset."""

    dataset: str
    width: int

    @property
    def label(self) -> str:
        return f"{self.dataset}-{self.width}"


@dataclass(frozen=True)
class TaskFailure:
    """One quarantined task: what failed, how often, and why."""

    task: SweepTask
    attempts: int
    error: str

    def as_dict(self) -> dict:
        return {
            "dataset": self.task.dataset,
            "width": self.task.width,
            "attempts": self.attempts,
            "error": self.error,
        }


class GridQuarantine(RuntimeError):
    """Raised when a grid finishes with poison tasks quarantined.

    Every healthy task's result is still computed (and persisted to the
    store) before this is raised; ``results`` carries them and ``report``
    lists the quarantined tasks with their attempt counts and last
    errors, so a caller can salvage the partial grid.
    """

    def __init__(self, failures: list[TaskFailure],
                 results: dict["SweepTask", dict]):
        self.failures = failures
        self.results = results
        names = ", ".join(f.task.label for f in failures)
        super().__init__(
            f"{len(failures)} task(s) quarantined after repeated "
            f"failures: {names}"
        )

    @property
    def report(self) -> list[dict]:
        return [failure.as_dict() for failure in self.failures]


def plan_tasks(
    datasets: Sequence[str], widths: Sequence[int]
) -> list[SweepTask]:
    """The task grid, in deterministic (dataset-major) order."""
    for name in datasets:
        if name not in EXPERIMENTS:
            raise KeyError(f"unknown dataset '{name}'")
    for n in widths:
        if not 2 <= int(n) <= 32:
            raise ValueError(f"unsupported sweep width {n}")
    return [SweepTask(d, int(n)) for d in datasets for n in widths]


# -- worker entry points (module level: picklable under any start method) --
def _train_worker(dataset: str) -> str:
    """Train (and store) one parent model; returns the dataset name."""
    trained_model(dataset)
    return dataset


def _sweep_worker(task: SweepTask) -> tuple[SweepTask, dict]:
    """Run one sweep task; the result is also persisted to the store."""
    return task, sweep_width(task.dataset, task.width)


def _ablation_worker(task: SweepTask) -> tuple[SweepTask, dict]:
    """Run one ablation task; the result is also persisted to the store."""
    return task, ablation_width(task.dataset, task.width)


def _guarded_worker(
    worker: Callable[[SweepTask], tuple[SweepTask, dict]],
    task: SweepTask,
    journal_dir: str,
) -> tuple[SweepTask, str, object]:
    """Pool entry point that never lets a *task* error break the pool.

    Returns ``(task, "ok", result)`` or ``(task, "error", message)`` —
    exceptions become values, so only a process death (crash, OOM kill,
    injected ``kill``) surfaces as ``BrokenProcessPool`` in the parent.
    A journal marker brackets the attempt: present-without-artifact after
    a pool crash means *this* task is a suspect and its attempt counts.
    """
    marker = Path(journal_dir) / task.label
    try:
        marker.write_text(str(task))
    except OSError:
        marker = None
    try:
        faults.fire(POINT_TASK, task=task.label)
        _, value = worker(task)
        return task, "ok", value
    except Exception as exc:  # noqa: BLE001 — reported, not swallowed
        return task, "error", f"{type(exc).__name__}: {exc}"
    finally:
        if marker is not None:
            marker.unlink(missing_ok=True)


def _noop(_: str) -> None:
    return None


def _backoff_delay(rng: random.Random, base_s: float, attempt: int) -> float:
    """Exponential backoff with jitter: ``base * 2^(attempt-1) * [0.5, 1.5)``."""
    return base_s * (2 ** max(0, attempt - 1)) * (0.5 + rng.random())


def _pretrain_parents(
    pending: list[SweepTask], jobs: int, progress: Progress,
) -> None:
    """Phase 1: train missing parent models in parallel, crash-tolerant.

    A pool crash here is non-fatal — any model still missing is simply
    trained on demand by the phase-2 worker that first needs it (the
    store makes the duplicate-training race benign, just slower).
    """
    store = artifact_store()
    missing = [
        name
        for name in dict.fromkeys(t.dataset for t in pending)
        if not store.has_model(model_key(EXPERIMENTS[name]))
    ]
    if not missing:
        return
    try:
        with ProcessPoolExecutor(
            max_workers=min(jobs, len(missing))
        ) as pool:
            for name in pool.map(_train_worker, missing):
                progress(f"trained parent model: {name}")
    except BrokenProcessPool:
        progress(
            "pre-training pool crashed; remaining parents will be "
            "trained on demand by sweep workers"
        )


def _run_grid(
    tasks: list[SweepTask],
    evaluate: Callable[[str, int], dict],
    task_key: Callable[[str, int], str],
    worker: Callable[[SweepTask], tuple[SweepTask, dict]],
    jobs: int,
    progress: Progress,
    max_attempts: int = DEFAULT_MAX_ATTEMPTS,
    retry_backoff_s: float = DEFAULT_RETRY_BACKOFF_S,
) -> dict[SweepTask, dict]:
    """Shared grid executor: store-resumed, pre-trained, process-parallel,
    and self-healing.

    ``evaluate`` is the serial in-process path, ``task_key`` the store key
    of one task's artifact (resume granularity), ``worker`` the picklable
    process-pool entry point.  Sweeps and ablations differ only in those
    three ingredients.

    Failure policy (both serial and parallel): a task that raises is
    retried with exponential backoff + jitter; after ``max_attempts``
    attempts it is quarantined and the rest of the grid still completes,
    after which :class:`GridQuarantine` reports the casualties.  In the
    parallel path a dead worker process additionally breaks the pool; the
    runner rebuilds the pool, reloads any artifacts that were persisted
    before the crash, and charges an attempt only to the tasks the
    journal implicates — innocent batchmates are resubmitted for free.
    """
    if max_attempts < 1:
        raise ValueError("max_attempts must be >= 1")
    total = len(tasks)
    results: dict[SweepTask, dict] = {}
    attempts: dict[SweepTask, int] = {}
    failures: dict[SweepTask, TaskFailure] = {}
    rng = random.Random(20190319)

    def quarantine(task: SweepTask, error: str) -> None:
        failures[task] = TaskFailure(task, attempts[task], error)
        progress(
            f"quarantined {task.label} after {attempts[task]} "
            f"attempt(s): {error}"
        )

    def finish() -> dict[SweepTask, dict]:
        if failures:
            ordered = [failures[t] for t in tasks if t in failures]
            raise GridQuarantine(
                ordered, {t: results[t] for t in tasks if t in results}
            )
        return {task: results[task] for task in tasks}

    if jobs <= 1:
        done = 0
        for task in tasks:
            while True:
                attempts[task] = attempts.get(task, 0) + 1
                try:
                    results[task] = evaluate(task.dataset, task.width)
                except Exception as exc:  # noqa: BLE001 — retried/reported
                    error = f"{type(exc).__name__}: {exc}"
                    if attempts[task] >= max_attempts:
                        quarantine(task, error)
                        break
                    delay = _backoff_delay(
                        rng, retry_backoff_s, attempts[task]
                    )
                    progress(
                        f"retrying {task.label} (attempt "
                        f"{attempts[task] + 1}/{max_attempts}): {error}"
                    )
                    time.sleep(delay)
                else:
                    done += 1
                    progress(
                        f"[{done}/{total}] {task.dataset} "
                        f"n={task.width} done"
                    )
                    break
        return finish()

    pending: list[SweepTask] = []
    store = artifact_store()
    if store_enabled():
        for task in tasks:
            cached = store.load_result(task_key(task.dataset, task.width))
            if cached is not None:
                results[task] = cached
                progress(
                    f"[{len(results)}/{total}] {task.dataset} "
                    f"n={task.width} cached"
                )
            else:
                pending.append(task)
    else:
        pending = list(tasks)

    if pending and store_enabled():
        _pretrain_parents(pending, jobs, progress)

    # Phase 2: fan pending tasks out, round by round.  One round = one
    # pool; a crashed pool ends the round early and the survivors' tasks
    # roll into the next round's pending set.
    journal_dir = tempfile.mkdtemp(prefix="repro-grid-journal-")
    try:
        retry_round = 0
        while pending:
            round_tasks = pending
            pending = []
            errored: list[tuple[SweepTask, str]] = []
            crashed: list[SweepTask] = []
            workers = min(jobs, len(round_tasks))
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = {
                    pool.submit(_guarded_worker, worker, task, journal_dir):
                    task
                    for task in round_tasks
                }
                outstanding = set(futures)
                while outstanding:
                    finished, outstanding = wait(
                        outstanding, return_when=FIRST_COMPLETED
                    )
                    for future in finished:
                        task = futures[future]
                        try:
                            _, status, value = future.result()
                        except BrokenProcessPool:
                            crashed.append(task)
                            continue
                        if status == "ok":
                            results[task] = value
                            progress(
                                f"[{len(results)}/{total}] {task.dataset} "
                                f"n={task.width} done"
                            )
                        else:
                            errored.append((task, str(value)))

            # A task that raised (without killing its process) is always
            # charged an attempt.
            for task, error in errored:
                attempts[task] = attempts.get(task, 0) + 1
                if attempts[task] >= max_attempts:
                    quarantine(task, error)
                else:
                    pending.append(task)

            if crashed:
                progress(
                    f"worker pool crashed; rebuilding "
                    f"({len(crashed)} task(s) interrupted)"
                )
                # Salvage results persisted before the crash, then use
                # the journal to tell suspects (attempt started, no
                # artifact) from innocent batchmates (free resubmit).
                suspects = []
                innocents = []
                for task in crashed:
                    if store_enabled():
                        cached = store.load_result(
                            task_key(task.dataset, task.width)
                        )
                        if cached is not None:
                            results[task] = cached
                            progress(
                                f"[{len(results)}/{total}] {task.dataset} "
                                f"n={task.width} recovered from store"
                            )
                            continue
                    if (Path(journal_dir) / task.label).exists():
                        suspects.append(task)
                    else:
                        innocents.append(task)
                if not suspects:
                    # The journal implicated nobody (e.g. death before
                    # the marker landed): charge everyone so a repeat
                    # killer cannot respawn the pool forever.
                    suspects, innocents = innocents, []
                for task in suspects:
                    attempts[task] = attempts.get(task, 0) + 1
                    if attempts[task] >= max_attempts:
                        quarantine(task, "worker process died")
                    else:
                        pending.append(task)
                pending.extend(innocents)
                for task in crashed:
                    (Path(journal_dir) / task.label).unlink(missing_ok=True)

            if pending and (errored or crashed):
                retry_round += 1
                delay = _backoff_delay(rng, retry_backoff_s, retry_round)
                progress(
                    f"retrying {len(pending)} task(s) in {delay:.2f}s "
                    f"(round {retry_round})"
                )
                time.sleep(delay)
    finally:
        shutil.rmtree(journal_dir, ignore_errors=True)

    return finish()


def run_sweeps(
    datasets: Sequence[str] = DEFAULT_DATASETS,
    widths: Sequence[int] = DEFAULT_WIDTHS,
    jobs: int = 1,
    progress: Progress | None = None,
    max_attempts: int = DEFAULT_MAX_ATTEMPTS,
    retry_backoff_s: float = DEFAULT_RETRY_BACKOFF_S,
) -> dict[SweepTask, dict]:
    """Execute the sweep grid, parallel over tasks, resuming from the store.

    Returns ``{task: sweep_result}`` for every task in the grid, in plan
    order.  ``jobs <= 1`` runs serially in-process (the reference path);
    ``jobs > 1`` fans pending tasks out over worker processes after a
    pre-training phase that guarantees each parent model is trained exactly
    once and then *loaded* by every task that needs it.  Crashed workers
    are retried (``max_attempts`` with exponential backoff); tasks that
    keep failing are quarantined into a :class:`GridQuarantine` report
    after the rest of the grid completes.
    """
    return _run_grid(
        plan_tasks(datasets, widths),
        sweep_width,
        sweep_task_key,
        _sweep_worker,
        jobs,
        progress or _noop,
        max_attempts=max_attempts,
        retry_backoff_s=retry_backoff_s,
    )


def run_ablation(
    datasets: Sequence[str] = DEFAULT_DATASETS,
    widths: Sequence[int] = ABLATION_WIDTHS,
    jobs: int = 1,
    progress: Progress | None = None,
    max_attempts: int = DEFAULT_MAX_ATTEMPTS,
    retry_backoff_s: float = DEFAULT_RETRY_BACKOFF_S,
) -> dict[SweepTask, dict]:
    """Execute the rounding-mode ablation grid through the task runner.

    Same fan-out, store-cached resume, pre-training phase, and
    retry/quarantine policy as :func:`run_sweeps`; each task is one
    :func:`~repro.analysis.ablation.ablation_width` cell (exact vs naive
    vs truncated accuracy for every posit candidate at that width).
    """
    return _run_grid(
        plan_tasks(datasets, widths),
        ablation_width,
        ablation_task_key,
        _ablation_worker,
        jobs,
        progress or _noop,
        max_attempts=max_attempts,
        retry_backoff_s=retry_backoff_s,
    )


def run_table2(
    datasets: Sequence[str] = DEFAULT_DATASETS,
    jobs: int = 1,
    progress: Progress | None = None,
    max_attempts: int = DEFAULT_MAX_ATTEMPTS,
    retry_backoff_s: float = DEFAULT_RETRY_BACKOFF_S,
) -> list[dict]:
    """Table II rows via the parallel runner (bit-identical to serial)."""
    sweeps = run_sweeps(
        datasets, (8,), jobs=jobs, progress=progress,
        max_attempts=max_attempts, retry_backoff_s=retry_backoff_s,
    )
    return [_table2_row(sweeps[SweepTask(name, 8)]) for name in datasets]


def run_fig9(
    widths: Sequence[int] = DEFAULT_WIDTHS,
    datasets: Sequence[str] = DEFAULT_DATASETS,
    jobs: int = 1,
    progress: Progress | None = None,
    max_attempts: int = DEFAULT_MAX_ATTEMPTS,
    retry_backoff_s: float = DEFAULT_RETRY_BACKOFF_S,
) -> dict[str, list[dict]]:
    """Fig. 9 series via the parallel runner (bit-identical to serial)."""
    sweeps = run_sweeps(
        datasets, widths, jobs=jobs, progress=progress,
        max_attempts=max_attempts, retry_backoff_s=retry_backoff_s,
    )
    lookup = {(t.dataset, t.width): v for t, v in sweeps.items()}
    return figure9_series(tuple(widths), tuple(datasets), sweeps=lookup)
