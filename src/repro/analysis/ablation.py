"""Ablation studies of the EMAC design choices, on the compiled kernels.

The paper's EMAC defers rounding until a whole dot product has been
accumulated (Section III-A) and rounds with round-to-nearest-even
(Section III-A, "recommended by IEEE-754 and the posit standard").  Two
ablations quantify those choices:

* **naive MAC** — round back to the n-bit format after *every*
  multiply-accumulate, the behaviour of a chain of ordinary low-precision
  FMA units;
* **truncated EMAC** — accumulate exactly but truncate (round toward zero)
  instead of RNE at the output stage.

Both run the same Deep Positron networks as the main sweeps, so the deltas
are directly comparable to Table II — and both now run *vectorized*:

* the truncated EMAC is simply the network recompiled with
  ``rounding_mode="rtz"`` (:meth:`PositronNetwork.with_rounding_mode`), so
  it rides the same stacked digit-plane GEMM kernels as the main sweeps;
* the naive MAC replaces its per-step ``quantize∘decode∘quantize`` with a
  registry-memoized pattern-domain **product table** — a ``(2**n, 2**n)``
  uint32 gather holding ``round(w · a)`` for every pattern pair — plus the
  backends' sorted-boundary ``searchsorted`` quantizer for the add-round,
  vectorized over ``(batch, out)``; only the (inherently sequential)
  fan-in recurrence remains a Python loop.

The seed scalar paths are retained as ``naive_forward_reference`` and
``truncated_forward_reference``: they are the property-test oracles the
vectorized paths are bit-identical to, and the baselines of the
``check_ablation_regression`` speedup guard.

:func:`ablation_width` evaluates one ``(dataset, width)`` cell of the full
ablation grid — exact/naive/truncated accuracy for every posit sweep
candidate — persisting results in the content-addressed store (keys cover
the rounding modes and the product-table shape); the parallel runner fans
the grid out as ``python -m repro run ablation --jobs N``.
"""

from __future__ import annotations

from fractions import Fraction

import numpy as np

from .. import formats
from ..core.positron import PositronNetwork, scalar_emac_for
from ..core.vector import engine_for
from ..nn.quantize import candidate_configs, quantize_nearest
from .store import artifact_store, content_key, store_enabled
from .sweep import EXPERIMENTS, model_key, trained_model

__all__ = [
    "naive_product_table",
    "naive_forward",
    "naive_forward_reference",
    "naive_accuracy",
    "truncated_forward",
    "truncated_forward_reference",
    "truncated_accuracy",
    "ablation_task_key",
    "ablation_width",
    "ablation_table",
    "ABLATION_WIDTHS",
]

#: Widths of the ablation grid (the paper's deployment range).
ABLATION_WIDTHS: tuple[int, ...] = (5, 6, 7, 8)

#: Product tables are dense ``(2**n, 2**n)`` gathers; beyond this width the
#: quadratic table stops paying for itself (and stops fitting in cache).
_MAX_TABLE_WIDTH = 12


def _dequantize(fmt, patterns: np.ndarray) -> np.ndarray:
    return engine_for(fmt).decode_values(patterns)


# ----------------------------------------------------------------------
# Naive MAC (round after every multiply-accumulate)
# ----------------------------------------------------------------------
def naive_product_table(backend) -> tuple[np.ndarray, np.ndarray]:
    """``(values, products)`` for the pattern-domain naive-MAC recurrence.

    ``values[p]`` is pattern ``p`` decoded to float64 (invalid patterns
    pinned to 0 — the datapath never sees them); ``products[w, a]`` is the
    pattern of ``round(value[w] * value[a])``, i.e. one whole
    quantize∘multiply step as a single indexed gather.  Memoized on the
    registry-cached backend, so every ablation cell, pool worker, and
    benchmark in a process shares one table per format.
    """
    if backend.width > _MAX_TABLE_WIDTH:
        raise ValueError(
            f"naive product table for {backend.name} would need "
            f"2**{2 * backend.width} entries; widths above "
            f"{_MAX_TABLE_WIDTH} bits are not supported"
        )

    def build():
        patterns = np.arange(1 << backend.width, dtype=np.uint32)
        values = backend.decode_batch(patterns)
        values = np.where(np.isfinite(values), values, 0.0)
        products = backend.quantize_batch(values[:, None] * values[None, :])
        return values, products.astype(np.uint32)

    return backend._memo("_naive_product_table", build)


def naive_forward(network: PositronNetwork, inputs: np.ndarray) -> np.ndarray:
    """Forward pass with rounding after every MAC (the EMAC's antithesis).

    Uses the same quantized parameters as ``network`` but a sequential
    ``acc = round(acc + round(w * a))`` recurrence per neuron, evaluated in
    pattern space: the product round is one gather from the memoized
    product table, the add-round one decode-gather + add + batched
    sorted-boundary quantize — both vectorized over every (sample, neuron)
    pair at once.  Bit-identical to :func:`naive_forward_reference`.
    """
    backend = formats.backend_for(network.fmt)
    values, products = naive_product_table(backend)
    engine = network.engine
    current = engine.quantize(np.asarray(inputs, dtype=np.float64))
    if current.ndim == 1:
        current = current[None, :]
    batch = current.shape[0]
    for layer in network.layers:
        weights = layer.weights.astype(np.int64)  # (out, in)
        # Bias preloaded, like the EMAC.
        acc = np.broadcast_to(
            layer.bias.astype(np.int64), (batch, layer.out_features)
        ).copy()
        cur = current.astype(np.int64)
        for i in range(layer.in_features):
            prod = products[weights[None, :, i], cur[:, i, None]]  # (batch, out)
            acc = backend.quantize_batch(values[acc] + values[prod]).astype(
                np.int64
            )
        out = acc.astype(np.uint32)
        if layer.activation == "relu":
            out = engine.relu(out)
        current = out
    return current


def naive_forward_reference(
    network: PositronNetwork, inputs: np.ndarray
) -> np.ndarray:
    """Seed per-feature naive-MAC loop, retained as the bit-exact oracle.

    One ``quantize∘decode∘quantize`` round-trip through float64 per input
    feature; :func:`naive_forward` must (and, property-tested, does) match
    it bit for bit.
    """
    fmt = network.fmt
    engine = network.engine
    current = engine.quantize(np.asarray(inputs, dtype=np.float64))
    for layer in network.layers:
        w_val = _dequantize(fmt, layer.weights)  # (out, in)
        b_val = _dequantize(fmt, layer.bias)  # (out,)
        x_val = _dequantize(fmt, current)  # (batch, in)
        batch = x_val.shape[0]
        acc = np.tile(b_val, (batch, 1))  # bias preloaded, like the EMAC
        for i in range(x_val.shape[1]):
            product = x_val[:, i : i + 1] * w_val[None, :, i]
            product = _dequantize(fmt, quantize_nearest(fmt, product))
            acc = _dequantize(fmt, quantize_nearest(fmt, acc + product))
        out = quantize_nearest(fmt, acc)
        if layer.activation == "relu":
            out = engine.relu(out)
        current = out
    return current


def naive_accuracy(
    network: PositronNetwork, inputs: np.ndarray, labels: np.ndarray
) -> float:
    """Classification accuracy of the naive rounded-MAC forward pass.

    Readout argmaxes the output patterns through the format's monotone
    rank table — the same pattern-space readout as
    :meth:`PositronNetwork.predict_patterns`, applied to the naive pass's
    output.
    """
    out = naive_forward(network, inputs)
    ranks = formats.backend_for(network.fmt).rank_table()
    predicted = np.argmax(ranks[out.astype(np.int64)], axis=1)
    return float(np.mean(predicted == np.asarray(labels)))


# ----------------------------------------------------------------------
# Truncated EMAC (exact accumulation, round-toward-zero output stage)
# ----------------------------------------------------------------------
def truncated_forward(
    network: PositronNetwork, inputs: np.ndarray
) -> np.ndarray:
    """Batched forward pass through EMACs whose final rounding truncates.

    Exact accumulation is kept (this isolates the *rounding mode* choice);
    only the quire -> output conversion changes from RNE to round-toward-
    zero.  Runs the same compiled digit-plane GEMM kernels as the main
    sweeps via :meth:`PositronNetwork.with_rounding_mode`; bit-identical to
    :func:`truncated_forward_reference`.
    """
    twin = network.with_rounding_mode("rtz")
    patterns = twin.engine.quantize(np.asarray(inputs, dtype=np.float64))
    return twin.forward_patterns(patterns)


def _truncate_to_format(fmt, value: Fraction) -> int:
    """Round ``value`` toward zero to the nearest format pattern."""
    return formats.backend_for(fmt).truncate_scalar(value)


def truncated_forward_reference(
    network: PositronNetwork, sample: np.ndarray
) -> list[int]:
    """One sample through scalar EMACs with truncating output stages.

    The retained oracle for :func:`truncated_forward`: exact ``Fraction``
    accumulation per neuron, rounded toward zero by ``truncate_scalar``.
    ReLU is applied table-wise on the whole layer output (the seed version
    built a 1-element array per neuron).
    """
    fmt = network.fmt
    engine = network.engine
    patterns = [int(p) for p in engine.quantize(np.asarray(sample, dtype=np.float64))]
    emac = scalar_emac_for(fmt)
    for layer in network.layers:
        outputs = []
        for o in range(layer.out_features):
            emac.reset(int(layer.bias[o]))
            for w, a in zip(layer.weights[o], patterns):
                emac.step(int(w), int(a))
            exact = emac.accumulator_value()
            outputs.append(_truncate_to_format(fmt, exact))
        if layer.activation == "relu":
            relu = engine.relu(np.asarray(outputs, dtype=np.uint32))
            outputs = [int(b) for b in relu]
        patterns = outputs
    return patterns


def truncated_accuracy(
    network: PositronNetwork, inputs: np.ndarray, labels: np.ndarray
) -> float:
    """Accuracy with truncating (round-toward-zero) output stages.

    The rtz twin is a full :class:`PositronNetwork`, so this is simply its
    ``predict`` (quantize, compiled rtz kernels, rank-table readout)
    against the labels.
    """
    twin = network.with_rounding_mode("rtz")
    return float(np.mean(twin.predict(inputs) == np.asarray(labels)))


# ----------------------------------------------------------------------
# The ablation grid (runner + store integration)
# ----------------------------------------------------------------------
def _ablation_configs(n: int):
    """The grid's configs at width ``n``: the posit sweep candidates.

    The rounding-mode ablations are posit studies in the paper (the quire
    and its RNE output stage are posit-standard mandates); the es knob
    comes from the same registry hook as the accuracy sweeps.
    """
    return [c for c in candidate_configs(n) if c.family == "posit"]


def ablation_task_key(dataset_name: str, n: int) -> str:
    """Content key of one (dataset, width) ablation task.

    Covers the model key (spec + hyperparameters), the candidate config
    labels, the rounding modes compared, and the product-table shape, so
    changing any ingredient of the comparison invalidates exactly the
    affected artifacts.
    """
    if dataset_name not in EXPERIMENTS:
        raise KeyError(f"unknown dataset '{dataset_name}'")
    labels = [config.label for config in _ablation_configs(n)]
    return content_key(
        {
            "kind": "ablation",
            "model": model_key(EXPERIMENTS[dataset_name]),
            "n": n,
            "configs": labels,
            "modes": ["rne", "rtz", "naive"],
            "product_table": [1 << n, 1 << n],
        }
    )


def _ablation_width_uncached(dataset_name: str, n: int) -> dict:
    tm = trained_model(dataset_name)
    weights, biases = tm.model.export_params()
    test_x = np.asarray(tm.dataset.test_x, dtype=np.float64)
    labels = np.asarray(tm.dataset.test_y)
    rows = []
    for config in _ablation_configs(n):
        network = PositronNetwork.from_float_params(config.fmt, weights, biases)
        rows.append(
            {
                "label": config.label,
                "format": config.name,
                "exact": float(np.mean(network.predict(test_x) == labels)),
                "naive": naive_accuracy(network, test_x, labels),
                "truncated": truncated_accuracy(network, test_x, labels),
            }
        )
    return {
        "dataset": dataset_name,
        "n": n,
        "float32_accuracy": tm.float32_accuracy,
        "rows": rows,
    }


def ablation_width(dataset_name: str, n: int) -> dict:
    """One (dataset, width) cell of the ablation grid (store-cached).

    For every posit candidate config at width ``n``: test accuracy of the
    exact round-once EMAC, the naive round-every-MAC recurrence, and the
    truncated (RTZ) EMAC — all through the vectorized paths.  Persisted
    individually in the content-addressed store; this is the resume
    granularity of ``python -m repro run ablation``.
    """
    if not store_enabled():
        return _ablation_width_uncached(dataset_name, n)
    store = artifact_store()
    key = ablation_task_key(dataset_name, n)
    cached = store.load_result(key)
    if cached is not None:
        return cached
    value = _ablation_width_uncached(dataset_name, n)
    store.save_result(key, value)
    return value


def ablation_table(
    datasets: tuple[str, ...] = ("wbc", "iris", "mushroom"),
    widths: tuple[int, ...] = ABLATION_WIDTHS,
) -> list[dict]:
    """The full ablation grid, serially (the runner parallelizes this)."""
    return [ablation_width(name, n) for name in datasets for n in widths]
