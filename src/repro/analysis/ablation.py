"""Ablation studies of the EMAC design choices.

The paper's EMAC defers rounding until a whole dot product has been
accumulated (Section III-A) and rounds with round-to-nearest-even
(Section III-A, "recommended by IEEE-754 and the posit standard").  Two
ablations quantify those choices:

* **naive MAC** — round back to the n-bit format after *every*
  multiply-accumulate, the behaviour of a chain of ordinary low-precision
  FMA units;
* **truncated EMAC** — accumulate exactly but truncate (round toward zero)
  instead of RNE at the output stage.

Both run the same Deep Positron networks as the main sweeps, so the deltas
are directly comparable to Table II.
"""

from __future__ import annotations

from fractions import Fraction

import numpy as np

from .. import formats
from ..core.positron import PositronNetwork, scalar_emac_for
from ..core.vector import engine_for
from ..nn.quantize import quantize_nearest

__all__ = [
    "naive_forward",
    "naive_accuracy",
    "truncated_forward_scalar",
    "truncated_accuracy",
]


def _dequantize(fmt, patterns: np.ndarray) -> np.ndarray:
    return engine_for(fmt).decode_values(patterns)


def naive_forward(network: PositronNetwork, inputs: np.ndarray) -> np.ndarray:
    """Forward pass with rounding after every MAC (the EMAC's antithesis).

    Uses the same quantized parameters as ``network`` but a sequential
    ``acc = round(acc + round(w * a))`` recurrence per neuron.  All values
    of the 5-8-bit formats and their pairwise products are exact in
    float64, so the only inexactness is the modeled per-MAC rounding.
    """
    fmt = network.fmt
    engine = network.engine
    current = engine.quantize(np.asarray(inputs, dtype=np.float64))
    for layer in network.layers:
        w_val = _dequantize(fmt, layer.weights)  # (out, in)
        b_val = _dequantize(fmt, layer.bias)  # (out,)
        x_val = _dequantize(fmt, current)  # (batch, in)
        batch = x_val.shape[0]
        acc = np.tile(b_val, (batch, 1))  # bias preloaded, like the EMAC
        for i in range(x_val.shape[1]):
            product = x_val[:, i : i + 1] * w_val[None, :, i]
            product = _dequantize(fmt, quantize_nearest(fmt, product))
            acc = _dequantize(fmt, quantize_nearest(fmt, acc + product))
        out = quantize_nearest(fmt, acc)
        if layer.activation == "relu":
            out = engine.relu(out)
        current = out
    return current


def naive_accuracy(
    network: PositronNetwork, inputs: np.ndarray, labels: np.ndarray
) -> float:
    """Classification accuracy of the naive rounded-MAC forward pass."""
    out = naive_forward(network, inputs)
    values = network.engine.decode_values(out)
    return float(np.mean(np.argmax(values, axis=1) == np.asarray(labels)))


def _truncate_to_format(fmt, value: Fraction) -> int:
    """Round ``value`` toward zero to the nearest format pattern."""
    return formats.backend_for(fmt).truncate_scalar(value)


def truncated_forward_scalar(network: PositronNetwork, sample: np.ndarray) -> list[int]:
    """One sample through EMACs whose final rounding is truncation.

    Exact accumulation is kept (this isolates the *rounding mode* choice);
    only the quire -> output conversion changes from RNE to round-toward-
    zero.  Scalar-path only: intended for the small-dataset ablation bench.
    """
    fmt = network.fmt
    engine = network.engine
    patterns = [int(p) for p in engine.quantize(np.asarray(sample, dtype=np.float64))]
    emac = scalar_emac_for(fmt)
    for layer in network.layers:
        outputs = []
        for o in range(layer.out_features):
            emac.reset(int(layer.bias[o]))
            for w, a in zip(layer.weights[o], patterns):
                emac.step(int(w), int(a))
            exact = emac.accumulator_value()
            outputs.append(_truncate_to_format(fmt, exact))
        if layer.activation == "relu":
            outputs = [
                int(engine.relu(np.array([b], dtype=np.uint32))[0]) for b in outputs
            ]
        patterns = outputs
    return patterns


def truncated_accuracy(
    network: PositronNetwork, inputs: np.ndarray, labels: np.ndarray
) -> float:
    """Accuracy with truncating (round-toward-zero) output stages."""
    inputs = np.asarray(inputs, dtype=np.float64)
    labels = np.asarray(labels)
    correct = 0
    for i in range(len(inputs)):
        out = truncated_forward_scalar(network, inputs[i])
        values = network.engine.decode_values(np.array(out, dtype=np.uint32))
        correct += int(np.argmax(values) == labels[i])
    return correct / len(inputs)
