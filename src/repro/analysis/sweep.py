"""Accuracy sweeps — Table II and Fig. 9.

Methodology (paper Section IV-B): train a 32-bit float parent model per
dataset; deploy it on Deep Positron at every [5, 8]-bit configuration of the
three formats *without retraining*; report the best accuracy per format per
width.  The 32-bit float baseline is the parent model itself evaluated in
float32.

Trained models are cached in-process; sweep results are cached on disk via
:mod:`repro.analysis.cache`.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from .. import formats
from ..core.positron import PositronNetwork
from ..datasets import load_iris, load_mushroom, load_wbc
from ..datasets.splits import Dataset
from ..hw.metrics import emac_report
from ..nn.metrics import degradation
from ..nn.model import MLP
from ..nn.quantize import FormatConfig, candidate_configs
from ..nn.train import TrainConfig, train_classifier
from .cache import cached_json

__all__ = [
    "EXPERIMENTS",
    "ExperimentSpec",
    "TrainedModel",
    "trained_model",
    "evaluate_config",
    "evaluate_named_format",
    "sweep_width",
    "table2_rows",
    "figure9_series",
]


@dataclass(frozen=True)
class ExperimentSpec:
    """Per-dataset topology and training hyperparameters."""

    name: str
    topology: tuple[int, ...]
    train: TrainConfig


EXPERIMENTS: dict[str, ExperimentSpec] = {
    "wbc": ExperimentSpec(
        name="wbc",
        topology=(30, 16, 8, 2),
        train=TrainConfig(
            epochs=500,
            batch_size=32,
            learning_rate=5e-3,
            weight_decay=1e-5,
            early_stop_patience=80,
            optimizer="adam",
            seed=1,
        ),
    ),
    "iris": ExperimentSpec(
        name="iris",
        topology=(4, 10, 6, 3),
        train=TrainConfig(
            epochs=900,
            batch_size=16,
            learning_rate=5e-3,
            weight_decay=1e-5,
            early_stop_patience=150,
            optimizer="adam",
            seed=2,
        ),
    ),
    "mushroom": ExperimentSpec(
        name="mushroom",
        topology=(117, 24, 12, 2),
        train=TrainConfig(
            epochs=100,
            batch_size=64,
            learning_rate=2e-3,
            early_stop_patience=30,
            optimizer="adam",
            seed=4,
        ),
    ),
}

_LOADERS = {"wbc": load_wbc, "iris": load_iris, "mushroom": load_mushroom}


@dataclass
class TrainedModel:
    """A trained float parent model plus its dataset and baseline accuracy."""

    spec: ExperimentSpec
    dataset: Dataset
    model: MLP
    float32_accuracy: float


@lru_cache(maxsize=None)
def trained_model(dataset_name: str) -> TrainedModel:
    """Train (once per process) the parent model for a dataset."""
    if dataset_name not in EXPERIMENTS:
        raise KeyError(f"unknown dataset '{dataset_name}'")
    spec = EXPERIMENTS[dataset_name]
    dataset = _LOADERS[dataset_name]()
    if dataset.num_features != spec.topology[0]:
        raise AssertionError("topology/feature mismatch")
    rng = np.random.default_rng(spec.train.seed)
    model = MLP(spec.topology, rng)
    train_classifier(
        model,
        dataset.train_x,
        dataset.train_y,
        dataset.test_x,
        dataset.test_y,
        spec.train,
    )
    # The paper's baseline is 32-bit float; round parameters through float32.
    model.cast_float32()
    baseline = model.accuracy(dataset.test_x, dataset.test_y)
    return TrainedModel(spec, dataset, model, baseline)


def evaluate_config(tm: TrainedModel, config: FormatConfig) -> float:
    """Deploy the parent model at one low-precision config; test accuracy."""
    weights, biases = tm.model.export_params()
    network = PositronNetwork.from_float_params(config.fmt, weights, biases)
    return network.accuracy(tm.dataset.test_x, tm.dataset.test_y)


def evaluate_named_format(dataset_name: str, format_name: str) -> dict:
    """Deploy one dataset's parent model at a registry-named format.

    End-to-end by-name path (CLI ``python -m repro sweep iris posit8_1``):
    any registered family works without further code changes.
    """
    backend = formats.get(format_name)
    tm = trained_model(dataset_name)
    config = FormatConfig(backend.family, backend.fmt)
    return {
        "dataset": dataset_name,
        "format": backend.name,
        "label": backend.label,
        "accuracy": evaluate_config(tm, config),
        "float32_accuracy": tm.float32_accuracy,
    }


def _sweep_width_uncached(dataset_name: str, n: int) -> dict:
    tm = trained_model(dataset_name)
    results = []
    for config in candidate_configs(n):
        acc = evaluate_config(tm, config)
        results.append(
            {"family": config.family, "label": config.label, "accuracy": acc}
        )
    best = {}
    for family in (f.name for f in formats.families() if f.sweep_candidates):
        fam = [r for r in results if r["family"] == family]
        best[family] = max(fam, key=lambda r: r["accuracy"]) if fam else None
    return {
        "dataset": dataset_name,
        "n": n,
        "float32_accuracy": tm.float32_accuracy,
        "inference_size": tm.dataset.inference_size,
        "all": results,
        "best": best,
    }


def sweep_width(dataset_name: str, n: int) -> dict:
    """All format configs of width ``n`` on one dataset (disk-cached)."""
    return cached_json(
        f"sweep_{dataset_name}_n{n}", lambda: _sweep_width_uncached(dataset_name, n)
    )


def table2_rows(datasets: tuple[str, ...] = ("wbc", "iris", "mushroom")) -> list[dict]:
    """Table II: best 8-bit accuracy per format vs the 32-bit float baseline."""
    rows = []
    for name in datasets:
        sweep = sweep_width(name, 8)
        rows.append(
            {
                "dataset": name,
                "inference_size": sweep["inference_size"],
                "posit": sweep["best"]["posit"]["accuracy"],
                "posit_config": sweep["best"]["posit"]["label"],
                "float": sweep["best"]["float"]["accuracy"],
                "float_config": sweep["best"]["float"]["label"],
                "fixed": sweep["best"]["fixed"]["accuracy"],
                "fixed_config": sweep["best"]["fixed"]["label"],
                "float32": sweep["float32_accuracy"],
            }
        )
    return rows


def figure9_series(
    widths: tuple[int, ...] = (5, 6, 7, 8),
    datasets: tuple[str, ...] = ("wbc", "iris", "mushroom"),
) -> dict[str, list[dict]]:
    """Fig. 9: per format family, (avg accuracy degradation, EDP) per width.

    Degradation is averaged over the datasets using each dataset's best
    config of that family at that width (the paper plots the *lowest*
    degradation per width); EDP comes from the hardware model for the
    best-performing configuration, averaged across datasets.
    """
    def config_from_label(label: str):
        return formats.get(label).fmt

    series: dict[str, list[dict]] = {"posit": [], "float": [], "fixed": []}
    for n in widths:
        per_family: dict[str, list[tuple[float, float]]] = {
            f: [] for f in series
        }
        for name in datasets:
            sweep = sweep_width(name, n)
            for family in series:
                best = sweep["best"][family]
                if best is None:
                    continue
                deg = degradation(sweep["float32_accuracy"], best["accuracy"])
                edp = emac_report(config_from_label(best["label"])).edp
                per_family[family].append((deg, edp))
        for family, points in per_family.items():
            if not points:
                continue
            series[family].append(
                {
                    "n": n,
                    "avg_degradation_pct": float(np.mean([p[0] for p in points])),
                    "avg_edp": float(np.mean([p[1] for p in points])),
                }
            )
    return series
