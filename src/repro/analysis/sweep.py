"""Accuracy sweeps — Table II and Fig. 9.

Methodology (paper Section IV-B): train a 32-bit float parent model per
dataset; deploy it on Deep Positron at every [5, 8]-bit configuration of the
three formats *without retraining*; report the best accuracy per format per
width.  The 32-bit float baseline is the parent model itself evaluated in
float32.

Trained models are cached in-process *and* serialized to the
content-addressed artifact store (:mod:`repro.analysis.store`), keyed by a
hash of the full :class:`ExperimentSpec` — parallel sweep workers load the
parent parameters instead of retraining, bit-identically.  Sweep results
are persisted per (dataset, width) task under a key that also covers the
candidate-config list, so any change to the spec or the format registry
invalidates exactly the affected artifacts.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from .. import formats
from ..core.positron import PositronNetwork
from ..datasets import load_iris, load_mushroom, load_wbc
from ..datasets.splits import Dataset
from ..hw.metrics import emac_report
from ..nn.metrics import degradation
from ..nn.model import MLP
from ..nn.quantize import FormatConfig, candidate_configs
from ..nn.train import TrainConfig, train_classifier
from .store import artifact_store, content_key, store_enabled

__all__ = [
    "EXPERIMENTS",
    "ExperimentSpec",
    "TrainedModel",
    "model_key",
    "sweep_task_key",
    "trained_model",
    "evaluate_config",
    "evaluate_configs_batch",
    "evaluate_named_format",
    "sweep_width",
    "table2_rows",
    "figure9_series",
]


@dataclass(frozen=True)
class ExperimentSpec:
    """Per-dataset topology and training hyperparameters."""

    name: str
    topology: tuple[int, ...]
    train: TrainConfig


EXPERIMENTS: dict[str, ExperimentSpec] = {
    "wbc": ExperimentSpec(
        name="wbc",
        topology=(30, 16, 8, 2),
        train=TrainConfig(
            epochs=500,
            batch_size=32,
            learning_rate=5e-3,
            weight_decay=1e-5,
            early_stop_patience=80,
            optimizer="adam",
            seed=1,
        ),
    ),
    "iris": ExperimentSpec(
        name="iris",
        topology=(4, 10, 6, 3),
        train=TrainConfig(
            epochs=900,
            batch_size=16,
            learning_rate=5e-3,
            weight_decay=1e-5,
            early_stop_patience=150,
            optimizer="adam",
            seed=2,
        ),
    ),
    "mushroom": ExperimentSpec(
        name="mushroom",
        topology=(117, 24, 12, 2),
        train=TrainConfig(
            epochs=100,
            batch_size=64,
            learning_rate=2e-3,
            early_stop_patience=30,
            optimizer="adam",
            seed=4,
        ),
    ),
}

_LOADERS = {"wbc": load_wbc, "iris": load_iris, "mushroom": load_mushroom}


@dataclass
class TrainedModel:
    """A trained float parent model plus its dataset and baseline accuracy."""

    spec: ExperimentSpec
    dataset: Dataset
    model: MLP
    float32_accuracy: float


def model_key(spec: ExperimentSpec) -> str:
    """Content key of a trained parent model: the full experiment spec."""
    return content_key({"kind": "model", "spec": spec})


def sweep_task_key(dataset_name: str, n: int) -> str:
    """Content key of one (dataset, width) sweep task.

    Covers the model key (spec + hyperparameters) *and* the candidate
    configuration labels, so registering a new format family — or changing
    a knob set — invalidates exactly the sweeps it affects.
    """
    if dataset_name not in EXPERIMENTS:
        raise KeyError(f"unknown dataset '{dataset_name}'")
    labels = [config.label for config in candidate_configs(n)]
    return content_key(
        {
            "kind": "sweep",
            "model": model_key(EXPERIMENTS[dataset_name]),
            "n": n,
            "configs": labels,
        }
    )


def _train_parent(spec: ExperimentSpec, dataset: Dataset) -> tuple[MLP, float]:
    rng = np.random.default_rng(spec.train.seed)
    model = MLP(spec.topology, rng)
    train_classifier(
        model,
        dataset.train_x,
        dataset.train_y,
        dataset.test_x,
        dataset.test_y,
        spec.train,
    )
    # The paper's baseline is 32-bit float; round parameters through float32.
    model.cast_float32()
    baseline = model.accuracy(dataset.test_x, dataset.test_y)
    return model, baseline


@lru_cache(maxsize=None)
def trained_model(dataset_name: str) -> TrainedModel:
    """The parent model for a dataset: store-loaded, or trained and stored.

    In-process the result is memoized; across processes the parameters are
    shared through the artifact store, so a sweep worker whose sibling (or a
    previous, interrupted run) already trained the model loads the exact
    float64 parameters instead of retraining — bit-identical by the
    :meth:`~repro.nn.model.MLP.export_arrays` round-trip guarantee.
    """
    if dataset_name not in EXPERIMENTS:
        raise KeyError(f"unknown dataset '{dataset_name}'")
    spec = EXPERIMENTS[dataset_name]
    dataset = _LOADERS[dataset_name]()
    if dataset.num_features != spec.topology[0]:
        raise AssertionError("topology/feature mismatch")
    if store_enabled():
        store = artifact_store()
        key = model_key(spec)
        cached = store.load_model(key)
        if cached is not None:
            arrays, meta = cached
            model = MLP.from_arrays(arrays)
            if model.topology == spec.topology:
                return TrainedModel(
                    spec, dataset, model, float(meta["float32_accuracy"])
                )
    model, baseline = _train_parent(spec, dataset)
    if store_enabled():
        artifact_store().save_model(
            model_key(spec),
            model.export_arrays(),
            {"dataset": spec.name, "float32_accuracy": baseline},
        )
    return TrainedModel(spec, dataset, model, baseline)


def evaluate_config(tm: TrainedModel, config: FormatConfig) -> float:
    """Deploy the parent model at one low-precision config; test accuracy."""
    return evaluate_configs_batch(tm, [config])[0]


def evaluate_configs_batch(
    tm: TrainedModel, configs: list[FormatConfig] | tuple[FormatConfig, ...]
) -> list[float]:
    """Accuracies of many configs, batched: one engine pass per config.

    The parent parameters are exported once and each config's quantized
    network runs the full test set in a single compiled-kernel forward —
    backends, decode/digit tables, and engines are memoized per format key
    in the registry, so repeated sweeps (and the parallel runner's pool
    workers) stop rebuilding them per config.  Classification argmaxes the
    readout *patterns* through the format's monotone rank table, skipping
    the float64 decode of every readout row; results are bit-identical to
    evaluating configs one at a time with decoded argmax.
    """
    weights, biases = tm.model.export_params()
    test_x = np.asarray(tm.dataset.test_x, dtype=np.float64)
    labels = np.asarray(tm.dataset.test_y)
    accuracies = []
    for config in configs:
        network = PositronNetwork.from_float_params(config.fmt, weights, biases)
        accuracies.append(float(np.mean(network.predict(test_x) == labels)))
    return accuracies


def evaluate_named_format(dataset_name: str, format_name: str) -> dict:
    """Deploy one dataset's parent model at a registry-named format.

    End-to-end by-name path (CLI ``python -m repro sweep iris posit8_1``):
    any registered family works without further code changes.
    """
    backend = formats.get(format_name)
    tm = trained_model(dataset_name)
    config = FormatConfig(backend.family, backend.fmt)
    return {
        "dataset": dataset_name,
        "format": backend.name,
        "label": backend.label,
        "accuracy": evaluate_config(tm, config),
        "float32_accuracy": tm.float32_accuracy,
    }


def _sweep_width_uncached(dataset_name: str, n: int) -> dict:
    tm = trained_model(dataset_name)
    configs = candidate_configs(n)
    accuracies = evaluate_configs_batch(tm, configs)
    results = [
        {"family": config.family, "label": config.label, "accuracy": acc}
        for config, acc in zip(configs, accuracies)
    ]
    best = {}
    for family in (f.name for f in formats.families() if f.sweep_candidates):
        fam = [r for r in results if r["family"] == family]
        best[family] = max(fam, key=lambda r: r["accuracy"]) if fam else None
    return {
        "dataset": dataset_name,
        "n": n,
        "float32_accuracy": tm.float32_accuracy,
        "inference_size": tm.dataset.inference_size,
        "all": results,
        "best": best,
    }


def sweep_width(dataset_name: str, n: int) -> dict:
    """All format configs of width ``n`` on one dataset (store-cached).

    The result is persisted individually in the content-addressed store,
    keyed by spec + width + candidate set — this is the resume granularity
    of the parallel runner: an interrupted run recomputes only the tasks
    whose artifacts are missing.
    """
    if not store_enabled():
        return _sweep_width_uncached(dataset_name, n)
    store = artifact_store()
    key = sweep_task_key(dataset_name, n)
    cached = store.load_result(key)
    if cached is not None:
        return cached
    value = _sweep_width_uncached(dataset_name, n)
    store.save_result(key, value)
    return value


def _table2_row(sweep: dict) -> dict:
    """One Table II row assembled from a width-8 sweep result."""
    return {
        "dataset": sweep["dataset"],
        "inference_size": sweep["inference_size"],
        "posit": sweep["best"]["posit"]["accuracy"],
        "posit_config": sweep["best"]["posit"]["label"],
        "float": sweep["best"]["float"]["accuracy"],
        "float_config": sweep["best"]["float"]["label"],
        "fixed": sweep["best"]["fixed"]["accuracy"],
        "fixed_config": sweep["best"]["fixed"]["label"],
        "float32": sweep["float32_accuracy"],
    }


def table2_rows(datasets: tuple[str, ...] = ("wbc", "iris", "mushroom")) -> list[dict]:
    """Table II: best 8-bit accuracy per format vs the 32-bit float baseline."""
    return [_table2_row(sweep_width(name, 8)) for name in datasets]


def figure9_series(
    widths: tuple[int, ...] = (5, 6, 7, 8),
    datasets: tuple[str, ...] = ("wbc", "iris", "mushroom"),
    sweeps: dict[tuple[str, int], dict] | None = None,
) -> dict[str, list[dict]]:
    """Fig. 9: per format family, (avg accuracy degradation, EDP) per width.

    Degradation is averaged over the datasets using each dataset's best
    config of that family at that width (the paper plots the *lowest*
    degradation per width); EDP comes from the hardware model for the
    best-performing configuration, averaged across datasets.

    ``sweeps`` optionally supplies precomputed per-task results keyed by
    ``(dataset, n)`` (the parallel runner passes its fan-out output here);
    missing entries fall back to :func:`sweep_width`.
    """
    def config_from_label(label: str):
        return formats.get(label).fmt

    def get_sweep(name: str, n: int) -> dict:
        if sweeps is not None and (name, n) in sweeps:
            return sweeps[(name, n)]
        return sweep_width(name, n)

    series: dict[str, list[dict]] = {"posit": [], "float": [], "fixed": []}
    for n in widths:
        per_family: dict[str, list[tuple[float, float]]] = {
            f: [] for f in series
        }
        for name in datasets:
            sweep = get_sweep(name, n)
            for family in series:
                best = sweep["best"][family]
                if best is None:
                    continue
                deg = degradation(sweep["float32_accuracy"], best["accuracy"])
                edp = emac_report(config_from_label(best["label"])).edp
                per_family[family].append((deg, edp))
        for family, points in per_family.items():
            if not points:
                continue
            series[family].append(
                {
                    "n": n,
                    "avg_degradation_pct": float(np.mean([p[0] for p in points])),
                    "avg_edp": float(np.mean([p[1] for p in points])),
                }
            )
    return series
