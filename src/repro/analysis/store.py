"""Content-addressed artifact store for models and per-task sweep results.

This replaces name-keyed JSON caching for the experiment pipeline: every
artifact is stored under a key derived from the *content of its inputs* —
the full :class:`~repro.analysis.sweep.ExperimentSpec` (topology plus every
training hyperparameter) for trained parent models, and additionally the
sweep width and candidate-config list for sweep results.  Change a seed, a
learning rate, or the candidate set and the key changes with it, so stale
artifacts are never picked up; they are simply unreferenced files.

Layout (under :func:`repro.analysis.cache.cache_dir`)::

    .repro_cache/store/models/<key>.npz    trained parent model parameters
    .repro_cache/store/results/<key>.json  one sweep task's result

Both tiers are written atomically via per-writer unique temp files, so
parallel sweep workers can race on the same artifact safely (worst case: a
duplicated identical write).  Corrupt files are deleted and recomputed.
``REPRO_NO_CACHE=1`` bypasses the store entirely; ``REPRO_CACHE_DIR``
relocates it.

The store feeds both the experiment runner (``docs/running-experiments.md``
documents keys, layout, and resume semantics) and the serving layer's model
registry (``docs/serving.md``), which loads trained parents by the same
spec hash instead of retraining per server start.
"""

from __future__ import annotations

import hashlib
import json
import os
import zipfile
from dataclasses import asdict, is_dataclass
from pathlib import Path
from typing import Any

import numpy as np

from .. import faults
from .cache import (
    POINT_PUBLISH,
    atomic_write_json,
    cache_dir,
    cache_enabled,
    fsync_dir,
    unique_tmp,
)

__all__ = ["content_key", "ArtifactStore", "artifact_store", "store_enabled"]

#: Bump when the serialized artifact layout changes incompatibly; it is
#: hashed into every key, so old artifacts are orphaned, not misread.
SCHEMA_VERSION = 1


def _canonical(obj: Any) -> Any:
    """A JSON-stable view of ``obj`` for hashing (dataclasses included)."""
    if is_dataclass(obj) and not isinstance(obj, type):
        fields = {k: _canonical(v) for k, v in asdict(obj).items()}
        return {"__type__": type(obj).__name__, **fields}
    if isinstance(obj, dict):
        return {str(k): _canonical(v) for k, v in sorted(obj.items())}
    if isinstance(obj, (list, tuple)):
        return [_canonical(v) for v in obj]
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    return repr(obj)


def content_key(payload: Any) -> str:
    """Hex digest keying an artifact by the content of its inputs."""
    blob = json.dumps(
        {"schema": SCHEMA_VERSION, "payload": _canonical(payload)},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:32]


class ArtifactStore:
    """Two-tier content-addressed store: ``.npz`` arrays and JSON results."""

    def __init__(self, root: Path | None = None):
        self.root = Path(root) if root is not None else cache_dir() / "store"

    # -- array artifacts (trained models) ------------------------------
    @property
    def models_dir(self) -> Path:
        return self.root / "models"

    def model_path(self, key: str) -> Path:
        return self.models_dir / f"{key}.npz"

    def has_model(self, key: str) -> bool:
        return self.model_path(key).exists()

    def save_model(self, key: str, arrays: dict[str, np.ndarray],
                   meta: dict[str, Any]) -> Path:
        """Atomically store a model's arrays plus a JSON metadata sidecar."""
        self.models_dir.mkdir(parents=True, exist_ok=True)
        path = self.model_path(key)
        tmp = unique_tmp(path)
        try:
            with tmp.open("wb") as handle:
                np.savez(
                    handle,
                    __meta__=np.frombuffer(
                        json.dumps(meta).encode("utf-8"), dtype=np.uint8
                    ),
                    **arrays,
                )
                handle.flush()
                os.fsync(handle.fileno())
            faults.fire(POINT_PUBLISH, path=str(tmp), artifact=str(path))
            tmp.replace(path)
            fsync_dir(path.parent)
        finally:
            tmp.unlink(missing_ok=True)
        return path

    def load_model(self, key: str) -> tuple[dict[str, np.ndarray], dict] | None:
        """(arrays, meta) for ``key``, or ``None`` (missing/corrupt).

        A corrupt artifact (truncated write, bad zip, missing members) is
        deleted so the caller recomputes and heals the store.
        """
        path = self.model_path(key)
        if not path.exists():
            return None
        try:
            with np.load(path) as data:
                arrays = {k: data[k] for k in data.files if k != "__meta__"}
                meta = json.loads(bytes(data["__meta__"]).decode("utf-8"))
            return arrays, meta
        except (OSError, ValueError, KeyError, EOFError,
                NotImplementedError, zipfile.BadZipFile,
                json.JSONDecodeError):
            # EOFError: np.load on a file truncated inside the npy magic.
            # NotImplementedError: zipfile on a corrupted version-needed
            # field it reads as "unsupported zip feature".
            path.unlink(missing_ok=True)
            return None

    # -- JSON artifacts (per-task sweep results) -----------------------
    @property
    def results_dir(self) -> Path:
        return self.root / "results"

    def result_path(self, key: str) -> Path:
        return self.results_dir / f"{key}.json"

    def has_result(self, key: str) -> bool:
        return self.result_path(key).exists()

    def save_result(self, key: str, value: Any) -> Path:
        self.results_dir.mkdir(parents=True, exist_ok=True)
        path = self.result_path(key)
        atomic_write_json(path, value)
        return path

    def load_result(self, key: str) -> Any | None:
        """The stored JSON value, or ``None`` (missing or corrupt)."""
        path = self.result_path(key)
        if not path.exists():
            return None
        try:
            with path.open() as handle:
                return json.load(handle)
        except (ValueError, OSError):
            # ValueError covers JSONDecodeError and the UnicodeDecodeError
            # corrupted bytes raise before JSON parsing begins.
            path.unlink(missing_ok=True)
            return None


def artifact_store() -> ArtifactStore:
    """The store under the current cache directory (env-sensitive).

    Constructed per call so ``REPRO_CACHE_DIR`` changes (tests, parallel
    workers inheriting the parent environment) take effect immediately.
    """
    return ArtifactStore()


def store_enabled() -> bool:
    """Whether artifacts should be persisted (``REPRO_NO_CACHE`` unset)."""
    return cache_enabled()
