"""Accuracy-sensitivity studies (paper Section VI).

The conclusion claims "accuracy-sensitivity studies for Deep Positron show
robustness at 7-bit and 8-bit widths".  Two studies quantify that:

* :func:`width_sensitivity` — accuracy of the best config of one family at
  every width, on one dataset (the robustness-vs-width curve);
* :func:`layer_sensitivity` — quantize a *single* layer at low precision
  while keeping the rest at a wide reference format, revealing which layers
  tolerate aggressive quantization (a standard mixed-precision analysis the
  paper's future-work direction implies).
"""

from __future__ import annotations

import numpy as np

from ..core.positron import PositronNetwork
from ..core.vector import engine_for
from ..posit.format import standard_format
from .sweep import TrainedModel, sweep_width

__all__ = ["width_sensitivity", "layer_sensitivity", "mixed_precision_network"]


def width_sensitivity(
    dataset_name: str,
    family: str,
    widths: tuple[int, ...] = (5, 6, 7, 8),
) -> list[dict]:
    """Best accuracy of one format family per width on one dataset."""
    if family not in ("posit", "float", "fixed"):
        raise ValueError(f"unknown family '{family}'")
    rows = []
    for n in widths:
        sweep = sweep_width(dataset_name, n)
        best = sweep["best"][family]
        rows.append(
            {
                "n": n,
                "label": best["label"],
                "accuracy": best["accuracy"],
                "baseline": sweep["float32_accuracy"],
            }
        )
    return rows


def mixed_precision_network(
    tm: TrainedModel,
    layer_formats: list,
) -> float:
    """Accuracy with a *different* format per layer.

    ``layer_formats[i]`` is the numerical format of layer ``i``'s weights,
    bias, and output activations.  Inputs are quantized to layer 0's
    format.  Because EMAC inputs and outputs are just patterns of their
    layer's format, mixing formats across layers only requires re-decoding
    at the boundaries — which we do exactly through float64 (all values at
    these widths are float64-exact).
    """
    weights, biases = tm.model.export_params()
    if len(layer_formats) != len(weights):
        raise ValueError("need one format per layer")
    ds = tm.dataset
    values = np.asarray(ds.test_x, dtype=np.float64)
    for i, fmt in enumerate(layer_formats):
        engine = engine_for(fmt)
        net = PositronNetwork.from_float_params(fmt, [weights[i]], [biases[i]])
        layer = net.layers[0]
        # A single-layer network applies the identity readout; apply ReLU
        # manually for hidden layers.
        patterns = engine.quantize(values)
        out = engine.dot(layer.weights, patterns, layer.bias)
        if i < len(layer_formats) - 1:
            out = engine.relu(out)
        values = engine.decode_values(out)
    return float(np.mean(np.argmax(values, axis=1) == ds.test_y))


def layer_sensitivity(
    tm: TrainedModel,
    probe_format=None,
    reference_format=None,
) -> list[dict]:
    """Quantize one layer at a time to a narrow format.

    Every other layer stays at ``reference_format`` (default posit<16,1>,
    effectively lossless here).  The drop relative to the all-reference
    configuration isolates each layer's sensitivity.
    """
    probe = probe_format if probe_format is not None else standard_format(6, 0)
    reference = (
        reference_format if reference_format is not None else standard_format(16, 1)
    )
    num_layers = len(tm.model.dense_layers)
    all_reference = mixed_precision_network(tm, [reference] * num_layers)
    rows = []
    for i in range(num_layers):
        formats = [reference] * num_layers
        formats[i] = probe
        acc = mixed_precision_network(tm, formats)
        rows.append(
            {
                "layer": i,
                "probe": str(probe),
                "accuracy": acc,
                "reference_accuracy": all_reference,
                "drop_pct": 100.0 * (all_reference - acc),
            }
        )
    return rows
