"""Experiment drivers reproducing every table and figure of the paper."""

from .cache import cache_dir, cache_enabled, cached_json, clear_cache
from .store import ArtifactStore, artifact_store, content_key, store_enabled
from .runner import (
    DEFAULT_DATASETS,
    DEFAULT_WIDTHS,
    SweepTask,
    plan_tasks,
    run_fig9,
    run_sweeps,
    run_table2,
)
from .histograms import (
    Histogram,
    in_unit_fraction,
    posit_value_histogram,
    weight_histogram,
)
from .sweep import (
    EXPERIMENTS,
    ExperimentSpec,
    TrainedModel,
    evaluate_config,
    evaluate_configs_batch,
    evaluate_named_format,
    figure9_series,
    model_key,
    sweep_task_key,
    sweep_width,
    table2_rows,
    trained_model,
)
from .report import (
    ascii_bar,
    render_figure9,
    render_histogram,
    render_series,
    render_table2,
)
from .ablation import (
    naive_accuracy,
    naive_forward,
    truncated_accuracy,
    truncated_forward_scalar,
)
from .sensitivity import (
    layer_sensitivity,
    mixed_precision_network,
    width_sensitivity,
)

__all__ = [
    "cache_dir",
    "cache_enabled",
    "cached_json",
    "clear_cache",
    "ArtifactStore",
    "artifact_store",
    "content_key",
    "store_enabled",
    "SweepTask",
    "DEFAULT_DATASETS",
    "DEFAULT_WIDTHS",
    "plan_tasks",
    "run_sweeps",
    "run_table2",
    "run_fig9",
    "model_key",
    "sweep_task_key",
    "evaluate_configs_batch",
    "Histogram",
    "posit_value_histogram",
    "weight_histogram",
    "in_unit_fraction",
    "EXPERIMENTS",
    "ExperimentSpec",
    "TrainedModel",
    "trained_model",
    "evaluate_config",
    "evaluate_named_format",
    "sweep_width",
    "table2_rows",
    "figure9_series",
    "ascii_bar",
    "render_table2",
    "render_series",
    "render_figure9",
    "render_histogram",
    "naive_forward",
    "naive_accuracy",
    "truncated_forward_scalar",
    "truncated_accuracy",
    "width_sensitivity",
    "layer_sensitivity",
    "mixed_precision_network",
]
