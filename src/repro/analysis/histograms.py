"""Fig. 2 study: posit value distribution vs trained weight distribution.

The paper motivates posits by juxtaposing (a) the values representable by a
7-bit, es=0 posit and (b) the weight histogram of a trained DNN — both
cluster heavily in [-1, 1], so posit's tapered precision puts its densest
values exactly where the weights live.  This module computes both
histograms and a simple coverage statistic quantifying the match.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..posit.format import PositFormat
from ..posit.tables import tables_for

__all__ = ["Histogram", "posit_value_histogram", "weight_histogram", "in_unit_fraction"]


@dataclass(frozen=True)
class Histogram:
    """Bin edges and counts (float counts allow normalized histograms)."""

    edges: np.ndarray
    counts: np.ndarray

    @property
    def total(self) -> float:
        """Sum of all counts."""
        return float(self.counts.sum())

    def normalized(self) -> "Histogram":
        """Histogram scaled to unit mass."""
        total = self.total
        if total == 0:
            raise ValueError("empty histogram")
        return Histogram(self.edges, self.counts / total)


def posit_value_histogram(
    fmt: PositFormat, bins: int = 41, value_range: tuple[float, float] = (-2.5, 2.5)
) -> Histogram:
    """Histogram of every representable (real, finite) posit value.

    Values outside ``value_range`` fall into the edge bins, mirroring how
    the paper's Fig. 2(a) clips its x-axis.
    """
    if bins < 1:
        raise ValueError("bins must be >= 1")
    t = tables_for(fmt)
    values = t.float_value[~t.is_nar]
    clipped = np.clip(values, value_range[0], value_range[1])
    counts, edges = np.histogram(clipped, bins=bins, range=value_range)
    return Histogram(edges=edges, counts=counts.astype(np.float64))


def weight_histogram(
    weights: list[np.ndarray] | np.ndarray,
    bins: int = 41,
    value_range: tuple[float, float] = (-2.5, 2.5),
) -> Histogram:
    """Histogram of trained DNN weights (all layers pooled)."""
    if isinstance(weights, (list, tuple)):
        flat = np.concatenate([np.asarray(w).ravel() for w in weights])
    else:
        flat = np.asarray(weights).ravel()
    if flat.size == 0:
        raise ValueError("no weights given")
    clipped = np.clip(flat, value_range[0], value_range[1])
    counts, edges = np.histogram(clipped, bins=bins, range=value_range)
    return Histogram(edges=edges, counts=counts.astype(np.float64))


def in_unit_fraction(histogram: Histogram) -> float:
    """Mass of the histogram inside [-1, 1] — the paper's clustering claim."""
    centers = (histogram.edges[:-1] + histogram.edges[1:]) / 2
    inside = (centers >= -1.0) & (centers <= 1.0)
    total = histogram.total
    if total == 0:
        raise ValueError("empty histogram")
    return float(histogram.counts[inside].sum() / total)
