"""Q-format fixed-point arithmetic (n total bits, q fraction bits).

Two's-complement patterns, saturating scalar :class:`Fixed` values, RNE
quantization for parameters and the paper's shift-and-truncate semantics for
the EMAC output stage, plus vector helpers.
"""

from .format import FixedFormat, fixed_format, q8_4, q8_7
from .value import Fixed, quantize_floor, quantize_rne
from .codec import (
    dequantize_array,
    pattern_array,
    quantize_array,
    relu_patterns,
    signed_array,
)

__all__ = [
    "FixedFormat",
    "fixed_format",
    "q8_4",
    "q8_7",
    "Fixed",
    "quantize_rne",
    "quantize_floor",
    "quantize_array",
    "dequantize_array",
    "signed_array",
    "pattern_array",
    "relu_patterns",
]
