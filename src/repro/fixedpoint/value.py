"""Scalar fixed-point value type with saturating arithmetic.

Quantization of real values uses round-to-nearest-even on the raw integer;
the EMAC's *output* stage instead uses the paper's shift-right-and-truncate
(floor) semantics, implemented in :mod:`repro.core.emac_fixed`.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Union

from .format import FixedFormat

__all__ = ["Fixed", "quantize_rne", "quantize_floor"]

_Number = Union[int, float, Fraction, "Fixed"]


def quantize_rne(fmt: FixedFormat, value: Fraction) -> int:
    """Round ``value`` to the nearest raw integer (ties to even), saturating.

    Returns the raw signed integer (not the bit pattern).
    """
    scaled = value * (1 << fmt.q)
    num, den = scaled.numerator, scaled.denominator
    q, r = divmod(num, den)  # floor division; r >= 0
    twice = 2 * r
    if twice > den or (twice == den and q % 2 != 0):
        q += 1
    return max(fmt.int_min, min(fmt.int_max, q))


def quantize_floor(fmt: FixedFormat, value: Fraction) -> int:
    """Floor ``value`` to the format grid, saturating (EMAC output rule)."""
    scaled = value * (1 << fmt.q)
    q = scaled.numerator // scaled.denominator
    return max(fmt.int_min, min(fmt.int_max, q))


class Fixed:
    """An immutable fixed-point number."""

    __slots__ = ("_fmt", "_raw")

    def __init__(self, fmt: FixedFormat, raw: int):
        if not fmt.int_min <= raw <= fmt.int_max:
            raise ValueError(f"raw value {raw} out of range for {fmt}")
        self._fmt = fmt
        self._raw = raw

    # ------------------------------------------------------------------
    @classmethod
    def from_bits(cls, fmt: FixedFormat, bits: int) -> "Fixed":
        """Wrap a two's-complement pattern."""
        return cls(fmt, fmt.to_signed(bits))

    @classmethod
    def from_raw(cls, fmt: FixedFormat, raw: int) -> "Fixed":
        """Wrap a raw signed integer (value = raw / 2**q)."""
        return cls(fmt, raw)

    @classmethod
    def from_value(cls, fmt: FixedFormat, value: _Number) -> "Fixed":
        """Round any finite real to the nearest fixed-point value (RNE)."""
        if isinstance(value, Fixed):
            if value.fmt == fmt:
                return value
            return cls(fmt, quantize_rne(fmt, value.to_fraction()))
        if isinstance(value, bool):
            raise TypeError("refusing to interpret bool as a fixed-point value")
        if isinstance(value, float):
            if value != value or value in (float("inf"), float("-inf")):
                raise ValueError("cannot encode non-finite float")
            value = Fraction(value)
        if isinstance(value, int):
            value = Fraction(value)
        if not isinstance(value, Fraction):
            raise TypeError(f"cannot build fixed-point from {type(value).__name__}")
        return cls(fmt, quantize_rne(fmt, value))

    @classmethod
    def zero(cls, fmt: FixedFormat) -> "Fixed":
        """Zero."""
        return cls(fmt, 0)

    # ------------------------------------------------------------------
    @property
    def fmt(self) -> FixedFormat:
        """The fixed-point format."""
        return self._fmt

    @property
    def raw(self) -> int:
        """Raw signed integer; value is ``raw / 2**q``."""
        return self._raw

    @property
    def bits(self) -> int:
        """Two's-complement ``n``-bit pattern."""
        return self._raw & self._fmt.mask

    @property
    def is_zero(self) -> bool:
        """True when the value is zero."""
        return self._raw == 0

    @property
    def is_negative(self) -> bool:
        """True for strictly negative values."""
        return self._raw < 0

    def to_fraction(self) -> Fraction:
        """Exact rational value."""
        return Fraction(self._raw, 1 << self._fmt.q)

    def __float__(self) -> float:
        return self._raw / (1 << self._fmt.q)

    # ------------------------------------------------------------------
    def _coerce(self, other: _Number) -> "Fixed":
        if isinstance(other, Fixed):
            if other._fmt != self._fmt:
                raise TypeError(f"format mismatch: {self._fmt} vs {other._fmt}")
            return other
        return Fixed.from_value(self._fmt, other)

    def _sat(self, raw: int) -> "Fixed":
        return Fixed(self._fmt, max(self._fmt.int_min, min(self._fmt.int_max, raw)))

    def __add__(self, other: _Number) -> "Fixed":
        return self._sat(self._raw + self._coerce(other)._raw)

    __radd__ = __add__

    def __sub__(self, other: _Number) -> "Fixed":
        return self._sat(self._raw - self._coerce(other)._raw)

    def __rsub__(self, other: _Number) -> "Fixed":
        return self._coerce(other).__sub__(self)

    def __mul__(self, other: _Number) -> "Fixed":
        rhs = self._coerce(other)
        return Fixed(self._fmt, quantize_rne(self._fmt, self.to_fraction() * rhs.to_fraction()))

    __rmul__ = __mul__

    def __neg__(self) -> "Fixed":
        return self._sat(-self._raw)

    def __abs__(self) -> "Fixed":
        return self._sat(abs(self._raw))

    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if isinstance(other, Fixed):
            return self._fmt == other._fmt and self._raw == other._raw
        if isinstance(other, (int, float, Fraction)):
            try:
                return self.to_fraction() == Fraction(other)
            except (ValueError, OverflowError):
                return False
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self._fmt, self._raw))

    def __lt__(self, other: _Number) -> bool:
        return self._raw < self._coerce(other)._raw

    def __le__(self, other: _Number) -> bool:
        return self._raw <= self._coerce(other)._raw

    def __gt__(self, other: _Number) -> bool:
        return self._raw > self._coerce(other)._raw

    def __ge__(self, other: _Number) -> bool:
        return self._raw >= self._coerce(other)._raw

    def __repr__(self) -> str:
        return f"Fixed({self._fmt}, {float(self)!r}, raw={self._raw})"
