"""Q-format fixed-point descriptor.

The paper's fixed-point EMAC (Fig. 3) takes ``n``-bit two's-complement
inputs with ``q`` fraction bits and ``n - q`` integer bits (sign included).
``max = (2**(n-1) - 1) / 2**q`` and ``min`` (smallest positive step) is
``2**-q``.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from functools import lru_cache
import math

__all__ = ["FixedFormat", "fixed_format", "q8_4", "q8_7"]


@dataclass(frozen=True)
class FixedFormat:
    """Immutable descriptor of an ``n``-bit, ``q``-fraction-bit format."""

    n: int
    q: int

    def __post_init__(self) -> None:
        if not isinstance(self.n, int) or not isinstance(self.q, int):
            raise TypeError("n and q must be integers")
        if self.n < 2:
            raise ValueError(f"fixed-point width must be >= 2 (got {self.n})")
        if not 0 <= self.q <= self.n - 1:
            raise ValueError(f"q must be in [0, n-1] (got q={self.q}, n={self.n})")

    # ------------------------------------------------------------------
    @property
    def mask(self) -> int:
        """All-ones mask of width ``n``."""
        return (1 << self.n) - 1

    @property
    def sign_mask(self) -> int:
        """Mask selecting the sign bit."""
        return 1 << (self.n - 1)

    @property
    def num_patterns(self) -> int:
        """Total number of bit patterns."""
        return 1 << self.n

    @property
    def int_max(self) -> int:
        """Largest raw integer, ``2**(n-1) - 1``."""
        return (1 << (self.n - 1)) - 1

    @property
    def int_min(self) -> int:
        """Smallest raw integer, ``-2**(n-1)``."""
        return -(1 << (self.n - 1))

    @property
    def max_value(self) -> Fraction:
        """Largest representable value."""
        return Fraction(self.int_max, 1 << self.q)

    @property
    def min_value(self) -> Fraction:
        """Smallest positive representable value, ``2**-q``."""
        return Fraction(1, 1 << self.q)

    @property
    def lowest_value(self) -> Fraction:
        """Most negative representable value."""
        return Fraction(self.int_min, 1 << self.q)

    @property
    def dynamic_range(self) -> float:
        """``log10(max / min)`` as used by the paper's Fig. 6."""
        return float(math.log10(self.max_value / self.min_value))

    def accumulator_bits(self, k: int) -> int:
        """Exact accumulator width for ``k`` products — paper eq. (3)."""
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        carry = 0 if k == 1 else math.ceil(math.log2(k))
        span = math.ceil(math.log2(self.max_value / self.min_value))
        return carry + 2 * span + 2

    # ------------------------------------------------------------------
    def valid_pattern(self, bits: int) -> bool:
        """Whether ``bits`` is a valid ``n``-bit pattern."""
        return 0 <= bits <= self.mask

    def all_patterns(self) -> range:
        """Iterate every bit pattern."""
        return range(self.num_patterns)

    def to_signed(self, bits: int) -> int:
        """Interpret a raw pattern as a signed integer."""
        return bits - (1 << self.n) if bits & self.sign_mask else bits

    def to_pattern(self, signed: int) -> int:
        """Two's-complement pattern of a signed integer (must be in range)."""
        if not self.int_min <= signed <= self.int_max:
            raise ValueError(f"{signed} out of range for {self}")
        return signed & self.mask

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"fixed<{self.n},{self.q}>"


@lru_cache(maxsize=None)
def fixed_format(n: int, q: int) -> FixedFormat:
    """Memoized :class:`FixedFormat` constructor."""
    return FixedFormat(n, q)


#: 8-bit fixed point with 4 fraction bits (range +-8).
q8_4 = fixed_format(8, 4)
#: 8-bit fixed point with 7 fraction bits (range +-1), the densest option.
q8_7 = fixed_format(8, 7)
