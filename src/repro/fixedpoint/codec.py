"""Vector helpers for fixed-point quantization and decoding.

Fixed-point needs no decode tables: patterns *are* scaled integers.  These
helpers quantize/dequantize whole numpy arrays and provide the same
``negate``/``relu`` pattern maps the other formats expose, for uniformity in
the vectorized engine.
"""

from __future__ import annotations

import numpy as np

from .format import FixedFormat

__all__ = [
    "quantize_array",
    "dequantize_array",
    "signed_array",
    "pattern_array",
    "relu_patterns",
]


def quantize_array(fmt: FixedFormat, values: np.ndarray) -> np.ndarray:
    """Round a float array to raw two's-complement patterns (uint32), RNE.

    numpy's ``rint`` implements round-half-to-even, matching the scalar
    :func:`repro.fixedpoint.value.quantize_rne` for values representable in
    float64 (all values at the widths this library targets).
    """
    arr = np.asarray(values, dtype=np.float64)
    if not np.all(np.isfinite(arr)):
        raise ValueError("cannot quantize non-finite values")
    raw = np.rint(arr * (1 << fmt.q))
    raw = np.clip(raw, fmt.int_min, fmt.int_max).astype(np.int64)
    return (raw & fmt.mask).astype(np.uint32)


def dequantize_array(fmt: FixedFormat, patterns: np.ndarray) -> np.ndarray:
    """Map patterns to float64 values."""
    return signed_array(fmt, patterns).astype(np.float64) / (1 << fmt.q)


def signed_array(fmt: FixedFormat, patterns: np.ndarray) -> np.ndarray:
    """Two's-complement interpretation of patterns, as int64."""
    p = np.asarray(patterns, dtype=np.int64)
    if p.size and (p.min() < 0 or p.max() > fmt.mask):
        raise ValueError("pattern out of range")
    return np.where(p & fmt.sign_mask, p - (1 << fmt.n), p)


def pattern_array(fmt: FixedFormat, signed: np.ndarray) -> np.ndarray:
    """Two's-complement patterns of signed integers (must be in range)."""
    s = np.asarray(signed, dtype=np.int64)
    if s.size and (s.min() < fmt.int_min or s.max() > fmt.int_max):
        raise ValueError("signed value out of range")
    return (s & fmt.mask).astype(np.uint32)


def relu_patterns(fmt: FixedFormat, patterns: np.ndarray) -> np.ndarray:
    """ReLU on patterns: negative values map to zero."""
    p = np.asarray(patterns, dtype=np.uint32)
    return np.where(p & fmt.sign_mask, np.uint32(0), p)
