"""Hypothesis property tests for posit arithmetic invariants."""

from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.posit import Posit, Quire, decode, encode_fraction
from repro.posit.format import standard_format

FORMATS = [
    standard_format(5, 0),
    standard_format(6, 1),
    standard_format(8, 0),
    standard_format(8, 1),
    standard_format(8, 2),
]

fmt_st = st.sampled_from(FORMATS)
rational_st = st.fractions(
    min_value=Fraction(-(10**6)), max_value=Fraction(10**6)
)


def real_pattern(fmt, bits):
    """Map any integer to a non-NaR pattern of fmt."""
    bits %= fmt.num_patterns
    return fmt.zero_pattern if bits == fmt.nar_pattern else bits


@given(fmt_st, rational_st)
def test_encode_decode_roundtrip_is_idempotent(fmt, value):
    """quantize(quantize(x)) == quantize(x)."""
    bits = encode_fraction(fmt, value)
    if bits == fmt.nar_pattern:  # cannot happen; guards the invariant
        raise AssertionError("encode produced NaR")
    rounded = decode(fmt, bits).to_fraction() if bits else Fraction(0)
    assert encode_fraction(fmt, rounded) == bits


@given(fmt_st, rational_st, rational_st)
def test_encoding_is_monotone(fmt, a, b):
    """x <= y implies posit(x) <= posit(y) in signed-pattern order."""
    if a > b:
        a, b = b, a
    pa = Posit(fmt, encode_fraction(fmt, a))
    pb = Posit(fmt, encode_fraction(fmt, b))
    assert pa._signed_pattern() <= pb._signed_pattern()


@given(fmt_st, rational_st)
def test_rounding_is_faithful(fmt, value):
    """The result is one of the two posits bracketing the value."""
    bits = encode_fraction(fmt, value)
    got = decode(fmt, bits).to_fraction() if bits else Fraction(0)
    if got == value:
        return
    # Error bounded by the gap to the neighbor on the other side.
    direction = 1 if got > value else -1
    signed = bits - fmt.num_patterns if bits & fmt.sign_mask else bits
    neighbor_signed = signed - direction
    neighbor_bits = neighbor_signed % fmt.num_patterns
    if neighbor_bits == fmt.nar_pattern:
        return  # at the saturation edge; clamping already verified elsewhere
    neighbor = (
        decode(fmt, neighbor_bits).to_fraction()
        if neighbor_bits
        else Fraction(0)
    )
    lo, hi = min(got, neighbor), max(got, neighbor)
    if not lo <= value <= hi:
        # Outside the bracketing pair is legal only past the posit range
        # (saturation to maxpos/minpos semantics).
        assert abs(value) > fmt.maxpos or abs(value) < fmt.minpos


@given(fmt_st, st.integers(), st.integers())
def test_multiplication_commutes(fmt, wa, wb):
    pa = Posit.from_bits(fmt, real_pattern(fmt, wa))
    pb = Posit.from_bits(fmt, real_pattern(fmt, wb))
    assert (pa * pb).bits == (pb * pa).bits


@given(fmt_st, st.integers(), st.integers())
def test_addition_commutes(fmt, wa, wb):
    pa = Posit.from_bits(fmt, real_pattern(fmt, wa))
    pb = Posit.from_bits(fmt, real_pattern(fmt, wb))
    assert (pa + pb).bits == (pb + pa).bits


@given(fmt_st, st.integers())
def test_negation_is_involution(fmt, bits):
    p = Posit.from_bits(fmt, real_pattern(fmt, bits))
    assert (-(-p)).bits == p.bits


@given(fmt_st, st.integers())
def test_multiply_by_one_is_identity(fmt, bits):
    p = Posit.from_bits(fmt, real_pattern(fmt, bits))
    one = Posit.from_value(fmt, 1)
    assert (p * one).bits == p.bits


@given(fmt_st, st.integers())
def test_add_zero_is_identity(fmt, bits):
    p = Posit.from_bits(fmt, real_pattern(fmt, bits))
    assert (p + Posit.zero(fmt)).bits == p.bits


@given(fmt_st, st.integers())
def test_subtract_self_is_zero(fmt, bits):
    p = Posit.from_bits(fmt, real_pattern(fmt, bits))
    assert (p - p).is_zero


@settings(max_examples=50)
@given(
    fmt_st,
    st.lists(st.tuples(st.integers(), st.integers()), min_size=1, max_size=12),
)
def test_quire_dot_matches_exact_rational(fmt, pairs):
    """The quire dot product equals the exact sum, rounded once."""
    ws = [Posit.from_bits(fmt, real_pattern(fmt, a)) for a, _ in pairs]
    xs = [Posit.from_bits(fmt, real_pattern(fmt, b)) for _, b in pairs]
    q = Quire(fmt)
    out = q.dot(ws, xs)
    exact = sum(
        (w.to_fraction() * x.to_fraction() for w, x in zip(ws, xs)), Fraction(0)
    )
    assert out.bits == encode_fraction(fmt, exact)
    assert q.fits_hw()


@settings(max_examples=50)
@given(
    fmt_st,
    st.lists(st.tuples(st.integers(), st.integers()), min_size=2, max_size=10),
    st.randoms(use_true_random=False),
)
def test_quire_accumulation_order_invariant(fmt, pairs, shuffler):
    """Exact accumulation must not depend on MAC order (floats would)."""
    ws = [Posit.from_bits(fmt, real_pattern(fmt, a)) for a, _ in pairs]
    xs = [Posit.from_bits(fmt, real_pattern(fmt, b)) for _, b in pairs]
    q1 = Quire(fmt)
    out1 = q1.dot(ws, xs)
    order = list(range(len(pairs)))
    shuffler.shuffle(order)
    q2 = Quire(fmt)
    out2 = q2.dot([ws[i] for i in order], [xs[i] for i in order])
    assert out1.bits == out2.bits
