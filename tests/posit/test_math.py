"""Tests for posit math functions and IEEE interchange."""

import math
from fractions import Fraction

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.posit import (
    Posit,
    encode_fraction,
    from_float32_bits,
    pow2_int,
    reciprocal,
    sqrt,
    to_float32_bits,
)
from repro.posit.encode import encode_exact
from repro.posit.format import standard_format

P8 = standard_format(8, 1)


def reference_sqrt_bits(fmt, value: Fraction) -> int:
    """Independent correctly rounded sqrt via wide integer sqrt + sticky."""
    num = (value.numerator << 400) // value.denominator
    root = math.isqrt(num)
    exact = root * root == num and (value.numerator << 400) % value.denominator == 0
    mant = (root << 1) | (0 if exact else 1)
    return encode_exact(fmt, 0, mant, -201)


class TestSqrt:
    def test_exhaustive_correct_rounding(self, posit_fmt):
        for bits in posit_fmt.all_patterns():
            p = Posit.from_bits(posit_fmt, bits)
            s = sqrt(p)
            if p.is_nar or p.is_negative:
                assert s.is_nar
            elif p.is_zero:
                assert s.is_zero
            else:
                assert s.bits == reference_sqrt_bits(posit_fmt, p.to_fraction())

    def test_perfect_squares(self):
        for v in (1, 4, 16):
            p = Posit.from_value(P8, v)
            assert float(sqrt(p)) == math.sqrt(v)

    def test_negative_is_nar(self):
        assert sqrt(Posit.from_value(P8, -1)).is_nar

    def test_sqrt_monotone(self):
        values = [0.25, 0.5, 1.0, 2.0, 9.0]
        roots = [float(sqrt(Posit.from_value(P8, v))) for v in values]
        assert roots == sorted(roots)


class TestReciprocal:
    def test_exhaustive(self, posit_fmt):
        for bits in posit_fmt.all_patterns():
            p = Posit.from_bits(posit_fmt, bits)
            r = reciprocal(p)
            if p.is_nar or p.is_zero:
                assert r.is_nar
            else:
                assert r.bits == encode_fraction(posit_fmt, 1 / p.to_fraction())

    def test_powers_of_two_exact(self):
        assert float(reciprocal(Posit.from_value(P8, 4.0))) == 0.25

    def test_reciprocal_of_reciprocal_near_identity(self):
        p = Posit.from_value(P8, 3.0)
        back = reciprocal(reciprocal(p))
        assert abs(float(back) - 3.0) / 3.0 < 0.1


class TestPow2:
    def test_in_range(self, posit_fmt):
        assert float(pow2_int(posit_fmt, 0)) == 1.0
        assert float(pow2_int(posit_fmt, 1)) == 2.0

    def test_saturates(self, posit_fmt):
        assert pow2_int(posit_fmt, 10**6).bits == posit_fmt.maxpos_pattern
        assert pow2_int(posit_fmt, -(10**6)).bits == posit_fmt.minpos_pattern


class TestFloat32Interchange:
    def test_roundtrip_representables(self, posit_fmt):
        for bits in posit_fmt.all_patterns():
            p = Posit.from_bits(posit_fmt, bits)
            if p.is_nar:
                continue
            f32 = to_float32_bits(p)
            back = from_float32_bits(posit_fmt, f32)
            # Every posit at n <= 8 is exactly representable in binary32.
            assert back.bits == p.bits

    def test_nar_maps_to_nan(self):
        f32 = to_float32_bits(Posit.nar(P8))
        assert f32 == 0x7FC00000

    def test_nan_maps_to_nar(self):
        assert from_float32_bits(P8, 0x7FC00000).is_nar
        assert from_float32_bits(P8, 0x7F800000).is_nar  # +inf
        assert from_float32_bits(P8, 0xFF800000).is_nar  # -inf

    def test_zero(self):
        assert from_float32_bits(P8, 0).is_zero
        assert from_float32_bits(P8, 0x80000000).is_zero  # -0.0

    def test_pattern_range_check(self):
        with pytest.raises(ValueError):
            from_float32_bits(P8, 1 << 32)

    def test_one(self):
        assert to_float32_bits(Posit.from_value(P8, 1.0)) == 0x3F800000


@given(st.integers(min_value=0, max_value=255))
def test_sqrt_of_square_at_least_value(bits):
    """sqrt(p*p) >= |p| cannot under-round past p (posit monotonicity)."""
    fmt = P8
    if bits == fmt.nar_pattern:
        return
    p = Posit.from_bits(fmt, bits)
    square = p * p
    if square.is_nar:
        return
    root = sqrt(square)
    # p*p may saturate at either extreme (maxpos clamp, or the
    # never-underflow-to-zero minpos clamp); skip those, where the rounded
    # square is no longer close to p^2.
    saturated = square.bits in (
        fmt.maxpos_pattern,
        fmt.minpos_pattern,
        ((1 << fmt.n) - fmt.maxpos_pattern) & fmt.mask,
        ((1 << fmt.n) - fmt.minpos_pattern) & fmt.mask,
    )
    if not saturated and not square.is_zero:
        # In the regime taper consecutive posit<8,1> values are useed=4x
        # apart, so the rounded square may be off by up to 2x and its root
        # by up to sqrt(2) - 1 ~ 41%.
        assert abs(float(root) - abs(float(p))) <= abs(float(p)) * 0.5
