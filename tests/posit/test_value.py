"""Tests for the Posit scalar value type."""

from fractions import Fraction

import pytest

from repro.posit import NaRError, Posit, decode, encode_fraction
from repro.posit.format import standard_format

P8 = standard_format(8, 1)


class TestConstruction:
    def test_from_bits(self, posit_fmt):
        p = Posit.from_bits(posit_fmt, posit_fmt.minpos_pattern)
        assert p.bits == posit_fmt.minpos_pattern

    def test_from_bits_range_check(self, posit_fmt):
        with pytest.raises(ValueError):
            Posit.from_bits(posit_fmt, 1 << posit_fmt.n)

    def test_from_int(self, posit_fmt):
        assert float(Posit.from_value(posit_fmt, 1)) == 1.0

    def test_from_fraction(self, posit_fmt):
        p = Posit.from_value(posit_fmt, Fraction(1, 2))
        assert p.to_fraction() == Fraction(1, 2)

    def test_from_float(self):
        assert float(Posit.from_value(P8, 0.5)) == 0.5

    def test_from_posit_same_format_is_identity(self):
        p = Posit.from_value(P8, 0.75)
        assert Posit.from_value(P8, p) is p

    def test_from_posit_other_format_converts(self):
        p16 = Posit.from_value(standard_format(16, 1), 0.75)
        p8 = Posit.from_value(P8, p16)
        assert p8.fmt == P8 and float(p8) == 0.75

    def test_bool_rejected(self):
        with pytest.raises(TypeError):
            Posit.from_value(P8, True)

    def test_unsupported_type_rejected(self):
        with pytest.raises(TypeError):
            Posit.from_value(P8, "0.5")

    def test_named_constructors(self, posit_fmt):
        assert Posit.zero(posit_fmt).is_zero
        assert Posit.nar(posit_fmt).is_nar
        assert Posit.maxpos(posit_fmt).bits == posit_fmt.maxpos_pattern
        assert Posit.minpos(posit_fmt).bits == posit_fmt.minpos_pattern


class TestProperties:
    def test_is_negative(self):
        assert Posit.from_value(P8, -2).is_negative
        assert not Posit.from_value(P8, 2).is_negative
        assert not Posit.zero(P8).is_negative
        assert not Posit.nar(P8).is_negative

    def test_nar_to_fraction_raises(self):
        with pytest.raises(NaRError):
            Posit.nar(P8).to_fraction()

    def test_nar_to_float_is_nan(self):
        value = float(Posit.nar(P8))
        assert value != value

    def test_decoded_cached(self):
        p = Posit.from_value(P8, 1.5)
        assert p.decoded is p.decoded


class TestArithmeticCorrectlyRounded:
    """Every op must equal: exact rational result, rounded once."""

    def _expect(self, value):
        return Posit(P8, encode_fraction(P8, value))

    @pytest.mark.parametrize("a, b", [(0.5, 0.25), (3.0, -1.5), (-0.125, -4.0), (63.0, 63.0)])
    def test_add(self, a, b):
        pa, pb = Posit.from_value(P8, a), Posit.from_value(P8, b)
        assert pa + pb == self._expect(pa.to_fraction() + pb.to_fraction())

    @pytest.mark.parametrize("a, b", [(0.5, 0.25), (3.0, -1.5), (1.0, 1.0)])
    def test_sub(self, a, b):
        pa, pb = Posit.from_value(P8, a), Posit.from_value(P8, b)
        assert pa - pb == self._expect(pa.to_fraction() - pb.to_fraction())

    @pytest.mark.parametrize("a, b", [(0.5, 0.25), (-3.0, 1.5), (8.0, 8.0)])
    def test_mul(self, a, b):
        pa, pb = Posit.from_value(P8, a), Posit.from_value(P8, b)
        assert pa * pb == self._expect(pa.to_fraction() * pb.to_fraction())

    @pytest.mark.parametrize("a, b", [(0.5, 0.25), (-3.0, 1.5), (1.0, 3.0)])
    def test_div(self, a, b):
        pa, pb = Posit.from_value(P8, a), Posit.from_value(P8, b)
        assert pa / pb == self._expect(pa.to_fraction() / pb.to_fraction())

    def test_exhaustive_add_small_format(self):
        fmt = standard_format(5, 0)
        reals = [
            Posit.from_bits(fmt, b)
            for b in fmt.all_patterns()
            if b != fmt.nar_pattern
        ]
        for pa in reals:
            for pb in reals:
                expect = encode_fraction(fmt, pa.to_fraction() + pb.to_fraction())
                assert (pa + pb).bits == expect

    def test_exhaustive_mul_small_format(self):
        fmt = standard_format(5, 1)
        reals = [
            Posit.from_bits(fmt, b)
            for b in fmt.all_patterns()
            if b != fmt.nar_pattern
        ]
        for pa in reals:
            for pb in reals:
                expect = encode_fraction(fmt, pa.to_fraction() * pb.to_fraction())
                assert (pa * pb).bits == expect

    def test_fma_single_rounding(self):
        a = Posit.from_value(P8, 1.25)
        b = Posit.from_value(P8, 1.25)
        c = Posit.from_value(P8, -1.5)
        exact = a.to_fraction() * b.to_fraction() + c.to_fraction()
        assert a.fma(b, c) == Posit(P8, encode_fraction(P8, exact))

    def test_scalar_coercion(self):
        p = Posit.from_value(P8, 2.0)
        assert (p + 1).to_fraction() == 3
        assert (1 + p).to_fraction() == 3
        assert (p * 2).to_fraction() == 4
        assert (4 / p).to_fraction() == 2
        assert (3 - p).to_fraction() == 1

    def test_format_mismatch_raises(self):
        other = Posit.from_value(standard_format(7, 0), 1.0)
        with pytest.raises(TypeError):
            Posit.from_value(P8, 1.0) + other


class TestNaRSemantics:
    def test_propagation(self):
        nar = Posit.nar(P8)
        one = Posit.from_value(P8, 1.0)
        for result in (nar + one, one - nar, nar * one, nar / one, one / nar):
            assert result.is_nar

    def test_divide_by_zero_is_nar(self):
        one = Posit.from_value(P8, 1.0)
        assert (one / Posit.zero(P8)).is_nar

    def test_nar_unordered(self):
        with pytest.raises(NaRError):
            Posit.nar(P8) < Posit.from_value(P8, 1.0)

    def test_nar_not_equal_to_numbers(self):
        assert Posit.nar(P8) != 0
        assert Posit.nar(P8) == Posit.nar(P8)  # same pattern compares equal


class TestNegAbs:
    def test_neg_is_twos_complement(self, posit_fmt):
        for bits in posit_fmt.all_patterns():
            if bits == posit_fmt.nar_pattern:
                continue
            p = Posit.from_bits(posit_fmt, bits)
            assert (-p).to_fraction() == -p.to_fraction()

    def test_neg_zero_is_zero(self):
        assert (-Posit.zero(P8)).is_zero

    def test_neg_nar_is_nar(self):
        assert (-Posit.nar(P8)).is_nar

    def test_abs(self):
        assert abs(Posit.from_value(P8, -2.0)).to_fraction() == 2
        assert abs(Posit.from_value(P8, 2.0)).to_fraction() == 2


class TestComparisons:
    def test_total_order_matches_values(self):
        fmt = standard_format(6, 0)
        reals = [
            Posit.from_bits(fmt, b) for b in fmt.all_patterns() if b != fmt.nar_pattern
        ]
        by_pattern = sorted(reals, key=lambda p: p._signed_pattern())
        values = [p.to_fraction() for p in by_pattern]
        assert values == sorted(values)
        for a, b in zip(by_pattern, by_pattern[1:]):
            assert a < b and b > a and a <= b and b >= a

    def test_eq_with_numbers(self):
        assert Posit.from_value(P8, 0.5) == 0.5
        assert Posit.from_value(P8, 0.5) == Fraction(1, 2)
        assert Posit.from_value(P8, 0.5) != 0.6

    def test_hashable(self):
        seen = {Posit.from_value(P8, 0.5), Posit.from_value(P8, 0.5)}
        assert len(seen) == 1

    def test_repr_mentions_nar(self):
        assert "NaR" in repr(Posit.nar(P8))
        assert "0.5" in repr(Posit.from_value(P8, 0.5))
