"""Tests for repro.posit.decode (the paper's Algorithm 1 and Table I)."""

from fractions import Fraction

import pytest

from repro.posit import PositFormat, decode, regime_of_run, regime_run_length
from repro.posit.format import standard_format


class TestTable1RegimeInterpretation:
    """The paper's Table I: binary regime strings and their k values."""

    @pytest.mark.parametrize(
        "binary, k",
        [("0001", -3), ("001", -2), ("01", -1), ("10", 0), ("110", 1), ("1110", 2)],
    )
    def test_table1_regime_interpretation(self, binary, k):
        bits = int(binary, 2)
        width = len(binary)
        run = regime_run_length(bits, width)
        leading = (bits >> (width - 1)) & 1
        assert regime_of_run(leading, run) == k

    def test_run_length_saturates_at_field(self):
        # All-zeros body: run spans the whole field.
        assert regime_run_length(0, 7) == 7
        assert regime_run_length(0b1111111, 7) == 7

    def test_zero_width(self):
        assert regime_run_length(0, 0) == 0


class TestReservedPatterns:
    def test_zero(self, posit_fmt):
        d = decode(posit_fmt, 0)
        assert d.is_zero and not d.is_nar

    def test_nar(self, posit_fmt):
        d = decode(posit_fmt, posit_fmt.nar_pattern)
        assert d.is_nar and not d.is_zero

    def test_nar_has_no_value(self, posit_fmt):
        with pytest.raises(ValueError):
            decode(posit_fmt, posit_fmt.nar_pattern).to_fraction()

    def test_zero_value(self, posit_fmt):
        assert decode(posit_fmt, 0).to_fraction() == 0

    def test_out_of_range_pattern(self, posit_fmt):
        with pytest.raises(ValueError):
            decode(posit_fmt, 1 << posit_fmt.n)
        with pytest.raises(ValueError):
            decode(posit_fmt, -1)


class TestKnownValues:
    """Hand-worked posit<8,0> encodings."""

    @pytest.mark.parametrize(
        "bits, value",
        [
            (0b01000000, 1),
            (0b01100000, 2),
            (0b01010000, Fraction(3, 2)),
            (0b00100000, Fraction(1, 2)),
            (0b01111111, 64),  # maxpos = useed^6
            (0b00000001, Fraction(1, 64)),  # minpos
            (0b11000000, -1),
            (0b10000001, -64),  # most negative
        ],
    )
    def test_posit8_es0(self, bits, value):
        fmt = standard_format(8, 0)
        assert decode(fmt, bits).to_fraction() == Fraction(value)

    @pytest.mark.parametrize(
        "bits, value",
        [
            (0b01000000, 1),
            (0b01100000, 4),  # useed = 4 at es=1
            (0b01111111, 4**6),  # maxpos
            (0b01010000, 2),  # exponent bit set
            (0b01001000, Fraction(3, 2)),  # first fraction bit
        ],
    )
    def test_posit8_es1(self, bits, value):
        fmt = standard_format(8, 1)
        assert decode(fmt, bits).to_fraction() == Fraction(value)

    def test_posit16_one(self):
        fmt = standard_format(16, 1)
        assert decode(fmt, 0b0100000000000000).to_fraction() == 1


class TestFieldExtraction:
    def test_sign_extraction(self, posit_fmt):
        for bits in posit_fmt.all_patterns():
            d = decode(posit_fmt, bits)
            if d.is_zero or d.is_nar:
                continue
            assert d.sign == (bits >> (posit_fmt.n - 1))

    def test_negation_symmetry(self, posit_fmt):
        """decode(-p) must give the exact negated value of decode(p)."""
        for bits in posit_fmt.all_patterns():
            d = decode(posit_fmt, bits)
            if d.is_zero or d.is_nar:
                continue
            neg = ((1 << posit_fmt.n) - bits) & posit_fmt.mask
            assert decode(posit_fmt, neg).to_fraction() == -d.to_fraction()

    def test_scale_consistency(self, posit_fmt):
        for bits in posit_fmt.all_patterns():
            d = decode(posit_fmt, bits)
            if d.is_zero or d.is_nar:
                continue
            assert d.scale == (d.regime << posit_fmt.es) + d.exponent
            assert posit_fmt.min_scale <= d.scale <= posit_fmt.max_scale

    def test_value_formula(self, posit_fmt):
        """Paper eq. (2): value = (-1)^s * useed^k * 2^e * 1.f."""
        useed = Fraction(posit_fmt.useed)
        for bits in posit_fmt.all_patterns():
            d = decode(posit_fmt, bits)
            if d.is_zero or d.is_nar:
                continue
            one_f = Fraction(d.significand, 1 << d.fraction_bits)
            expected = (useed**d.regime) * (Fraction(2) ** d.exponent) * one_f
            if d.sign:
                expected = -expected
            assert d.to_fraction() == expected

    def test_fraction_bits_bounds(self, posit_fmt):
        for bits in posit_fmt.all_patterns():
            d = decode(posit_fmt, bits)
            assert 0 <= d.fraction_bits <= posit_fmt.max_fraction_bits
            assert 0 <= d.fraction < (1 << max(1, d.fraction_bits))

    def test_significand_fixed_alignment(self, posit_fmt):
        """Aligned significand always has the multiplier input width."""
        top = 1 << posit_fmt.max_fraction_bits
        for bits in posit_fmt.all_patterns():
            d = decode(posit_fmt, bits)
            if d.is_zero or d.is_nar:
                continue
            assert top <= d.significand_fixed < 2 * top

    def test_all_values_distinct(self, posit_fmt):
        """Every pattern encodes a distinct value (posits have no redundancy)."""
        values = set()
        for bits in posit_fmt.all_patterns():
            d = decode(posit_fmt, bits)
            if d.is_nar:
                continue
            values.add(d.to_fraction())
        assert len(values) == posit_fmt.num_patterns - 1

    def test_monotone_in_signed_pattern_order(self, posit_fmt):
        """Values are ordered like two's-complement patterns (posit property)."""
        pairs = []
        for bits in posit_fmt.all_patterns():
            d = decode(posit_fmt, bits)
            if d.is_nar:
                continue
            signed = bits - (1 << posit_fmt.n) if bits & posit_fmt.sign_mask else bits
            pairs.append((signed, d.to_fraction()))
        pairs.sort()
        values = [v for _, v in pairs]
        assert values == sorted(values)
