"""Tests for the Quire (Kulisch accumulator)."""

from fractions import Fraction

import pytest

from repro.posit import Posit, Quire, encode_fraction
from repro.posit.format import standard_format

P8 = standard_format(8, 1)


def posits(fmt, values):
    return [Posit.from_value(fmt, v) for v in values]


class TestBasics:
    def test_empty_quire_is_zero(self, posit_fmt):
        q = Quire(posit_fmt)
        assert q.to_fraction() == 0
        assert q.to_posit().is_zero

    def test_add_single(self, posit_fmt):
        q = Quire(posit_fmt)
        p = Posit.minpos(posit_fmt)
        q.add(p)
        assert q.to_fraction() == p.to_fraction()
        assert q.to_posit() == p

    def test_clear(self):
        q = Quire(P8)
        q.add(Posit.from_value(P8, 1.0))
        q.clear()
        assert q.to_fraction() == 0 and q.count == 0

    def test_load_bias(self):
        q = Quire(P8)
        bias = Posit.from_value(P8, 0.5)
        q.load(bias)
        assert q.to_fraction() == Fraction(1, 2)

    def test_count_tracks_macs(self):
        q = Quire(P8)
        q.multiply_accumulate(Posit.from_value(P8, 1.0), Posit.from_value(P8, 2.0))
        q.multiply_accumulate(Posit.zero(P8), Posit.from_value(P8, 2.0))
        assert q.count == 2

    def test_nar_rejected(self):
        q = Quire(P8)
        with pytest.raises(ArithmeticError):
            q.add(Posit.nar(P8))
        with pytest.raises(ArithmeticError):
            q.multiply_accumulate(Posit.nar(P8), Posit.from_value(P8, 1.0))

    def test_format_mismatch_rejected(self):
        q = Quire(P8)
        with pytest.raises(TypeError):
            q.add(Posit.from_value(standard_format(7, 0), 1.0))


class TestExactness:
    def test_dot_is_exact_then_rounded_once(self, posit_fmt, rng):
        for _ in range(50):
            k = int(rng.integers(1, 16))
            w_bits = rng.integers(0, posit_fmt.num_patterns, size=k)
            a_bits = rng.integers(0, posit_fmt.num_patterns, size=k)
            ws = [
                Posit.from_bits(posit_fmt, int(b))
                if int(b) != posit_fmt.nar_pattern
                else Posit.zero(posit_fmt)
                for b in w_bits
            ]
            xs = [
                Posit.from_bits(posit_fmt, int(b))
                if int(b) != posit_fmt.nar_pattern
                else Posit.zero(posit_fmt)
                for b in a_bits
            ]
            q = Quire(posit_fmt)
            out = q.dot(ws, xs)
            exact = sum(
                (w.to_fraction() * x.to_fraction() for w, x in zip(ws, xs)),
                Fraction(0),
            )
            assert q.to_fraction() == exact
            assert out.bits == encode_fraction(posit_fmt, exact)

    def test_cancellation_is_exact(self):
        """maxpos^2 - maxpos^2 + minpos^2 == minpos^2 in a quire."""
        q = Quire(P8)
        mx, mn = Posit.maxpos(P8), Posit.minpos(P8)
        q.multiply_accumulate(mx, mx)
        q.multiply_accumulate(-mx, mx)
        q.multiply_accumulate(mn, mn)
        assert q.to_fraction() == mn.to_fraction() ** 2
        # A rounded result would have lost the minpos^2 term entirely.
        assert q.to_posit() == mn  # minpos^2 underflows to minpos on rounding

    def test_sum_below_minpos_rounds_to_minpos(self):
        q = Quire(P8)
        mn = Posit.minpos(P8)
        q.multiply_accumulate(mn, mn)
        assert not q.to_posit().is_zero

    def test_zero_inputs_accumulate_nothing(self):
        q = Quire(P8)
        q.multiply_accumulate(Posit.zero(P8), Posit.maxpos(P8))
        assert q.to_fraction() == 0

    def test_dot_length_mismatch(self):
        q = Quire(P8)
        with pytest.raises(ValueError):
            q.dot(posits(P8, [1]), posits(P8, [1, 2]))


class TestHardwareInvariant:
    """Eq. (4)'s sizing claim: alignment and magnitude of real accumulations."""

    def test_fits_hw_for_random_dots(self, posit_fmt, rng):
        for _ in range(30):
            k = int(rng.integers(1, 32))
            q = Quire(posit_fmt)
            for _ in range(k):
                wb = int(rng.integers(0, posit_fmt.num_patterns))
                ab = int(rng.integers(0, posit_fmt.num_patterns))
                if wb == posit_fmt.nar_pattern:
                    wb = 0
                if ab == posit_fmt.nar_pattern:
                    ab = 0
                q.multiply_accumulate(
                    Posit.from_bits(posit_fmt, wb), Posit.from_bits(posit_fmt, ab)
                )
            assert q.fits_hw()

    def test_fits_hw_worst_case_magnitude(self, posit_fmt):
        """k maxpos^2 products exactly fill the carry headroom."""
        k = 8
        q = Quire(posit_fmt)
        mx = Posit.maxpos(posit_fmt)
        for _ in range(k):
            q.multiply_accumulate(mx, mx)
        assert q.fits_hw(k)
