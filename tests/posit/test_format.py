"""Tests for repro.posit.format."""

from fractions import Fraction

import math
import pytest

from repro.posit import PositFormat, posit8, posit16, posit32, standard_format


class TestValidation:
    def test_minimum_width(self):
        with pytest.raises(ValueError):
            PositFormat(2, 0)

    def test_negative_es(self):
        with pytest.raises(ValueError):
            PositFormat(8, -1)

    def test_huge_es_rejected(self):
        with pytest.raises(ValueError):
            PositFormat(8, 9)

    def test_non_integer_rejected(self):
        with pytest.raises(TypeError):
            PositFormat(8.0, 0)

    def test_smallest_legal_format(self):
        fmt = PositFormat(3, 0)
        assert fmt.num_patterns == 8
        assert fmt.maxpos_pattern == 0b011

    def test_frozen(self):
        with pytest.raises(AttributeError):
            posit8.n = 9


class TestBitConstants:
    def test_masks(self, posit_fmt):
        assert posit_fmt.mask == (1 << posit_fmt.n) - 1
        assert posit_fmt.sign_mask == 1 << (posit_fmt.n - 1)

    def test_reserved_patterns_distinct(self, posit_fmt):
        assert posit_fmt.zero_pattern != posit_fmt.nar_pattern
        assert posit_fmt.zero_pattern == 0
        assert posit_fmt.nar_pattern == posit_fmt.sign_mask

    def test_maxpos_minpos_patterns(self, posit_fmt):
        assert posit_fmt.maxpos_pattern == posit_fmt.sign_mask - 1
        assert posit_fmt.minpos_pattern == 1

    def test_num_patterns(self, posit_fmt):
        assert posit_fmt.num_patterns == 2**posit_fmt.n
        assert len(list(posit_fmt.all_patterns())) == posit_fmt.num_patterns


class TestValueConstants:
    def test_useed(self):
        assert PositFormat(8, 0).useed == 2
        assert PositFormat(8, 1).useed == 4
        assert PositFormat(8, 2).useed == 16
        assert PositFormat(16, 3).useed == 256

    def test_maxpos_is_useed_power(self, posit_fmt):
        expected = Fraction(posit_fmt.useed) ** (posit_fmt.n - 2)
        assert posit_fmt.maxpos == expected

    def test_minpos_is_reciprocal_of_maxpos(self, posit_fmt):
        assert posit_fmt.minpos * posit_fmt.maxpos == 1

    def test_scale_bounds(self, posit_fmt):
        assert posit_fmt.max_scale == (posit_fmt.n - 2) * 2**posit_fmt.es
        assert posit_fmt.min_scale == -posit_fmt.max_scale

    def test_dynamic_range_formula(self, posit_fmt):
        expected = math.log10(float(posit_fmt.maxpos / posit_fmt.minpos))
        assert posit_fmt.dynamic_range == pytest.approx(expected, rel=1e-9)

    def test_paper_8bit_dynamic_ranges(self):
        # log10(useed^(2n-4)): es=0 -> 12*log10(2) ~ 3.61.
        assert PositFormat(8, 0).dynamic_range == pytest.approx(3.612, abs=0.01)
        assert PositFormat(8, 2).dynamic_range == pytest.approx(14.45, abs=0.01)


class TestFieldWidths:
    def test_max_fraction_bits(self):
        assert PositFormat(8, 0).max_fraction_bits == 5
        assert PositFormat(8, 2).max_fraction_bits == 3
        assert PositFormat(5, 2).max_fraction_bits == 0
        assert PositFormat(3, 0).max_fraction_bits == 0

    def test_significand_bits(self, posit_fmt):
        assert posit_fmt.significand_bits == 1 + posit_fmt.max_fraction_bits

    def test_scale_bias_matches_paper(self, posit_fmt):
        # bias = 2^(es+1) * (n-2) (Section III-D).
        assert posit_fmt.scale_bias == 2 ** (posit_fmt.es + 1) * (posit_fmt.n - 2)


class TestQuireWidth:
    def test_equation4_example(self):
        # posit<8,2>, k=16: 2^4 * 6 + 2 + 4 = 102.
        assert PositFormat(8, 2).quire_bits(16) == 102

    def test_equation4_k1(self, posit_fmt):
        es, n = posit_fmt.es, posit_fmt.n
        assert posit_fmt.quire_bits(1) == 2 ** (es + 2) * (n - 2) + 2

    def test_monotone_in_k(self, posit_fmt):
        widths = [posit_fmt.quire_bits(k) for k in (1, 2, 16, 1024)]
        assert widths == sorted(widths)

    def test_invalid_k(self, posit_fmt):
        with pytest.raises(ValueError):
            posit_fmt.quire_bits(0)


class TestStandardFormats:
    def test_predefined(self):
        assert (posit8.n, posit8.es) == (8, 0)
        assert (posit16.n, posit16.es) == (16, 1)
        assert (posit32.n, posit32.es) == (32, 2)

    def test_memoized(self):
        assert standard_format(8, 1) is standard_format(8, 1)

    def test_str(self):
        assert str(posit8) == "posit<8,0>"
