"""Tests for repro.posit.encode (convergent rounding & encoding)."""

from fractions import Fraction

import pytest

from repro.posit import decode, encode_exact, encode_float, encode_fraction
from repro.posit.format import standard_format


def all_real_values(fmt):
    """(value, bits) for every non-NaR pattern, sorted by value."""
    pairs = []
    for bits in fmt.all_patterns():
        d = decode(fmt, bits)
        if d.is_nar:
            continue
        pairs.append((d.to_fraction(), bits))
    pairs.sort()
    return pairs


class TestExactRoundtrip:
    def test_every_pattern_roundtrips(self, posit_fmt):
        for bits in posit_fmt.all_patterns():
            d = decode(posit_fmt, bits)
            if d.is_nar:
                continue
            assert encode_fraction(posit_fmt, d.to_fraction()) == bits

    def test_zero(self, posit_fmt):
        assert encode_fraction(posit_fmt, Fraction(0)) == 0
        assert encode_exact(posit_fmt, 0, 0, 0) == 0

    def test_negative_mantissa_rejected(self, posit_fmt):
        with pytest.raises(ValueError):
            encode_exact(posit_fmt, 0, -1, 0)


class TestSaturation:
    def test_above_maxpos_clamps(self, posit_fmt):
        big = posit_fmt.maxpos * 1000
        assert encode_fraction(posit_fmt, big) == posit_fmt.maxpos_pattern
        assert (
            encode_fraction(posit_fmt, -big)
            == ((1 << posit_fmt.n) - posit_fmt.maxpos_pattern) & posit_fmt.mask
        )

    def test_just_above_maxpos_clamps(self, posit_fmt):
        value = posit_fmt.maxpos * Fraction(3, 2)
        assert encode_fraction(posit_fmt, value) == posit_fmt.maxpos_pattern

    def test_below_minpos_never_rounds_to_zero(self, posit_fmt):
        tiny = posit_fmt.minpos / 1000
        assert encode_fraction(posit_fmt, tiny) == posit_fmt.minpos_pattern

    def test_half_minpos_rounds_to_minpos(self, posit_fmt):
        # The posit standard: (0, minpos) rounds to minpos, never to zero.
        assert (
            encode_fraction(posit_fmt, posit_fmt.minpos / 2)
            == posit_fmt.minpos_pattern
        )

    def test_never_produces_nar(self, posit_fmt):
        probe_values = [
            posit_fmt.maxpos * 2,
            -posit_fmt.maxpos * 2,
            posit_fmt.minpos / 3,
            -posit_fmt.minpos / 3,
        ]
        for value in probe_values:
            assert encode_fraction(posit_fmt, value) != posit_fmt.nar_pattern


class TestRoundToNearestEven:
    def test_midpoints_tie_to_even_within_blocks(self, posit_fmt):
        """Exactly halfway between same-scale neighbors -> the even pattern.

        Within a regime/exponent block the value lattice is uniform, so the
        hardware's pattern-space rounding (Algorithm 2) coincides with
        value-space round-to-nearest-even.  Cross-block pairs are governed
        by pattern-space semantics, tested separately below.
        """
        from repro.posit import decode as dec

        pairs = all_real_values(posit_fmt)
        for (v1, b1), (v2, b2) in zip(pairs, pairs[1:]):
            if v1 <= 0 <= v2:
                continue  # zero boundary: "never round to zero" rule
            if dec(posit_fmt, b1).scale != dec(posit_fmt, b2).scale:
                continue  # taper boundary: pattern-space semantics
            mid = (v1 + v2) / 2
            got = encode_fraction(posit_fmt, mid)
            assert got in (b1, b2), f"midpoint escaped neighbors: {mid}"
            mag1 = b1 if v1 >= 0 else ((1 << posit_fmt.n) - b1) & posit_fmt.mask
            expect = b1 if mag1 % 2 == 0 else b2
            assert got == expect, (float(v1), float(v2), got)

    def test_boundaries_are_n_plus_1_bit_posits(self, posit_fmt):
        """Pattern-space rounding boundaries interleave as (n+1)-bit posits.

        The value that separates rounding to pattern p from rounding to
        pattern p+1 is exactly the (n+1)-bit posit whose pattern is the odd
        value 2p+1 (same es) — the defining property of the paper's
        Algorithm 2 guard/sticky rounding.  Just below the boundary must
        round down, just above must round up.
        """
        if posit_fmt.n >= 12:
            return  # wider variants covered by the narrower ones
        wide = standard_format(posit_fmt.n + 1, posit_fmt.es)
        pairs = all_real_values(posit_fmt)
        eps = Fraction(1, 1 << 80)
        for (v1, b1), (v2, b2) in zip(pairs, pairs[1:]):
            if v1 <= 0 <= v2:
                continue
            signed1 = b1 - (1 << posit_fmt.n) if b1 & posit_fmt.sign_mask else b1
            mid_bits = (2 * signed1 + 1) % (1 << wide.n)
            boundary = decode(wide, mid_bits).to_fraction()
            assert v1 < boundary < v2, "interleaving property violated"
            below = encode_fraction(posit_fmt, boundary - eps * abs(boundary))
            above = encode_fraction(posit_fmt, boundary + eps * abs(boundary))
            assert below == b1, (float(v1), float(boundary), float(v2))
            assert above == b2, (float(v1), float(boundary), float(v2))

    def test_nearest_of_random_rationals(self, posit_fmt, rng):
        """Faithful rounding: the result always brackets the input."""
        pairs = all_real_values(posit_fmt)
        values = [p[0] for p in pairs]
        for _ in range(200):
            x = Fraction(int(rng.integers(-(10**6), 10**6)), int(rng.integers(1, 10**6)))
            got = encode_fraction(posit_fmt, x)
            got_value = decode(posit_fmt, got).to_fraction()
            if x != 0 and abs(x) < posit_fmt.minpos:
                # Standard rule: never round a nonzero value to zero.
                sign = -1 if x < 0 else 1
                assert got_value == sign * posit_fmt.minpos
                continue
            if abs(x) > posit_fmt.maxpos:
                assert abs(got_value) == posit_fmt.maxpos
                continue
            # Faithful: got_value is one of the two bracketing posits.
            below = max((v for v in values if v <= x), default=None)
            above = min((v for v in values if v >= x), default=None)
            assert got_value in (below, above)

    def test_quantization_idempotent(self, posit_fmt):
        for bits in posit_fmt.all_patterns():
            d = decode(posit_fmt, bits)
            if d.is_nar:
                continue
            again = encode_fraction(posit_fmt, d.to_fraction())
            assert again == bits


class TestEncodeFloat:
    def test_matches_fraction_path(self, posit_fmt, rng):
        for _ in range(200):
            x = float(rng.normal()) * 4
            assert encode_float(posit_fmt, x) == encode_fraction(
                posit_fmt, Fraction(x)
            )

    def test_rejects_nan(self, posit_fmt):
        with pytest.raises(ValueError):
            encode_float(posit_fmt, float("nan"))

    def test_rejects_inf(self, posit_fmt):
        with pytest.raises(ValueError):
            encode_float(posit_fmt, float("inf"))


class TestNegationSymmetry:
    def test_encode_negative_is_twos_complement(self, posit_fmt, rng):
        for _ in range(100):
            x = Fraction(int(rng.integers(1, 10**6)), int(rng.integers(1, 10**6)))
            pos = encode_fraction(posit_fmt, x)
            neg = encode_fraction(posit_fmt, -x)
            assert neg == ((1 << posit_fmt.n) - pos) & posit_fmt.mask


class TestWideMantissas:
    def test_quire_scale_inputs(self, posit_fmt):
        """Encoding must be exact for mantissas far wider than the format."""
        # 1 + 2^-200: rounds to 1 exactly (sticky far below ULP).
        mant = (1 << 200) + 1
        one = encode_fraction(posit_fmt, Fraction(1))
        assert encode_exact(posit_fmt, 0, mant, -200) == one

    def test_sticky_bit_matters(self):
        """A 1 ULP/2 + epsilon value must round up (sticky forces it)."""
        fmt = standard_format(8, 0)
        one = 0b01000000
        ulp = Fraction(1, 32)  # 5 fraction bits at scale 0
        value = 1 + ulp / 2 + Fraction(1, 1 << 60)
        got = encode_fraction(fmt, value)
        assert decode(fmt, got).to_fraction() == 1 + ulp
        # Without the epsilon it is a tie -> even (1.0 has even pattern).
        assert encode_fraction(fmt, 1 + ulp / 2) == one
