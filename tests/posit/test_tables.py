"""Tests for the posit lookup tables."""

import numpy as np
import pytest

from repro.posit import (
    Posit,
    decode,
    dequantize_array,
    nearest_pattern_table,
    quantize_array,
    tables_for,
)
from repro.posit.format import PositFormat, standard_format
from repro.posit.tables import MAX_TABLE_BITS

P8 = standard_format(8, 1)


class TestTableConstruction:
    def test_cached(self):
        assert tables_for(P8) is tables_for(P8)

    def test_too_wide_rejected(self):
        with pytest.raises(ValueError):
            tables_for(PositFormat(MAX_TABLE_BITS + 1, 1))

    def test_tables_mirror_scalar_decode(self, posit_fmt):
        t = tables_for(posit_fmt)
        for bits in posit_fmt.all_patterns():
            d = decode(posit_fmt, bits)
            if d.is_nar:
                assert t.is_nar[bits]
                assert np.isnan(t.float_value[bits])
                continue
            if d.is_zero:
                assert t.is_zero[bits]
                assert t.float_value[bits] == 0.0
                continue
            assert t.sign[bits] == d.sign
            assert t.scale[bits] == d.scale
            assert t.significand[bits] == d.significand_fixed
            assert t.float_value[bits] == float(d.to_fraction())

    def test_frac_shift(self, posit_fmt):
        assert tables_for(posit_fmt).frac_shift == posit_fmt.max_fraction_bits


class TestPatternMaps:
    def test_negate_table(self, posit_fmt):
        t = tables_for(posit_fmt)
        for bits in posit_fmt.all_patterns():
            if bits in (posit_fmt.zero_pattern, posit_fmt.nar_pattern):
                assert t.negate[bits] == bits
                continue
            neg = int(t.negate[bits])
            d = decode(posit_fmt, bits)
            assert decode(posit_fmt, neg).to_fraction() == -d.to_fraction()

    def test_relu_table(self, posit_fmt):
        t = tables_for(posit_fmt)
        for bits in posit_fmt.all_patterns():
            out = int(t.relu[bits])
            if bits == posit_fmt.nar_pattern:
                assert out == posit_fmt.zero_pattern
                continue
            d = decode(posit_fmt, bits)
            if d.is_zero or d.sign:
                assert out == posit_fmt.zero_pattern
            else:
                assert out == bits


class TestQuantizeArrays:
    def test_quantize_matches_scalar(self, rng):
        values = rng.normal(size=50) * 3
        got = quantize_array(P8, values)
        for v, bits in zip(values, got):
            assert int(bits) == Posit.from_value(P8, float(v)).bits

    def test_quantize_rejects_nan(self):
        with pytest.raises(ValueError):
            quantize_array(P8, np.array([np.nan]))

    def test_quantize_preserves_shape(self, rng):
        values = rng.normal(size=(3, 4))
        assert quantize_array(P8, values).shape == (3, 4)

    def test_dequantize_roundtrip(self, rng):
        values = rng.normal(size=20)
        patterns = quantize_array(P8, values)
        back = dequantize_array(P8, patterns)
        again = quantize_array(P8, back)
        assert np.array_equal(patterns, again)


class TestNearestPatternTable:
    def test_sorted_and_complete(self, posit_fmt):
        values, patterns = nearest_pattern_table(posit_fmt)
        assert len(values) == posit_fmt.num_patterns - 1  # all but NaR
        assert np.all(np.diff(values) > 0)  # strictly increasing, no dupes
        t = tables_for(posit_fmt)
        for v, p in zip(values, patterns):
            assert t.float_value[p] == v
