"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.fixedpoint import fixed_format
from repro.floatp import float_format
from repro.posit import standard_format


@pytest.fixture(scope="session")
def rng():
    """A session-wide deterministic RNG."""
    return np.random.default_rng(20190319)  # DATE 2019 conference date


@pytest.fixture(
    params=[(5, 0), (6, 0), (6, 1), (7, 1), (8, 0), (8, 1), (8, 2)],
    ids=lambda p: f"posit{p[0]}es{p[1]}",
    scope="session",
)
def posit_fmt(request):
    """Posit formats covering the paper's sweep range."""
    n, es = request.param
    return standard_format(n, es)


@pytest.fixture(
    params=[(2, 5), (3, 4), (4, 3), (5, 2)],
    ids=lambda p: f"float_we{p[0]}wf{p[1]}",
    scope="session",
)
def float_fmt(request):
    """8-bit float formats the paper sweeps."""
    we, wf = request.param
    return float_format(we, wf)


@pytest.fixture(
    params=[(8, 2), (8, 4), (8, 7), (6, 3), (5, 2)],
    ids=lambda p: f"fixed{p[0]}q{p[1]}",
    scope="session",
)
def fixed_fmt(request):
    """Fixed-point formats across the sweep range."""
    n, q = request.param
    return fixed_format(n, q)
