"""Chaos scenarios against the live multi-process worker pool.

Same contract as ``test_chaos.py``, aimed at the two new injection
points: ``pool.worker`` (a worker process dies mid-batch — the
supervisor must restart it and no surviving answer may change a bit)
and ``pool.route`` (the manager's control channel to a worker tears
mid-``/swap`` — the bounded retries must still converge every worker's
registry).  Results feed the same ``REPRO_CHAOS_JSON`` report via the
shared module fixture idiom.

Needs multi-core like ``tests/serve/test_pool.py`` (``REPRO_POOL_TESTS=1``
forces), and rides in the slow suite.
"""

from __future__ import annotations

import json
import os
import signal  # noqa: F401 - handy in pdb sessions against live pools
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro import faults
from repro.serve import start_pool_in_thread
from repro.serve.registry import build_served_model

from tests.serve.conftest import tiny_loader

pytestmark = [
    pytest.mark.slow,
    pytest.mark.skipif(
        (os.cpu_count() or 1) < 2 and not os.environ.get("REPRO_POOL_TESTS"),
        reason="worker-pool chaos wants >= 2 cores "
               "(set REPRO_POOL_TESTS=1 to force)",
    ),
]

_RECORDS: list[dict] = []


@pytest.fixture(scope="module", autouse=True)
def chaos_report():
    """Append this module's scenarios to ``REPRO_CHAOS_JSON`` if set."""
    yield
    out = os.environ.get("REPRO_CHAOS_JSON")
    record = {
        "scenarios": _RECORDS,
        "total_injected": sum(r["injected"] for r in _RECORDS),
    }
    if out:
        path = out.replace(".json", ".pool.json")
        with open(path, "w") as fh:
            json.dump(record, fh, indent=2)
            fh.write("\n")
    print("pool chaos:", json.dumps(record))


def _record(scenario: str, injected: int, recovered: bool,
            bit_identity_failures: int, **detail) -> dict:
    entry = {
        "scenario": scenario,
        "injected": injected,
        "recovered": recovered,
        "bit_identity_failures": bit_identity_failures,
        **detail,
    }
    _RECORDS.append(entry)
    return entry


def _post(port, path, payload, timeout=60):
    req = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(req, timeout=timeout) as resp:
        return resp.status, json.loads(resp.read())


def _predict_retrying(port, x, attempts=5):
    """Predict with retries: a kill mid-batch resets that connection, and
    the retry must land on a sibling (or the restarted worker).  The
    answer itself is never allowed to vary."""
    last = None
    for _ in range(attempts):
        try:
            return _post(port, "/predict", {
                "dataset": "toy", "format": "posit8_1",
                "inputs": x.tolist(),
            })
        except (urllib.error.URLError, ConnectionError, OSError) as exc:
            last = exc
            time.sleep(0.1)
    raise AssertionError(f"predict never recovered: {last}")


def test_worker_killed_mid_batch_pool_recovers(monkeypatch, tmp_path):
    """A worker process dies *inside a batch execution* (``pool.worker``,
    phase=batch).  The supervisor restarts it, the retried request is
    served by a sibling, and every answer stays bit-identical."""
    trace = tmp_path / "pool_trace.jsonl"
    monkeypatch.setenv(
        faults.ENV_SPEC, "pool.worker=kill:times=1:match=phase=batch"
    )
    monkeypatch.setenv(faults.ENV_TRACE, str(trace))
    handle = start_pool_in_thread(
        port=0, workers=2, mode="reuseport",
        loader_spec="tests.serve.conftest:tiny_loader",
        server_kwargs={"max_delay_ms": 1.0},
        restart_backoff_s=0.1, seed=3,
    )
    direct = build_served_model("toy", "posit8_1", tiny_loader)
    mismatches = 0
    try:
        port = handle.pool.port
        rng = np.random.default_rng(42)
        for _ in range(30):
            x = rng.normal(size=(2, 4))
            status, body = _predict_retrying(port, x)
            assert status == 200
            if body["predictions"] != direct.network.predict(x).tolist():
                mismatches += 1
        events = [
            e for e in faults.read_trace(trace) if e.point == "pool.worker"
        ]
        # The kill demonstrably fired in a worker process (not ours).
        assert len(events) == 1
        assert events[0].pid != os.getpid()
        assert "phase=batch" in events[0].context
        # The supervisor brought the pool back to full strength.
        deadline = time.monotonic() + 60.0
        workers = handle.pool._workers
        while time.monotonic() < deadline:
            if all(w.alive for w in workers):
                break
            time.sleep(0.05)
        recovered = all(w.alive for w in workers)
        restarts = sum(w.restarts for w in workers)
    finally:
        monkeypatch.delenv(faults.ENV_SPEC)
        monkeypatch.delenv(faults.ENV_TRACE)
        handle.stop()
    entry = _record(
        "pool_worker_kill_mid_batch",
        injected=len(events),
        recovered=recovered,
        bit_identity_failures=mismatches,
        restarts=restarts,
    )
    assert entry["recovered"]
    assert entry["bit_identity_failures"] == 0
    assert restarts >= 1


def test_control_channel_drop_during_swap_converges(tmp_path):
    """The manager->worker control hop tears exactly once during a
    ``/swap`` fan-out (``pool.route``).  The bounded retries absorb it:
    the swap still reports applied on *every* worker and later answers
    are bit-identical."""
    handle = start_pool_in_thread(
        port=0, workers=2, mode="reuseport",
        loader_spec="tests.serve.conftest:tiny_loader",
        server_kwargs={"max_delay_ms": 1.0},
        restart_backoff_s=0.1, seed=5,
    )
    direct = build_served_model("toy", "posit8_1", tiny_loader)
    mismatches = 0
    try:
        port = handle.pool.port
        x = np.linspace(-2.0, 2.0, 8).reshape(2, 4)
        _predict_retrying(port, x)  # warm the model in some worker
        with faults.inject(
            "pool.route", "raise", times=1, match="path=/swap"
        ) as injector:
            status, body = _post(port, "/swap", {
                "dataset": "toy", "format": "posit8_1",
            })
        assert status == 200
        applied = body["pool"]["applied"]
        unreachable = body["pool"]["unreachable"]
        injected = injector.fired()
        # Swapped registries must still serve the exact same bits.
        for _ in range(10):
            _, after = _predict_retrying(port, x)
            if after["predictions"] != direct.network.predict(x).tolist():
                mismatches += 1
    finally:
        handle.stop()
    entry = _record(
        "pool_control_drop_during_swap",
        injected=injected,
        recovered=(applied == [0, 1] and unreachable == []),
        bit_identity_failures=mismatches,
    )
    assert entry["injected"] == 1
    assert entry["recovered"]
    assert entry["bit_identity_failures"] == 0
