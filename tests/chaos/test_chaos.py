"""Slow-suite chaos matrix: seeded faults against the live stack.

Each scenario arms the fault harness (``repro.faults``) against a real
component — the process-pool runner, the artifact store, a live server
with real sockets — and asserts the self-healing contract end to end:

* the fault demonstrably fired (``injected >= 1``, trace-backed where
  the victim is another process);
* the system recovered without operator intervention;
* every recovered answer is **bit-identical** to the fault-free path.

When ``REPRO_CHAOS_JSON`` names a path, a machine-readable report of
every scenario is written there for CI to archive and for
``benchmarks/check_chaos.py`` to guard.  The fast deterministic slices
of the same behaviours live in ``tests/analysis/test_resilience.py``,
``tests/serve/test_resilience.py``, and ``tests/faults``.
"""

from __future__ import annotations

import json
import os
import threading
from types import SimpleNamespace

import numpy as np
import pytest

from repro import faults
from repro.analysis.runner import SweepTask, run_sweeps
from repro.analysis.store import ArtifactStore
from repro.analysis.sweep import sweep_width, trained_model
from repro.nn.model import MLP
from repro.serve import ModelRegistry, ServeClient, ServeError, start_in_thread
from repro.serve.registry import build_served_model

pytestmark = pytest.mark.slow


def tiny_loader(dataset: str):
    """A ``TrainedModel``-shaped toy model (mirrors tests/serve/conftest)."""
    if dataset != "toy":
        raise KeyError(f"unknown dataset '{dataset}'")
    return SimpleNamespace(
        model=MLP((4, 6, 3), np.random.default_rng(3)),
        dataset=SimpleNamespace(
            class_names=("setosa", "versicolor", "virginica")
        ),
        float32_accuracy=0.9,
    )

_RECORDS: list[dict] = []


@pytest.fixture(scope="module", autouse=True)
def chaos_report():
    """Write the scenario matrix to ``REPRO_CHAOS_JSON`` after the run."""
    yield
    out = os.environ.get("REPRO_CHAOS_JSON")
    record = {
        "scenarios": _RECORDS,
        "total_injected": sum(r["injected"] for r in _RECORDS),
    }
    if out:
        with open(out, "w") as fh:
            json.dump(record, fh, indent=2)
            fh.write("\n")
    print("chaos:", json.dumps(record))


@pytest.fixture
def fresh_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
    monkeypatch.delenv(faults.ENV_SPEC, raising=False)
    monkeypatch.delenv(faults.ENV_TRACE, raising=False)
    trained_model.cache_clear()
    yield tmp_path
    trained_model.cache_clear()


def _record(scenario: str, injected: int, recovered: bool,
            bit_identity_failures: int, **detail) -> dict:
    entry = {
        "scenario": scenario,
        "injected": injected,
        "recovered": recovered,
        "bit_identity_failures": bit_identity_failures,
        **detail,
    }
    _RECORDS.append(entry)
    return entry


def test_worker_kill_mid_grid(fresh_cache, monkeypatch, tmp_path):
    """A pool worker dies mid-task; the grid rebuilds the pool, retries,
    and finishes bit-identical to a fault-free serial run."""
    trace = tmp_path / "trace.jsonl"
    monkeypatch.setenv(faults.ENV_SPEC, "runner.task=kill:times=1")
    monkeypatch.setenv(faults.ENV_TRACE, str(trace))
    messages: list[str] = []
    survived = run_sweeps(
        ("iris",), (5, 6), jobs=2, progress=messages.append,
        retry_backoff_s=0.0,
    )
    events = faults.read_trace(trace)
    monkeypatch.delenv(faults.ENV_SPEC)
    trained_model.cache_clear()
    mismatches = sum(
        1 for width in (5, 6)
        if survived[SweepTask("iris", width)] != sweep_width("iris", width)
    )
    entry = _record(
        "worker_kill",
        injected=len(events),
        recovered=len(survived) == 2,
        bit_identity_failures=mismatches,
        pool_crashes=sum("pool crashed" in m for m in messages),
    )
    assert entry["injected"] == 1
    assert entry["recovered"] and entry["bit_identity_failures"] == 0


def test_corrupt_artifact_self_heals(tmp_path):
    """A publish corrupted on disk is detected, deleted, and the re-publish
    round-trips bit-identical."""
    store = ArtifactStore(tmp_path)
    arrays = {
        "w0": np.arange(20, dtype=np.float64).reshape(4, 5),
        "b0": np.linspace(-2.0, 2.0, 5),
    }
    meta = {"topology": [4, 5], "seed": 19}
    with faults.inject("store.publish", "corrupt") as injector:
        store.save_model("victim", arrays, meta)
    healed = store.load_model("victim") is None
    rebuilt_ok = False
    mismatches = 0
    if healed:
        store.save_model("victim", arrays, meta)
        loaded_arrays, loaded_meta = store.load_model("victim")
        rebuilt_ok = loaded_meta == meta
        mismatches = sum(
            1 for name in arrays
            if not np.array_equal(loaded_arrays[name], arrays[name])
        )
    entry = _record(
        "corrupt_artifact",
        injected=injector.fired(),
        recovered=healed and rebuilt_ok,
        bit_identity_failures=mismatches,
    )
    assert entry["injected"] == 1
    assert entry["recovered"] and entry["bit_identity_failures"] == 0


def test_socket_drop_retried_bit_identical(rng_factory=None):
    """Connections torn down mid-exchange; the bounded-retry client
    resends and every answer matches a direct predict."""
    registry = ModelRegistry(loader=tiny_loader)
    oracle = build_served_model("toy", "posit8_1", tiny_loader)
    gen = np.random.default_rng(19)
    mismatches = 0
    answered = 0
    with start_in_thread(registry=registry, port=0) as handle:
        with ServeClient(
            port=handle.server.port, retries=3, retry_backoff_s=0.001
        ) as client:
            client.warmup("toy", "posit8_1")
            with faults.inject(
                "client.recv", "drop", every=3, times=0
            ) as injector:
                for _ in range(12):
                    x = gen.normal(size=(int(gen.integers(1, 5)), 4))
                    body = client.predict("toy", "posit8_1", x)
                    answered += 1
                    expected = oracle.network.predict(x).tolist()
                    if body["predictions"] != expected:
                        mismatches += 1
    entry = _record(
        "socket_drop",
        injected=injector.fired(),
        recovered=answered == 12,
        bit_identity_failures=mismatches,
    )
    assert entry["injected"] >= 1
    assert entry["recovered"] and entry["bit_identity_failures"] == 0


def test_midbatch_exception_isolated():
    """A kernel fault poisons a coalesced batch; the batcher re-executes
    request-by-request so no caller ever sees the failure.  This scenario
    drives the real batcher directly (``asyncio.gather`` guarantees the
    wave coalesces into one batch) because over sockets the fault can
    land on a single-request batch, where propagating the error to that
    one caller is the *correct* poison-isolation behaviour."""
    import asyncio

    from repro.serve.batcher import MicroBatcher

    model = build_served_model("toy", "posit8_1", tiny_loader)
    gen = np.random.default_rng(19)
    waves = [
        [gen.normal(size=(2, 4)) for _ in range(8)] for _ in range(3)
    ]

    async def scenario():
        batcher = MicroBatcher(model, max_batch=16, max_delay_ms=20.0)
        served = []
        fired = 0
        for wave in waves:
            # One transient fault per wave: the first assembled batch
            # fails, every request in it is re-executed singly.
            with faults.inject("serve.batch", "raise", times=1) as injector:
                served.append(await asyncio.gather(
                    *(batcher.submit(model.quantize(x)) for x in wave),
                    return_exceptions=True,
                ))
            fired += injector.fired()
        stats = batcher.stats
        await batcher.close()
        return served, stats, fired

    served, stats, fired = asyncio.run(scenario())
    errors = sum(
        1 for wave in served for r in wave if isinstance(r, Exception)
    )
    mismatches = sum(
        1
        for wave, results in zip(waves, served)
        for x, r in zip(wave, results)
        if not isinstance(r, Exception)
        and not np.array_equal(r, model.network.predict(x))
    )
    entry = _record(
        "midbatch_exception",
        injected=fired,
        recovered=errors == 0,
        bit_identity_failures=mismatches,
        batch_retries=stats.batch_retries,
        client_visible_errors=errors,
    )
    assert entry["injected"] == 3
    assert entry["batch_retries"] == 3
    assert entry["recovered"] and entry["bit_identity_failures"] == 0


def test_deadline_and_shed_under_stall():
    """A stalling kernel backs the queue up; the server sheds (503) and
    expires deadlines (504) instead of piling on, and every request that
    *was* answered is bit-identical."""
    registry = ModelRegistry(loader=tiny_loader)
    oracle = build_served_model("toy", "posit8_1", tiny_loader)
    outcomes = {"ok": 0, "shed": 0, "expired": 0, "other": 0}
    mismatches = 0
    lock = threading.Lock()
    with start_in_thread(
        registry=registry, port=0, max_batch=1, max_delay_ms=0.1,
        queue_limit=4, shed_threshold=0.5,
    ) as handle:
        port = handle.server.port
        with ServeClient(port=port) as admin:
            admin.warmup("toy", "posit8_1")

        def worker(worker_id: int) -> None:
            gen = np.random.default_rng(200 + worker_id)
            nonlocal mismatches
            with ServeClient(port=port) as client:
                for i in range(3):
                    x = gen.normal(size=(1, 4))
                    deadline_ms = 1e-3 if (worker_id + i) % 2 else None
                    try:
                        body = client.predict(
                            "toy", "posit8_1", x, deadline_ms=deadline_ms
                        )
                    except ServeError as exc:
                        with lock:
                            if exc.status == 503:
                                outcomes["shed"] += 1
                            elif exc.status == 504:
                                outcomes["expired"] += 1
                            else:
                                outcomes["other"] += 1
                        continue
                    except Exception:
                        with lock:
                            outcomes["other"] += 1
                        continue
                    expected = oracle.network.predict(x).tolist()
                    with lock:
                        outcomes["ok"] += 1
                        if body["predictions"] != expected:
                            mismatches += 1

        with faults.inject(
            "serve.batch", "stall", stall_s=0.05, times=0
        ) as injector:
            threads = [
                threading.Thread(target=worker, args=(w,)) for w in range(8)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        with ServeClient(port=port) as admin:
            stats = admin.stats()
            health = admin.health()
    entry = _record(
        "deadline_shed",
        injected=injector.fired(),
        recovered=outcomes["other"] == 0,
        bit_identity_failures=mismatches,
        outcomes=outcomes,
        server_shed=stats["shed"],
        server_deadline_expired=stats["deadline_expired"],
    )
    assert entry["injected"] >= 1
    assert outcomes["other"] == 0
    # The protective machinery demonstrably engaged: every refusal the
    # clients saw is accounted for in the server's counters.
    assert outcomes["shed"] + outcomes["expired"] >= 1
    assert stats["shed"] >= outcomes["shed"]
    assert stats["deadline_expired"] >= outcomes["expired"]
    assert health["shed_mode"] is True
    assert entry["recovered"] and entry["bit_identity_failures"] == 0
