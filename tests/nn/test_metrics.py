"""Tests for classification metrics."""

import numpy as np
import pytest

from repro.nn import accuracy, confusion_matrix, degradation, per_class_accuracy


class TestAccuracy:
    def test_basic(self):
        assert accuracy(np.array([0, 1, 1]), np.array([0, 1, 0])) == pytest.approx(2 / 3)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            accuracy(np.array([0]), np.array([0, 1]))

    def test_empty(self):
        with pytest.raises(ValueError):
            accuracy(np.array([]), np.array([]))


class TestConfusionMatrix:
    def test_counts(self):
        preds = np.array([0, 1, 1, 2, 2, 2])
        labels = np.array([0, 1, 2, 2, 2, 0])
        cm = confusion_matrix(preds, labels, 3)
        assert cm[0, 0] == 1  # true 0 predicted 0
        assert cm[2, 1] == 1  # true 2 predicted 1
        assert cm[2, 2] == 2
        assert cm[0, 2] == 1
        assert cm.sum() == 6

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            confusion_matrix(np.array([3]), np.array([0]), 3)

    def test_invalid_num_classes(self):
        with pytest.raises(ValueError):
            confusion_matrix(np.array([0]), np.array([0]), 0)


class TestPerClass:
    def test_recall(self):
        preds = np.array([0, 0, 1, 1])
        labels = np.array([0, 1, 1, 1])
        recalls = per_class_accuracy(preds, labels, 2)
        assert recalls[0] == 1.0
        assert recalls[1] == pytest.approx(2 / 3)

    def test_absent_class_is_nan(self):
        recalls = per_class_accuracy(np.array([0]), np.array([0]), 2)
        assert np.isnan(recalls[1])


class TestDegradation:
    def test_percentage_points(self):
        assert degradation(0.901, 0.859) == pytest.approx(4.2, abs=1e-9)

    def test_negative_when_better(self):
        assert degradation(0.90, 0.95) < 0
