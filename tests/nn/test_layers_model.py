"""Tests for the training substrate: layers, model, numerical gradients."""

import numpy as np
import pytest

from repro.nn import MLP, Dense, ReLU, log_softmax, softmax
from repro.nn.train import cross_entropy_grad


class TestDense:
    def test_shapes(self, rng):
        layer = Dense(4, 3, rng)
        out = layer.forward(rng.normal(size=(5, 4)))
        assert out.shape == (5, 3)

    def test_input_validation(self, rng):
        layer = Dense(4, 3, rng)
        with pytest.raises(ValueError):
            layer.forward(rng.normal(size=(5, 7)))

    def test_backward_before_forward(self, rng):
        layer = Dense(4, 3, rng)
        with pytest.raises(RuntimeError):
            layer.backward(np.zeros((5, 3)))

    def test_unknown_init(self, rng):
        with pytest.raises(ValueError):
            Dense(4, 3, rng, init="zeros")

    def test_numerical_gradient_weights(self, rng):
        """Analytic dL/dW must match central finite differences."""
        layer = Dense(4, 3, rng)
        x = rng.normal(size=(6, 4))
        target = rng.normal(size=(6, 3))

        def loss():
            return 0.5 * np.sum((layer.forward(x) - target) ** 2)

        base_out = layer.forward(x)
        layer.backward(base_out - target)
        analytic_w = layer.grad_weight.copy()
        analytic_b = layer.grad_bias.copy()

        eps = 1e-6
        for idx in [(0, 0), (1, 2), (2, 3)]:
            layer.weight[idx] += eps
            up = loss()
            layer.weight[idx] -= 2 * eps
            down = loss()
            layer.weight[idx] += eps
            numeric = (up - down) / (2 * eps)
            assert analytic_w[idx] == pytest.approx(numeric, rel=1e-4)
        for j in range(3):
            layer.bias[j] += eps
            up = loss()
            layer.bias[j] -= 2 * eps
            down = loss()
            layer.bias[j] += eps
            numeric = (up - down) / (2 * eps)
            assert analytic_b[j] == pytest.approx(numeric, rel=1e-4)


class TestReLU:
    def test_forward(self):
        relu = ReLU()
        out = relu.forward(np.array([[-1.0, 0.0, 2.0]]))
        assert np.array_equal(out, [[0.0, 0.0, 2.0]])

    def test_backward_masks(self):
        relu = ReLU()
        relu.forward(np.array([[-1.0, 3.0]]))
        grad = relu.backward(np.array([[5.0, 7.0]]))
        assert np.array_equal(grad, [[0.0, 7.0]])

    def test_backward_before_forward(self):
        with pytest.raises(RuntimeError):
            ReLU().backward(np.zeros((1, 2)))


class TestSoftmax:
    def test_rows_sum_to_one(self, rng):
        p = softmax(rng.normal(size=(7, 4)) * 50)
        assert np.allclose(p.sum(axis=1), 1.0)
        assert np.all(p >= 0)

    def test_log_softmax_consistent(self, rng):
        logits = rng.normal(size=(5, 3)) * 20
        assert np.allclose(log_softmax(logits), np.log(softmax(logits)))

    def test_stability_at_extremes(self):
        p = softmax(np.array([[1000.0, 0.0]]))
        assert np.isfinite(p).all()


class TestCrossEntropyGrad:
    def test_matches_numerical(self, rng):
        logits = rng.normal(size=(4, 3))
        labels = np.array([0, 2, 1, 2])
        grad = cross_entropy_grad(logits, labels)

        def loss(lg):
            ls = lg - lg.max(axis=1, keepdims=True)
            logp = ls - np.log(np.exp(ls).sum(axis=1, keepdims=True))
            return -logp[np.arange(4), labels].mean()

        eps = 1e-6
        for idx in [(0, 0), (1, 1), (3, 2)]:
            up = logits.copy()
            up[idx] += eps
            down = logits.copy()
            down[idx] -= eps
            numeric = (loss(up) - loss(down)) / (2 * eps)
            assert grad[idx] == pytest.approx(numeric, rel=1e-4)


class TestMLP:
    def test_topology_validation(self, rng):
        with pytest.raises(ValueError):
            MLP((4,), rng)
        with pytest.raises(ValueError):
            MLP((4, 0, 2), rng)

    def test_structure(self, rng):
        model = MLP((4, 8, 3), rng)
        assert len(model.dense_layers) == 2
        assert model.forward(rng.normal(size=(2, 4))).shape == (2, 3)

    def test_full_backprop_gradient(self, rng):
        """End-to-end gradient check through Dense/ReLU/Dense."""
        model = MLP((3, 5, 2), rng)
        x = rng.normal(size=(8, 3))
        y = np.array([0, 1] * 4)

        logits = model.forward(x)
        model.backward(cross_entropy_grad(logits, y))
        layer = model.dense_layers[0]
        analytic = layer.grad_weight.copy()

        eps = 1e-6
        for idx in [(0, 0), (2, 1), (4, 2)]:
            layer.weight[idx] += eps
            up = model.nll(x, y)
            layer.weight[idx] -= 2 * eps
            down = model.nll(x, y)
            layer.weight[idx] += eps
            numeric = (up - down) / (2 * eps)
            assert analytic[idx] == pytest.approx(numeric, rel=1e-3, abs=1e-9)

    def test_export_import_roundtrip(self, rng):
        model = MLP((4, 6, 3), rng)
        weights, biases = model.export_params()
        x = rng.normal(size=(5, 4))
        before = model.forward(x)
        other = MLP((4, 6, 3), np.random.default_rng(999))
        other.import_params(weights, biases)
        assert np.allclose(other.forward(x), before)

    def test_import_shape_mismatch(self, rng):
        model = MLP((4, 6, 3), rng)
        weights, biases = model.export_params()
        with pytest.raises(ValueError):
            model.import_params(weights[:1], biases[:1])
        weights[0] = weights[0][:, :2]
        with pytest.raises(ValueError):
            model.import_params(weights, biases)

    def test_cast_float32_is_idempotent(self, rng):
        model = MLP((4, 6, 3), rng)
        model.cast_float32()
        w1, _ = model.export_params()
        model.cast_float32()
        w2, _ = model.export_params()
        assert all(np.array_equal(a, b) for a, b in zip(w1, w2))

    def test_predict_proba(self, rng):
        model = MLP((4, 6, 3), rng)
        p = model.predict_proba(rng.normal(size=(5, 4)))
        assert np.allclose(p.sum(axis=1), 1.0)
