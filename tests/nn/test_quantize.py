"""Quantizer tests: the fast vectorized paths must be bit-identical to the
scalar reference encoders, including posit taper boundaries."""

import numpy as np
import pytest

from repro.fixedpoint import Fixed, fixed_format
from repro.floatp import FloatP, float_format
from repro.nn import (
    FormatConfig,
    best_fixed_q,
    candidate_configs,
    quantization_mse,
    quantize_nearest,
)
from repro.posit import Posit, decode as pdecode
from repro.posit.format import standard_format


class TestPositQuantizer:
    def test_bit_identical_to_scalar(self, posit_fmt, rng):
        probes = list(rng.normal(size=300) * 10.0 ** rng.integers(-3, 4, size=300))
        # include every representable value and near-boundary points
        wide = standard_format(posit_fmt.n + 1, posit_fmt.es)
        for b in wide.all_patterns():
            d = pdecode(wide, b)
            if d.is_nar:
                continue
            v = 0.0 if d.is_zero else float(d.to_fraction())
            probes.extend([v, np.nextafter(v, 1e300), np.nextafter(v, -1e300)])
        arr = np.array(probes)
        fast = quantize_nearest(posit_fmt, arr)
        for v, got in zip(arr, fast):
            assert int(got) == Posit.from_value(posit_fmt, float(v)).bits, v

    def test_preserves_shape(self, rng):
        fmt = standard_format(8, 1)
        assert quantize_nearest(fmt, rng.normal(size=(3, 5))).shape == (3, 5)

    def test_rejects_non_finite(self):
        with pytest.raises(ValueError):
            quantize_nearest(standard_format(8, 1), np.array([np.nan]))


class TestFloatQuantizer:
    def test_bit_identical_to_scalar(self, float_fmt, rng):
        probes = rng.normal(size=400) * 10.0 ** rng.integers(-4, 4, size=400)
        fast = quantize_nearest(float_fmt, probes)
        for v, got in zip(probes, fast):
            expect = FloatP.from_value(float_fmt, float(v))
            assert FloatP.from_bits(float_fmt, int(got)).to_fraction() == expect.to_fraction(), v

    def test_exact_values_and_midpoints(self, float_fmt):
        from repro.floatp.codec import decode

        values = []
        for b in float_fmt.all_patterns():
            d = decode(float_fmt, b)
            if d.is_reserved or d.significand == 0:
                continue
            values.append(float(d.to_fraction()))
        values = np.array(sorted(set(values)))
        mids = (values[:-1] + values[1:]) / 2
        probes = np.concatenate([values, mids])
        fast = quantize_nearest(float_fmt, probes)
        for v, got in zip(probes, fast):
            expect = FloatP.from_value(float_fmt, float(v))
            assert FloatP.from_bits(float_fmt, int(got)).to_fraction() == expect.to_fraction(), v


class TestFixedQuantizer:
    def test_bit_identical_to_scalar(self, fixed_fmt, rng):
        probes = rng.normal(size=300) * 8
        fast = quantize_nearest(fixed_fmt, probes)
        for v, got in zip(probes, fast):
            assert int(got) == Fixed.from_value(fixed_fmt, float(v)).bits


class TestMseAndSearch:
    def test_mse_zero_for_representable(self):
        fmt = fixed_format(8, 4)
        values = np.array([0.5, -1.25, 3.0])
        assert quantization_mse(fmt, values) == 0.0

    def test_mse_positive_for_unrepresentable(self):
        fmt = fixed_format(8, 4)
        assert quantization_mse(fmt, np.array([0.01])) > 0

    def test_best_fixed_q_tracks_scale(self, rng):
        small = rng.normal(size=200) * 0.05  # tiny values: want large q
        large = rng.normal(size=200) * 30  # big values: want small q
        q_small = best_fixed_q(8, small).q
        q_large = best_fixed_q(8, large).q
        assert q_small > q_large

    def test_best_fixed_q_unit_values(self, rng):
        values = rng.uniform(-1, 1, size=500)
        fmt = best_fixed_q(8, values)
        assert fmt.q >= 6  # unit range wants a dense fraction


class TestCandidateConfigs:
    def test_families_present_at_8bit(self):
        configs = candidate_configs(8)
        families = {c.family for c in configs}
        assert families == {"posit", "float", "fixed"}

    def test_posit_es_respects_field_fit(self):
        labels = [c.label for c in candidate_configs(5)]
        assert "posit<5,0>" in labels
        assert "posit<5,1>" in labels
        assert "posit<5,2>" in labels  # n-3-es == 0 still legal
        labels6 = [c.label for c in candidate_configs(6)]
        assert "posit<6,2>" in labels6

    def test_float_wf_at_least_one(self):
        for config in candidate_configs(5):
            if config.family == "float":
                assert config.fmt.wf >= 1

    def test_widths_consistent(self):
        for n in (5, 6, 7, 8):
            for config in candidate_configs(n):
                assert config.width == n

    def test_label_and_width(self):
        config = FormatConfig("posit", standard_format(8, 1))
        assert config.label == "posit<8,1>"
        assert config.width == 8
