"""Training-loop tests: both optimizers must fit simple problems."""

import numpy as np
import pytest

from repro.nn import MLP, TrainConfig, train_classifier


def blobs(rng, n_per_class=60, separation=4.0):
    """Two well separated Gaussian blobs in 2-D."""
    a = rng.normal(size=(n_per_class, 2)) + [0, 0]
    b = rng.normal(size=(n_per_class, 2)) + [separation, separation]
    x = np.concatenate([a, b])
    y = np.concatenate([np.zeros(n_per_class, int), np.ones(n_per_class, int)])
    order = rng.permutation(len(y))
    return x[order], y[order]


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            TrainConfig(optimizer="rmsprop")
        with pytest.raises(ValueError):
            TrainConfig(epochs=0)


class TestTraining:
    @pytest.mark.parametrize("optimizer", ["sgd", "adam"])
    def test_fits_separable_blobs(self, optimizer, rng):
        x, y = blobs(np.random.default_rng(0))
        model = MLP((2, 8, 2), np.random.default_rng(1))
        cfg = TrainConfig(
            epochs=80,
            batch_size=16,
            learning_rate=0.05 if optimizer == "sgd" else 5e-3,
            optimizer=optimizer,
            seed=0,
        )
        result = train_classifier(model, x, y, config=cfg)
        assert result.final_train_accuracy >= 0.95
        assert len(result.train_loss_curve) == result.epochs_run

    def test_loss_decreases(self):
        x, y = blobs(np.random.default_rng(2))
        model = MLP((2, 8, 2), np.random.default_rng(3))
        cfg = TrainConfig(epochs=40, learning_rate=0.05, seed=1)
        result = train_classifier(model, x, y, config=cfg)
        first = np.mean(result.train_loss_curve[:5])
        last = np.mean(result.train_loss_curve[-5:])
        assert last < first

    def test_deterministic_given_seed(self):
        x, y = blobs(np.random.default_rng(4))

        def run():
            model = MLP((2, 6, 2), np.random.default_rng(7))
            cfg = TrainConfig(epochs=10, seed=5)
            train_classifier(model, x, y, config=cfg)
            return model.export_params()

        w1, b1 = run()
        w2, b2 = run()
        assert all(np.array_equal(a, b) for a, b in zip(w1, w2))
        assert all(np.array_equal(a, b) for a, b in zip(b1, b2))

    def test_early_stopping_restores_best(self):
        x, y = blobs(np.random.default_rng(8), separation=1.0)
        model = MLP((2, 4, 2), np.random.default_rng(9))
        cfg = TrainConfig(epochs=200, early_stop_patience=5, seed=2)
        result = train_classifier(model, x, y, config=cfg)
        assert result.epochs_run <= 200
        # Restored parameters must achieve the best recorded accuracy.
        assert model.accuracy(x, y) == pytest.approx(result.best_valid_accuracy)

    def test_validation_split_used(self):
        x, y = blobs(np.random.default_rng(10))
        vx, vy = blobs(np.random.default_rng(11))
        model = MLP((2, 6, 2), np.random.default_rng(12))
        cfg = TrainConfig(epochs=20, seed=3)
        result = train_classifier(model, x, y, vx, vy, config=cfg)
        assert 0 <= result.final_valid_accuracy <= 1
        assert len(result.valid_accuracy_curve) == result.epochs_run

    def test_weight_decay_shrinks_weights(self):
        x, y = blobs(np.random.default_rng(13))
        norms = []
        for wd in (0.0, 0.05):
            model = MLP((2, 8, 2), np.random.default_rng(14))
            cfg = TrainConfig(epochs=40, weight_decay=wd, seed=4,
                              early_stop_patience=1000)
            train_classifier(model, x, y, config=cfg)
            weights, _ = model.export_params()
            norms.append(sum(float(np.sum(w**2)) for w in weights))
        assert norms[1] < norms[0]
