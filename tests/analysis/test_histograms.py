"""Fig. 2 study tests: posit values and DNN weights cluster in [-1, 1]."""

import numpy as np
import pytest

from repro.analysis import (
    Histogram,
    in_unit_fraction,
    posit_value_histogram,
    weight_histogram,
)
from repro.posit.format import standard_format


class TestPositValueHistogram:
    def test_counts_cover_all_reals(self):
        fmt = standard_format(7, 0)
        hist = posit_value_histogram(fmt)
        assert hist.total == fmt.num_patterns - 1  # all but NaR

    def test_paper_fig2a_clustering(self):
        """Most 7-bit (es=0) posit values lie in [-1, 1]."""
        hist = posit_value_histogram(standard_format(7, 0))
        assert in_unit_fraction(hist) > 0.5

    def test_symmetry(self):
        hist = posit_value_histogram(standard_format(7, 0), bins=41)
        # posit value sets are symmetric around zero
        assert np.allclose(hist.counts, hist.counts[::-1])

    def test_validation(self):
        with pytest.raises(ValueError):
            posit_value_histogram(standard_format(7, 0), bins=0)


class TestWeightHistogram:
    def test_pooled_layers(self, rng):
        weights = [rng.normal(scale=0.3, size=(5, 4)), rng.normal(scale=0.3, size=(3, 5))]
        hist = weight_histogram(weights)
        assert hist.total == 35

    def test_paper_fig2b_clustering(self, rng):
        """Trained-like (small-scale) weights cluster in [-1, 1]."""
        hist = weight_histogram(rng.normal(scale=0.4, size=5000))
        assert in_unit_fraction(hist) > 0.9

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            weight_histogram(np.array([]))

    def test_clipping_into_edge_bins(self):
        hist = weight_histogram(np.array([100.0, -100.0]), value_range=(-2.5, 2.5))
        assert hist.counts[0] == 1 and hist.counts[-1] == 1


class TestHistogramType:
    def test_normalized(self):
        hist = Histogram(np.array([0.0, 1.0, 2.0]), np.array([3.0, 1.0]))
        norm = hist.normalized()
        assert norm.total == pytest.approx(1.0)

    def test_normalize_empty_raises(self):
        hist = Histogram(np.array([0.0, 1.0]), np.array([0.0]))
        with pytest.raises(ValueError):
            hist.normalized()

    def test_in_unit_fraction_empty_raises(self):
        hist = Histogram(np.array([0.0, 1.0]), np.array([0.0]))
        with pytest.raises(ValueError):
            in_unit_fraction(hist)
