"""Self-healing runner and store under injected faults.

The recovery contract is stronger than "doesn't crash": because the
pipeline is bit-exact, a grid that survived worker deaths must produce
*bit-identical* results to a fault-free run, and a store artifact torn
mid-publish must be detected, deleted, and rebuilt to the same bytes.
The slow end-to-end fault matrix lives in ``tests/chaos``; these are the
fast deterministic pieces.
"""

from __future__ import annotations

import json
import os
import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import faults
from repro.analysis.runner import (
    GridQuarantine,
    SweepTask,
    _backoff_delay,
    _run_grid,
    run_sweeps,
)
from repro.analysis.store import ArtifactStore, artifact_store
from repro.analysis.sweep import sweep_task_key, sweep_width, trained_model


@pytest.fixture
def fresh_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
    monkeypatch.delenv(faults.ENV_SPEC, raising=False)
    monkeypatch.delenv(faults.ENV_TRACE, raising=False)
    trained_model.cache_clear()
    yield tmp_path
    trained_model.cache_clear()


def _grid_serial(tasks, evaluate, **kwargs):
    """Drive the shared grid executor serially with a fake evaluate."""
    kwargs.setdefault("retry_backoff_s", 0.0)
    return _run_grid(
        tasks, evaluate, sweep_task_key, None, 1, lambda _: None, **kwargs
    )


class TestBackoff:
    def test_jittered_exponential_bounds(self):
        rng = random.Random(0)
        for attempt in (1, 2, 3, 4):
            base = 0.5 * 2 ** (attempt - 1)
            for _ in range(50):
                delay = _backoff_delay(rng, 0.5, attempt)
                assert base * 0.5 <= delay < base * 1.5

    def test_deterministic_for_a_seeded_rng(self):
        a = [_backoff_delay(random.Random(7), 0.1, n) for n in (1, 2, 3)]
        b = [_backoff_delay(random.Random(7), 0.1, n) for n in (1, 2, 3)]
        assert a == b


class TestSerialRetryPolicy:
    def test_transient_failure_retried_to_success(self, fresh_cache):
        task = SweepTask("iris", 5)
        calls = []

        def flaky(dataset, width):
            calls.append((dataset, width))
            if len(calls) < 3:
                raise RuntimeError("transient")
            return {"ok": True}

        results = _grid_serial([task], flaky, max_attempts=3)
        assert results == {task: {"ok": True}}
        assert len(calls) == 3

    def test_poison_task_quarantined_grid_completes(self, fresh_cache):
        poison, healthy = SweepTask("iris", 5), SweepTask("iris", 6)

        def evaluate(dataset, width):
            if width == 5:
                raise ValueError("always broken")
            return {"width": width}

        with pytest.raises(GridQuarantine) as excinfo:
            _grid_serial([poison, healthy], evaluate, max_attempts=2)
        exc = excinfo.value
        assert exc.results == {healthy: {"width": 6}}
        assert exc.report == [{
            "dataset": "iris", "width": 5, "attempts": 2,
            "error": "ValueError: always broken",
        }]

    def test_max_attempts_must_be_positive(self, fresh_cache):
        with pytest.raises(ValueError):
            _grid_serial([SweepTask("iris", 5)], lambda d, w: {},
                         max_attempts=0)

    def test_attempts_are_per_task(self, fresh_cache):
        tasks = [SweepTask("iris", 5), SweepTask("iris", 6)]
        failures = {5: 1, 6: 1}  # each fails once, then succeeds

        def evaluate(dataset, width):
            if failures[width] > 0:
                failures[width] -= 1
                raise RuntimeError("transient")
            return {"width": width}

        results = _grid_serial(tasks, evaluate, max_attempts=2)
        assert set(results) == set(tasks)


class TestParallelCrashRecovery:
    """Injected worker faults against the real process pool."""

    def test_worker_kill_recovers_bit_identical(
        self, fresh_cache, monkeypatch, tmp_path
    ):
        trace = tmp_path / "faults-trace.jsonl"
        monkeypatch.setenv(faults.ENV_SPEC, "runner.task=kill:times=1")
        monkeypatch.setenv(faults.ENV_TRACE, str(trace))
        messages = []
        survived = run_sweeps(
            ("iris",), (5,), jobs=2, progress=messages.append,
            retry_backoff_s=0.0,
        )
        # The kill fired exactly once (trace-bounded across respawns)...
        events = faults.read_trace(trace)
        assert [e.action for e in events] == ["kill"]
        assert any("pool crashed" in m for m in messages)
        # ...and the recovered grid is bit-identical to the serial path.
        monkeypatch.delenv(faults.ENV_SPEC)
        trained_model.cache_clear()
        assert survived[SweepTask("iris", 5)] == sweep_width("iris", 5)

    def test_repeat_killer_quarantined_not_respawned_forever(
        self, fresh_cache, monkeypatch, tmp_path
    ):
        monkeypatch.setenv(faults.ENV_SPEC, "runner.task=kill:times=0")
        monkeypatch.setenv(
            faults.ENV_TRACE, str(tmp_path / "trace.jsonl")
        )
        with pytest.raises(GridQuarantine) as excinfo:
            run_sweeps(
                ("iris",), (5,), jobs=2, max_attempts=2,
                retry_backoff_s=0.0,
            )
        (failure,) = excinfo.value.failures
        assert failure.task == SweepTask("iris", 5)
        assert failure.attempts == 2
        assert "worker process died" in failure.error

    def test_poison_exception_quarantined_rest_of_grid_completes(
        self, fresh_cache, monkeypatch
    ):
        monkeypatch.setenv(
            faults.ENV_SPEC,
            "runner.task=raise:times=0:match=task=iris-5",
        )
        with pytest.raises(GridQuarantine) as excinfo:
            run_sweeps(("iris",), (5, 6), jobs=2, retry_backoff_s=0.0)
        exc = excinfo.value
        assert [f.as_dict()["width"] for f in exc.failures] == [5]
        assert exc.failures[0].attempts == 3
        assert "InjectedFault" in exc.failures[0].error
        # The healthy task completed, bit-identical to serial.
        monkeypatch.delenv(faults.ENV_SPEC)
        trained_model.cache_clear()
        assert exc.results[SweepTask("iris", 6)] == sweep_width("iris", 6)

    def test_transient_raise_retried_bit_identical(
        self, fresh_cache, monkeypatch, tmp_path
    ):
        trace = tmp_path / "trace.jsonl"
        monkeypatch.setenv(faults.ENV_SPEC, "runner.task=raise:times=1")
        monkeypatch.setenv(faults.ENV_TRACE, str(trace))
        survived = run_sweeps(
            ("iris",), (5,), jobs=2, retry_backoff_s=0.0
        )
        assert len(faults.read_trace(trace)) == 1
        monkeypatch.delenv(faults.ENV_SPEC)
        trained_model.cache_clear()
        assert survived[SweepTask("iris", 5)] == sweep_width("iris", 5)


def _tiny_model_artifact(store: ArtifactStore) -> tuple[str, dict, dict]:
    arrays = {
        "w0": np.arange(12, dtype=np.float64).reshape(3, 4),
        "b0": np.linspace(-1.0, 1.0, 4),
    }
    meta = {"topology": [3, 4], "seed": 19}
    store.save_model("tiny", arrays, meta)
    return "tiny", arrays, meta


class TestStoreSelfHeal:
    """Property: a torn or corrupted artifact is detected, deleted, and
    rebuildable — never loaded as garbage, never a crash."""

    @settings(max_examples=25, deadline=None)
    @given(frac=st.floats(0.02, 0.98))
    def test_truncated_model_detected_deleted_rebuilt(
        self, tmp_path_factory, frac
    ):
        store = ArtifactStore(tmp_path_factory.mktemp("heal"))
        key, arrays, meta = _tiny_model_artifact(store)
        path = store.model_path(key)
        blob = path.read_bytes()
        path.write_bytes(blob[: max(1, int(len(blob) * frac))])
        assert store.load_model(key) is None
        assert not path.exists()  # healed: deleted for recompute
        store.save_model(key, arrays, meta)
        loaded_arrays, loaded_meta = store.load_model(key)
        assert loaded_meta == meta
        for name in arrays:
            np.testing.assert_array_equal(loaded_arrays[name], arrays[name])

    @settings(max_examples=25, deadline=None)
    @given(offset=st.integers(0, 10_000))
    def test_corrupt_model_byte_never_loads_garbage(
        self, tmp_path_factory, offset
    ):
        store = ArtifactStore(tmp_path_factory.mktemp("heal"))
        key, arrays, meta = _tiny_model_artifact(store)
        path = store.model_path(key)
        blob = bytearray(path.read_bytes())
        blob[offset % len(blob)] ^= 0xFF
        path.write_bytes(bytes(blob))
        loaded = store.load_model(key)
        if loaded is None:
            # Detected (CRC/parse failure) and healed for recompute.
            assert not path.exists()
        else:
            # The flip landed in zip metadata the reader never consults
            # (e.g. a skipped local-header field): payload must still be
            # bit-identical — a corrupt load may heal or pass through
            # unharmed, but never return garbage.
            loaded_arrays, loaded_meta = loaded
            assert loaded_meta == meta
            for name in arrays:
                np.testing.assert_array_equal(
                    loaded_arrays[name], arrays[name]
                )

    @settings(max_examples=25, deadline=None)
    @given(frac=st.floats(0.0, 0.98), flip=st.booleans())
    def test_result_json_truncation_and_corruption_heal(
        self, tmp_path_factory, frac, flip
    ):
        store = ArtifactStore(tmp_path_factory.mktemp("heal"))
        value = {"accuracy": [0.25, 0.75], "config": {"n": 8, "es": 1}}
        store.save_result("task", value)
        path = store.result_path("task")
        blob = bytearray(path.read_bytes())
        if flip:
            blob[int((len(blob) - 1) * frac)] ^= 0xFF  # invalid UTF-8
            path.write_bytes(bytes(blob))
        else:
            path.write_bytes(bytes(blob[: int(len(blob) * frac)]))
        assert store.load_result("task") is None
        assert not path.exists()
        store.save_result("task", value)
        assert store.load_result("task") == value


class TestDurablePublish:
    """Satellite: artifacts are fsynced (file then directory) around the
    rename, and a publish torn by the truncation fault self-heals."""

    def test_atomic_write_json_fsyncs_file(self, tmp_path, monkeypatch):
        from repro.analysis.cache import atomic_write_json

        synced = []
        real_fsync = os.fsync
        monkeypatch.setattr(
            os, "fsync", lambda fd: (synced.append(fd), real_fsync(fd))[1]
        )
        atomic_write_json(tmp_path / "v.json", {"k": 1})
        assert synced  # file fd synced before rename, dir after
        assert json.loads((tmp_path / "v.json").read_text()) == {"k": 1}

    def test_save_model_fsyncs_file(self, tmp_path, monkeypatch):
        synced = []
        real_fsync = os.fsync
        monkeypatch.setattr(
            os, "fsync", lambda fd: (synced.append(fd), real_fsync(fd))[1]
        )
        store = ArtifactStore(tmp_path)
        store.save_model("k", {"w": np.ones(3)}, {"m": 1})
        assert synced

    def test_result_publish_truncated_by_fault_self_heals(self, tmp_path):
        store = ArtifactStore(tmp_path)
        value = {"rows": list(range(32))}
        with faults.inject("store.publish", "truncate") as injector:
            store.save_result("task", value)
        assert injector.fired() == 1
        # The published artifact is the torn temp file: detected, deleted,
        # and the re-publish round-trips.
        assert store.load_result("task") is None
        store.save_result("task", value)
        assert store.load_result("task") == value

    def test_model_publish_corrupted_by_fault_self_heals(self, tmp_path):
        store = ArtifactStore(tmp_path)
        arrays = {"w": np.arange(6, dtype=np.float64)}
        with faults.inject("store.publish", "corrupt") as injector:
            store.save_model("k", arrays, {"m": 2})
        assert injector.fired() == 1
        assert store.load_model("k") is None
        store.save_model("k", arrays, {"m": 2})
        loaded, meta = store.load_model("k")
        np.testing.assert_array_equal(loaded["w"], arrays["w"])
        assert meta == {"m": 2}

    def test_grid_resumes_after_torn_result(self, fresh_cache):
        # End-to-end: a result torn at publish is recomputed on resume,
        # bit-identical.
        with faults.inject("store.publish", "truncate", match="results"):
            first = run_sweeps(("iris",), (5,), jobs=1)
        store = artifact_store()
        assert store.load_result(sweep_task_key("iris", 5)) is None
        trained_model.cache_clear()
        resumed = run_sweeps(("iris",), (5,), jobs=1)
        assert resumed == first
