"""Parallel runner: planning, bit-identity with the serial path, resume."""

import pytest

import repro.analysis.runner as runner_mod
import repro.analysis.sweep as sweep_mod
from repro.analysis.runner import (
    SweepTask,
    plan_tasks,
    run_fig9,
    run_sweeps,
    run_table2,
)
from repro.analysis.store import artifact_store
from repro.analysis.sweep import (
    figure9_series,
    sweep_task_key,
    sweep_width,
    table2_rows,
    trained_model,
)

ALL_DATASETS = ("wbc", "iris", "mushroom")


@pytest.fixture
def fresh_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
    trained_model.cache_clear()
    yield tmp_path
    trained_model.cache_clear()


class TestPlanning:
    def test_grid_order_dataset_major(self):
        tasks = plan_tasks(("iris", "wbc"), (5, 8))
        assert tasks == [
            SweepTask("iris", 5),
            SweepTask("iris", 8),
            SweepTask("wbc", 5),
            SweepTask("wbc", 8),
        ]

    def test_unknown_dataset_rejected(self):
        with pytest.raises(KeyError):
            plan_tasks(("mnist",), (8,))

    def test_bad_width_rejected(self):
        with pytest.raises(ValueError):
            plan_tasks(("iris",), (1,))


class TestRunnerFast:
    def test_parallel_bit_identical_to_serial(self, fresh_cache):
        parallel = run_sweeps(("iris",), (5,), jobs=2)
        trained_model.cache_clear()  # serial re-derives from the store
        assert parallel[SweepTask("iris", 5)] == sweep_width("iris", 5)

    def test_parallel_bit_identical_to_fresh_training(
        self, fresh_cache, monkeypatch
    ):
        parallel = run_sweeps(("iris",), (5,), jobs=2)
        monkeypatch.setenv("REPRO_NO_CACHE", "1")  # force in-process retrain
        trained_model.cache_clear()
        assert parallel[SweepTask("iris", 5)] == sweep_width("iris", 5)

    def test_completed_grid_resumes_without_pool(self, fresh_cache, monkeypatch):
        first = run_sweeps(("iris",), (5,), jobs=2)

        def no_pool(*args, **kwargs):
            raise AssertionError("pool created although every task is cached")

        monkeypatch.setattr(runner_mod, "ProcessPoolExecutor", no_pool)
        again = run_sweeps(("iris",), (5,), jobs=4)
        assert again == first

    def test_resume_recomputes_only_missing_task_without_retraining(
        self, fresh_cache, monkeypatch
    ):
        first = run_sweeps(("iris",), (5, 8), jobs=1)
        store = artifact_store()
        store.result_path(sweep_task_key("iris", 8)).unlink()  # "interrupted"
        trained_model.cache_clear()

        def boom(*args, **kwargs):
            raise AssertionError("retrained despite a stored parent model")

        monkeypatch.setattr(sweep_mod, "train_classifier", boom)
        resumed = run_sweeps(("iris",), (5, 8), jobs=1)
        assert resumed == first

    def test_progress_messages(self, fresh_cache):
        messages = []
        run_sweeps(("iris",), (5, 6), jobs=1, progress=messages.append)
        assert len(messages) == 2
        assert all("iris" in m for m in messages)
        messages.clear()
        run_sweeps(("iris",), (5, 6), jobs=2, progress=messages.append)
        assert sum("cached" in m for m in messages) == 2

    def test_no_cache_parallel_still_bit_identical(self, fresh_cache, monkeypatch):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        trained_model.cache_clear()
        parallel = run_sweeps(("iris",), (5,), jobs=2)
        assert not (fresh_cache / "store").exists()
        serial = run_sweeps(("iris",), (5,), jobs=1)
        assert parallel == serial

    def test_run_table2_matches_table2_rows(self, fresh_cache):
        rows = run_table2(("iris",), jobs=2)
        assert rows == table2_rows(("iris",))

    def test_run_fig9_matches_figure9_series(self, fresh_cache):
        series = run_fig9((5, 8), ("iris",), jobs=2)
        assert series == figure9_series((5, 8), ("iris",))


@pytest.mark.slow
class TestRunnerFullBitIdentity:
    """ISSUE acceptance: ``runner(jobs=4)`` output equals the serial
    ``sweep_width`` path exactly, for every dataset at widths 5 and 8."""

    def test_jobs4_bit_identical_every_dataset(self, fresh_cache):
        parallel = run_sweeps(ALL_DATASETS, (5, 8), jobs=4)
        trained_model.cache_clear()
        for dataset in ALL_DATASETS:
            for width in (5, 8):
                serial = sweep_width(dataset, width)
                assert parallel[SweepTask(dataset, width)] == serial, (
                    dataset,
                    width,
                )

    def test_full_table2_parallel_equals_serial(self, fresh_cache):
        parallel = run_table2(ALL_DATASETS, jobs=4)
        trained_model.cache_clear()
        assert parallel == table2_rows(ALL_DATASETS)
