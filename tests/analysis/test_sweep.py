"""Integration tests of the Table II / Fig. 9 experiment pipeline.

These train the (small) iris parent model in-process; the heavier datasets
are exercised by the benchmarks.  Sweep results are read through the disk
cache when available.
"""

import numpy as np
import pytest

from repro.analysis import EXPERIMENTS, evaluate_config, sweep_width, trained_model
from repro.nn import FormatConfig
from repro.posit.format import standard_format


@pytest.fixture(scope="module")
def iris_model():
    return trained_model("iris")


class TestTrainedModel:
    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            trained_model("mnist")

    def test_iris_baseline_quality(self, iris_model):
        """The float32 parent must be competitive (paper: 98%)."""
        assert iris_model.float32_accuracy >= 0.94

    def test_cached_in_process(self, iris_model):
        assert trained_model("iris") is iris_model

    def test_topologies_match_datasets(self):
        for name, spec in EXPERIMENTS.items():
            assert spec.name == name
            assert len(spec.topology) == 4  # two hidden layers, as in Fig. 1


class TestEvaluateConfig:
    def test_posit8_close_to_baseline(self, iris_model):
        config = FormatConfig("posit", standard_format(8, 1))
        acc = evaluate_config(iris_model, config)
        assert acc >= iris_model.float32_accuracy - 0.06

    def test_narrow_posit_degrades(self, iris_model):
        acc5 = evaluate_config(iris_model, FormatConfig("posit", standard_format(5, 0)))
        acc8 = evaluate_config(iris_model, FormatConfig("posit", standard_format(8, 1)))
        assert acc5 <= acc8 + 1e-9

    def test_deterministic(self, iris_model):
        config = FormatConfig("posit", standard_format(8, 0))
        assert evaluate_config(iris_model, config) == evaluate_config(
            iris_model, config
        )


class TestSweepStructure:
    def test_sweep_width_iris(self, iris_model):
        sweep = sweep_width("iris", 8)
        assert sweep["dataset"] == "iris" and sweep["n"] == 8
        assert sweep["inference_size"] == 50
        families = {r["family"] for r in sweep["all"]}
        assert families == {"posit", "float", "fixed"}
        for family in families:
            best = sweep["best"][family]
            assert best is not None
            fam_accs = [r["accuracy"] for r in sweep["all"] if r["family"] == family]
            assert best["accuracy"] == max(fam_accs)

    def test_all_accuracies_in_range(self, iris_model):
        sweep = sweep_width("iris", 8)
        for record in sweep["all"]:
            assert 0.0 <= record["accuracy"] <= 1.0


class TestAblations:
    def test_naive_mac_never_beats_emac_much(self, iris_model):
        """Rounding every MAC must not outperform exact accumulation."""
        from repro.analysis import naive_accuracy
        from repro.core import PositronNetwork

        fmt = standard_format(8, 1)
        weights, biases = iris_model.model.export_params()
        net = PositronNetwork.from_float_params(fmt, weights, biases)
        ds = iris_model.dataset
        exact = net.accuracy(ds.test_x, ds.test_y)
        naive = naive_accuracy(net, ds.test_x, ds.test_y)
        assert naive <= exact + 0.04  # naive may tie but not dominate

    def test_truncated_rounding_not_better(self, iris_model):
        from repro.analysis import truncated_accuracy
        from repro.core import PositronNetwork

        fmt = standard_format(6, 0)  # narrow, where rounding mode matters
        weights, biases = iris_model.model.export_params()
        net = PositronNetwork.from_float_params(fmt, weights, biases)
        ds = iris_model.dataset
        exact = net.accuracy(ds.test_x, ds.test_y)
        truncated = truncated_accuracy(net, ds.test_x, ds.test_y)
        assert truncated <= exact + 0.04

    def test_truncated_forward_is_valid_patterns(self, iris_model):
        from repro.analysis import truncated_forward_reference
        from repro.core import PositronNetwork

        fmt = standard_format(8, 1)
        weights, biases = iris_model.model.export_params()
        net = PositronNetwork.from_float_params(fmt, weights, biases)
        out = truncated_forward_reference(net, iris_model.dataset.test_x[0])
        assert len(out) == 3
        assert all(0 <= b < 256 for b in out)
