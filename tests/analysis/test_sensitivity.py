"""Tests for the sensitivity studies and the CLI driver."""

import pytest

from repro.analysis import (
    layer_sensitivity,
    mixed_precision_network,
    trained_model,
    width_sensitivity,
)
from repro.posit.format import standard_format


@pytest.fixture(scope="module")
def iris_model():
    return trained_model("iris")


class TestWidthSensitivity:
    def test_structure(self, iris_model):
        rows = width_sensitivity("iris", "posit", widths=(6, 8))
        assert [r["n"] for r in rows] == [6, 8]
        for row in rows:
            assert 0 <= row["accuracy"] <= 1
            assert row["label"].startswith("posit")

    def test_robust_at_7_and_8_bits(self, iris_model):
        """The paper's conclusion: robustness at 7- and 8-bit widths."""
        rows = width_sensitivity("iris", "posit", widths=(7, 8))
        for row in rows:
            assert row["baseline"] - row["accuracy"] <= 0.05

    def test_unknown_family(self):
        with pytest.raises(ValueError):
            width_sensitivity("iris", "bfloat")


class TestMixedPrecision:
    def test_all_wide_matches_baseline_closely(self, iris_model):
        wide = standard_format(16, 1)
        acc = mixed_precision_network(iris_model, [wide] * 3)
        assert acc >= iris_model.float32_accuracy - 0.03

    def test_format_count_validated(self, iris_model):
        with pytest.raises(ValueError):
            mixed_precision_network(iris_model, [standard_format(8, 1)])

    def test_uniform_8bit_close_to_positron_path(self, iris_model):
        """Mixed-precision helper at uniform 8 bits ~ the Positron engine.

        Not bit-identical (activations cross layer boundaries through
        float64 re-encoding rather than staying patterns), but accuracy
        must agree closely.
        """
        from repro.analysis import evaluate_config
        from repro.nn import FormatConfig

        fmt = standard_format(8, 1)
        mixed = mixed_precision_network(iris_model, [fmt] * 3)
        uniform = evaluate_config(iris_model, FormatConfig("posit", fmt))
        assert abs(mixed - uniform) <= 0.06


class TestLayerSensitivity:
    def test_structure_and_reference(self, iris_model):
        rows = layer_sensitivity(iris_model)
        assert [r["layer"] for r in rows] == [0, 1, 2]
        for row in rows:
            assert row["probe"] == "posit<6,0>"
            assert row["reference_accuracy"] >= iris_model.float32_accuracy - 0.03
            # Quantizing a single layer to 6 bits cannot be catastrophic.
            assert row["drop_pct"] < 40

    def test_custom_probe(self, iris_model):
        rows = layer_sensitivity(iris_model, probe_format=standard_format(8, 1))
        for row in rows:
            assert row["drop_pct"] <= 6  # 8-bit probe is nearly free


class TestCli:
    def test_table1(self, capsys):
        from repro.__main__ import main

        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Regime" in out and "-3" in out

    def test_fig7(self, capsys):
        from repro.__main__ import main

        assert main(["fig7"]) == 0
        assert "EDP" in capsys.readouterr().out

    def test_unknown_command(self, capsys):
        from repro.__main__ import main

        assert main(["nonsense"]) == 2

    def test_help(self, capsys):
        from repro.__main__ import main

        assert main([]) == 0
        assert "table2" in capsys.readouterr().out
