"""Vectorized ablation layer: bit-identity to the scalar references,
the naive product table, the store-cached grid, and (slow) the paper's
directional exact-vs-naive claim over the full 3-dataset table."""

import numpy as np
import pytest

from repro import formats
from repro.analysis import trained_model
from repro.analysis.ablation import (
    ABLATION_WIDTHS,
    _ablation_configs,
    ablation_table,
    ablation_task_key,
    ablation_width,
    naive_accuracy,
    naive_forward,
    naive_forward_reference,
    naive_product_table,
    truncated_accuracy,
    truncated_forward,
    truncated_forward_reference,
)
from repro.analysis.runner import run_ablation
from repro.core import PositronNetwork
from repro.fixedpoint import fixed_format
from repro.floatp import float_format
from repro.nn.quantize import quantize_nearest
from repro.posit.format import standard_format


@pytest.fixture(scope="module")
def iris_model():
    return trained_model("iris")


@pytest.fixture(scope="module")
def iris_networks(iris_model):
    weights, biases = iris_model.model.export_params()
    return {
        fmt: PositronNetwork.from_float_params(fmt, weights, biases)
        for fmt in (
            standard_format(5, 0),
            standard_format(6, 1),
            standard_format(8, 0),
            standard_format(8, 2),
        )
    }


class TestNaiveForward:
    def test_bit_identical_to_reference(self, iris_model, iris_networks):
        ds = iris_model.dataset
        for fmt, net in iris_networks.items():
            vec = naive_forward(net, ds.test_x)
            ref = naive_forward_reference(net, ds.test_x)
            assert np.array_equal(vec, ref), str(fmt)

    def test_nonposit_families_bit_identical(self, iris_model):
        """naive_forward is format-generic: float and fixed match too."""
        weights, biases = iris_model.model.export_params()
        ds = iris_model.dataset
        for fmt in (float_format(4, 3), float_format(2, 3), fixed_format(8, 4)):
            net = PositronNetwork.from_float_params(fmt, weights, biases)
            vec = naive_forward(net, ds.test_x)
            ref = naive_forward_reference(net, ds.test_x)
            assert np.array_equal(vec, ref), str(fmt)

    def test_single_sample_and_empty_batch(self, iris_model, iris_networks):
        net = next(iter(iris_networks.values()))
        one = naive_forward(net, iris_model.dataset.test_x[0])
        assert one.shape == (1, 3)
        empty = naive_forward(net, np.zeros((0, 4)))
        assert empty.shape == (0, 3)

    def test_accuracy_matches_decoded_argmax(self, iris_model, iris_networks):
        """Rank-table readout == decoded-argmax readout for the naive pass."""
        ds = iris_model.dataset
        net = iris_networks[standard_format(6, 1)]
        out = naive_forward(net, ds.test_x)
        values = net.engine.decode_values(out)
        decoded = float(np.mean(np.argmax(values, axis=1) == ds.test_y))
        assert naive_accuracy(net, ds.test_x, ds.test_y) == decoded


class TestNaiveProductTable:
    @pytest.mark.parametrize(
        "name", ["posit8_1", "posit6_0", "float4_3", "float2_2", "fixed8_4"]
    )
    def test_matches_quantize_nearest(self, name, rng):
        backend = formats.get(name)
        values, products = naive_product_table(backend)
        valid = np.flatnonzero(np.isfinite(backend.decode_batch(
            np.arange(1 << backend.width, dtype=np.uint32))))
        w = rng.choice(valid, size=200)
        a = rng.choice(valid, size=200)
        expect = quantize_nearest(
            backend.fmt, backend.decode_batch(w) * backend.decode_batch(a)
        )
        assert np.array_equal(products[w, a], expect)

    def test_memoized_per_backend(self):
        backend = formats.get("posit6_0")
        assert naive_product_table(backend)[1] is naive_product_table(backend)[1]

    def test_width_guard(self):
        with pytest.raises(ValueError, match="product table"):
            naive_product_table(formats.backend_for(standard_format(16, 1)))


class TestTruncatedForward:
    def test_bit_identical_to_reference(self, iris_model, iris_networks):
        ds = iris_model.dataset
        subset = ds.test_x[:12]  # the full-set identity check lives in the bench
        for fmt, net in iris_networks.items():
            vec = truncated_forward(net, subset)
            ref = [truncated_forward_reference(net, x) for x in subset]
            assert [list(map(int, row)) for row in vec] == ref, str(fmt)

    def test_nonposit_families(self, iris_model):
        """The mode pipeline is format-generic: float and fixed ablate too."""
        weights, biases = iris_model.model.export_params()
        ds = iris_model.dataset
        for fmt in (float_format(4, 3), fixed_format(8, 4)):
            net = PositronNetwork.from_float_params(fmt, weights, biases)
            vec = truncated_forward(net, ds.test_x[:8])
            ref = [truncated_forward_reference(net, x) for x in ds.test_x[:8]]
            assert [list(map(int, row)) for row in vec] == ref, str(fmt)

    def test_accuracy_in_range(self, iris_model, iris_networks):
        ds = iris_model.dataset
        net = iris_networks[standard_format(6, 1)]
        acc = truncated_accuracy(net, ds.test_x, ds.test_y)
        assert 0.0 <= acc <= 1.0


class TestAblationGrid:
    def test_structure(self, iris_model):
        cell = ablation_width("iris", 6)
        assert cell["dataset"] == "iris" and cell["n"] == 6
        labels = [c.label for c in _ablation_configs(6)]
        assert [r["label"] for r in cell["rows"]] == labels
        for row in cell["rows"]:
            for key in ("exact", "naive", "truncated"):
                assert 0.0 <= row[key] <= 1.0

    def test_task_key_covers_grid_ingredients(self):
        assert ablation_task_key("iris", 6) != ablation_task_key("iris", 7)
        assert ablation_task_key("iris", 6) != ablation_task_key("wbc", 6)
        with pytest.raises(KeyError):
            ablation_task_key("nonesuch", 6)

    def test_store_caches_cells(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
        trained_model.cache_clear()
        try:
            from repro.analysis import ablation as mod

            calls = []
            real = mod._ablation_width_uncached

            def counting(name, n):
                calls.append((name, n))
                return real(name, n)

            monkeypatch.setattr(mod, "_ablation_width_uncached", counting)
            first = ablation_width("iris", 5)
            again = ablation_width("iris", 5)
            assert calls == [("iris", 5)]
            assert first == again
        finally:
            trained_model.cache_clear()

    def test_runner_serial_matches_direct(self, iris_model):
        results = run_ablation(datasets=("iris",), widths=(6,), jobs=1)
        (task, value), = results.items()
        assert task.dataset == "iris" and task.width == 6
        assert value == ablation_width("iris", 6)


@pytest.mark.slow
def test_full_ablation_directional_claim():
    """Section III-A, machine-checked over the full 3-dataset grid: at every
    (dataset, width), the best exact round-once accuracy is at least the
    best round-every-MAC accuracy (the paper's best-config selection, as in
    Table II), and truncation never meaningfully beats RNE."""
    results = ablation_table()
    assert len(results) == 3 * len(ABLATION_WIDTHS)
    for cell in results:
        best_exact = max(r["exact"] for r in cell["rows"])
        best_naive = max(r["naive"] for r in cell["rows"])
        best_trunc = max(r["truncated"] for r in cell["rows"])
        where = f"{cell['dataset']} n={cell['n']}"
        assert best_exact - best_naive >= 0.0, where
        assert best_trunc <= best_exact + 0.01, where
