"""Tests for the experiment cache and text renderers."""

import json
import multiprocessing
import os
from pathlib import Path

import numpy as np
import pytest

from repro.analysis import (
    ascii_bar,
    cached_json,
    render_figure9,
    render_histogram,
    render_series,
    render_table2,
)
from repro.analysis.histograms import Histogram


class TestCache:
    def test_compute_once(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        calls = []

        def compute():
            calls.append(1)
            return {"x": 1}

        assert cached_json("thing", compute) == {"x": 1}
        assert cached_json("thing", compute) == {"x": 1}
        assert len(calls) == 1
        assert (tmp_path / "thing.json").exists()

    def test_disable_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        calls = []

        def compute():
            calls.append(1)
            return 7

        assert cached_json("thing", compute) == 7
        assert cached_json("thing", compute) == 7
        assert len(calls) == 2

    def test_corrupt_cache_recomputed(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        (tmp_path / "bad.json").write_text("{not json")
        assert cached_json("bad", lambda: [1, 2]) == [1, 2]

    def test_clear(self, tmp_path, monkeypatch):
        from repro.analysis import clear_cache

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        cached_json("a", lambda: 1)
        clear_cache()
        assert not list(tmp_path.glob("*.json"))


def _hammer_atomic_writes(path_str: str, writer: int, iterations: int) -> None:
    """Worker: repeatedly publish one JSON artifact at a shared path."""
    from repro.analysis.cache import atomic_write_json

    payload = {"writer": writer, "blob": list(range(256))}
    for _ in range(iterations):
        atomic_write_json(Path(path_str), payload)


def _racing_cached_json(cache_dir: str, writer: int) -> None:
    """Worker: compute-and-store through ``cached_json`` on a cold cache."""
    os.environ["REPRO_CACHE_DIR"] = cache_dir
    from repro.analysis.cache import cached_json

    value = cached_json("shared", lambda: {"writer": writer, "ok": True})
    assert value["ok"] is True


class TestConcurrentWriters:
    """Regression for the fixed-name ``.tmp`` race: concurrent writers used
    to share one temp file, so one writer's ``replace`` could yank the file
    out from under another mid-write (FileNotFoundError / torn JSON)."""

    def test_two_concurrent_writers_same_artifact(self, tmp_path):
        path = tmp_path / "artifact.json"
        procs = [
            multiprocessing.Process(
                target=_hammer_atomic_writes, args=(str(path), i, 200)
            )
            for i in range(2)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=60)
        assert all(p.exitcode == 0 for p in procs)
        value = json.loads(path.read_text())  # never torn: one full payload
        assert value["writer"] in (0, 1)
        assert value["blob"] == list(range(256))
        assert not list(tmp_path.glob("*.tmp"))  # no temp litter either

    def test_concurrent_cold_cached_json(self, tmp_path):
        procs = [
            multiprocessing.Process(
                target=_racing_cached_json, args=(str(tmp_path), i)
            )
            for i in range(4)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=60)
        assert all(p.exitcode == 0 for p in procs)
        value = json.loads((tmp_path / "shared.json").read_text())
        assert value["ok"] is True

    def test_unique_tmp_paths_never_collide(self, tmp_path):
        from repro.analysis.cache import unique_tmp

        path = tmp_path / "x.json"
        names = {unique_tmp(path) for _ in range(64)}
        assert len(names) == 64
        assert all(t.parent == path.parent for t in names)


class TestRenderers:
    def test_ascii_bar(self):
        assert ascii_bar(5, 10, width=10) == "#####"
        assert ascii_bar(20, 10, width=10) == "#" * 10
        with pytest.raises(ValueError):
            ascii_bar(1, 0)

    def test_render_table2(self):
        rows = [
            {
                "dataset": "iris",
                "inference_size": 50,
                "posit": 0.98,
                "posit_config": "posit<8,1>",
                "float": 0.96,
                "float_config": "float<1,4,3>",
                "fixed": 0.92,
                "fixed_config": "fixed<8,4>",
                "float32": 0.98,
            }
        ]
        text = render_table2(rows)
        assert "iris" in text and "98.00%" in text and "92.00%" in text
        assert "posit<8,1>" in text

    def test_render_series(self):
        text = render_series(
            "Fig test",
            {"posit": [(5, 1e-10)], "fixed": [(5, 2e-11)]},
            x_label="n",
            y_label="EDP",
        )
        assert "posit" in text and "1.000e-10" in text

    def test_render_figure9(self):
        series = {
            "posit": [{"n": 8, "avg_degradation_pct": 0.3, "avg_edp": 1e-10}]
        }
        text = render_figure9(series)
        assert "posit" in text and "0.300" in text

    def test_render_histogram(self):
        hist = Histogram(np.array([0.0, 1.0, 2.0]), np.array([2.0, 4.0]))
        text = render_histogram("H", hist, width=8)
        assert "H" in text and "########" in text

    def test_render_empty_histogram_raises(self):
        hist = Histogram(np.array([0.0, 1.0]), np.array([0.0]))
        with pytest.raises(ValueError):
            render_histogram("H", hist)
