"""Tests for the experiment cache and text renderers."""

import numpy as np
import pytest

from repro.analysis import (
    ascii_bar,
    cached_json,
    render_figure9,
    render_histogram,
    render_series,
    render_table2,
)
from repro.analysis.histograms import Histogram


class TestCache:
    def test_compute_once(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        calls = []

        def compute():
            calls.append(1)
            return {"x": 1}

        assert cached_json("thing", compute) == {"x": 1}
        assert cached_json("thing", compute) == {"x": 1}
        assert len(calls) == 1
        assert (tmp_path / "thing.json").exists()

    def test_disable_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        calls = []

        def compute():
            calls.append(1)
            return 7

        assert cached_json("thing", compute) == 7
        assert cached_json("thing", compute) == 7
        assert len(calls) == 2

    def test_corrupt_cache_recomputed(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        (tmp_path / "bad.json").write_text("{not json")
        assert cached_json("bad", lambda: [1, 2]) == [1, 2]

    def test_clear(self, tmp_path, monkeypatch):
        from repro.analysis import clear_cache

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        cached_json("a", lambda: 1)
        clear_cache()
        assert not list(tmp_path.glob("*.json"))


class TestRenderers:
    def test_ascii_bar(self):
        assert ascii_bar(5, 10, width=10) == "#####"
        assert ascii_bar(20, 10, width=10) == "#" * 10
        with pytest.raises(ValueError):
            ascii_bar(1, 0)

    def test_render_table2(self):
        rows = [
            {
                "dataset": "iris",
                "inference_size": 50,
                "posit": 0.98,
                "posit_config": "posit<8,1>",
                "float": 0.96,
                "float_config": "float<1,4,3>",
                "fixed": 0.92,
                "fixed_config": "fixed<8,4>",
                "float32": 0.98,
            }
        ]
        text = render_table2(rows)
        assert "iris" in text and "98.00%" in text and "92.00%" in text
        assert "posit<8,1>" in text

    def test_render_series(self):
        text = render_series(
            "Fig test",
            {"posit": [(5, 1e-10)], "fixed": [(5, 2e-11)]},
            x_label="n",
            y_label="EDP",
        )
        assert "posit" in text and "1.000e-10" in text

    def test_render_figure9(self):
        series = {
            "posit": [{"n": 8, "avg_degradation_pct": 0.3, "avg_edp": 1e-10}]
        }
        text = render_figure9(series)
        assert "posit" in text and "0.300" in text

    def test_render_histogram(self):
        hist = Histogram(np.array([0.0, 1.0, 2.0]), np.array([2.0, 4.0]))
        text = render_histogram("H", hist, width=8)
        assert "H" in text and "########" in text

    def test_render_empty_histogram_raises(self):
        hist = Histogram(np.array([0.0, 1.0]), np.array([0.0]))
        with pytest.raises(ValueError):
            render_histogram("H", hist)
