"""Golden-value regression suite for the paper's headline artifacts.

Seeded end-to-end runs (train parent models from scratch, sweep, assemble
Table II / Fig. 9) are checked against committed golden JSON
(``tests/golden/golden_values.json``).  Accuracies are compared *exactly*:
on one machine the pipeline is deterministic, so any drift means an
engine/quantizer/training change.  EDP and degradation averages get a
tight relative tolerance (pure float aggregation).  Caveat: training
matmuls go through the platform BLAS, so a different BLAS build *can*
legitimately reach different trained weights — if these tests fail on a
new platform while the bit-identity property tests all pass, regenerate
the goldens there and diff before assuming an engine regression.

The iris-only checks run in tier-1; the full three-dataset runs (serial and
``jobs=4`` parallel) are marked ``slow`` and run in the CI slow job.

To regenerate after an *intentional* change::

    PYTHONPATH=src python tests/golden/regenerate.py
"""

import json
from pathlib import Path

import pytest

from repro.analysis.runner import run_fig9, run_table2
from repro.analysis.sweep import figure9_series, table2_rows, trained_model

GOLDEN_PATH = Path(__file__).resolve().parent.parent / "golden" / "golden_values.json"
GOLDEN = json.loads(GOLDEN_PATH.read_text())

ALL_DATASETS = ("wbc", "iris", "mushroom")
EDP_REL_TOL = 1e-9
DEGRADATION_REL_TOL = 1e-12


@pytest.fixture
def fresh_cache(tmp_path, monkeypatch):
    """Cold store + cold in-process cache: the run is truly end-to-end."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
    trained_model.cache_clear()
    yield tmp_path
    trained_model.cache_clear()


def assert_table2_matches(rows, golden_rows):
    assert len(rows) == len(golden_rows)
    for row, golden in zip(rows, golden_rows):
        assert row["dataset"] == golden["dataset"]
        assert row["inference_size"] == golden["inference_size"]
        for field in ("posit", "float", "fixed", "float32"):
            assert row[field] == golden[field], (row["dataset"], field)
        for field in ("posit_config", "float_config", "fixed_config"):
            assert row[field] == golden[field], (row["dataset"], field)


def assert_figure9_matches(series, golden_series):
    assert set(series) == set(golden_series)
    for family, points in golden_series.items():
        assert len(series[family]) == len(points), family
        for point, golden in zip(series[family], points):
            assert point["n"] == golden["n"]
            assert point["avg_degradation_pct"] == pytest.approx(
                golden["avg_degradation_pct"], rel=DEGRADATION_REL_TOL
            ), (family, golden["n"])
            assert point["avg_edp"] == pytest.approx(
                golden["avg_edp"], rel=EDP_REL_TOL
            ), (family, golden["n"])


class TestGoldenIris:
    """Tier-1 guard: one dataset, trained from scratch each run."""

    def test_table2_iris(self, fresh_cache):
        assert_table2_matches(table2_rows(("iris",)), GOLDEN["table2_iris"])

    def test_figure9_iris(self, fresh_cache):
        series = figure9_series((5, 8), ("iris",))
        assert_figure9_matches(series, GOLDEN["figure9_iris"])


@pytest.mark.slow
class TestGoldenFull:
    """Full three-dataset artifacts, serial and parallel."""

    def test_table2_serial(self, fresh_cache):
        assert_table2_matches(table2_rows(ALL_DATASETS), GOLDEN["table2"])

    def test_table2_parallel_jobs4(self, fresh_cache):
        rows = run_table2(ALL_DATASETS, jobs=4)
        assert_table2_matches(rows, GOLDEN["table2"])

    def test_figure9_serial(self, fresh_cache):
        series = figure9_series((5, 6, 7, 8), ALL_DATASETS)
        assert_figure9_matches(series, GOLDEN["figure9"])

    def test_figure9_parallel_jobs4(self, fresh_cache):
        series = run_fig9((5, 6, 7, 8), ALL_DATASETS, jobs=4)
        assert_figure9_matches(series, GOLDEN["figure9"])
