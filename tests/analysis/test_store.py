"""Content-addressed artifact store: keys, round-trips, recovery, bypass."""

import json

import numpy as np
import pytest

from repro.analysis.store import ArtifactStore, artifact_store, content_key
from repro.analysis.sweep import (
    EXPERIMENTS,
    ExperimentSpec,
    model_key,
    sweep_task_key,
    sweep_width,
    trained_model,
)
from repro.nn.model import MLP
from repro.nn.train import TrainConfig


@pytest.fixture
def fresh_cache(tmp_path, monkeypatch):
    """An isolated cache dir with the in-process model cache cleared."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
    trained_model.cache_clear()
    yield tmp_path
    trained_model.cache_clear()


class TestContentKey:
    def test_stable_and_order_insensitive(self):
        assert content_key({"a": 1, "b": 2}) == content_key({"b": 2, "a": 1})
        assert content_key({"a": 1}) != content_key({"a": 2})

    def test_dataclasses_hash_by_field_values(self):
        a = TrainConfig(seed=1)
        b = TrainConfig(seed=1)
        c = TrainConfig(seed=2)
        assert content_key(a) == content_key(b)
        assert content_key(a) != content_key(c)

    def test_tuples_and_lists_agree(self):
        assert content_key((1, 2, 3)) == content_key([1, 2, 3])


class TestModelKeys:
    def test_every_experiment_distinct(self):
        keys = {model_key(spec) for spec in EXPERIMENTS.values()}
        assert len(keys) == len(EXPERIMENTS)

    def test_hyperparameter_change_invalidates(self):
        spec = EXPERIMENTS["iris"]
        tweaked = ExperimentSpec(
            name=spec.name,
            topology=spec.topology,
            train=TrainConfig(
                **{
                    **{
                        f: getattr(spec.train, f)
                        for f in spec.train.__dataclass_fields__
                    },
                    "seed": spec.train.seed + 1,
                }
            ),
        )
        assert model_key(spec) != model_key(tweaked)

    def test_sweep_key_covers_width(self):
        assert sweep_task_key("iris", 5) != sweep_task_key("iris", 8)
        assert sweep_task_key("iris", 8) != sweep_task_key("wbc", 8)

    def test_sweep_key_unknown_dataset(self):
        with pytest.raises(KeyError):
            sweep_task_key("mnist", 8)


class TestModelRoundTrip:
    def test_export_import_bit_identity(self, rng):
        model = MLP((7, 5, 3), rng)
        clone = MLP.from_arrays(model.export_arrays())
        for ours, theirs in zip(model.dense_layers, clone.dense_layers):
            np.testing.assert_array_equal(ours.weight, theirs.weight)
            np.testing.assert_array_equal(ours.bias, theirs.bias)
        x = rng.normal(size=(11, 7))
        np.testing.assert_array_equal(model.forward(x), clone.forward(x))

    def test_npz_round_trip_bit_identity(self, rng, tmp_path):
        model = MLP((4, 6, 2), rng)
        path = tmp_path / "model.npz"
        model.save_npz(path)
        clone = MLP.load_npz(path)
        assert clone.topology == model.topology
        x = rng.normal(size=(5, 4))
        np.testing.assert_array_equal(model.forward(x), clone.forward(x))

    def test_from_arrays_missing_entries(self, rng):
        with pytest.raises(ValueError):
            MLP.from_arrays({})
        arrays = MLP((3, 2), rng).export_arrays()
        del arrays["bias_0"]
        with pytest.raises(ValueError):
            MLP.from_arrays(arrays)

    def test_store_round_trip(self, fresh_cache, rng):
        store = artifact_store()
        model = MLP((3, 4, 2), rng)
        store.save_model("k1", model.export_arrays(), {"note": "hi"})
        loaded = store.load_model("k1")
        assert loaded is not None
        arrays, meta = loaded
        assert meta == {"note": "hi"}
        clone = MLP.from_arrays(arrays)
        x = rng.normal(size=(6, 3))
        np.testing.assert_array_equal(model.forward(x), clone.forward(x))


class TestTrainedModelStore:
    def test_second_process_state_loads_instead_of_retraining(
        self, fresh_cache, monkeypatch
    ):
        first = trained_model("iris")
        trained_model.cache_clear()  # simulate a fresh process
        import repro.analysis.sweep as sweep_mod

        def boom(*args, **kwargs):  # retraining would be a resume bug
            raise AssertionError("train_classifier called despite cached model")

        monkeypatch.setattr(sweep_mod, "train_classifier", boom)
        second = trained_model("iris")
        assert second.float32_accuracy == first.float32_accuracy
        w1, b1 = first.model.export_params()
        w2, b2 = second.model.export_params()
        for a, b in zip(w1 + b1, w2 + b2):
            np.testing.assert_array_equal(a, b)

    def test_corrupt_model_artifact_recovers(self, fresh_cache):
        first = trained_model("iris")
        store = artifact_store()
        path = store.model_path(model_key(EXPERIMENTS["iris"]))
        assert path.exists()
        path.write_bytes(b"this is not an npz archive")
        trained_model.cache_clear()
        again = trained_model("iris")  # retrains and heals the store
        assert again.float32_accuracy == first.float32_accuracy
        assert store.load_model(model_key(EXPERIMENTS["iris"])) is not None

    def test_stale_artifact_not_picked_up(self, fresh_cache, monkeypatch):
        trained_model("iris")
        store = artifact_store()
        old_key = model_key(EXPERIMENTS["iris"])
        assert store.has_model(old_key)
        spec = EXPERIMENTS["iris"]
        changed = ExperimentSpec(
            name=spec.name,
            topology=spec.topology,
            train=TrainConfig(
                **{
                    **{
                        f: getattr(spec.train, f)
                        for f in spec.train.__dataclass_fields__
                    },
                    "epochs": spec.train.epochs + 1,
                }
            ),
        )
        monkeypatch.setitem(EXPERIMENTS, "iris", changed)
        trained_model.cache_clear()
        trained_model("iris")
        # Both artifacts exist under their own keys; neither shadowed the other.
        assert store.has_model(old_key)
        assert store.has_model(model_key(changed))
        assert model_key(changed) != old_key


class TestSweepResultStore:
    def test_result_persisted_and_reused(self, fresh_cache, monkeypatch):
        import repro.analysis.sweep as sweep_mod

        calls = []
        real = sweep_mod._sweep_width_uncached

        def counting(name, n):
            calls.append((name, n))
            return real(name, n)

        monkeypatch.setattr(sweep_mod, "_sweep_width_uncached", counting)
        first = sweep_width("iris", 5)
        second = sweep_width("iris", 5)
        assert first == second
        assert calls == [("iris", 5)]
        store = artifact_store()
        assert store.has_result(sweep_task_key("iris", 5))

    def test_corrupt_result_recomputed(self, fresh_cache):
        first = sweep_width("iris", 5)
        store = artifact_store()
        path = store.result_path(sweep_task_key("iris", 5))
        path.write_text("{torn write")
        assert sweep_width("iris", 5) == first

    def test_no_cache_bypasses_store(self, fresh_cache, monkeypatch):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        trained_model.cache_clear()
        import repro.analysis.sweep as sweep_mod

        calls = []
        real = sweep_mod._sweep_width_uncached

        def counting(name, n):
            calls.append((name, n))
            return real(name, n)

        monkeypatch.setattr(sweep_mod, "_sweep_width_uncached", counting)
        sweep_width("iris", 5)
        sweep_width("iris", 5)
        assert calls == [("iris", 5), ("iris", 5)]
        assert not (fresh_cache / "store").exists()

    def test_no_cache_never_creates_cache_dir(self, tmp_path, monkeypatch):
        """With REPRO_NO_CACHE set, the cache directory itself must not be
        created (a read-only checkout would otherwise crash on mkdir)."""
        root = tmp_path / "never-created"
        monkeypatch.setenv("REPRO_CACHE_DIR", str(root))
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        trained_model.cache_clear()
        sweep_width("iris", 5)
        assert not root.exists()

    def test_cache_dir_override_respected(self, fresh_cache):
        sweep_width("iris", 5)
        store_root = fresh_cache / "store"
        assert (store_root / "models").is_dir()
        assert (store_root / "results").is_dir()
        assert list((store_root / "results").glob("*.json"))


class TestStoreRecovery:
    def test_load_model_missing(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        assert store.load_model("nope") is None

    def test_load_result_missing_and_corrupt(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        assert store.load_result("nope") is None
        store.save_result("k", {"v": 1})
        store.result_path("k").write_text("not json at all {{{")
        assert store.load_result("k") is None
        assert not store.result_path("k").exists()  # corrupt file removed

    def test_save_result_round_trips_json(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        value = {"acc": 0.98, "all": [{"label": "posit<8,1>"}]}
        store.save_result("k", value)
        assert store.load_result("k") == value
        assert json.load(store.result_path("k").open()) == value
