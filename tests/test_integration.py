"""End-to-end integration tests across the whole stack.

Train -> quantize -> exact Deep Positron inference -> metrics, for all three
formats, on a synthetic problem small enough for CI.
"""

import numpy as np
import pytest

from repro.core import PositronNetwork, engine_for
from repro.fixedpoint import fixed_format
from repro.floatp import float_format
from repro.nn import MLP, TrainConfig, train_classifier
from repro.posit.format import standard_format


@pytest.fixture(scope="module")
def trained_toy():
    """A small trained classifier on 3-class Gaussian data."""
    rng = np.random.default_rng(42)
    centers = np.array([[0.0, 0.0, 0.0], [2.5, 0.0, 1.0], [0.0, 2.5, -1.0]])
    x = np.concatenate([rng.normal(size=(80, 3)) * 0.6 + c for c in centers])
    y = np.repeat(np.arange(3), 80)
    order = rng.permutation(len(y))
    x, y = x[order], y[order]
    model = MLP((3, 12, 6, 3), np.random.default_rng(7))
    cfg = TrainConfig(epochs=120, learning_rate=5e-3, optimizer="adam", seed=3)
    train_classifier(model, x[:180], y[:180], x[180:], y[180:], cfg)
    model.cast_float32()
    return model, x[180:], y[180:]


class TestEndToEnd:
    @pytest.mark.parametrize(
        "fmt",
        [standard_format(8, 1), float_format(4, 3), fixed_format(8, 5)],
        ids=["posit8", "float8", "fixed8"],
    )
    def test_8bit_deployment_close_to_float(self, trained_toy, fmt):
        model, test_x, test_y = trained_toy
        baseline = model.accuracy(test_x, test_y)
        assert baseline > 0.85
        weights, biases = model.export_params()
        net = PositronNetwork.from_float_params(fmt, weights, biases)
        acc = net.accuracy(test_x, test_y)
        assert acc >= baseline - 0.10, f"{fmt}: {acc} vs {baseline}"

    def test_posit_competitive_at_5bit(self, trained_toy):
        """At 5 bits every format degrades; posit stays competitive.

        On this toy problem the features are well-conditioned (unit scale),
        which is fixed-point's best case — the paper's decisive posit wins
        appear on scale-heterogeneous data (the WBC sweep).  Here we only
        require posit to stay within a few points of the best format.
        """
        model, test_x, test_y = trained_toy
        weights, biases = model.export_params()

        def best(configs):
            return max(
                PositronNetwork.from_float_params(f, weights, biases).accuracy(
                    test_x, test_y
                )
                for f in configs
            )

        posit = best([standard_format(5, es) for es in (0, 1, 2)])
        flt = best([float_format(2, 2), float_format(3, 1)])
        fixed = best([fixed_format(5, q) for q in range(5)])
        assert posit >= flt - 0.05
        assert posit >= fixed - 0.05

    def test_scalar_and_vector_agree_on_trained_network(self, trained_toy):
        model, test_x, _ = trained_toy
        weights, biases = model.export_params()
        fmt = standard_format(8, 1)
        net = PositronNetwork.from_float_params(fmt, weights, biases)
        engine = engine_for(fmt)
        patterns = engine.quantize(test_x[:5])
        vec = net.forward_patterns(patterns)
        for i in range(5):
            scalar = net.forward_scalar([int(p) for p in patterns[i]])
            assert [int(b) for b in vec[i]] == scalar

    def test_timing_and_memory_report(self, trained_toy):
        model, _, _ = trained_toy
        weights, biases = model.export_params()
        net = PositronNetwork.from_float_params(standard_format(8, 1), weights, biases)
        timing = net.timing()
        assert timing.latency_cycles > 0
        assert net.total_memory_bits() == ((3 * 12 + 12) + (12 * 6 + 6) + (6 * 3 + 3)) * 8

    def test_hardware_report_for_deployed_network(self, trained_toy):
        """hw model consumes the network's real fan-ins."""
        from repro.hw import emac_report

        model, _, _ = trained_toy
        weights, biases = model.export_params()
        net = PositronNetwork.from_float_params(standard_format(8, 1), weights, biases)
        for layer in net.layers:
            report = emac_report(net.fmt, fan_in=layer.in_features)
            assert report.luts.total > 0
            assert report.power.dot_product_cycles == layer.in_features + 4
