"""Tests for the wide accumulator and limb arithmetic."""

from fractions import Fraction

import numpy as np
import pytest

from repro.core.accumulator import (
    LIMB_BITS,
    ExactAccumulator,
    combine_limb_matrix,
    combine_limbs,
    limbs_needed,
)


class TestExactAccumulator:
    def test_empty(self):
        acc = ExactAccumulator(-4)
        assert acc.raw == 0 and acc.count == 0
        assert acc.to_fraction() == 0

    def test_add_terms(self):
        acc = ExactAccumulator(-4)
        acc.add_term(3, -4)  # 3/16
        acc.add_term(1, 0)  # 1
        assert acc.to_fraction() == Fraction(3, 16) + 1
        assert acc.count == 2

    def test_negative_terms(self):
        acc = ExactAccumulator(-8)
        acc.add_term(-5, -8)
        assert acc.to_fraction() == Fraction(-5, 256)

    def test_term_below_lsb_rejected(self):
        acc = ExactAccumulator(-2)
        with pytest.raises(ValueError):
            acc.add_term(1, -3)

    def test_reset_preload(self):
        acc = ExactAccumulator(0)
        acc.reset(42)
        assert acc.raw == 42 and acc.count == 0

    def test_positive_lsb_exponent(self):
        acc = ExactAccumulator(3)
        acc.add_term(5, 3)
        assert acc.to_fraction() == 40

    def test_sign_and_magnitude(self):
        acc = ExactAccumulator(0)
        acc.add_term(-7, 0)
        assert acc.sign_and_magnitude() == (1, 7)
        acc.reset(9)
        assert acc.sign_and_magnitude() == (0, 9)

    def test_bits_used(self):
        acc = ExactAccumulator(0)
        acc.add_term(255, 0)
        assert acc.bits_used() == 9  # 8 magnitude bits + sign

    def test_huge_values(self):
        acc = ExactAccumulator(-100)
        acc.add_term(1, 100)  # raw becomes 1 << 200
        assert acc.raw == 1 << 200
        assert acc.to_fraction() == Fraction(2) ** 100


class TestLimbs:
    def test_combine_single(self):
        assert combine_limbs(np.array([7], dtype=np.int64)) == 7

    def test_combine_positional(self):
        limbs = np.array([1, 2, 3], dtype=np.int64)
        expected = 1 + (2 << LIMB_BITS) + (3 << (2 * LIMB_BITS))
        assert combine_limbs(limbs) == expected

    def test_combine_negative_limbs(self):
        limbs = np.array([-1, 5], dtype=np.int64)
        assert combine_limbs(limbs) == (5 << LIMB_BITS) - 1

    def test_combine_unnormalized(self):
        """Limbs may exceed the radix; combination must still be exact."""
        big = (1 << 40) + 123
        limbs = np.array([big, -big], dtype=np.int64)
        assert combine_limbs(limbs) == big - (big << LIMB_BITS)

    def test_combine_matches_python_reference(self, rng):
        for _ in range(100):
            limbs = rng.integers(-(2**45), 2**45, size=6)
            expected = sum(int(l) << (i * LIMB_BITS) for i, l in enumerate(limbs))
            assert combine_limbs(limbs) == expected

    def test_combine_matrix(self, rng):
        limbs = rng.integers(-(2**30), 2**30, size=(2, 3, 4))
        flat = combine_limb_matrix(limbs)
        assert len(flat) == 6
        assert flat[0] == combine_limbs(limbs[0, 0])
        assert flat[-1] == combine_limbs(limbs[1, 2])

    def test_limbs_needed(self):
        assert limbs_needed(0, 10) >= 1
        assert limbs_needed(100, 12) * LIMB_BITS >= 112
        with pytest.raises(ValueError):
            limbs_needed(-1, 4)
