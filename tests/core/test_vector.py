"""The vector engines must be bit-identical to the scalar EMAC cores."""

import numpy as np
import pytest

from repro.core import (
    FixedVectorEngine,
    FloatVectorEngine,
    PositVectorEngine,
    engine_for,
    scalar_emac_for,
)
from repro.fixedpoint import fixed_format
from repro.floatp import float_format, tables_for as float_tables
from repro.posit import tables_for as posit_tables
from repro.posit.format import standard_format

ALL_FORMATS = [
    standard_format(5, 0),
    standard_format(8, 0),
    standard_format(8, 1),
    standard_format(8, 2),
    float_format(2, 5),
    float_format(4, 3),
    float_format(5, 2),
    fixed_format(8, 2),
    fixed_format(8, 7),
    fixed_format(5, 3),
]


def scrub(fmt, patterns):
    """Replace datapath-invalid patterns with zero."""
    from repro.fixedpoint.format import FixedFormat
    from repro.floatp.format import FloatFormat
    from repro.posit.format import PositFormat

    p = np.asarray(patterns, dtype=np.uint32)
    if isinstance(fmt, PositFormat):
        p[p == fmt.nar_pattern] = 0
    elif isinstance(fmt, FloatFormat):
        p[float_tables(fmt).is_reserved[p]] = 0
    return p


@pytest.fixture(params=range(len(ALL_FORMATS)), ids=lambda i: str(ALL_FORMATS[i]))
def any_fmt(request):
    return ALL_FORMATS[request.param]


class TestEngineFactory:
    def test_dispatch(self):
        assert isinstance(engine_for(standard_format(8, 1)), PositVectorEngine)
        assert isinstance(engine_for(float_format(4, 3)), FloatVectorEngine)
        assert isinstance(engine_for(fixed_format(8, 4)), FixedVectorEngine)

    def test_unknown_type(self):
        with pytest.raises(TypeError):
            engine_for("posit8")

    def test_width(self, any_fmt):
        assert engine_for(any_fmt).width == any_fmt.n


class TestBitIdenticalToScalar:
    def test_random_layers(self, any_fmt, rng):
        engine = engine_for(any_fmt)
        emac = scalar_emac_for(any_fmt)
        hi = 1 << any_fmt.n
        W = scrub(any_fmt, rng.integers(0, hi, size=(4, 11), dtype=np.uint32))
        X = scrub(any_fmt, rng.integers(0, hi, size=(6, 11), dtype=np.uint32))
        B = scrub(any_fmt, rng.integers(0, hi, size=(4,), dtype=np.uint32))
        out = engine.dot(W, X, B)
        assert out.shape == (6, 4) and out.dtype == np.uint32
        for i in range(6):
            for o in range(4):
                expect = emac.dot(
                    [int(w) for w in W[o]],
                    [int(x) for x in X[i]],
                    bias_bits=int(B[o]),
                )
                assert int(out[i, o]) == expect, (any_fmt, i, o)

    def test_no_bias(self, any_fmt, rng):
        engine = engine_for(any_fmt)
        emac = scalar_emac_for(any_fmt)
        hi = 1 << any_fmt.n
        W = scrub(any_fmt, rng.integers(0, hi, size=(3, 7), dtype=np.uint32))
        X = scrub(any_fmt, rng.integers(0, hi, size=(2, 7), dtype=np.uint32))
        out = engine.dot(W, X)
        for i in range(2):
            for o in range(3):
                expect = emac.dot([int(w) for w in W[o]], [int(x) for x in X[i]])
                assert int(out[i, o]) == expect

    def test_fan_in_one(self, any_fmt, rng):
        engine = engine_for(any_fmt)
        emac = scalar_emac_for(any_fmt)
        hi = 1 << any_fmt.n
        W = scrub(any_fmt, rng.integers(0, hi, size=(2, 1), dtype=np.uint32))
        X = scrub(any_fmt, rng.integers(0, hi, size=(3, 1), dtype=np.uint32))
        out = engine.dot(W, X)
        for i in range(3):
            for o in range(2):
                assert int(out[i, o]) == emac.dot([int(W[o, 0])], [int(X[i, 0])])

    def test_chunking_boundary(self, rng, monkeypatch):
        """Results must not depend on the batch chunk size."""
        import repro.core.vector as vec

        fmt = standard_format(8, 1)
        engine = engine_for(fmt)
        W = scrub(fmt, rng.integers(0, 256, size=(3, 9), dtype=np.uint32))
        X = scrub(fmt, rng.integers(0, 256, size=(10, 9), dtype=np.uint32))
        full = engine.dot(W, X)
        monkeypatch.setattr(vec, "_CHUNK_ELEMENTS", 30)  # force tiny chunks
        engine2 = engine_for(fmt)
        chunked = engine2.dot(W, X)
        assert np.array_equal(full, chunked)

    def test_all_zero_inputs(self, any_fmt):
        engine = engine_for(any_fmt)
        W = np.zeros((2, 4), dtype=np.uint32)
        X = np.zeros((3, 4), dtype=np.uint32)
        out = engine.dot(W, X)
        assert np.all(out == 0)

    def test_extreme_patterns(self, any_fmt):
        """All-maxpos inputs: saturation behaviour must match scalar."""
        engine = engine_for(any_fmt)
        emac = scalar_emac_for(any_fmt)
        from repro.posit.format import PositFormat

        mx = (
            any_fmt.maxpos_pattern
            if isinstance(any_fmt, PositFormat)
            else (1 << (any_fmt.n - 1)) - 1
        )
        W = np.full((1, 8), mx, dtype=np.uint32)
        X = np.full((1, 8), mx, dtype=np.uint32)
        W = scrub(any_fmt, W)
        X = scrub(any_fmt, X)
        out = engine.dot(W, X)
        assert int(out[0, 0]) == emac.dot(
            [int(w) for w in W[0]], [int(x) for x in X[0]]
        )


class TestValidation:
    def test_shape_checks(self):
        engine = engine_for(standard_format(8, 1))
        with pytest.raises(ValueError):
            engine.dot(np.zeros((2, 3), np.uint32), np.zeros((2, 4), np.uint32))
        with pytest.raises(ValueError):
            engine.dot(np.zeros(3, np.uint32), np.zeros((2, 3), np.uint32))
        with pytest.raises(ValueError):
            engine.dot(
                np.zeros((2, 3), np.uint32),
                np.zeros((2, 3), np.uint32),
                np.zeros(3, np.uint32),
            )

    def test_nar_rejected(self):
        fmt = standard_format(8, 1)
        engine = engine_for(fmt)
        bad = np.full((1, 2), fmt.nar_pattern, dtype=np.uint32)
        with pytest.raises(ValueError):
            engine.dot(bad, np.zeros((1, 2), np.uint32))

    def test_reserved_rejected(self):
        fmt = float_format(4, 3)
        engine = engine_for(fmt)
        inf_like = np.full((1, 2), 0b01111000, dtype=np.uint32)
        with pytest.raises(ValueError):
            engine.dot(inf_like, np.zeros((1, 2), np.uint32))

    def test_out_of_range_pattern_rejected(self):
        fmt = fixed_format(8, 4)
        engine = engine_for(fmt)
        with pytest.raises(ValueError):
            engine.dot(
                np.full((1, 2), 300, dtype=np.uint32), np.zeros((1, 2), np.uint32)
            )


class TestUnaryOps:
    def test_relu_matches_tables(self, rng):
        fmt = standard_format(8, 1)
        engine = engine_for(fmt)
        patterns = rng.integers(0, 256, size=37, dtype=np.uint32)
        out = engine.relu(patterns)
        expect = posit_tables(fmt).relu[patterns.astype(np.int64)]
        assert np.array_equal(out, expect.astype(np.uint32))

    def test_decode_values(self):
        fmt = fixed_format(8, 4)
        engine = engine_for(fmt)
        patterns = np.array([0, 16, 0xF0], dtype=np.uint32)  # 0, 1.0, -1.0
        assert np.allclose(engine.decode_values(patterns), [0.0, 1.0, -1.0])

    def test_quantize_decode_roundtrip(self, any_fmt, rng):
        engine = engine_for(any_fmt)
        values = rng.normal(size=16)
        patterns = engine.quantize(values)
        back = engine.decode_values(patterns)
        again = engine.quantize(back)
        assert np.array_equal(patterns, again)
