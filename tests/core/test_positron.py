"""Tests for the Deep Positron network architecture."""

import numpy as np
import pytest

from repro.core import PositronNetwork, engine_for
from repro.core.positron import PositronLayer
from repro.fixedpoint import fixed_format
from repro.floatp import float_format
from repro.posit.format import standard_format

P8 = standard_format(8, 1)


def tiny_network(fmt, rng, topology=(4, 5, 3)):
    engine = engine_for(fmt)
    weights, biases = [], []
    for fan_in, fan_out in zip(topology, topology[1:]):
        weights.append(rng.normal(scale=0.8, size=(fan_out, fan_in)))
        biases.append(rng.normal(scale=0.2, size=fan_out))
    return PositronNetwork.from_float_params(fmt, weights, biases), engine


class TestConstruction:
    def test_from_float_params(self, rng):
        net, _ = tiny_network(P8, rng)
        assert net.topology == (4, 5, 3)
        assert net.layers[0].activation == "relu"
        assert net.layers[-1].activation == "identity"

    def test_layer_size_mismatch(self, rng):
        engine = engine_for(P8)
        l1 = PositronLayer(P8, np.zeros((5, 4), np.uint32), np.zeros(5, np.uint32), "relu", engine)
        l2 = PositronLayer(P8, np.zeros((3, 6), np.uint32), np.zeros(3, np.uint32), "identity", engine)
        with pytest.raises(ValueError):
            PositronNetwork(P8, [l1, l2])

    def test_empty_network_rejected(self):
        with pytest.raises(ValueError):
            PositronNetwork(P8, [])

    def test_bad_activation(self):
        with pytest.raises(ValueError):
            PositronLayer(
                P8, np.zeros((2, 2), np.uint32), np.zeros(2, np.uint32),
                "sigmoid", engine_for(P8),
            )

    def test_bias_shape_check(self):
        with pytest.raises(ValueError):
            PositronLayer(
                P8, np.zeros((2, 2), np.uint32), np.zeros(3, np.uint32),
                "relu", engine_for(P8),
            )

    def test_mismatched_array_counts(self):
        with pytest.raises(ValueError):
            PositronNetwork.from_arrays(P8, [np.zeros((2, 2), np.uint32)], [])


@pytest.mark.parametrize(
    "fmt",
    [standard_format(8, 1), float_format(4, 3), fixed_format(8, 4)],
    ids=["posit", "float", "fixed"],
)
class TestForwardConsistency:
    def test_vector_equals_scalar_path(self, fmt, rng):
        net, engine = tiny_network(fmt, rng)
        inputs = rng.normal(size=(3, 4))
        patterns = engine.quantize(inputs)
        vec_out = net.forward_patterns(patterns)
        for i in range(3):
            scalar_out = net.forward_scalar([int(p) for p in patterns[i]])
            assert [int(b) for b in vec_out[i]] == scalar_out

    def test_single_sample_promotion(self, fmt, rng):
        net, engine = tiny_network(fmt, rng)
        patterns = engine.quantize(rng.normal(size=4))
        out = net.forward_patterns(patterns)
        assert out.shape == (1, 3)


class TestInference:
    def test_predict_shape_and_range(self, rng):
        net, _ = tiny_network(P8, rng)
        preds = net.predict(rng.normal(size=(10, 4)))
        assert preds.shape == (10,)
        assert set(np.unique(preds)).issubset({0, 1, 2})

    def test_accuracy_metric(self, rng):
        net, _ = tiny_network(P8, rng)
        x = rng.normal(size=(10, 4))
        preds = net.predict(x)
        assert net.accuracy(x, preds) == 1.0
        assert 0.0 <= net.accuracy(x, np.zeros(10, dtype=int)) <= 1.0

    def test_relu_zeroes_hidden_negatives(self, rng):
        """Hidden activations out of layer 0 must be non-negative."""
        net, engine = tiny_network(P8, rng)
        patterns = engine.quantize(rng.normal(size=(5, 4)))
        hidden = net.layers[0].forward(patterns)
        values = engine.decode_values(hidden)
        assert np.all(values >= 0)

    def test_forward_values_decodes(self, rng):
        net, _ = tiny_network(P8, rng)
        out = net.forward_values(rng.normal(size=(2, 4)))
        assert out.shape == (2, 3)
        assert np.all(np.isfinite(out))

    def test_identical_float_params_same_predictions(self, rng):
        """Quantizing twice yields the same network bit-for-bit."""
        weights = [rng.normal(size=(5, 4)), rng.normal(size=(3, 5))]
        biases = [rng.normal(size=5), rng.normal(size=3)]
        a = PositronNetwork.from_float_params(P8, weights, biases)
        b = PositronNetwork.from_float_params(P8, weights, biases)
        for la, lb in zip(a.layers, b.layers):
            assert np.array_equal(la.weights, lb.weights)
            assert np.array_equal(la.bias, lb.bias)


class TestFusedPlanLifecycle:
    """The cached fused network plan and its epoch-based invalidation."""

    def test_plan_cached_until_recompile(self, rng):
        net, _ = tiny_network(P8, rng)
        plan = net.network_kernel()
        assert net.network_kernel() is plan
        net.recompile()
        assert net.network_kernel() is not plan

    def test_recompile_after_weight_mutation(self, rng):
        """Mutating weights after the plan compiled requires recompile();
        the fused forward must then track the new parameters exactly."""
        net, engine = tiny_network(P8, rng)
        X = engine.quantize(rng.normal(size=(6, 4)))
        before = net.forward_patterns(X).copy()  # warms the cached plan
        net.layers[0].weights[...] = engine.quantize(
            rng.normal(scale=0.8, size=net.layers[0].weights.shape)
        )
        net.recompile()
        after = net.forward_patterns(X)
        assert np.array_equal(after, net.forward_patterns_layers(X))
        assert not np.array_equal(after, before)

    def test_mode_twin_compiles_its_own_plan(self, rng):
        net, engine = tiny_network(P8, rng)
        twin = net.with_rounding_mode("rtz")
        assert twin.network_kernel() is not net.network_kernel()
        X = engine.quantize(rng.normal(size=(5, 4)))
        assert np.array_equal(
            twin.forward_patterns(X), twin.forward_patterns_layers(X)
        )
        # recompile() on the parent reaches cached twins' layers too, so
        # the twin's fused plan is invalidated along with the parent's.
        twin_plan = twin.network_kernel()
        net.recompile()
        assert twin.network_kernel() is not twin_plan

    def test_predict_patterns_empty_batch(self, rng):
        net, _ = tiny_network(P8, rng)
        empty = np.zeros((0, 4), np.uint32)
        assert net.predict_patterns(empty).shape == (0,)
        assert net.forward_patterns(empty).shape == (0, 3)

    def test_predict_patterns_single_row_1d(self, rng):
        net, engine = tiny_network(P8, rng)
        x = engine.quantize(rng.normal(size=4))
        pred = net.predict_patterns(x)
        assert pred.shape == (1,)
        assert np.array_equal(pred, net.predict_patterns(x[None, :]))
        assert net.forward_patterns(x).shape == (1, 3)


class TestTimingAndMemory:
    def test_timing_matches_topology(self, rng):
        net, _ = tiny_network(P8, rng, topology=(4, 6, 3))
        timing = net.timing()
        depth = 4  # posit EMAC pipeline
        assert timing.per_layer_cycles == (4 + depth, 6 + depth)
        assert timing.latency_cycles == sum(timing.per_layer_cycles)
        assert timing.initiation_interval == max(timing.per_layer_cycles)

    def test_memory_accounting(self, rng):
        net, _ = tiny_network(P8, rng, topology=(4, 6, 3))
        expected_words = (4 * 6 + 6) + (6 * 3 + 3)
        assert net.total_memory_bits() == expected_words * 8

    def test_layer_memory(self, rng):
        net, _ = tiny_network(P8, rng)
        mem = net.layers[0].memory
        assert mem.weight_words == 20 and mem.bias_words == 5
        assert mem.word_bits == 8

    def test_repr(self, rng):
        net, _ = tiny_network(P8, rng)
        assert "4-5-3" in repr(net)
