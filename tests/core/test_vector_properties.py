"""Hypothesis property tests for the vectorized exact engines."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import engine_for, scalar_emac_for
from repro.fixedpoint import fixed_format
from repro.floatp import float_format, tables_for as float_tables
from repro.posit.format import standard_format

FORMATS = [
    standard_format(6, 0),
    standard_format(8, 1),
    standard_format(8, 2),
    float_format(4, 3),
    float_format(3, 4),
    fixed_format(8, 5),
]


def scrub(fmt, patterns):
    from repro.floatp.format import FloatFormat
    from repro.posit.format import PositFormat

    p = np.asarray(patterns, dtype=np.uint32) % (1 << fmt.n)
    if isinstance(fmt, PositFormat):
        p[p == fmt.nar_pattern] = 0
    elif isinstance(fmt, FloatFormat):
        p[float_tables(fmt).is_reserved[p]] = 0
    return p


@settings(max_examples=30, deadline=None)
@given(
    fmt_idx=st.integers(0, len(FORMATS) - 1),
    seed=st.integers(0, 2**31 - 1),
    out_dim=st.integers(1, 5),
    in_dim=st.integers(1, 14),
    batch=st.integers(1, 4),
    with_bias=st.booleans(),
)
def test_engine_bit_identical_to_scalar(fmt_idx, seed, out_dim, in_dim, batch, with_bias):
    """Random layer shapes: engine output == scalar EMAC output, bit for bit."""
    fmt = FORMATS[fmt_idx]
    rng = np.random.default_rng(seed)
    hi = 1 << fmt.n
    W = scrub(fmt, rng.integers(0, hi, size=(out_dim, in_dim), dtype=np.uint32))
    X = scrub(fmt, rng.integers(0, hi, size=(batch, in_dim), dtype=np.uint32))
    B = scrub(fmt, rng.integers(0, hi, size=(out_dim,), dtype=np.uint32)) if with_bias else None

    engine = engine_for(fmt)
    emac = scalar_emac_for(fmt)
    out = engine.dot(W, X, B)
    for i in range(batch):
        for o in range(out_dim):
            expect = emac.dot(
                [int(w) for w in W[o]],
                [int(x) for x in X[i]],
                bias_bits=None if B is None else int(B[o]),
            )
            assert int(out[i, o]) == expect


@settings(max_examples=30, deadline=None)
@given(
    fmt_idx=st.integers(0, len(FORMATS) - 1),
    seed=st.integers(0, 2**31 - 1),
    in_dim=st.integers(2, 16),
)
def test_engine_dot_order_invariant(fmt_idx, seed, in_dim):
    """Exact accumulation: permuting the MAC order never changes the bits."""
    fmt = FORMATS[fmt_idx]
    rng = np.random.default_rng(seed)
    hi = 1 << fmt.n
    w = scrub(fmt, rng.integers(0, hi, size=(1, in_dim), dtype=np.uint32))
    x = scrub(fmt, rng.integers(0, hi, size=(1, in_dim), dtype=np.uint32))
    engine = engine_for(fmt)
    base = engine.dot(w, x)[0, 0]
    perm = rng.permutation(in_dim)
    assert engine.dot(w[:, perm], x[:, perm])[0, 0] == base


@settings(max_examples=25, deadline=None)
@given(
    fmt_idx=st.integers(0, len(FORMATS) - 1),
    seed=st.integers(0, 2**31 - 1),
)
def test_engine_negation_symmetry(fmt_idx, seed):
    """dot(-W, X) == -dot(W, X) (exact accumulation is sign-symmetric)."""
    from repro.fixedpoint.format import FixedFormat

    fmt = FORMATS[fmt_idx]
    if isinstance(fmt, FixedFormat):
        return  # fixed truncation (floor) is not sign-symmetric by design
    rng = np.random.default_rng(seed)
    hi = 1 << fmt.n
    W = scrub(fmt, rng.integers(0, hi, size=(2, 6), dtype=np.uint32))
    X = scrub(fmt, rng.integers(0, hi, size=(2, 6), dtype=np.uint32))
    engine = engine_for(fmt)
    out = engine.dot(W, X)

    # negate all weights through the format's negate table
    from repro.floatp.format import FloatFormat
    from repro.posit import tables_for as posit_tables

    if isinstance(fmt, FloatFormat):
        neg = float_tables(fmt).negate
    else:
        neg = posit_tables(fmt).negate
    W_neg = neg[W.astype(np.int64)].astype(np.uint32)
    out_neg = engine.dot(W_neg, X)
    # The negation of each output pattern:
    expect = neg[out.astype(np.int64)].astype(np.uint32)
    assert np.array_equal(out_neg, expect)
