"""Cross-validation of the three EMAC soft cores against exact references.

The defining property of an EMAC (paper Section III-A): the output equals
the infinitely precise dot product rounded/truncated ONCE to the output
format.  We verify each core against `fractions.Fraction` arithmetic and
probe the paper-specific behaviours (bias preload, fixed-point truncation,
no-overflow clamping, quire sizing).
"""

from fractions import Fraction

import pytest

from repro.core import FixedEmac, FloatEmac, PositEmac
from repro.fixedpoint import Fixed, fixed_format, quantize_floor
from repro.floatp import float_format
from repro.floatp.codec import decode as fdecode
from repro.floatp.codec import encode_fraction as fencode
from repro.posit import Posit, decode as pdecode, encode_fraction as pencode
from repro.posit.format import standard_format


def random_patterns(rng, fmt, k, forbidden=()):
    out = []
    for _ in range(k):
        bits = int(rng.integers(0, fmt.num_patterns))
        while bits in forbidden:
            bits = int(rng.integers(0, fmt.num_patterns))
        out.append(bits)
    return out


class TestFixedEmac:
    def test_simple_dot(self):
        fmt = fixed_format(8, 4)
        emac = FixedEmac(fmt)
        w = [Fixed.from_value(fmt, 0.5).bits, Fixed.from_value(fmt, 2.0).bits]
        a = [Fixed.from_value(fmt, 1.0).bits, Fixed.from_value(fmt, 0.25).bits]
        out = emac.dot(w, a)
        assert Fixed.from_bits(fmt, out).to_fraction() == Fraction(1)

    def test_matches_exact_reference(self, fixed_fmt, rng):
        emac = FixedEmac(fixed_fmt)
        for _ in range(100):
            k = int(rng.integers(1, 20))
            ws = random_patterns(rng, fixed_fmt, k)
            xs = random_patterns(rng, fixed_fmt, k)
            out = emac.dot(ws, xs)
            exact = sum(
                Fixed.from_bits(fixed_fmt, w).to_fraction()
                * Fixed.from_bits(fixed_fmt, x).to_fraction()
                for w, x in zip(ws, xs)
            )
            expect = quantize_floor(fixed_fmt, exact) & fixed_fmt.mask
            assert out == expect

    def test_output_truncates_not_rounds(self):
        """Paper Fig. 3: the sum is shifted right by q and truncated."""
        fmt = fixed_format(8, 4)
        emac = FixedEmac(fmt)
        # 0.0625 * 0.9375 = 0.05859...: floor -> raw 0, RNE would give raw 1.
        w = Fixed.from_value(fmt, 0.0625).bits
        a = Fixed.from_value(fmt, 0.9375).bits
        assert emac.dot([w], [a]) == 0

    def test_clips_at_magnitude(self):
        fmt = fixed_format(8, 4)
        emac = FixedEmac(fmt)
        mx = Fixed.from_raw(fmt, fmt.int_max).bits
        out = emac.dot([mx, mx], [mx, mx])
        assert Fixed.from_bits(fmt, out).raw == fmt.int_max
        mn = Fixed.from_raw(fmt, fmt.int_min).bits
        out = emac.dot([mx, mx], [mn, mn])
        assert Fixed.from_bits(fmt, out).raw == fmt.int_min

    def test_bias_preload(self, fixed_fmt, rng):
        emac = FixedEmac(fixed_fmt)
        for _ in range(20):
            bias = random_patterns(rng, fixed_fmt, 1)[0]
            ws = random_patterns(rng, fixed_fmt, 5)
            xs = random_patterns(rng, fixed_fmt, 5)
            out = emac.dot(ws, xs, bias_bits=bias)
            exact = Fixed.from_bits(fixed_fmt, bias).to_fraction() + sum(
                Fixed.from_bits(fixed_fmt, w).to_fraction()
                * Fixed.from_bits(fixed_fmt, x).to_fraction()
                for w, x in zip(ws, xs)
            )
            assert out == quantize_floor(fixed_fmt, exact) & fixed_fmt.mask

    def test_accumulator_width_respects_eq3(self, fixed_fmt):
        """Worst-case accumulation stays within the eq. (3) register."""
        k = 16
        emac = FixedEmac(fixed_fmt)
        emac.reset()
        mn = fixed_fmt.int_min & fixed_fmt.mask
        for _ in range(k):
            emac.step(mn, mn)
        assert emac.accumulator_bits_used() <= fixed_fmt.accumulator_bits(k)

    def test_invalid_pattern_rejected(self, fixed_fmt):
        emac = FixedEmac(fixed_fmt)
        emac.reset()
        with pytest.raises(ValueError):
            emac.step(1 << fixed_fmt.n, 0)
        with pytest.raises(ValueError):
            emac.reset(bias_bits=-1)


class TestFloatEmac:
    def test_matches_exact_reference(self, float_fmt, rng):
        emac = FloatEmac(float_fmt)
        reserved = {
            b
            for b in float_fmt.all_patterns()
            if fdecode(float_fmt, b).is_reserved
        }
        for _ in range(100):
            k = int(rng.integers(1, 20))
            ws = random_patterns(rng, float_fmt, k, forbidden=reserved)
            xs = random_patterns(rng, float_fmt, k, forbidden=reserved)
            out = emac.dot(ws, xs)
            exact = sum(
                fdecode(float_fmt, w).to_fraction()
                * fdecode(float_fmt, x).to_fraction()
                for w, x in zip(ws, xs)
            )
            expect = fencode(float_fmt, exact)
            assert fdecode(float_fmt, out).to_fraction() == fdecode(
                float_fmt, expect
            ).to_fraction()

    def test_single_rounding_beats_iterative(self):
        """The EMAC must not lose small addends the way rounded adds do."""
        fmt = float_format(4, 3)
        emac = FloatEmac(fmt)
        one = fencode(fmt, Fraction(1))
        tiny = fencode(fmt, fmt.min_value)  # smallest subnormal
        # 1 + 64 * tiny = 1.125: each rounded add of a single tiny to 1
        # would vanish (tiny is far below half an ULP of 1), but the exact
        # accumulator keeps them all and rounds once at the end.
        ws = [one] + [tiny] * 64
        ones = [one] * 65
        out = emac.dot(ws, ones)
        exact = Fraction(1) + 64 * fmt.min_value
        assert fdecode(fmt, out).to_fraction() == fdecode(
            fmt, fencode(fmt, exact)
        ).to_fraction()
        assert fdecode(fmt, out).to_fraction() > 1

    def test_no_overflow_to_infinity(self, float_fmt):
        emac = FloatEmac(float_fmt)
        mx = fencode(float_fmt, float_fmt.max_value)
        out = emac.dot([mx] * 4, [mx] * 4)
        d = fdecode(float_fmt, out)
        assert not d.is_reserved
        assert d.to_fraction() == float_fmt.max_value

    def test_subnormal_inputs(self, float_fmt):
        emac = FloatEmac(float_fmt)
        sub = 1  # smallest subnormal pattern
        out = emac.dot([sub], [sub])
        exact = float_fmt.min_value**2
        assert fdecode(float_fmt, out).to_fraction() == fdecode(
            float_fmt, fencode(float_fmt, exact)
        ).to_fraction()

    def test_reserved_input_rejected(self, float_fmt):
        emac = FloatEmac(float_fmt)
        emac.reset()
        inf_like = ((1 << float_fmt.we) - 1) << float_fmt.wf
        with pytest.raises(ValueError):
            emac.step(inf_like, 0)

    def test_bias_preload(self, float_fmt, rng):
        emac = FloatEmac(float_fmt)
        reserved = {
            b for b in float_fmt.all_patterns() if fdecode(float_fmt, b).is_reserved
        }
        bias = random_patterns(rng, float_fmt, 1, forbidden=reserved)[0]
        ws = random_patterns(rng, float_fmt, 6, forbidden=reserved)
        xs = random_patterns(rng, float_fmt, 6, forbidden=reserved)
        out = emac.dot(ws, xs, bias_bits=bias)
        exact = fdecode(float_fmt, bias).to_fraction() + sum(
            fdecode(float_fmt, w).to_fraction() * fdecode(float_fmt, x).to_fraction()
            for w, x in zip(ws, xs)
        )
        assert fdecode(float_fmt, out).to_fraction() == fdecode(
            float_fmt, fencode(float_fmt, exact)
        ).to_fraction()

    def test_accumulator_width_respects_eq3(self, float_fmt):
        k = 16
        emac = FloatEmac(float_fmt)
        emac.reset()
        mx = fencode(float_fmt, float_fmt.max_value)
        for _ in range(k):
            emac.step(mx, mx)
        assert emac.accumulator_bits_used() <= float_fmt.accumulator_bits(k)


class TestPositEmac:
    def test_matches_exact_reference(self, posit_fmt, rng):
        emac = PositEmac(posit_fmt)
        for _ in range(100):
            k = int(rng.integers(1, 20))
            ws = random_patterns(rng, posit_fmt, k, forbidden={posit_fmt.nar_pattern})
            xs = random_patterns(rng, posit_fmt, k, forbidden={posit_fmt.nar_pattern})
            out = emac.dot(ws, xs)
            exact = sum(
                pdecode(posit_fmt, w).to_fraction()
                * pdecode(posit_fmt, x).to_fraction()
                for w, x in zip(ws, xs)
            )
            assert out == pencode(posit_fmt, exact)

    def test_quire_never_overflows_to_nar(self, posit_fmt):
        emac = PositEmac(posit_fmt)
        mx = posit_fmt.maxpos_pattern
        out = emac.dot([mx] * 8, [mx] * 8)
        assert out == posit_fmt.maxpos_pattern  # clamps, never NaR

    def test_sum_underflow_clamps_to_minpos(self, posit_fmt):
        emac = PositEmac(posit_fmt)
        mn = posit_fmt.minpos_pattern
        out = emac.dot([mn], [mn])
        assert out == posit_fmt.minpos_pattern

    def test_exact_cancellation(self, posit_fmt):
        """maxpos*maxpos - maxpos*maxpos + minpos*1 == minpos, exactly."""
        emac = PositEmac(posit_fmt)
        mx = posit_fmt.maxpos_pattern
        neg_mx = ((1 << posit_fmt.n) - mx) & posit_fmt.mask
        one = pencode(posit_fmt, Fraction(1))
        out = emac.dot([mx, neg_mx, posit_fmt.minpos_pattern], [mx, mx, one])
        assert out == posit_fmt.minpos_pattern

    def test_nar_input_rejected(self, posit_fmt):
        emac = PositEmac(posit_fmt)
        emac.reset()
        with pytest.raises(ValueError):
            emac.step(posit_fmt.nar_pattern, 0)
        with pytest.raises(ValueError):
            emac.reset(bias_bits=posit_fmt.nar_pattern)

    def test_bias_preload(self, posit_fmt, rng):
        emac = PositEmac(posit_fmt)
        bias = random_patterns(rng, posit_fmt, 1, forbidden={posit_fmt.nar_pattern})[0]
        ws = random_patterns(rng, posit_fmt, 6, forbidden={posit_fmt.nar_pattern})
        xs = random_patterns(rng, posit_fmt, 6, forbidden={posit_fmt.nar_pattern})
        out = emac.dot(ws, xs, bias_bits=bias)
        exact = pdecode(posit_fmt, bias).to_fraction() + sum(
            pdecode(posit_fmt, w).to_fraction() * pdecode(posit_fmt, x).to_fraction()
            for w, x in zip(ws, xs)
        )
        assert out == pencode(posit_fmt, exact)

    def test_scale_bias_matches_paper(self, posit_fmt):
        assert PositEmac(posit_fmt).scale_bias == 2 ** (posit_fmt.es + 1) * (
            posit_fmt.n - 2
        )

    def test_quire_width_respects_eq4(self, posit_fmt):
        """Worst-case accumulation fits the eq. (4) register."""
        k = 16
        emac = PositEmac(posit_fmt)
        emac.reset()
        mx = posit_fmt.maxpos_pattern
        for _ in range(k):
            emac.step(mx, mx)
        # The quire register in our model carries extra always-zero low bits
        # (aligned-significand trailing zeros); the *value* magnitude must
        # fit eq. (4)'s integer range.
        value = abs(emac.accumulator_value())
        assert value <= k * posit_fmt.maxpos**2
        hw_lsb = Fraction(1, 4 ** (posit_fmt.max_scale))
        assert (value / hw_lsb).denominator == 1  # aligned to the HW LSB

    def test_agrees_with_quire_class(self, posit_fmt, rng):
        from repro.posit import Quire

        emac = PositEmac(posit_fmt)
        q = Quire(posit_fmt)
        ws = random_patterns(rng, posit_fmt, 10, forbidden={posit_fmt.nar_pattern})
        xs = random_patterns(rng, posit_fmt, 10, forbidden={posit_fmt.nar_pattern})
        out_emac = emac.dot(ws, xs)
        out_quire = q.dot(
            [Posit.from_bits(posit_fmt, b) for b in ws],
            [Posit.from_bits(posit_fmt, b) for b in xs],
        )
        assert out_emac == out_quire.bits


class TestEmacInterface:
    @pytest.mark.parametrize(
        "make",
        [
            lambda: FixedEmac(fixed_format(8, 4)),
            lambda: FloatEmac(float_format(4, 3)),
            lambda: PositEmac(standard_format(8, 1)),
        ],
        ids=["fixed", "float", "posit"],
    )
    def test_common_protocol(self, make):
        emac = make()
        assert emac.width == 8
        assert emac.name in ("fixed", "float", "posit")
        assert emac.cycles(16) == 16 + emac.pipeline_depth
        with pytest.raises(ValueError):
            emac.cycles(0)
        with pytest.raises(ValueError):
            emac.dot([0], [0, 0])
