"""Tests for the dataflow timing model and memory accounting."""

import pytest

from repro.core import InferenceTiming, LayerMemory, layer_cycles, network_timing
from repro.core.memory import BRAM_KBITS


class TestLayerCycles:
    def test_basic(self):
        assert layer_cycles(10, 2) == 12
        assert layer_cycles(1, 0) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            layer_cycles(0, 2)
        with pytest.raises(ValueError):
            layer_cycles(4, -1)


class TestNetworkTiming:
    def test_streaming_pipeline(self):
        timing = network_timing([30, 16, 8], pipeline_depth=4)
        assert timing.per_layer_cycles == (34, 20, 12)
        assert timing.latency_cycles == 66
        assert timing.initiation_interval == 34

    def test_batch_cycles(self):
        timing = network_timing([4, 4], pipeline_depth=2)
        assert timing.batch_cycles(1) == timing.latency_cycles
        # Steady state: one extra II per additional sample.
        assert timing.batch_cycles(5) == timing.latency_cycles + 4 * 6

    def test_seconds_conversions(self):
        timing = network_timing([8], pipeline_depth=2)
        assert timing.latency_seconds(1e6) == pytest.approx(10e-6)
        assert timing.batch_seconds(2, 1e6) == pytest.approx(20e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            network_timing([], 2)
        timing = network_timing([4], 2)
        with pytest.raises(ValueError):
            timing.batch_cycles(0)
        with pytest.raises(ValueError):
            timing.latency_seconds(0)


class TestLayerMemory:
    def test_for_layer(self):
        mem = LayerMemory.for_layer(16, 30, 8)
        assert mem.weight_words == 480
        assert mem.bias_words == 16
        assert mem.total_bits == 496 * 8

    def test_bram_blocks(self):
        small = LayerMemory.for_layer(2, 2, 8)
        assert small.bram_blocks == 1
        big = LayerMemory.for_layer(128, 128, 8)
        expected_bits = (128 * 128 + 128) * 8
        assert big.bram_blocks == -(-expected_bits // (BRAM_KBITS * 1024))

    def test_add(self):
        a = LayerMemory.for_layer(4, 4, 8)
        b = LayerMemory.for_layer(2, 4, 8)
        total = a + b
        assert total.weight_words == 24 and total.bias_words == 6

    def test_add_width_mismatch(self):
        with pytest.raises(ValueError):
            LayerMemory.for_layer(2, 2, 8) + LayerMemory.for_layer(2, 2, 7)

    def test_validation(self):
        with pytest.raises(ValueError):
            LayerMemory.for_layer(0, 4, 8)
        with pytest.raises(ValueError):
            LayerMemory.for_layer(4, 4, 0)
