"""Engine outputs must match the scalar EMAC path on the paper's datasets.

Networks use randomly quantized parameters (no training needed); inputs are
the real iris/WBC test sets.  The whole batch goes through the vectorized
engine, a sample of rows through the scalar reference EMACs.
"""

import numpy as np
import pytest

from repro.core import PositronNetwork, engine_for
from repro.datasets import load_iris, load_wbc
from repro.fixedpoint import fixed_format
from repro.floatp import float_format
from repro.posit.format import standard_format

DATASETS = {"iris": (load_iris, (4, 10, 6, 3)), "wbc": (load_wbc, (30, 16, 8, 2))}
FORMATS = [standard_format(8, 1), float_format(4, 3), fixed_format(8, 4)]


@pytest.mark.parametrize("dataset_name", sorted(DATASETS))
@pytest.mark.parametrize("fmt", FORMATS, ids=str)
def test_forward_bit_identical_to_scalar(dataset_name, fmt):
    loader, topology = DATASETS[dataset_name]
    dataset = loader()
    rng = np.random.default_rng(99)
    weights = [
        rng.normal(size=(o, i)) * 0.5 for i, o in zip(topology[:-1], topology[1:])
    ]
    biases = [rng.normal(size=o) * 0.1 for o in topology[1:]]
    net = PositronNetwork.from_float_params(fmt, weights, biases)

    engine = engine_for(fmt)
    patterns = engine.quantize(np.asarray(dataset.test_x, dtype=np.float64))
    vec = net.forward_patterns(patterns)
    assert vec.shape == (len(dataset.test_x), topology[-1])

    probe = rng.choice(len(dataset.test_x), size=8, replace=False)
    for i in probe:
        scalar = net.forward_scalar([int(p) for p in patterns[i]])
        assert [int(b) for b in vec[i]] == scalar, (dataset_name, str(fmt), i)
