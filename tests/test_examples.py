"""Smoke tests: the shipped examples must run end to end.

Only the fast examples run here (the sweep-heavy ones are exercised by the
benchmarks); each is executed in-process with its stdout captured.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, capsys) -> str:
    path = EXAMPLES / name
    assert path.exists(), f"missing example {name}"
    argv = sys.argv
    sys.argv = [str(path)]
    try:
        runpy.run_path(str(path), run_name="__main__")
    finally:
        sys.argv = argv
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", capsys)
        assert "posit<8,1> EMAC" in out
        assert "round only once" in out.lower() or "rounds only once" in out.lower() \
            or "round only once at the output" in out.lower() or "output" in out

    def test_custom_network(self, capsys):
        out = run_example("custom_network.py", capsys)
        assert "distinct result(s)" in out
        assert "exact EMAC   : 1 distinct" in out

    def test_hardware_report(self, capsys):
        out = run_example("hardware_report.py", capsys)
        assert "Fig. 6" in out and "Fig. 8" in out
        assert "quire width (eq. 4)" in out

    def test_serve_demo(self, capsys):
        out = run_example("serve_demo.py", capsys)
        assert "batch-size histogram" in out
        assert "0 mismatches vs direct predict" in out
        assert "warmed up iris/posit8_1" in out

    @pytest.mark.slow
    def test_iris_inference(self, capsys):
        out = run_example("iris_inference.py", capsys)
        assert "confusion matrix" in out
        assert "accelerator synthesis" in out
