"""Serving-tier resilience: deadlines, load shedding, poison isolation,
client retries, and automatic canary rollback.

The through-line is the bit-exactness invariant: every recovery path —
a re-executed batch, a retried request, a rolled-back generation — must
produce answers bit-identical to the fault-free path, so each test can
assert recovery by equality against a direct ``predict``.
"""

from __future__ import annotations

import asyncio
import json
from types import SimpleNamespace

import numpy as np
import pytest

from repro import faults
from repro.serve import (
    DeadlineExceeded,
    ModelRegistry,
    QueueSaturated,
    ServeClient,
    ServeError,
    start_in_thread,
)
from repro.serve.batcher import MicroBatcher, _Pending
from repro.serve.registry import build_served_model
from repro.serve.server import InferenceServer

from .conftest import TOY_SPECS, tiny_loader
from .test_swap import VersionedLoader


def _predict_body(dataset, inputs, format_name=None, deadline_ms=None):
    payload = {"dataset": dataset, "inputs": np.asarray(inputs).tolist()}
    if format_name is not None:
        payload["format"] = format_name
    if deadline_ms is not None:
        payload["deadline_ms"] = deadline_ms
    return json.dumps(payload).encode("utf-8")


def _stuff_queue(batcher: MicroBatcher, loop, count: int) -> None:
    """Park ``count`` dummy items in the queue without starting the worker."""
    for _ in range(count):
        batcher._queue.put_nowait(
            _Pending(np.zeros((1, 4), dtype=np.uint32), 1,
                     loop.create_future(), loop.time())
        )


class TestRegistryRollback:
    def test_rollback_without_prior_reload_is_none(self):
        registry = ModelRegistry(loader=tiny_loader)

        async def scenario():
            await registry.get("toy", "posit8_1")
            return await registry.rollback("toy", "posit8_1")

        assert asyncio.run(scenario()) is None

    def test_rollback_restores_the_displaced_generation(self):
        loader = VersionedLoader()
        registry = ModelRegistry(loader=loader)

        async def scenario():
            first = await registry.get("toy", "posit8_1")
            loader.version = 1
            second = await registry.reload("toy", "posit8_1")
            assert registry.previous_generation("toy", "posit8_1") is first
            restored = await registry.rollback("toy", "posit8_1")
            cached = await registry.get("toy", "posit8_1")
            return first, second, restored, cached

        first, second, restored, cached = asyncio.run(scenario())
        assert restored is first
        assert cached is first
        assert second is not first

    def test_double_rollback_cannot_reinstall_the_convicted_model(self):
        loader = VersionedLoader()
        registry = ModelRegistry(loader=loader)

        async def scenario():
            await registry.get("toy", "posit8_1")
            loader.version = 1
            await registry.reload("toy", "posit8_1")
            assert await registry.rollback("toy", "posit8_1") is not None
            # The bad generation was popped, not stashed: a second
            # rollback has nothing to restore.
            return await registry.rollback("toy", "posit8_1")

        assert asyncio.run(scenario()) is None


class TestDeadlines:
    def test_expired_deadline_is_504_material_and_never_executes(self):
        model = build_served_model("toy", "posit8_1", tiny_loader)

        async def scenario():
            batcher = MicroBatcher(model, max_batch=4, max_delay_ms=0.5)
            loop = asyncio.get_running_loop()
            with pytest.raises(DeadlineExceeded):
                await batcher.submit(
                    model.quantize(np.zeros((2, 4))),
                    deadline=loop.time() - 0.001,  # already expired
                )
            stats = batcher.stats
            await batcher.close()
            return stats

        stats = asyncio.run(scenario())
        assert stats.deadline_expired == 1
        assert stats.batches == 0  # the rows never reached a kernel
        assert stats.errors == 0

    def test_live_batchmates_unharmed_by_an_expired_request(self, rng):
        model = build_served_model("toy", "posit8_1", tiny_loader)
        x = rng.normal(size=(3, 4))

        async def scenario():
            batcher = MicroBatcher(model, max_batch=8, max_delay_ms=20.0)
            loop = asyncio.get_running_loop()
            expired, live = await asyncio.gather(
                batcher.submit(
                    model.quantize(np.zeros((1, 4))),
                    deadline=loop.time() - 0.001,
                ),
                batcher.submit(model.quantize(x)),
                return_exceptions=True,
            )
            await batcher.close()
            return expired, live

        expired, live = asyncio.run(scenario())
        assert isinstance(expired, DeadlineExceeded)
        np.testing.assert_array_equal(live, model.network.predict(x))

    def test_future_deadline_executes_normally(self, rng):
        model = build_served_model("toy", "posit8_1", tiny_loader)
        x = rng.normal(size=(2, 4))

        async def scenario():
            batcher = MicroBatcher(model, max_batch=4, max_delay_ms=0.5)
            loop = asyncio.get_running_loop()
            result = await batcher.submit(
                model.quantize(x), deadline=loop.time() + 30.0
            )
            await batcher.close()
            return result

        result = asyncio.run(scenario())
        np.testing.assert_array_equal(result, model.network.predict(x))

    def test_deadline_ms_over_http_504(self, rng):
        registry = ModelRegistry(loader=tiny_loader)
        x = rng.normal(size=(2, 4))
        with start_in_thread(registry=registry, port=0) as handle:
            with ServeClient(port=handle.server.port) as client:
                client.warmup("toy", "posit8_1")
                with pytest.raises(ServeError) as err:
                    client.predict(
                        "toy", "posit8_1", x, deadline_ms=1e-6
                    )
                stats = client.stats()
                health = client.health()
        assert err.value.status == 504
        assert stats["deadline_expired"] == 1
        assert stats["errors"] == 0  # 504 is the client's fault, not ours
        assert health["status"] == "ok"  # deadlines don't degrade health

    def test_bad_deadline_ms_is_400(self, rng):
        registry = ModelRegistry(loader=tiny_loader)
        x = rng.normal(size=(1, 4))
        with start_in_thread(registry=registry, port=0) as handle:
            with ServeClient(port=handle.server.port) as client:
                for bad in (0, -5, "soon", True, float("nan")):
                    with pytest.raises(ServeError) as err:
                        client.predict("toy", "posit8_1", x, deadline_ms=bad)
                    assert err.value.status == 400


class TestLoadShedding:
    def test_shed_threshold_validation(self):
        model = build_served_model("toy", "posit8_1", tiny_loader)
        for bad in (0.0, -0.5, 1.5):
            with pytest.raises(ValueError):
                MicroBatcher(model, shed_threshold=bad)
        with pytest.raises(ValueError):
            InferenceServer(shed_threshold=2.0)

    def test_submit_refused_at_threshold(self):
        model = build_served_model("toy", "posit8_1", tiny_loader)

        async def scenario():
            batcher = MicroBatcher(
                model, queue_limit=4, shed_threshold=0.5
            )
            loop = asyncio.get_running_loop()
            _stuff_queue(batcher, loop, 2)  # at ceil(0.5 * 4)
            assert batcher.shedding
            assert not batcher.saturated
            with pytest.raises(QueueSaturated):
                await batcher.submit(model.quantize(np.zeros((1, 4))))
            return batcher.stats

        stats = asyncio.run(scenario())
        assert stats.shed == 1
        assert stats.requests == 0

    def test_default_no_shedding_keeps_backpressure(self):
        model = build_served_model("toy", "posit8_1", tiny_loader)

        async def scenario():
            batcher = MicroBatcher(model, queue_limit=4)  # shed off
            loop = asyncio.get_running_loop()
            _stuff_queue(batcher, loop, 3)
            assert not batcher.shedding  # never sheds without a threshold
            assert not batcher.saturated

        asyncio.run(scenario())

    def test_health_reports_shed_and_saturation(self):
        async def scenario():
            server = InferenceServer(
                registry=ModelRegistry(loader=tiny_loader),
                queue_limit=4,
                shed_threshold=0.5,
            )
            model = await server.registry.get(
                "toy", "posit8_1", executor=server._executor
            )
            batcher = server.batcher_for(model)
            healthy = server._health()
            loop = asyncio.get_running_loop()
            _stuff_queue(batcher, loop, 4)  # past shed, at hard limit
            degraded = server._health()
            await server.close()
            return healthy, degraded

        healthy, degraded = asyncio.run(scenario())
        assert healthy["status"] == "ok"
        assert healthy["shed_mode"] is True
        assert healthy["degraded"] == {}
        assert degraded["status"] == "degraded"
        assert degraded["degraded"]["shedding"] == ["toy/posit8_1"]
        assert degraded["degraded"]["queue_saturated"] == ["toy/posit8_1"]

    def test_shed_is_503_with_retry_after_over_http(self, rng):
        registry = ModelRegistry(loader=tiny_loader)
        x = rng.normal(size=(1, 4))
        with start_in_thread(
            registry=registry, port=0, shed_threshold=0.5
        ) as handle:
            with ServeClient(port=handle.server.port) as client:
                client.predict("toy", "posit8_1", x)  # builds the batcher
                batcher = handle.server._batchers["toy/posit8_1"]

                async def refuse(patterns, deadline=None):
                    batcher.stats.record_shed()
                    raise QueueSaturated("queue for toy/posit8_1 saturated")

                batcher.submit = refuse
                with pytest.raises(ServeError) as err:
                    client.predict("toy", "posit8_1", x)
                stats = client.stats()
        assert err.value.status == 503
        assert err.value.retry_after == 1.0  # Retry-After header parsed
        assert stats["shed"] == 1


class TestPoisonIsolation:
    def test_transient_batch_fault_retried_request_by_request(self, rng):
        model = build_served_model("toy", "posit8_1", tiny_loader)
        xs = [rng.normal(size=(2, 4)) for _ in range(3)]

        async def scenario():
            batcher = MicroBatcher(model, max_batch=8, max_delay_ms=20.0)
            with faults.inject("serve.batch", "raise", times=1):
                results = await asyncio.gather(
                    *(batcher.submit(model.quantize(x)) for x in xs)
                )
            stats = batcher.stats
            await batcher.close()
            return results, stats

        results, stats = asyncio.run(scenario())
        # All requests answered bit-identically despite the failed batch.
        for x, served in zip(xs, results):
            np.testing.assert_array_equal(served, model.network.predict(x))
        assert stats.batch_retries == 1
        assert stats.errors == 0

    def test_poison_request_fails_alone_batchmates_succeed(self, rng):
        model = build_served_model("toy", "posit8_1", tiny_loader)
        good = rng.normal(size=(2, 4))
        poison = np.zeros((1, 7), dtype=np.uint32)  # wrong feature width

        async def scenario():
            batcher = MicroBatcher(model, max_batch=8, max_delay_ms=20.0)
            served, failed = await asyncio.gather(
                batcher.submit(model.quantize(good)),
                batcher.submit(poison),
                return_exceptions=True,
            )
            stats = batcher.stats
            await batcher.close()
            return served, failed, stats

        served, failed, stats = asyncio.run(scenario())
        np.testing.assert_array_equal(served, model.network.predict(good))
        assert isinstance(failed, Exception)
        assert not isinstance(failed, DeadlineExceeded)
        assert stats.batch_retries == 1
        assert stats.errors == 1  # only the poison request

    def test_lone_failed_request_is_its_own_error(self):
        model = build_served_model("toy", "posit8_1", tiny_loader)

        async def scenario():
            batcher = MicroBatcher(model, max_batch=4, max_delay_ms=0.5)
            with faults.inject("serve.batch", "raise", times=1):
                with pytest.raises(faults.InjectedFault):
                    await batcher.submit(
                        model.quantize(np.zeros((1, 4)))
                    )
            stats = batcher.stats
            await batcher.close()
            return stats

        stats = asyncio.run(scenario())
        assert stats.errors == 1
        assert stats.batch_retries == 0  # no batchmates to protect


class TestClientRetries:
    def test_retry_knob_validation(self):
        with pytest.raises(ValueError):
            ServeClient(retries=0)
        with pytest.raises(ValueError):
            ServeClient(retry_backoff_s=-0.1)

    def test_backoff_grows_exponentially_with_jitter(self):
        import random

        client = ServeClient(retry_backoff_s=0.1, rng=random.Random(5))
        for attempt in (1, 2, 3):
            base = 0.1 * 2 ** (attempt - 1)
            for _ in range(20):
                assert base <= client._backoff(attempt) < base * 2

    def test_connect_refused_retried_then_succeeds(self, rng):
        registry = ModelRegistry(loader=tiny_loader)
        x = rng.normal(size=(2, 4))
        with start_in_thread(registry=registry, port=0) as handle:
            with ServeClient(
                port=handle.server.port, retries=3, retry_backoff_s=0.0
            ) as client:
                sleeps = []
                client._sleep = sleeps.append
                with faults.inject(
                    "client.connect", "raise",
                    exc="ConnectionRefusedError", times=2,
                ) as injector:
                    response = client.predict("toy", "posit8_1", x)
        assert injector.fired() == 2
        assert len(sleeps) == 2  # one backoff per failed attempt
        direct = build_served_model("toy", "posit8_1", tiny_loader)
        assert response["predictions"] == direct.network.predict(x).tolist()

    def test_connect_refused_exhausts_attempts(self):
        client = ServeClient(port=1, retries=3, retry_backoff_s=0.0)
        client._sleep = lambda s: None
        with faults.inject(
            "client.connect", "raise",
            exc="ConnectionRefusedError", times=0,
        ) as injector:
            with pytest.raises(ConnectionRefusedError):
                client.health()
        assert injector.fired() == 3  # the configured attempt budget

    def test_dropped_connection_resent_bit_identical(self, rng):
        registry = ModelRegistry(loader=tiny_loader)
        x = rng.normal(size=(3, 4))
        with start_in_thread(registry=registry, port=0) as handle:
            with ServeClient(
                port=handle.server.port, retries=3, retry_backoff_s=0.0
            ) as client:
                client._sleep = lambda s: None
                client.warmup("toy", "posit8_1")
                with faults.inject(
                    "client.recv", "drop", times=1, trace=None
                ) as injector:
                    response = client.predict("toy", "posit8_1", x)
        assert injector.fired() == 1
        direct = build_served_model("toy", "posit8_1", tiny_loader)
        assert response["predictions"] == direct.network.predict(x).tolist()

    def test_timeout_is_never_retried(self):
        client = ServeClient(port=1, retries=3)
        attempts = []

        def fake_exchange(message, raw=False):
            attempts.append(1)
            raise TimeoutError("server still computing")

        client._sock = object()  # pretend connected
        client._exchange = fake_exchange
        client.close = lambda: None  # keep the fake socket out of close()
        with pytest.raises(TimeoutError):
            client._request("GET", "/health")
        assert len(attempts) == 1  # resending would double the work

    def test_retry_on_503_honors_retry_after(self, rng):
        registry = ModelRegistry(loader=tiny_loader)
        x = rng.normal(size=(1, 4))
        with start_in_thread(
            registry=registry, port=0, shed_threshold=0.5
        ) as handle:
            with ServeClient(
                port=handle.server.port, retries=3,
                retry_backoff_s=0.001, retry_on_503=True,
            ) as client:
                sleeps = []
                client._sleep = sleeps.append
                client.predict("toy", "posit8_1", x)
                batcher = handle.server._batchers["toy/posit8_1"]
                real_submit = batcher.submit
                calls = []

                async def flaky(patterns, deadline=None):
                    calls.append(1)
                    if len(calls) <= 2:
                        raise QueueSaturated("saturated")
                    return await real_submit(patterns, deadline)

                batcher.submit = flaky
                response = client.predict("toy", "posit8_1", x)
        assert len(calls) == 3
        assert sleeps == [1.0, 1.0]  # server's Retry-After beat the backoff
        direct = build_served_model("toy", "posit8_1", tiny_loader)
        assert response["predictions"] == direct.network.predict(x).tolist()

    def test_503_not_retried_by_default(self, rng):
        registry = ModelRegistry(loader=tiny_loader)
        x = rng.normal(size=(1, 4))
        with start_in_thread(
            registry=registry, port=0, shed_threshold=0.5
        ) as handle:
            with ServeClient(port=handle.server.port) as client:
                client.predict("toy", "posit8_1", x)
                batcher = handle.server._batchers["toy/posit8_1"]

                async def refuse(patterns, deadline=None):
                    raise QueueSaturated("saturated")

                batcher.submit = refuse
                with pytest.raises(ServeError) as err:
                    client.predict("toy", "posit8_1", x)
        assert err.value.status == 503


class _LyingNetwork:
    """Off by one class on every row: guaranteed to diverge from the
    direct recompute regardless of the input draw."""

    def __init__(self, real_network):
        self._real = real_network

    def predict_patterns(self, patterns):
        real = self._real.predict_patterns(patterns)
        return (np.asarray(real) + 1) % 3


class TestAutomaticRollback:
    @staticmethod
    def _sabotage(server, arm):
        batcher = server.batcher_for(arm)
        batcher.model = SimpleNamespace(
            key=arm.key, network=_LyingNetwork(arm.network)
        )
        return batcher

    def test_canary_divergence_rolls_back_to_last_known_good(self, rng):
        loader = VersionedLoader()
        x = rng.normal(size=(4, 4))

        async def scenario():
            server = InferenceServer(
                registry=ModelRegistry(loader=loader),
                max_batch=4, max_delay_ms=1.0,
                canary_every=1, rollback_after=1,
            )
            await server.configure_ab("toy", "posit8_1", "float4_3")
            good = server._experiments["toy"].arm_a
            await server._predict(_predict_body("toy", x))  # green warmup
            loader.version = 1
            await server._swap({"dataset": "toy", "format": "posit8_1"})
            self._sabotage(server, server._experiments["toy"].arm_a)
            tripped = await server._predict(_predict_body("toy", x))
            after = [
                await server._predict(_predict_body("toy", x))
                for _ in range(4)
            ]
            experiment = server._experiments["toy"]
            health = server._health()
            stats = server.stats.snapshot()
            events = list(server._rollback_events)
            await server.close()
            return good, tripped, after, experiment, health, stats, events

        (good, tripped, after, experiment, health, stats,
         events) = asyncio.run(scenario())
        # The tripping request reports the rollback it caused.
        (event,) = tripped["ab"]["canary_result"]["rollbacks"]
        assert event["rolled_back"] == "toy/posit8_1"
        assert event["arm"] == "posit8_1"
        assert events == [event]
        # The restored generation is the pre-swap one: arm-A responses
        # after rollback are bit-identical to the last-known-good network.
        for response in after:
            if response["ab"]["arm"] == "posit8_1":
                expected = good.network.predict(x).tolist()
                assert response["predictions"] == expected
            canary = response["ab"]["canary_result"]
            assert canary["diverged"] is False
            assert "rollbacks" not in canary
        assert experiment.rollbacks == 1
        assert experiment.divergences_per_arm["posit8_1"] == 0  # reset
        assert stats["rollbacks"] == 1
        # Sticky degradation: the rollback stays visible in /health.
        assert health["status"] == "degraded"
        assert health["degraded"]["rollbacks"] == 1

    def test_rollback_after_counts_divergences_per_arm(self, rng):
        loader = VersionedLoader()
        x = rng.normal(size=(3, 4))

        async def scenario():
            server = InferenceServer(
                registry=ModelRegistry(loader=loader),
                max_batch=4, max_delay_ms=1.0,
                canary_every=1, rollback_after=2,
            )
            await server.configure_ab("toy", "posit8_1", "float4_3")
            await server._predict(_predict_body("toy", x))
            loader.version = 1
            await server._swap({"dataset": "toy", "format": "posit8_1"})
            self._sabotage(server, server._experiments["toy"].arm_a)
            first = await server._predict(_predict_body("toy", x))
            second = await server._predict(_predict_body("toy", x))
            rollbacks = server.stats.rollbacks
            await server.close()
            return first, second, rollbacks

        first, second, rollbacks = asyncio.run(scenario())
        assert "rollbacks" not in first["ab"]["canary_result"]  # count 1 < 2
        assert second["ab"]["canary_result"]["rollbacks"]  # count 2 trips
        assert rollbacks == 1

    def test_no_previous_generation_means_no_rollback(self, rng):
        x = rng.normal(size=(3, 4))

        async def scenario():
            server = InferenceServer(
                registry=ModelRegistry(loader=tiny_loader),
                max_batch=4, max_delay_ms=1.0,
                canary_every=1, rollback_after=1,
            )
            await server.configure_ab("toy", "posit8_1", "float4_3")
            self._sabotage(server, server._experiments["toy"].arm_a)
            responses = [
                await server._predict(_predict_body("toy", x))
                for _ in range(3)
            ]
            experiment = server._experiments["toy"]
            stats = server.stats.snapshot()
            await server.close()
            return responses, experiment, stats

        responses, experiment, stats = asyncio.run(scenario())
        # Divergences keep accumulating, but with nothing to restore the
        # server keeps serving (degraded bits beat no bits) and never
        # reports a rollback.
        assert stats["rollbacks"] == 0
        assert experiment.rollbacks == 0
        assert experiment.divergences_per_arm["posit8_1"] == 3
        for response in responses:
            assert "rollbacks" not in response["ab"]["canary_result"]

    def test_rollback_zero_disables_automatic_rollback(self, rng):
        loader = VersionedLoader()
        x = rng.normal(size=(3, 4))

        async def scenario():
            server = InferenceServer(
                registry=ModelRegistry(loader=loader),
                max_batch=4, max_delay_ms=1.0,
                canary_every=1, rollback_after=0,
            )
            await server.configure_ab("toy", "posit8_1", "float4_3")
            await server._predict(_predict_body("toy", x))
            loader.version = 1
            await server._swap({"dataset": "toy", "format": "posit8_1"})
            self._sabotage(server, server._experiments["toy"].arm_a)
            for _ in range(3):
                await server._predict(_predict_body("toy", x))
            divergences = dict(
                server._experiments["toy"].divergences_per_arm
            )
            rollbacks = server.stats.rollbacks
            await server.close()
            return divergences, rollbacks

        divergences, rollbacks = asyncio.run(scenario())
        assert rollbacks == 0
        assert divergences["posit8_1"] == 3

    def test_ab_status_reports_per_arm_divergences_and_rollbacks(self, rng):
        loader = VersionedLoader()
        x = rng.normal(size=(2, 4))
        registry = ModelRegistry(loader=loader)
        with start_in_thread(
            registry=registry, port=0, canary_every=1, rollback_after=1,
            max_batch=4, max_delay_ms=1.0,
        ) as handle:
            with ServeClient(port=handle.server.port) as client:
                client.start_ab("toy", "posit8_1", "float4_3")
                client.predict("toy", None, x)
                loader.version = 1
                client.swap("toy", "posit8_1")
                arm = handle.server._experiments["toy"].arm_a
                self._sabotage(handle.server, arm)
                client.predict("toy", None, x)  # trips + rolls back
                status = client.ab_status()["toy"]
                metrics = client.metrics()
        assert status["rollbacks"] == 1
        assert status["canary"]["divergences_per_arm"] == {
            "posit8_1": 0,  # reset after the rollback
        }
        assert "repro_serve_rollbacks_total 1" in metrics
