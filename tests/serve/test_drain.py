"""Graceful-drain semantics at the single-server level (deterministic).

The pool's rolling restart and SIGTERM handling are built on
:meth:`InferenceServer.drain`; these tests pin its contract without any
child processes: ``/health`` flips to ``"draining"`` immediately, the
public listener stops accepting, requests already in flight complete
(exactly once — never re-executed), idle keep-alive connections are
closed, and the admin listener stays up so a pool manager can watch the
drain.  The multi-process versions of these assertions live in
``test_pool.py`` and ``tests/chaos``.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.serve.http import fetch
from repro.serve.registry import ModelRegistry, build_served_model
from repro.serve.server import InferenceServer

from .conftest import tiny_loader


def _predict_body(x):
    return {"dataset": "toy", "format": "posit8_1", "inputs": x.tolist()}


def _expected(x):
    model = build_served_model("toy", "posit8_1", tiny_loader)
    return model.network.predict(x).tolist()


async def _wait(predicate, timeout_s=5.0):
    loop = asyncio.get_running_loop()
    deadline = loop.time() + timeout_s
    while not predicate() and loop.time() < deadline:
        await asyncio.sleep(0.005)
    assert predicate()


def test_inflight_request_completes_exactly_once_during_drain(rng):
    """A request sitting in the coalescing window when drain begins must
    still be answered correctly — and executed exactly once."""
    x = rng.normal(size=(3, 4))

    async def scenario():
        server = InferenceServer(
            registry=ModelRegistry(loader=tiny_loader), port=0,
            max_delay_ms=400.0, adaptive_delay=False,
        )
        await server.start()
        # The lone request waits the full 400ms window: reliably in
        # flight when drain starts.
        request = asyncio.ensure_future(fetch(
            "127.0.0.1", server.port, "POST", "/predict",
            _predict_body(x), timeout_s=30.0,
        ))
        await _wait(lambda: server._active_requests >= 1)
        drain = asyncio.ensure_future(server.drain(grace_s=10.0))
        await _wait(lambda: server._draining)
        health = server._health()
        assert health["status"] == "draining"
        # The public listener is gone: new connections are refused.
        port = server.port
        with pytest.raises(OSError):
            await fetch("127.0.0.1", port, "GET", "/health", timeout_s=2.0)
        status, body = await request
        payload = json.loads(body)
        assert status == 200
        assert payload["predictions"] == _expected(x)
        await drain
        assert server._active_requests == 0
        # Exactly one request, one batch of three rows: nothing was
        # dropped, nothing re-executed.
        assert server.stats.requests == 1
        assert dict(server.stats.batch_sizes) == {3: 1}
        await server.close()

    asyncio.run(scenario())


def test_drain_closes_idle_keepalive_connections(rng):
    x = rng.normal(size=(1, 4))

    async def scenario():
        server = InferenceServer(
            registry=ModelRegistry(loader=tiny_loader), port=0,
            max_delay_ms=1.0,
        )
        await server.start()
        reader, writer = await asyncio.open_connection(
            "127.0.0.1", server.port
        )
        payload = json.dumps(_predict_body(x)).encode()
        writer.write(
            b"POST /predict HTTP/1.1\r\n"
            + f"Content-Length: {len(payload)}\r\n\r\n".encode()
            + payload
        )
        await writer.drain()
        head = await reader.readuntil(b"\r\n\r\n")
        assert b"200 OK" in head and b"keep-alive" in head
        length = int(
            [ln for ln in head.split(b"\r\n")
             if ln.lower().startswith(b"content-length")][0].split(b":")[1]
        )
        await reader.readexactly(length)
        # The connection now idles in read_request; drain must not hang
        # on it — it closes idle keep-alive sockets once in-flight work
        # (none here) is done.
        await server.drain(grace_s=5.0)
        leftover = await asyncio.wait_for(reader.read(), timeout=5.0)
        assert leftover == b""  # clean EOF, not a hang
        writer.close()
        await server.close()

    asyncio.run(scenario())


def test_admin_listener_survives_drain_and_reports_it(rng):
    """Pool workers keep their loopback admin listener up through drain
    so the manager can watch /health flip to draining."""
    x = rng.normal(size=(2, 4))

    async def scenario():
        server = InferenceServer(
            registry=ModelRegistry(loader=tiny_loader), port=0,
            max_delay_ms=1.0,
            # Any manager port works: /health is answered locally, and
            # this test never touches a forwarded control path.
            pool_manager_port=1, pool_worker_index=0,
        )
        await server.start()
        assert server.admin_port is not None
        status, body = await fetch(
            "127.0.0.1", server.port, "POST", "/predict", _predict_body(x),
        )
        assert status == 200
        assert json.loads(body)["predictions"] == _expected(x)
        await server.drain(grace_s=5.0)
        status, body = await fetch(
            "127.0.0.1", server.admin_port, "GET", "/health",
        )
        health = json.loads(body)
        assert status == 200
        assert health["status"] == "draining"
        assert health["worker"] == 0
        assert health["draining"] is True
        # The worker-state export the manager merges is also still up.
        status, body = await fetch(
            "127.0.0.1", server.admin_port, "GET", "/stats",
        )
        state = json.loads(body)
        assert state["draining"] is True
        assert state["state"]["requests"] == 1
        await server.close()

    asyncio.run(scenario())


def test_drain_is_idempotent_and_close_still_works(rng):
    async def scenario():
        server = InferenceServer(
            registry=ModelRegistry(loader=tiny_loader), port=0,
            max_delay_ms=1.0,
        )
        await server.start()
        await server.drain(grace_s=1.0)
        await server.drain(grace_s=1.0)  # second drain: no-op, no error
        await server.close()
        await server.close()

    asyncio.run(scenario())


def test_predictions_before_drain_match_direct(rng):
    """Sanity: the drain-capable server still serves exact bits."""
    xs = [rng.normal(size=(rows, 4)) for rows in (1, 4, 2)]

    async def scenario():
        server = InferenceServer(
            registry=ModelRegistry(loader=tiny_loader), port=0,
            max_delay_ms=1.0,
        )
        await server.start()
        got = []
        for x in xs:
            status, body = await fetch(
                "127.0.0.1", server.port, "POST", "/predict",
                _predict_body(x),
            )
            assert status == 200
            got.append(json.loads(body)["predictions"])
        await server.drain(grace_s=1.0)
        await server.close()
        return got

    got = asyncio.run(scenario())
    for x, predictions in zip(xs, got):
        assert predictions == _expected(x)
