"""Multi-process worker-tier integration tests.

One shared 2-worker pool (module fixture) backs most tests; every
response that comes out of it is checked bit-identical to calling the
model's ``predict`` directly in this process — the pool adds processes,
sockets, and restarts, but never bits.  Gated to multi-core hosts
(``REPRO_POOL_TESTS=1`` forces a run on one core; everything still
passes, just without real parallelism).
"""

from __future__ import annotations

import json
import os
import signal
import threading
import time
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve import start_pool_in_thread
from repro.serve.pool import route_index
from repro.serve.registry import build_served_model

from .conftest import TOY_SPECS, tiny_loader

pytestmark = pytest.mark.skipif(
    (os.cpu_count() or 1) < 2 and not os.environ.get("REPRO_POOL_TESTS"),
    reason="worker-pool tests want >= 2 cores "
           "(set REPRO_POOL_TESTS=1 to force)",
)

#: (dataset, format) keys served in the concurrency mix.
MODEL_KEYS = (
    ("toy", "posit8_1"),
    ("toy", "float4_3"),
    ("toy2", "posit6_0"),
)

_DIRECT: dict = {}


def direct_model(dataset, format_name):
    key = (dataset, format_name)
    if key not in _DIRECT:
        _DIRECT[key] = build_served_model(dataset, format_name, tiny_loader)
    return _DIRECT[key]


def _features(dataset):
    return TOY_SPECS[dataset][0][0]


def _post(port, path, payload, timeout=60):
    req = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(req, timeout=timeout) as resp:
        return resp.status, json.loads(resp.read())


def _get(port, path, timeout=60):
    with urllib.request.urlopen(
        f"http://127.0.0.1:{port}{path}", timeout=timeout
    ) as resp:
        body = resp.read()
        try:
            return resp.status, json.loads(body)
        except ValueError:
            return resp.status, body.decode()


def _predict(port, dataset, format_name, x, retries=2):
    """POST /predict with bounded connection-error retries.

    Retries are legitimate here: during drains and kills, a connection
    can land in a dying worker's accept backlog and get reset before
    it is served.  Bits may never be wrong; connections may bounce.
    """
    last = None
    for _ in range(retries + 1):
        try:
            return _post(port, "/predict", {
                "dataset": dataset, "format": format_name,
                "inputs": x.tolist(),
            })
        except (urllib.error.URLError, ConnectionError, OSError) as exc:
            last = exc
            time.sleep(0.05)
    raise AssertionError(f"predict kept failing: {last}")


class TestBitIdentityUnderConcurrentLoad:
    @settings(max_examples=6, deadline=None)
    @given(data=st.data())
    def test_pooled_responses_match_direct_predict(self, pool, data):
        """Property: any concurrent mix of models/formats/row-counts
        through the multi-worker pool is bit-identical to direct
        ``predict`` in this process — worker choice cannot matter."""
        mix = data.draw(st.lists(
            st.tuples(
                st.sampled_from(range(len(MODEL_KEYS))),
                st.integers(1, 6),
            ),
            min_size=1, max_size=10,
        ))
        seed = data.draw(st.integers(0, 2**32 - 1))
        rng = np.random.default_rng(seed)
        jobs = []
        for key_index, rows in mix:
            dataset, format_name = MODEL_KEYS[key_index]
            jobs.append((
                dataset, format_name,
                rng.normal(scale=1.5, size=(rows, _features(dataset))),
            ))
        port = pool.pool.port
        with ThreadPoolExecutor(max_workers=8) as pool_exec:
            outcomes = list(pool_exec.map(
                lambda job: _predict(port, *job), jobs
            ))
        for (dataset, format_name, x), (status, body) in zip(jobs, outcomes):
            assert status == 200
            expected = direct_model(dataset, format_name)
            assert body["dataset"] == dataset
            assert body["format"] == format_name
            assert body["predictions"] == (
                expected.network.predict(x).tolist()
            )


class TestControlPlane:
    def test_swap_fans_out_to_every_worker(self, pool):
        status, body = _post(pool.pool.port, "/swap", {
            "dataset": "toy", "format": "posit8_1",
        })
        assert status == 200
        assert body["pool"]["applied"] == [0, 1]
        assert body["pool"]["unreachable"] == []
        assert body["pool"]["failed_status"] == {}
        # Both workers really applied it: pooled swap counter says two.
        status, stats = _get(pool.pool.port, "/stats")
        assert stats["swaps"] >= 2

    def test_stats_aggregate_across_workers(self, pool):
        port = pool.pool.port
        _, before = _get(port, "/stats")
        x = np.zeros((2, 4))
        for _ in range(8):
            _predict(port, "toy", "posit8_1", x)
        _, after = _get(port, "/stats")
        assert after["requests"] - before["requests"] == 8
        assert after["samples"] - before["samples"] == 16
        workers = after["workers"]
        assert [w["worker"] for w in workers] == [0, 1]
        # The pooled total is exactly the sum of the per-worker counts.
        assert sum(w["requests"] for w in workers) == after["requests"]
        assert after["pool"]["mode"] == "reuseport"
        assert after["pool"]["alive"] == 2

    def test_metrics_aggregate_across_workers(self, pool):
        status, text = _get(pool.pool.port, "/metrics")
        assert status == 200
        assert "repro_serve_requests_total" in text
        assert "repro_serve_batches_total" in text
        # Pooled totals agree with pooled /stats.
        _, stats = _get(pool.pool.port, "/stats")
        for line in text.splitlines():
            if line.startswith("repro_serve_requests_total"):
                assert float(line.split()[-1]) == stats["requests"]
                break
        else:  # pragma: no cover - metric disappeared
            pytest.fail("repro_serve_requests_total not rendered")

    def test_health_on_public_port_is_worker_local(self, pool):
        status, health = _get(pool.pool.port, "/health")
        assert status == 200
        assert health["status"] == "ok"
        assert health["worker"] in (0, 1)
        assert health["draining"] is False


class TestDrainAndRestart:
    def _hammer(self, port, stop, wrong, errors):
        x = np.linspace(-1.0, 1.0, 8).reshape(2, 4)
        expected = direct_model("toy", "posit8_1").network.predict(x).tolist()
        while not stop.is_set():
            try:
                _, body = _predict(port, "toy", "posit8_1", x, retries=3)
                if body["predictions"] != expected:
                    wrong.append(body["predictions"])
            except Exception as exc:  # noqa: BLE001 - recorded
                errors.append(exc)

    def test_sigterm_drains_worker_and_supervisor_restarts_it(self, pool):
        workers = pool.pool._workers
        pid0 = workers[0].pid
        stop, wrong, errors = threading.Event(), [], []
        threads = [
            threading.Thread(
                target=self._hammer,
                args=(pool.pool.port, stop, wrong, errors),
            )
            for _ in range(3)
        ]
        for t in threads:
            t.start()
        try:
            os.kill(pid0, signal.SIGTERM)
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                if workers[0].alive and workers[0].pid != pid0:
                    break
                time.sleep(0.05)
            else:
                pytest.fail("supervisor did not restart the worker")
        finally:
            stop.set()
            for t in threads:
                t.join(30.0)
        assert not errors, errors[:3]
        assert wrong == []  # bits never changed while a worker died
        assert workers[0].restarts >= 1
        # The pool is whole again and still serving.
        x = np.ones((1, 4))
        _, body = _predict(pool.pool.port, "toy", "posit8_1", x)
        assert body["predictions"] == (
            direct_model("toy", "posit8_1").network.predict(x).tolist()
        )

    def test_rolling_restart_replaces_all_workers_with_zero_downtime(
        self, pool
    ):
        workers = pool.pool._workers
        pids_before = [w.pid for w in workers]
        stop, wrong, errors = threading.Event(), [], []
        threads = [
            threading.Thread(
                target=self._hammer,
                args=(pool.pool.port, stop, wrong, errors),
            )
            for _ in range(3)
        ]
        for t in threads:
            t.start()
        try:
            events = pool.rolling_restart(timeout=300.0)
        finally:
            stop.set()
            for t in threads:
                t.join(30.0)
        assert [e["worker"] for e in events] == [0, 1]
        # exit 0 = the SIGTERM path drained gracefully, not a crash.
        assert all(e["exit_code"] == 0 for e in events)
        pids_after = [w.pid for w in workers]
        assert set(pids_after).isdisjoint(pids_before)
        assert not errors, errors[:3]
        assert wrong == []


class TestRouterMode:
    @pytest.fixture(scope="class")
    def router_pool(self):
        handle = start_pool_in_thread(
            port=0, workers=2, mode="router",
            loader_spec="tests.serve.conftest:tiny_loader",
            server_kwargs={"max_delay_ms": 1.0},
            restart_backoff_s=0.1, seed=11,
        )
        yield handle
        handle.stop()

    def test_router_serves_bit_identical_and_routes_consistently(
        self, router_pool, rng
    ):
        port = router_pool.pool.port
        for dataset, format_name in MODEL_KEYS:
            x = rng.normal(size=(3, _features(dataset)))
            _, body = _predict(port, dataset, format_name, x)
            assert body["predictions"] == (
                direct_model(dataset, format_name).network.predict(x).tolist()
            )
        # Consistent routing: each key's requests all landed on the CRC32
        # worker, so its micro-batcher stays hot in exactly one place.
        _, stats = _get(port, "/stats")
        per_worker = {w["worker"]: w["requests"] for w in stats["workers"]}
        for dataset, format_name in MODEL_KEYS:
            target = route_index(dataset, format_name, 2)
            assert per_worker.get(target, 0) > 0
        assert sum(per_worker.values()) == stats["requests"]

    def test_router_aggregates_control_plane(self, router_pool):
        status, body = _post(router_pool.pool.port, "/swap", {
            "dataset": "toy", "format": "posit8_1",
        })
        assert status == 200
        assert body["pool"]["applied"] == [0, 1]
        status, health = _get(router_pool.pool.port, "/health")
        assert status == 200
        # Router /health is the pool aggregate, not one worker's view.
        assert health["status"] == "ok"
        assert len(health["workers"]) == 2
