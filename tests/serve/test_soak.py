"""Slow-suite soak: replay a heavy multi-model trace through a live server.

This is the serving layer's endurance test — the shape of traffic a real
deployment sees, compressed: several client threads hammer three served
models (two formats of ``toy`` under an A/B experiment with a canary,
plus ``toy2``) with a deterministic seeded trace of mixed row counts,
while a hot-swap lands mid-soak.  The
assertions are the production invariants:

* **zero errors, zero rejections** — every request in the trace answers;
* **bit-identity end to end** — every response equals a direct
  ``predict`` of the network that served it, across coalescing, A/B
  routing, and the swap;
* **canary silence** — the sampled A/B bit-identity canary never trips;
* **bounded tail latency** — p99 stays under the committed baseline
  (``benchmarks/serve_soak_baseline.json``), with generous headroom so
  the bound catches pathologies (a stalled batcher, a lost wakeup), not
  CI-machine jitter.

When ``REPRO_SOAK_JSON`` names a path, the measured counters are written
there for CI to archive next to ``BENCH_serve.json`` and to guard via
``benchmarks/check_serve_soak.py``.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro.serve import ModelRegistry, ServeClient, start_in_thread
from repro.serve.registry import build_served_model
from repro.serve.stats import percentile

from .conftest import tiny_loader

pytestmark = pytest.mark.slow

#: (dataset, format) mix each worker draws from.  ``None`` format means
#: "route me": the request goes through the toy A/B experiment.
_TRACE_MODELS = [
    ("toy", None),
    ("toy", None),
    ("toy", "posit8_1"),
    ("toy", "float4_3"),
    ("toy2", "posit6_0"),
    ("toy2", "posit6_0"),
]

_WORKERS = 8
_REQUESTS_PER_WORKER = 60
_SWAP_AFTER = 0.25  # fraction of a worker's trace before the swap lands

#: Direct-prediction oracles, keyed like the server keys models.  The
#: ``toy/posit8_1`` oracle is replaced at swap time (same seed bump the
#: SwappingLoader applies), so bit-identity is asserted against whichever
#: network was live — responses carry the generation via the arm name.
_FEATURES = {"toy": 4, "toy2": 5}


class SwappingLoader:
    """tiny_loader plus a version knob, like tests/serve/test_swap.py."""

    def __init__(self):
        self.version = 0

    def __call__(self, dataset: str):
        from repro.nn.model import MLP

        from .conftest import TOY_SPECS

        base = tiny_loader(dataset)
        if self.version and dataset == "toy":
            topology, _, seed = TOY_SPECS[dataset]
            base.model = MLP(
                topology, np.random.default_rng(seed + 1000 * self.version)
            )
        return base


def test_soak_multi_model_trace_zero_errors_bounded_p99():
    loader = SwappingLoader()
    registry = ModelRegistry(loader=loader)
    oracles = {
        ("toy", "posit8_1", 0): build_served_model(
            "toy", "posit8_1", tiny_loader
        ),
        ("toy", "float4_3", 0): build_served_model(
            "toy", "float4_3", tiny_loader
        ),
        ("toy2", "posit6_0", 0): build_served_model(
            "toy2", "posit6_0", tiny_loader
        ),
    }
    swapped_loader = SwappingLoader()
    swapped_loader.version = 1
    oracles[("toy", "posit8_1", 1)] = build_served_model(
        "toy", "posit8_1", swapped_loader
    )

    swap_done = threading.Event()
    mismatches: list[str] = []
    errors: list[str] = []
    latencies_ms: list[float] = []
    lock = threading.Lock()

    with start_in_thread(
        registry=registry, port=0, max_batch=16, max_delay_ms=2.0
    ) as handle:
        port = handle.server.port
        with ServeClient(port=port) as admin:
            admin.start_ab("toy", "posit8_1", "float4_3", canary_every=8)
            for dataset, fmt in {
                ("toy", "posit8_1"), ("toy", "float4_3"),
                ("toy2", "posit6_0"),
            }:
                admin.warmup(dataset, fmt)

            def worker(worker_id: int) -> None:
                gen = np.random.default_rng(1000 + worker_id)
                swap_at = int(_REQUESTS_PER_WORKER * _SWAP_AFTER)
                with ServeClient(port=port) as client:
                    for i in range(_REQUESTS_PER_WORKER):
                        if worker_id == 0 and i == swap_at:
                            loader.version = 1
                            client.swap("toy", "posit8_1")
                            swap_done.set()
                        dataset, fmt = _TRACE_MODELS[
                            int(gen.integers(len(_TRACE_MODELS)))
                        ]
                        rows = int(gen.integers(1, 9))
                        x = gen.normal(size=(rows, _FEATURES[dataset]))
                        start = time.perf_counter()
                        try:
                            body = client.predict(dataset, fmt, x)
                        except Exception as exc:  # any failure ends the soak red
                            with lock:
                                errors.append(f"worker {worker_id}: {exc!r}")
                            continue
                        elapsed_ms = (time.perf_counter() - start) * 1000.0
                        served_fmt = body.get("format", fmt)
                        version = (
                            1
                            if served_fmt == "posit8_1"
                            and dataset == "toy"
                            and swap_done.is_set()
                            else 0
                        )
                        oracle = oracles[(dataset, served_fmt, version)]
                        expected = oracle.network.predict(x).tolist()
                        with lock:
                            latencies_ms.append(elapsed_ms)
                            if body["predictions"] != expected:
                                # A prediction read during the swap window
                                # may match the *other* version — that is
                                # still bit-identical serving, just racing
                                # the observer.  Check the sibling before
                                # declaring a mismatch.
                                sibling = oracles.get(
                                    (dataset, served_fmt, 1 - version)
                                )
                                if (
                                    sibling is None
                                    or body["predictions"]
                                    != sibling.network.predict(x).tolist()
                                ):
                                    mismatches.append(
                                        f"worker {worker_id} request {i}: "
                                        f"{dataset}/{served_fmt} diverged"
                                    )

            threads = [
                threading.Thread(target=worker, args=(w,))
                for w in range(_WORKERS)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

            stats = admin.stats()
            ab = admin.ab_status()["toy"]

    assert not errors, errors[:5]
    assert not mismatches, mismatches[:5]
    assert stats["errors"] == 0
    assert stats["rejected"] == 0
    assert stats["swaps"] == 1
    assert ab["canary"]["checks"] > 0
    assert ab["canary"]["divergences"] == 0
    total = _WORKERS * _REQUESTS_PER_WORKER
    assert len(latencies_ms) == total

    p50 = percentile(latencies_ms, 50)
    p99 = percentile(latencies_ms, 99)
    baseline_path = (
        Path(__file__).resolve().parents[2]
        / "benchmarks" / "serve_soak_baseline.json"
    )
    baseline = json.loads(baseline_path.read_text())
    assert p99 <= baseline["p99_ms_bound"], (
        f"p99 {p99:.1f}ms exceeds the committed bound "
        f"{baseline['p99_ms_bound']}ms"
    )

    record = {
        "requests": total,
        "errors": len(errors) + stats["errors"],
        "rejected": stats["rejected"],
        "mismatches": len(mismatches),
        "p50_ms": round(p50, 3),
        "p99_ms": round(p99, 3),
        "swaps": stats["swaps"],
        "canary_checks": ab["canary"]["checks"],
        "canary_divergences": ab["canary"]["divergences"],
    }
    out = os.environ.get("REPRO_SOAK_JSON")
    if out:
        with open(out, "w") as fh:
            json.dump(record, fh, indent=2)
            fh.write("\n")
    print("soak:", json.dumps(record))
