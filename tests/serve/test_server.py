"""End-to-end service tests: HTTP front end, registry, batching, stats.

A real server runs on a background thread (ephemeral port) with the tiny
synthetic-model loader injected, and the blocking ``ServeClient`` drives
it — the same embedding the example and the throughput benchmark use.
"""

from __future__ import annotations

import json
import threading

import numpy as np
import pytest

from repro.serve import (
    ModelRegistry,
    ServeClient,
    ServeError,
    start_in_thread,
)
from repro.serve.registry import build_served_model

from .conftest import tiny_loader


@pytest.fixture(scope="module")
def handle():
    registry = ModelRegistry(loader=tiny_loader)
    server = start_in_thread(
        registry=registry, port=0, max_batch=8, max_delay_ms=5.0
    )
    yield server
    server.stop()


@pytest.fixture
def client(handle):
    with ServeClient(port=handle.server.port) as c:
        yield c


class TestEndpoints:
    def test_health(self, client):
        body = client.health()
        assert body["status"] == "ok"
        assert body["uptime_s"] >= 0

    def test_warmup_then_models_lists_it(self, client):
        described = client.warmup("toy", "posit8_1")
        assert described["topology"] == [4, 6, 3]
        assert described["classes"] == ["setosa", "versicolor", "virginica"]
        listing = client.models()
        keys = {(m["dataset"], m["format"]) for m in listing["loaded"]}
        assert ("toy", "posit8_1") in keys
        assert listing["batching"]["max_batch"] == 8

    def test_format_name_is_canonicalized(self, client):
        # Label spelling and registry spelling resolve to one served model.
        a = client.warmup("toy", "posit<8,1>")
        b = client.warmup("toy", "posit8_1")
        assert a["format"] == b["format"] == "posit8_1"

    def test_predict_matches_direct_network(self, client, rng):
        x = rng.normal(size=(6, 4))
        body = client.predict("toy", "posit8_1", x)
        direct = build_served_model("toy", "posit8_1", tiny_loader)
        expected = direct.network.predict(x)
        assert body["predictions"] == expected.tolist()
        assert body["labels"] == [
            direct.class_names[c] for c in expected
        ]

    def test_predict_single_sample_1d(self, client, rng):
        body = client.predict("toy", "posit8_1", rng.normal(size=4))
        assert len(body["predictions"]) == 1

    def test_stats_surface(self, client, rng):
        client.predict("toy", "posit8_1", rng.normal(size=(3, 4)))
        stats = client.stats()
        assert stats["requests"] >= 1
        assert stats["samples"] >= 3
        hist = {int(k): v for k, v in stats["batch_size_histogram"].items()}
        assert sum(k * v for k, v in hist.items()) == stats["samples"]
        assert set(stats["latency_ms"]) == {"p50", "p99", "window"}
        assert stats["latency_ms"]["p99"] >= stats["latency_ms"]["p50"]


class TestErrorPaths:
    def test_unknown_route_404(self, client):
        with pytest.raises(ServeError) as err:
            client._request("GET", "/nope")
        assert err.value.status == 404

    def test_wrong_method_405(self, client):
        with pytest.raises(ServeError) as err:
            client._request("POST", "/health", {})
        assert err.value.status == 405

    def test_unknown_dataset_400(self, client, rng):
        with pytest.raises(ServeError) as err:
            client.predict("nope", "posit8_1", rng.normal(size=(1, 4)))
        assert err.value.status == 400
        assert "nope" in err.value.message

    def test_unknown_format_400(self, client, rng):
        with pytest.raises(ServeError) as err:
            client.predict("toy", "posit99_99", rng.normal(size=(1, 4)))
        assert err.value.status == 400

    def test_feature_mismatch_400(self, client, rng):
        with pytest.raises(ServeError) as err:
            client.predict("toy", "posit8_1", rng.normal(size=(1, 7)))
        assert err.value.status == 400
        assert "expects 4 features" in err.value.message

    def test_missing_inputs_400(self, client):
        with pytest.raises(ServeError) as err:
            client._request(
                "POST", "/predict", {"dataset": "toy", "format": "posit8_1"}
            )
        assert err.value.status == 400

    def test_non_numeric_inputs_400(self, client):
        with pytest.raises(ServeError) as err:
            client._request(
                "POST",
                "/predict",
                {"dataset": "toy", "format": "posit8_1", "inputs": ["x"]},
            )
        assert err.value.status == 400

    @pytest.mark.parametrize("length", ["abc", "-5"])
    def test_malformed_content_length_gets_400(self, handle, length):
        import socket

        with socket.create_connection(
            ("127.0.0.1", handle.server.port), timeout=10
        ) as sock:
            sock.sendall(
                f"GET /health HTTP/1.1\r\nContent-Length: {length}\r\n\r\n"
                .encode()
            )
            response = sock.recv(65536).decode()
        assert response.startswith("HTTP/1.1 400")
        assert "Content-Length" in response

    def test_malformed_json_400(self, handle):
        import http.client

        conn = http.client.HTTPConnection(
            "127.0.0.1", handle.server.port, timeout=10
        )
        try:
            conn.request(
                "POST", "/predict", body="{not json",
                headers={"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            assert response.status == 400
            assert "JSON" in json.loads(response.read())["error"]
        finally:
            conn.close()


class TestConstruction:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_batch": 0},
            {"max_delay_ms": -1.0},
            {"queue_limit": 0},
            {"executor_workers": 0},
            {"submit_timeout_s": 0.0},
        ],
    )
    def test_bad_knobs_rejected_at_startup(self, kwargs):
        from repro.serve import InferenceServer

        with pytest.raises(ValueError):
            InferenceServer(**kwargs)


class TestConcurrentLoad:
    def test_threaded_clients_get_bit_identical_answers(self, handle, rng):
        direct = build_served_model("toy", "posit8_1", tiny_loader)
        num_threads, per_thread = 8, 5
        requests = [
            [rng.normal(size=(rng.integers(1, 5), 4)) for _ in range(per_thread)]
            for _ in range(num_threads)
        ]
        barrier = threading.Barrier(num_threads)
        failures: list[str] = []

        def worker(batches):
            with ServeClient(port=handle.server.port) as c:
                barrier.wait()
                for x in batches:
                    got = c.predict("toy", "posit8_1", x)["predictions"]
                    want = direct.network.predict(x).tolist()
                    if got != want:
                        failures.append(f"{got} != {want}")

        threads = [
            threading.Thread(target=worker, args=(r,)) for r in requests
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not failures, failures

    def test_concurrent_bursts_actually_coalesce(self, handle, rng):
        """The burst must produce at least one multi-request batch."""
        before = ServeClient(port=handle.server.port)
        baseline = before.stats()["batch_size_histogram"]
        before.close()

        num_threads = 8
        barrier = threading.Barrier(num_threads)

        def worker():
            with ServeClient(port=handle.server.port) as c:
                barrier.wait()
                for _ in range(4):
                    c.predict("toy", "posit8_1", [[0.1, -0.2, 0.3, 0.4]])

        threads = [threading.Thread(target=worker) for _ in range(num_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        with ServeClient(port=handle.server.port) as c:
            after = c.stats()["batch_size_histogram"]
        grew = {
            int(size): count - baseline.get(size, 0)
            for size, count in after.items()
            if count != baseline.get(size, 0)
        }
        assert max(grew) > 1, f"no coalescing observed: {grew}"


class TestMetricsEndpoint:
    def test_metrics_is_valid_prometheus_text(self, client, rng):
        """GET /metrics serves the text exposition format with the right
        Content-Type, and the counters line up with /stats."""
        client.warmup("toy", "posit8_1")
        client.predict("toy", "posit8_1", rng.normal(size=(2, 4)))
        text = client.metrics()
        stats = client.stats()

        from .test_stats import parse_exposition

        families = parse_exposition(text)
        assert "# TYPE repro_serve_requests_total counter\n" in text
        requests = dict(families["repro_serve_requests_total"])
        assert requests[""] == float(stats["requests"])
        # The batch-size histogram is cumulative and +Inf == batch count.
        buckets = dict(families["repro_serve_batch_size"])
        assert buckets['le="+Inf"'] == float(stats["batches"])
        # Per-batcher gauges appear once a model has taken traffic.
        depth = dict(families["repro_serve_queue_depth"])
        assert 'model="toy/posit8_1"' in depth
        delays = dict(families["repro_serve_effective_delay_ms"])
        assert delays['model="toy/posit8_1"'] >= 0.0

    def test_metrics_content_type_is_prometheus_text(self, handle, client):
        client.predict("toy", "posit8_1", np.zeros((1, 4)))
        import socket

        with socket.create_connection(
            ("127.0.0.1", handle.server.port), timeout=10.0
        ) as sock:
            sock.sendall(
                b"GET /metrics HTTP/1.1\r\nHost: x\r\n"
                b"Content-Length: 0\r\n\r\n"
            )
            head = b""
            while b"\r\n\r\n" not in head:
                head += sock.recv(65536)
        headers = head.decode("latin-1").lower()
        assert "200" in headers.split("\r\n", 1)[0]
        assert "content-type: text/plain; version=0.0.4" in headers

    def test_metrics_via_post_is_405(self, client):
        with pytest.raises(ServeError) as err:
            client._request("POST", "/metrics", {})
        assert err.value.status == 405


class TestAdaptiveKnobSurface:
    def test_models_reports_adaptive_delay_and_effective_windows(
        self, client, rng
    ):
        client.predict("toy", "posit8_1", rng.normal(size=(1, 4)))
        listing = client.models()
        batching = listing["batching"]
        assert batching["adaptive_delay"] is True
        assert "toy/posit8_1" in batching["effective_delay_ms"]
        assert (
            0.0
            <= batching["effective_delay_ms"]["toy/posit8_1"]
            <= batching["max_delay_ms"]
        )

    def test_adaptive_delay_off_is_reported(self):
        registry = ModelRegistry(loader=tiny_loader)
        with start_in_thread(
            registry=registry, port=0, adaptive_delay=False, max_delay_ms=3.0
        ) as off_handle:
            with ServeClient(port=off_handle.server.port) as c:
                c.predict("toy", "posit8_1", np.zeros((2, 4)))
                batching = c.models()["batching"]
        assert batching["adaptive_delay"] is False
        # Fixed window: the effective delay equals max_delay_ms.
        assert batching["effective_delay_ms"]["toy/posit8_1"] == 3.0
