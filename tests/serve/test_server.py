"""End-to-end service tests: HTTP front end, registry, batching, stats.

A real server runs on a background thread (ephemeral port) with the tiny
synthetic-model loader injected, and the blocking ``ServeClient`` drives
it — the same embedding the example and the throughput benchmark use.
"""

from __future__ import annotations

import json
import threading

import numpy as np
import pytest

from repro.serve import (
    ModelRegistry,
    ServeClient,
    ServeError,
    start_in_thread,
)
from repro.serve.registry import build_served_model

from .conftest import tiny_loader


@pytest.fixture(scope="module")
def handle():
    registry = ModelRegistry(loader=tiny_loader)
    server = start_in_thread(
        registry=registry, port=0, max_batch=8, max_delay_ms=5.0
    )
    yield server
    server.stop()


@pytest.fixture
def client(handle):
    with ServeClient(port=handle.server.port) as c:
        yield c


class TestEndpoints:
    def test_health(self, client):
        body = client.health()
        assert body["status"] == "ok"
        assert body["uptime_s"] >= 0

    def test_warmup_then_models_lists_it(self, client):
        described = client.warmup("toy", "posit8_1")
        assert described["topology"] == [4, 6, 3]
        assert described["classes"] == ["setosa", "versicolor", "virginica"]
        listing = client.models()
        keys = {(m["dataset"], m["format"]) for m in listing["loaded"]}
        assert ("toy", "posit8_1") in keys
        assert listing["batching"]["max_batch"] == 8

    def test_format_name_is_canonicalized(self, client):
        # Label spelling and registry spelling resolve to one served model.
        a = client.warmup("toy", "posit<8,1>")
        b = client.warmup("toy", "posit8_1")
        assert a["format"] == b["format"] == "posit8_1"

    def test_predict_matches_direct_network(self, client, rng):
        x = rng.normal(size=(6, 4))
        body = client.predict("toy", "posit8_1", x)
        direct = build_served_model("toy", "posit8_1", tiny_loader)
        expected = direct.network.predict(x)
        assert body["predictions"] == expected.tolist()
        assert body["labels"] == [
            direct.class_names[c] for c in expected
        ]

    def test_predict_single_sample_1d(self, client, rng):
        body = client.predict("toy", "posit8_1", rng.normal(size=4))
        assert len(body["predictions"]) == 1

    def test_stats_surface(self, client, rng):
        client.predict("toy", "posit8_1", rng.normal(size=(3, 4)))
        stats = client.stats()
        assert stats["requests"] >= 1
        assert stats["samples"] >= 3
        hist = {int(k): v for k, v in stats["batch_size_histogram"].items()}
        assert sum(k * v for k, v in hist.items()) == stats["samples"]
        assert set(stats["latency_ms"]) == {"p50", "p99", "window"}
        assert stats["latency_ms"]["p99"] >= stats["latency_ms"]["p50"]


class TestErrorPaths:
    def test_unknown_route_404(self, client):
        with pytest.raises(ServeError) as err:
            client._request("GET", "/nope")
        assert err.value.status == 404

    def test_wrong_method_405(self, client):
        with pytest.raises(ServeError) as err:
            client._request("POST", "/health", {})
        assert err.value.status == 405

    def test_unknown_dataset_400(self, client, rng):
        with pytest.raises(ServeError) as err:
            client.predict("nope", "posit8_1", rng.normal(size=(1, 4)))
        assert err.value.status == 400
        assert "nope" in err.value.message

    def test_unknown_format_400(self, client, rng):
        with pytest.raises(ServeError) as err:
            client.predict("toy", "posit99_99", rng.normal(size=(1, 4)))
        assert err.value.status == 400

    def test_feature_mismatch_400(self, client, rng):
        with pytest.raises(ServeError) as err:
            client.predict("toy", "posit8_1", rng.normal(size=(1, 7)))
        assert err.value.status == 400
        assert "expects 4 features" in err.value.message

    def test_missing_inputs_400(self, client):
        with pytest.raises(ServeError) as err:
            client._request(
                "POST", "/predict", {"dataset": "toy", "format": "posit8_1"}
            )
        assert err.value.status == 400

    def test_non_numeric_inputs_400(self, client):
        with pytest.raises(ServeError) as err:
            client._request(
                "POST",
                "/predict",
                {"dataset": "toy", "format": "posit8_1", "inputs": ["x"]},
            )
        assert err.value.status == 400

    @pytest.mark.parametrize("length", ["abc", "-5"])
    def test_malformed_content_length_gets_400(self, handle, length):
        import socket

        with socket.create_connection(
            ("127.0.0.1", handle.server.port), timeout=10
        ) as sock:
            sock.sendall(
                f"GET /health HTTP/1.1\r\nContent-Length: {length}\r\n\r\n"
                .encode()
            )
            response = sock.recv(65536).decode()
        assert response.startswith("HTTP/1.1 400")
        assert "Content-Length" in response

    def test_malformed_json_400(self, handle):
        import http.client

        conn = http.client.HTTPConnection(
            "127.0.0.1", handle.server.port, timeout=10
        )
        try:
            conn.request(
                "POST", "/predict", body="{not json",
                headers={"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            assert response.status == 400
            assert "JSON" in json.loads(response.read())["error"]
        finally:
            conn.close()


class TestConstruction:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_batch": 0},
            {"max_delay_ms": -1.0},
            {"queue_limit": 0},
            {"executor_workers": 0},
            {"submit_timeout_s": 0.0},
        ],
    )
    def test_bad_knobs_rejected_at_startup(self, kwargs):
        from repro.serve import InferenceServer

        with pytest.raises(ValueError):
            InferenceServer(**kwargs)


class TestConcurrentLoad:
    def test_threaded_clients_get_bit_identical_answers(self, handle, rng):
        direct = build_served_model("toy", "posit8_1", tiny_loader)
        num_threads, per_thread = 8, 5
        requests = [
            [rng.normal(size=(rng.integers(1, 5), 4)) for _ in range(per_thread)]
            for _ in range(num_threads)
        ]
        barrier = threading.Barrier(num_threads)
        failures: list[str] = []

        def worker(batches):
            with ServeClient(port=handle.server.port) as c:
                barrier.wait()
                for x in batches:
                    got = c.predict("toy", "posit8_1", x)["predictions"]
                    want = direct.network.predict(x).tolist()
                    if got != want:
                        failures.append(f"{got} != {want}")

        threads = [
            threading.Thread(target=worker, args=(r,)) for r in requests
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not failures, failures

    def test_concurrent_bursts_actually_coalesce(self, handle, rng):
        """The burst must produce at least one multi-request batch."""
        before = ServeClient(port=handle.server.port)
        baseline = before.stats()["batch_size_histogram"]
        before.close()

        num_threads = 8
        barrier = threading.Barrier(num_threads)

        def worker():
            with ServeClient(port=handle.server.port) as c:
                barrier.wait()
                for _ in range(4):
                    c.predict("toy", "posit8_1", [[0.1, -0.2, 0.3, 0.4]])

        threads = [threading.Thread(target=worker) for _ in range(num_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        with ServeClient(port=handle.server.port) as c:
            after = c.stats()["batch_size_histogram"]
        grew = {
            int(size): count - baseline.get(size, 0)
            for size, count in after.items()
            if count != baseline.get(size, 0)
        }
        assert max(grew) > 1, f"no coalescing observed: {grew}"
