"""Shared serving-test fixtures: tiny synthetic models, no training.

The serve registry's loader hook is the test seam: instead of the
store-backed :func:`repro.analysis.sweep.trained_model` (which would train
a real parent model), these fixtures hand back small deterministic MLPs
wrapped in the same ``TrainedModel``-shaped interface (``.model``,
``.dataset.class_names``, ``.float32_accuracy``).
"""

from __future__ import annotations

from types import SimpleNamespace

import numpy as np
import pytest

from repro.nn.model import MLP

#: dataset name -> (topology, class names, rng seed)
TOY_SPECS = {
    "toy": ((4, 6, 3), ("setosa", "versicolor", "virginica"), 3),
    "toy2": ((5, 7, 2), ("benign", "malignant"), 9),
}


def tiny_loader(dataset: str):
    """A ``TrainedModel``-shaped object for the toy datasets."""
    if dataset not in TOY_SPECS:
        raise KeyError(f"unknown dataset '{dataset}'")
    topology, class_names, seed = TOY_SPECS[dataset]
    model = MLP(topology, np.random.default_rng(seed))
    return SimpleNamespace(
        model=model,
        dataset=SimpleNamespace(class_names=class_names),
        float32_accuracy=0.9,
    )


@pytest.fixture
def loader():
    return tiny_loader


@pytest.fixture(scope="module")
def pool():
    """A live 2-worker SO_REUSEPORT pool serving the toy loaders.

    Module-scoped: spawning processes is the expensive part, and every
    consumer only ever *reads* through the pool (predict/stats/swap) or
    exercises restarts that leave it whole again.  Callers are expected
    to be gated on multi-core hosts (see ``test_pool.py``).
    """
    from repro.serve import start_pool_in_thread

    handle = start_pool_in_thread(
        port=0, workers=2, mode="reuseport",
        loader_spec="tests.serve.conftest:tiny_loader",
        server_kwargs={"max_delay_ms": 1.0},
        restart_backoff_s=0.1, seed=7,
    )
    yield handle
    handle.stop()


@pytest.fixture
def toy_inputs(rng):
    """(rows, 4) float features for the ``toy`` dataset."""

    def make(rows: int) -> np.ndarray:
        return rng.normal(size=(rows, 4))

    return make
