"""Model hot-swap (``POST /swap``) and A/B serving with the canary.

The canary contract under test: for any mix of requests routed through an
A/B experiment, every arm's served (batched, coalesced, split) response is
bit-identical to a direct ``predict`` of the network that served it — so
the divergence counter stays at zero unless the serving layer itself is
broken, which the sabotage test proves it detects.  Cross-arm agreement
is the complementary property: on rows where the two formats' direct
predictions agree, the served responses agree too.
"""

from __future__ import annotations

import asyncio
import json
from types import SimpleNamespace

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.model import MLP
from repro.serve import (
    ABExperiment,
    ModelRegistry,
    ServeClient,
    ServeError,
    ServiceClosed,
    start_in_thread,
)
from repro.serve.batcher import MicroBatcher
from repro.serve.registry import build_served_model
from repro.serve.server import InferenceServer

from .conftest import TOY_SPECS, tiny_loader


class VersionedLoader:
    """A loader whose weights change every time ``version`` is bumped —
    the test stand-in for retraining/repairing an artifact in the store."""

    def __init__(self):
        self.version = 0

    def __call__(self, dataset: str):
        base = tiny_loader(dataset)
        if self.version:
            topology, _, seed = TOY_SPECS[dataset]
            base.model = MLP(
                topology, np.random.default_rng(seed + 1000 * self.version)
            )
        return base


def _predict_body(dataset: str, inputs, format_name: str | None = None):
    payload = {"dataset": dataset, "inputs": np.asarray(inputs).tolist()}
    if format_name is not None:
        payload["format"] = format_name
    return json.dumps(payload).encode("utf-8")


class TestSwapUnit:
    def test_batcher_swap_requires_same_key(self, toy_inputs):
        batcher = MicroBatcher(build_served_model("toy", "posit8_1", tiny_loader))
        other = build_served_model("toy", "float4_3", tiny_loader)
        with pytest.raises(ValueError, match="exactly one"):
            batcher.swap_model(other)

    def test_batcher_swap_bumps_generation_and_network(self, toy_inputs):
        loader = VersionedLoader()
        batcher = MicroBatcher(build_served_model("toy", "posit8_1", loader))
        assert batcher.generation == 1
        loader.version = 1
        replacement = build_served_model("toy", "posit8_1", loader)
        assert batcher.swap_model(replacement) == 2
        assert batcher.model is replacement

    def test_registry_reload_replaces_cached_entry(self):
        loader = VersionedLoader()
        registry = ModelRegistry(loader=loader)

        async def scenario():
            first = await registry.get("toy", "posit8_1")
            loader.version = 1
            second = await registry.reload("toy", "posit8_1")
            cached = await registry.get("toy", "posit8_1")
            return first, second, cached

        first, second, cached = asyncio.run(scenario())
        assert cached is second and second is not first
        assert first.network is not second.network  # rebuilt, not re-cached

    def test_swapped_batcher_serves_the_new_network(self, toy_inputs):
        loader = VersionedLoader()
        old = build_served_model("toy", "posit8_1", loader)
        loader.version = 1
        new = build_served_model("toy", "posit8_1", loader)
        x = toy_inputs(32)
        # Deterministic seeds: the two versions must actually disagree
        # somewhere, or the swap test proves nothing.
        assert not np.array_equal(old.network.predict(x), new.network.predict(x))

        async def scenario():
            batcher = MicroBatcher(old, max_batch=8, max_delay_ms=1.0)
            before = await batcher.submit(old.quantize(x))
            batcher.swap_model(new)
            after = await batcher.submit(new.quantize(x))
            await batcher.close()
            return before, after

        before, after = asyncio.run(scenario())
        np.testing.assert_array_equal(before, old.network.predict(x))
        np.testing.assert_array_equal(after, new.network.predict(x))


class TestSwapEndpoint:
    def test_swap_over_http_switches_served_predictions(self, rng):
        loader = VersionedLoader()
        registry = ModelRegistry(loader=loader)
        x = rng.normal(size=(32, 4))
        with start_in_thread(
            registry=registry, port=0, max_batch=8, max_delay_ms=1.0
        ) as handle:
            with ServeClient(port=handle.server.port) as client:
                before = client.predict("toy", "posit8_1", x)["predictions"]
                loader.version = 1
                swapped = client.swap("toy", "posit8_1")
                after = client.predict("toy", "posit8_1", x)["predictions"]
                stats = client.stats()
        assert swapped["swapped"] == "toy/posit8_1"
        assert swapped["generation"] == 2
        old = build_served_model("toy", "posit8_1", VersionedLoader())
        new_loader = VersionedLoader()
        new_loader.version = 1
        new = build_served_model("toy", "posit8_1", new_loader)
        assert before == old.network.predict(x).tolist()
        assert after == new.network.predict(x).tolist()
        assert before != after  # seeds chosen so the swap is observable
        assert stats["swaps"] == 1

    def test_swap_before_any_traffic_starts_at_generation_one(self):
        registry = ModelRegistry(loader=VersionedLoader())
        with start_in_thread(registry=registry, port=0) as handle:
            with ServeClient(port=handle.server.port) as client:
                swapped = client.swap("toy", "posit8_1")
        assert swapped["generation"] == 1  # no batcher existed yet

    def test_swap_unknown_dataset_400(self):
        registry = ModelRegistry(loader=tiny_loader)
        with start_in_thread(registry=registry, port=0) as handle:
            with ServeClient(port=handle.server.port) as client:
                with pytest.raises(ServeError) as err:
                    client.swap("nope", "posit8_1")
        assert err.value.status == 400

    def test_swap_missing_fields_400(self):
        registry = ModelRegistry(loader=tiny_loader)
        with start_in_thread(registry=registry, port=0) as handle:
            with ServeClient(port=handle.server.port) as client:
                with pytest.raises(ServeError) as err:
                    client._request("POST", "/swap", {"dataset": "toy"})
        assert err.value.status == 400


class TestABExperimentUnit:
    def test_round_robin_and_canary_cadence(self):
        arm_a = build_served_model("toy", "posit8_1", tiny_loader)
        arm_b = build_served_model("toy", "float4_3", tiny_loader)
        experiment = ABExperiment("toy", arm_a, arm_b, canary_every=3)
        routed = [experiment.route() for _ in range(12)]
        arms = [model.format_name for model, _ in routed]
        assert arms == ["posit8_1", "float4_3"] * 6
        canaries = [canary for _, canary in routed]
        assert canaries == [True, False, False] * 4
        assert experiment.requests_per_arm == {
            "posit8_1": 6, "float4_3": 6,
        }

    def test_rejects_mismatched_dataset_and_same_format(self):
        arm_a = build_served_model("toy", "posit8_1", tiny_loader)
        arm_b = build_served_model("toy", "float4_3", tiny_loader)
        other = build_served_model("toy2", "float4_3", tiny_loader)
        with pytest.raises(ValueError):
            ABExperiment("toy", arm_a, other)
        with pytest.raises(ValueError):
            ABExperiment("toy", arm_a, arm_a)
        with pytest.raises(ValueError):
            ABExperiment("toy", arm_a, arm_b, canary_every=-1)

    def test_canary_zero_never_fires(self):
        arm_a = build_served_model("toy", "posit8_1", tiny_loader)
        arm_b = build_served_model("toy", "float4_3", tiny_loader)
        experiment = ABExperiment("toy", arm_a, arm_b, canary_every=0)
        assert not any(canary for _, canary in (experiment.route() for _ in range(8)))


class TestABServing:
    def test_configure_and_route_over_http(self, rng):
        registry = ModelRegistry(loader=tiny_loader)
        with start_in_thread(
            registry=registry, port=0, max_batch=8, max_delay_ms=1.0
        ) as handle:
            with ServeClient(port=handle.server.port) as client:
                described = client.start_ab(
                    "toy", "posit8_1", "float4_3", canary_every=2
                )
                assert described["arms"] == ["posit8_1", "float4_3"]
                responses = [
                    client.predict("toy", None, rng.normal(size=(2, 4)))
                    for _ in range(8)
                ]
                status = client.ab_status()["toy"]
                listing = client.models()
        arms = [r["ab"]["arm"] for r in responses]
        assert arms == ["posit8_1", "float4_3"] * 4
        assert all(r["format"] == r["ab"]["arm"] for r in responses)
        assert status["requests_per_arm"] == {"posit8_1": 4, "float4_3": 4}
        assert status["canary"]["checks"] == 4
        assert status["canary"]["divergences"] == 0
        assert listing["ab"]["toy"]["arms"] == ["posit8_1", "float4_3"]

    def test_predict_without_format_and_no_experiment_is_400(self, rng):
        registry = ModelRegistry(loader=tiny_loader)
        with start_in_thread(registry=registry, port=0) as handle:
            with ServeClient(port=handle.server.port) as client:
                with pytest.raises(ServeError) as err:
                    client.predict("toy", None, rng.normal(size=(1, 4)))
        assert err.value.status == 400

    def test_ab_unknown_format_400(self):
        registry = ModelRegistry(loader=tiny_loader)
        with start_in_thread(registry=registry, port=0) as handle:
            with ServeClient(port=handle.server.port) as client:
                with pytest.raises(ServeError) as err:
                    client.start_ab("toy", "posit8_1", "posit99_99")
        assert err.value.status == 400


#: Direct-prediction oracles per arm, shared across the property test.
_ORACLES = {
    name: build_served_model("toy", name, tiny_loader)
    for name in ("posit8_1", "float4_3")
}


class TestABCanaryProperty:
    @settings(max_examples=10, deadline=None)
    @given(
        row_counts=st.lists(st.integers(1, 6), min_size=2, max_size=10),
        seed=st.integers(0, 2**32 - 1),
        max_batch=st.integers(1, 5),
    )
    def test_canaried_responses_bit_identical_to_direct(
        self, row_counts, seed, max_batch
    ):
        """Property: under full canary sampling, any A/B request mix shows
        zero divergences, every response matches its arm's direct
        ``predict``, and the arms agree wherever their direct predictions
        agree."""
        gen = np.random.default_rng(seed)
        requests = [gen.normal(scale=1.5, size=(rows, 4)) for rows in row_counts]

        async def scenario():
            server = InferenceServer(
                registry=ModelRegistry(loader=tiny_loader),
                max_batch=max_batch,
                max_delay_ms=1.0,
                canary_every=1,  # canary every routed request
            )
            await server.configure_ab("toy", "posit8_1", "float4_3")
            bodies = [_predict_body("toy", x) for x in requests]
            responses = await asyncio.gather(
                *(server._predict(body) for body in bodies)
            )
            experiment = server._experiments["toy"]
            stats = server.stats.snapshot()
            await server.close()
            return responses, experiment, stats

        responses, experiment, stats = asyncio.run(scenario())
        assert experiment.canary_checks == len(requests)
        assert experiment.canary_divergences == 0
        assert stats["canary"]["divergences"] == 0
        disagreed = 0
        for x, response in zip(requests, responses):
            arm = response["ab"]["arm"]
            direct = _ORACLES[arm].network.predict(x)
            assert response["predictions"] == direct.tolist()
            # Where the two formats' direct predictions agree, the served
            # answer (whichever arm produced it) is that shared value.
            direct_a = _ORACLES["posit8_1"].network.predict(x)
            direct_b = _ORACLES["float4_3"].network.predict(x)
            agreed = direct_a == direct_b
            served = np.asarray(response["predictions"])
            np.testing.assert_array_equal(served[agreed], direct_a[agreed])
            disagreed += int(np.count_nonzero(~agreed))
        assert experiment.rows_compared == sum(r.shape[0] for r in requests)
        assert experiment.rows_disagreed == disagreed


class TestCanaryCatchesServeBugs:
    def test_sabotaged_batcher_trips_the_divergence_counter(self, rng):
        """Replace one arm's serving network with a liar (keeping the
        experiment's oracle intact): the canary must report divergence —
        the property that makes hot-swap safe to operate."""
        x = rng.normal(size=(3, 4))

        async def scenario():
            server = InferenceServer(
                registry=ModelRegistry(loader=tiny_loader),
                max_batch=4,
                max_delay_ms=1.0,
                canary_every=1,
            )
            await server.configure_ab("toy", "posit8_1", "float4_3")
            experiment = server._experiments["toy"]
            arm_a = experiment.arm_a
            batcher = server.batcher_for(arm_a)

            class LyingNetwork:
                # Off by one class on every row: guaranteed to diverge
                # from the direct recompute regardless of the input draw.
                def predict_patterns(self, patterns):
                    real = arm_a.network.predict_patterns(patterns)
                    return (np.asarray(real) + 1) % 3

            batcher.model = SimpleNamespace(
                key=arm_a.key, network=LyingNetwork()
            )
            await server._predict(_predict_body("toy", x))
            checks = experiment.canary_checks
            divergences = experiment.canary_divergences
            await server.close()
            return checks, divergences

        checks, divergences = asyncio.run(scenario())
        assert checks == 1
        assert divergences == 1

    def test_swap_updates_ab_arms_so_canary_stays_green(self, rng):
        """Hot-swapping an arm must repoint the experiment at the new
        model; a stale arm oracle would false-positive the canary."""
        loader = VersionedLoader()
        x = rng.normal(size=(4, 4))

        async def scenario():
            server = InferenceServer(
                registry=ModelRegistry(loader=loader),
                max_batch=4,
                max_delay_ms=1.0,
                canary_every=1,
            )
            await server.configure_ab("toy", "posit8_1", "float4_3")
            await server._predict(_predict_body("toy", x))
            loader.version = 3  # new weights behind the same key
            await server._swap({"dataset": "toy", "format": "posit8_1"})
            for _ in range(4):
                await server._predict(_predict_body("toy", x))
            experiment = server._experiments["toy"]
            checks = experiment.canary_checks
            divergences = experiment.canary_divergences
            generation = server._batchers["toy/posit8_1"].generation
            await server.close()
            return checks, divergences, generation

        checks, divergences, generation = asyncio.run(scenario())
        assert checks == 5
        assert divergences == 0
        assert generation == 2


class TestClosedServerRace:
    def test_batcher_for_after_close_raises_service_closed(self):
        """The shutdown race: a request resolving its model while close()
        drains must get ServiceClosed (-> 503), never a fresh batcher on
        the dead executor."""

        async def scenario():
            server = InferenceServer(registry=ModelRegistry(loader=tiny_loader))
            model = await server.registry.get(
                "toy", "posit8_1", executor=server._executor
            )
            await server.close()
            with pytest.raises(ServiceClosed):
                server.batcher_for(model)
            # The full predict path surfaces the same ServiceClosed
            # (the HTTP handler renders it as 503).
            with pytest.raises(ServiceClosed):
                await server._predict(
                    _predict_body("toy", np.zeros((1, 4)), "posit8_1")
                )

        asyncio.run(scenario())

    def test_close_is_idempotent_and_swap_after_close_refused(self):
        async def scenario():
            server = InferenceServer(registry=ModelRegistry(loader=tiny_loader))
            await server.registry.get(
                "toy", "posit8_1", executor=server._executor
            )
            await server.close()
            await server.close()  # second close is a no-op, not an error
            with pytest.raises(ServiceClosed):
                await server._swap({"dataset": "toy", "format": "posit8_1"})

        asyncio.run(scenario())

    def test_inflight_request_racing_close_gets_503_not_crash(self, rng):
        """End-to-end shape of the race: requests keep arriving while the
        server shuts down; every response is either a clean answer or a
        clean ServiceClosed — no dead-executor errors."""
        x = rng.normal(size=(1, 4))

        async def scenario():
            server = InferenceServer(
                registry=ModelRegistry(loader=tiny_loader),
                max_batch=4,
                max_delay_ms=1.0,
            )
            # Warm the model so predict resolves instantly from cache.
            await server.registry.get(
                "toy", "posit8_1", executor=server._executor
            )
            body = _predict_body("toy", x, "posit8_1")

            async def hammer():
                outcomes = []
                for _ in range(40):
                    try:
                        await server._predict(body)
                        outcomes.append("ok")
                    except ServiceClosed:
                        outcomes.append("closed")
                    await asyncio.sleep(0)
                return outcomes

            hammer_task = asyncio.ensure_future(hammer())
            await asyncio.sleep(0.01)
            await server.close()
            return await hammer_task

        outcomes = asyncio.run(scenario())
        assert set(outcomes) <= {"ok", "closed"}
        assert "closed" in outcomes  # the race actually happened
