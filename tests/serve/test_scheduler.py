"""The asyncio and thread bindings share one scheduling brain.

``SchedulerPolicy`` owns every batching decision (coalescing window,
adaptive delay, shed threshold, deadline expiry); the two bindings —
asyncio :class:`MicroBatcher` and thread :class:`ThreadBatcher` — are
thin transports around it.  These tests run the *same* workloads through
both via a small driver abstraction and assert identical observable
behavior: batch-size histograms, shed decisions, deadline expiries,
shutdown semantics, and (always) bit-identity to direct ``predict``.
A divergence here means a binding grew its own policy — the exact bug
the scheduler split exists to prevent.
"""

from __future__ import annotations

import asyncio
import threading
import time
from types import SimpleNamespace

import numpy as np
import pytest

from repro.serve.batcher import MicroBatcher
from repro.serve.scheduler import (
    DeadlineExceeded,
    QueueSaturated,
    SchedulerPolicy,
    ServiceClosed,
    ThreadBatcher,
)
from repro.serve.stats import ServeStats

from .conftest import tiny_loader
from .test_batcher import toy_model


class _GatedNetwork:
    """Blocks every forward until released (works under both bindings:
    the asyncio binding runs forwards on executor *threads*, the thread
    binding inline on its worker thread)."""

    def __init__(self):
        self.release = threading.Event()
        self.calls = 0

    def predict_patterns(self, patterns):
        self.calls += 1
        assert self.release.wait(timeout=30.0)
        return np.zeros(patterns.shape[0], dtype=np.int64)


def _gated_model():
    return SimpleNamespace(key="toy/gated", network=_GatedNetwork())


# ----------------------------------------------------------------------
# Drivers: one workload definition, two transports
# ----------------------------------------------------------------------
class _AsyncioDriver:
    name = "asyncio"

    def burst(self, model, patterns_list, stats=None, **knobs):
        """Enqueue every request before any batch executes; return the
        per-request outcomes (result array or exception)."""

        async def scenario():
            batcher = MicroBatcher(model, stats=stats, **knobs)
            futures = [
                asyncio.ensure_future(batcher.submit(p))
                for p in patterns_list
            ]
            await asyncio.sleep(0)  # let every submit enqueue
            await batcher.close()  # sentinel flushes the partial tail
            return await asyncio.gather(*futures, return_exceptions=True)

        return asyncio.run(scenario())

    def shed(self, model, patterns, **knobs):
        """Fill the queue behind a gated batch until the policy sheds;
        returns (accepted, outcomes-of-late-submits)."""

        async def scenario():
            batcher = MicroBatcher(model, **knobs)
            first = asyncio.ensure_future(batcher.submit(patterns))
            await _await_gated(model)
            late = []
            for _ in range(4):
                try:
                    late.append(
                        asyncio.ensure_future(batcher.submit(patterns))
                    )
                except QueueSaturated as exc:
                    late.append(exc)
            # submit() raises at await time, not ensure_future time.
            outcomes = []
            for item in late:
                if isinstance(item, Exception):
                    outcomes.append(item)
                    continue
                # Give shed rejections a beat to settle, then release.
                await asyncio.sleep(0.01)
                if item.done() and item.exception() is not None:
                    outcomes.append(item.exception())
                else:
                    outcomes.append(item)
            model.network.release.set()
            results = []
            for item in outcomes:
                if isinstance(item, Exception):
                    results.append(item)
                else:
                    try:
                        results.append(await item)
                    except Exception as exc:  # noqa: BLE001 - recorded
                        results.append(exc)
            await first
            await batcher.close()
            return results

        return asyncio.run(scenario())

    def expire(self, model, patterns, deadline_s, **knobs):
        """One request stuck behind a gated batch with a short deadline;
        returns its outcome."""

        async def scenario():
            batcher = MicroBatcher(model, **knobs)
            first = asyncio.ensure_future(batcher.submit(patterns))
            await _await_gated(model)
            loop = asyncio.get_running_loop()
            doomed = asyncio.ensure_future(
                batcher.submit(patterns, deadline=loop.time() + deadline_s)
            )
            await asyncio.sleep(deadline_s * 4)
            model.network.release.set()
            try:
                outcome = await doomed
            except Exception as exc:  # noqa: BLE001 - recorded
                outcome = exc
            await first
            await batcher.close()
            return outcome

        return asyncio.run(scenario())

    def closed_submit(self, model, patterns, **knobs):
        async def scenario():
            batcher = MicroBatcher(model, **knobs)
            await batcher.submit(patterns)
            await batcher.close()
            try:
                await batcher.submit(patterns)
            except Exception as exc:  # noqa: BLE001 - recorded
                return exc
            return None

        return asyncio.run(scenario())


async def _await_gated(model, timeout_s: float = 5.0):
    """Wait until the worker is inside the gated forward — i.e. the first
    request has been dequeued and the queue is empty again."""
    deadline = asyncio.get_running_loop().time() + timeout_s
    while (
        model.network.calls < 1
        and asyncio.get_running_loop().time() < deadline
    ):
        await asyncio.sleep(0.005)
    assert model.network.calls >= 1


class _ThreadDriver:
    name = "thread"

    def burst(self, model, patterns_list, stats=None, **knobs):
        batcher = ThreadBatcher(model, stats=stats, **knobs)
        futures = [batcher.submit_async(p) for p in patterns_list]
        batcher.close()  # sentinel after the last request: full drain
        outcomes = []
        for future in futures:
            try:
                outcomes.append(future.result(timeout=30.0))
            except Exception as exc:  # noqa: BLE001 - recorded
                outcomes.append(exc)
        return outcomes

    def shed(self, model, patterns, **knobs):
        batcher = ThreadBatcher(model, **knobs)
        first = batcher.submit_async(patterns)
        _wait_gated(model)
        late = []
        for _ in range(4):
            try:
                late.append(batcher.submit_async(patterns))
            except QueueSaturated as exc:
                late.append(exc)
        model.network.release.set()
        results = []
        for item in late:
            if isinstance(item, Exception):
                results.append(item)
                continue
            try:
                results.append(item.result(timeout=30.0))
            except Exception as exc:  # noqa: BLE001 - recorded
                results.append(exc)
        first.result(timeout=30.0)
        batcher.close()
        return results

    def expire(self, model, patterns, deadline_s, **knobs):
        batcher = ThreadBatcher(model, **knobs)
        first = batcher.submit_async(patterns)
        _wait_gated(model)
        doomed = batcher.submit_async(
            patterns, deadline=time.monotonic() + deadline_s
        )
        time.sleep(deadline_s * 4)
        model.network.release.set()
        try:
            outcome = doomed.result(timeout=30.0)
        except Exception as exc:  # noqa: BLE001 - recorded
            outcome = exc
        first.result(timeout=30.0)
        batcher.close()
        return outcome

    def closed_submit(self, model, patterns, **knobs):
        batcher = ThreadBatcher(model, **knobs)
        batcher.submit(patterns, timeout=30.0)
        batcher.close()
        try:
            batcher.submit_async(patterns)
        except Exception as exc:  # noqa: BLE001 - recorded
            return exc
        return None


def _wait_gated(model, timeout_s: float = 5.0):
    deadline = time.monotonic() + timeout_s
    while model.network.calls < 1 and time.monotonic() < deadline:
        time.sleep(0.005)
    assert model.network.calls >= 1


@pytest.fixture(params=[_AsyncioDriver(), _ThreadDriver()],
                ids=["asyncio", "thread"])
def driver(request):
    return request.param


# ----------------------------------------------------------------------
# The shared contract, asserted per binding
# ----------------------------------------------------------------------
class TestBindingContract:
    def test_burst_coalesces_identically(self, driver, toy_inputs):
        """19 one-row requests at max_batch=8 -> batches of 8, 8, 3 under
        *either* transport."""
        model = toy_model()
        stats = ServeStats()
        inputs = [toy_inputs(1) for _ in range(19)]
        results = driver.burst(
            model, [model.quantize(x) for x in inputs],
            stats=stats, max_batch=8, max_delay_ms=10_000.0,
        )
        assert dict(stats.batch_sizes) == {8: 2, 3: 1}
        for x, got in zip(inputs, results):
            np.testing.assert_array_equal(got, model.network.predict(x))

    def test_oversized_request_slices_identically(self, driver, toy_inputs):
        model = toy_model()
        stats = ServeStats()
        x = toy_inputs(11)
        (result,) = driver.burst(
            model, [model.quantize(x)],
            stats=stats, max_batch=4, max_delay_ms=1.0,
        )
        assert dict(stats.batch_sizes) == {4: 2, 3: 1}
        np.testing.assert_array_equal(result, model.network.predict(x))

    def test_bit_identity_to_direct_predict(self, driver, rng):
        model = toy_model("toy2", "float4_3")
        requests = [rng.normal(size=(rows, 5)) for rows in (1, 3, 2, 5, 1)]
        results = driver.burst(
            model, [model.quantize(x) for x in requests],
            max_batch=3, max_delay_ms=10_000.0,
        )
        for x, got in zip(requests, results):
            np.testing.assert_array_equal(got, model.network.predict(x))

    def test_shed_threshold_rejects_identically(self, driver):
        """queue_limit=4, shed_threshold=0.5 -> exactly 2 late requests
        queue behind a gated batch, the rest shed with QueueSaturated."""
        model = _gated_model()
        patterns = np.zeros((1, 4), dtype=np.uint32)
        outcomes = driver.shed(
            model, patterns,
            max_batch=1, max_delay_ms=0.0, queue_limit=4,
            shed_threshold=0.5,
        )
        accepted = [o for o in outcomes if isinstance(o, np.ndarray)]
        shed = [o for o in outcomes if isinstance(o, QueueSaturated)]
        assert len(accepted) == 2
        assert len(shed) == 2

    def test_deadline_expires_identically(self, driver):
        model = _gated_model()
        patterns = np.zeros((1, 4), dtype=np.uint32)
        outcome = driver.expire(
            model, patterns, deadline_s=0.05,
            max_batch=1, max_delay_ms=0.0,
        )
        assert isinstance(outcome, DeadlineExceeded)

    def test_submit_after_close_raises_identically(self, driver, toy_inputs):
        model = toy_model()
        outcome = driver.closed_submit(
            model, model.quantize(toy_inputs(1)),
            max_batch=4, max_delay_ms=1.0,
        )
        assert isinstance(outcome, ServiceClosed)

    def test_poisoned_batch_isolated_identically(self, driver, toy_inputs):
        """A wrong-width request coalesced with good ones fails alone;
        the batch survives and good requests still answer correctly."""
        model = toy_model()
        good = [model.quantize(toy_inputs(1)) for _ in range(2)]
        bad = np.zeros((1, 7), dtype=np.uint32)
        outcomes = driver.burst(
            model, [good[0], bad, good[1]],
            max_batch=8, max_delay_ms=10_000.0,
        )
        assert isinstance(outcomes[1], Exception)
        for patterns, got in ((good[0], outcomes[0]), (good[1], outcomes[2])):
            np.testing.assert_array_equal(
                got, model.network.predict_patterns(patterns)
            )


class TestCrossBindingEquivalence:
    """Run the identical workload through both transports and diff the
    *observable schedule*, not just the answers."""

    def test_same_workload_same_histogram_same_bits(self, toy_inputs):
        model = toy_model()
        inputs = [toy_inputs(n) for n in (1, 2, 1, 5, 1, 1, 3, 1, 1, 2)]
        patterns = [model.quantize(x) for x in inputs]
        knobs = dict(max_batch=4, max_delay_ms=10_000.0)
        per_binding = {}
        for drv in (_AsyncioDriver(), _ThreadDriver()):
            stats = ServeStats()
            results = drv.burst(model, patterns, stats=stats, **knobs)
            per_binding[drv.name] = (dict(stats.batch_sizes), results)
        hist_a, results_a = per_binding["asyncio"]
        hist_t, results_t = per_binding["thread"]
        assert hist_a == hist_t
        for got_a, got_t in zip(results_a, results_t):
            np.testing.assert_array_equal(got_a, got_t)

    def test_stats_counters_agree(self, toy_inputs):
        model = toy_model()
        patterns = [model.quantize(toy_inputs(2)) for _ in range(5)]
        snapshots = {}
        for drv in (_AsyncioDriver(), _ThreadDriver()):
            stats = ServeStats()
            drv.burst(model, patterns, stats=stats,
                      max_batch=10, max_delay_ms=10_000.0)
            snap = stats.snapshot()
            snap["latency_ms"] = None  # wall-clock: the one allowed diff
            snapshots[drv.name] = snap
        assert snapshots["asyncio"] == snapshots["thread"]


class TestSchedulerPolicy:
    """The shared brain in isolation (no transport at all)."""

    def test_knob_validation(self):
        with pytest.raises(ValueError):
            SchedulerPolicy(max_batch=0)
        with pytest.raises(ValueError):
            SchedulerPolicy(max_delay_ms=-1.0)
        with pytest.raises(ValueError):
            SchedulerPolicy(queue_limit=0)
        with pytest.raises(ValueError):
            SchedulerPolicy(shed_threshold=1.5)

    def test_shed_math_matches_served_semantics(self):
        policy = SchedulerPolicy(queue_limit=4, shed_threshold=0.5)
        assert policy.shed_at == 2
        assert not policy.should_shed(1)
        assert policy.should_shed(2)
        assert SchedulerPolicy(shed_threshold=None).should_shed(10**6) is False

    def test_shed_at_floor_is_one(self):
        policy = SchedulerPolicy(queue_limit=100, shed_threshold=0.001)
        assert policy.shed_at == 1

    def test_split_expired_partitions_by_deadline(self):
        from repro.serve.scheduler import PendingRequest

        policy = SchedulerPolicy()

        def pending(deadline):
            return PendingRequest(
                patterns=np.zeros((1, 4), dtype=np.uint32), rows=1,
                future=None, enqueued=0.0, deadline=deadline,
            )

        batch = [pending(None), pending(5.0), pending(15.0)]
        live, expired = policy.split_expired(batch, now=10.0)
        assert [p.deadline for p in live] == [None, 15.0]
        assert [p.deadline for p in expired] == [5.0]
        error = policy.expiry_error(expired[0], now=10.0)
        assert isinstance(error, DeadlineExceeded)

    def test_effective_delay_branches(self):
        policy = SchedulerPolicy(max_batch=8, max_delay_ms=2.0)
        assert policy.effective_delay == pytest.approx(0.002)  # cold
        policy._arrival_gap_s = 0.0001  # dense: fill time 0.7ms < cap
        assert policy.effective_delay == pytest.approx(0.0007)
        policy._arrival_gap_s = 0.004  # sparse: decay quadratically
        assert policy.effective_delay == pytest.approx(0.001)
        off = SchedulerPolicy(max_delay_ms=2.0, adaptive_delay=False)
        off._arrival_gap_s = 1e-6
        assert off.effective_delay == pytest.approx(0.002)

    def test_ewma_observes_arrivals(self):
        policy = SchedulerPolicy()
        policy.observe_arrival(10.0)
        assert policy._arrival_gap_s is None
        policy.observe_arrival(10.1)
        assert policy._arrival_gap_s == pytest.approx(0.1)
        policy.observe_arrival(10.3)
        assert policy._arrival_gap_s == pytest.approx(0.125)


class TestThreadBatcherSpecifics:
    """Transport details only the thread binding has."""

    def test_blocking_submit_returns_predictions(self, toy_inputs):
        model = toy_model()
        batcher = ThreadBatcher(model, max_batch=4, max_delay_ms=1.0)
        x = toy_inputs(3)
        got = batcher.submit(model.quantize(x), timeout=30.0)
        batcher.close()
        np.testing.assert_array_equal(got, model.network.predict(x))

    def test_close_is_idempotent_and_joins(self, toy_inputs):
        model = toy_model()
        batcher = ThreadBatcher(model, max_batch=4, max_delay_ms=1.0)
        batcher.submit(model.quantize(toy_inputs(1)), timeout=30.0)
        batcher.close()
        batcher.close()
        with pytest.raises(ServiceClosed):
            batcher.submit_async(model.quantize(toy_inputs(1)))

    def test_swap_model_same_key_only(self):
        model = toy_model()
        batcher = ThreadBatcher(model, max_batch=4, max_delay_ms=1.0)
        try:
            other = toy_model("toy2", "float4_3")
            with pytest.raises(ValueError):
                batcher.swap_model(other)
            from repro.serve.registry import build_served_model

            before = batcher.generation
            replacement = build_served_model("toy", "posit8_1", tiny_loader)
            assert batcher.swap_model(replacement) == before + 1
            assert batcher.generation == before + 1
        finally:
            batcher.close()
